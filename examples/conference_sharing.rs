//! The paper's demonstration scenario (§4): a conference data-sharing
//! system. Attendees contribute contact and publication data under
//! *different schemas*, bridge them with mapping triples, and run the
//! paper's flagship skyline query.
//!
//! ```sh
//! cargo run --example conference_sharing
//! ```

use unistore::{UniCluster, UniConfig};
use unistore_workload::hetero::heterogenize;
use unistore_workload::{PubParams, PubWorld};

fn main() {
    // 64 peers — a respectable conference crowd.
    let mut cluster = UniCluster::build(64, UniConfig::default(), 7);

    // Two communities share publication data under different attribute
    // names; mapping triples bridge them (paper §2).
    let world = PubWorld::generate(
        &PubParams { n_authors: 80, n_conferences: 15, ..Default::default() },
        7,
    );
    let hetero = heterogenize(&world, 3);
    println!(
        "loading {} tuples ({} triples) from two schema communities…",
        hetero.tuples.len(),
        world.triple_count()
    );
    cluster.load(hetero.tuples.clone());
    for m in &hetero.mappings {
        println!("  mapping: {} ≡ {}", m.from, m.to);
        cluster.add_mapping(m);
    }

    // The paper's §2 example query, verbatim structure: a skyline of
    // authors from youngest to most-published, restricted to those who
    // published in an ICDE-like series (edit distance < 3 absorbs typos).
    let query = "
        SELECT ?name,?age,?cnt
        WHERE {(?a,'name',?name) (?a,'age',?age)
               (?a,'num_of_pubs',?cnt)
               (?a,'has_published',?title) (?p,'title',?title)
               (?p,'published_in',?conf) (?c,'confname',?conf)
               (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
        }
        ORDER BY SKYLINE OF ?age MIN, ?cnt MAX";

    let origin = cluster.random_node();
    let out = cluster.query(origin, query).expect("the paper's query parses");

    println!("\nskyline of ICDE authors (age MIN, publications MAX):");
    let mut rows = out.relation.rows.clone();
    rows.sort_by(|a, b| a[1].cmp_values(&b[1]));
    for row in &rows {
        println!("  {:24} age {:3}  publications {}", row[0].to_string(), row[1], row[2]);
    }
    println!(
        "\n{} skyline points; {} messages, {:.1} KiB moved, answered in {} (simulated)",
        out.relation.len(),
        out.cost.messages,
        out.cost.bytes as f64 / 1024.0,
        out.cost.latency
    );

    // Check against the local oracle — same rows, guaranteed.
    let mut oracle = cluster.oracle();
    let expected = oracle.query(query).unwrap();
    assert_eq!(out.relation.len(), expected.len(), "distributed == local oracle");
    println!("oracle check passed: distributed answer matches local evaluation");
}

//! Quickstart: build a small UniStore network, insert data, run VQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use unistore::{UniCluster, UniConfig};
use unistore_store::{Tuple, Value};

fn main() {
    // A 16-peer overlay on a simulated LAN (paper §4: the conference
    // demo network).
    let mut cluster = UniCluster::build(16, UniConfig::default(), 42);

    // Insert heterogeneous tuples — note the absent attributes: vertical
    // storage needs no NULLs (paper §2).
    cluster.load(vec![
        Tuple::new("p1")
            .with("name", Value::str("alice"))
            .with("age", Value::Int(28))
            .with("office", Value::str("IL-2064")),
        Tuple::new("p2")
            .with("name", Value::str("bob"))
            .with("age", Value::Int(45))
            .with("phone", Value::Int(4412)),
        Tuple::new("p3").with("name", Value::str("carol")).with("age", Value::Int(33)),
    ]);

    // A structured query with a range filter, from any peer.
    let origin = cluster.random_node();
    let out = cluster
        .query(
            origin,
            "SELECT ?name,?age
             WHERE {(?p,'name',?name) (?p,'age',?age) FILTER ?age < 40}
             ORDER BY ?age",
        )
        .expect("valid VQL");

    println!("results ({} rows):", out.relation.len());
    for row in &out.relation.rows {
        println!("  {} is {}", row[0], row[1]);
    }
    println!(
        "cost: {} messages, {} bytes, {} simulated latency, {} routing hops",
        out.cost.messages, out.cost.bytes, out.cost.latency, out.cost.hops
    );

    // Schema-level querying works the same way: attributes are data.
    let out = cluster.query(origin, "SELECT ?attr WHERE {('p1',?attr,?v)}").expect("valid VQL");
    let attrs: Vec<String> = out.relation.rows.iter().map(|r| r[0].to_string()).collect();
    println!("p1's schema: {}", attrs.join(", "));
}

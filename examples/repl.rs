//! Interactive VQL shell over a simulated UniStore network — the
//! library-world equivalent of the paper's Fig. 4 query window.
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Commands: a VQL query on one line, `:help`, `:stats`, `:quit`.

use std::io::{BufRead, Write};

use unistore::{UniCluster, UniConfig};
use unistore_workload::{PubParams, PubWorld};

fn main() {
    let world = PubWorld::generate(
        &PubParams { n_authors: 60, n_conferences: 12, ..Default::default() },
        99,
    );
    let mut cluster = UniCluster::build(32, UniConfig::default(), 99);
    cluster.load(world.all_tuples());
    println!("UniStore REPL — 32 peers, {} triples loaded.", cluster.triples().len());
    println!("Schema: Person(name, age, num_of_pubs, email, has_published),");
    println!("        Publication(title, published_in, year), Conference(confname, series, year)");
    println!("Type a VQL query, :help, or :quit.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("vql> ");
        out.flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        match line {
            "" => continue,
            ":quit" | ":q" => break,
            ":help" => {
                println!("examples:");
                println!("  SELECT ?n WHERE {{(?a,'name',?n)}} LIMIT 5");
                println!("  SELECT ?n,?g WHERE {{(?a,'name',?n) (?a,'age',?g) FILTER ?g < 35}}");
                println!("  SELECT ?s WHERE {{(?c,'series',?s) FILTER edist(?s,'ICDE')<2}}");
                println!("  SELECT ?g,?c WHERE {{(?a,'age',?g) (?a,'num_of_pubs',?c)}} ORDER BY SKYLINE OF ?g MIN, ?c MAX");
                continue;
            }
            ":stats" => {
                let m = cluster.net.metrics();
                println!(
                    "network: {} msgs sent, {} delivered, {} dropped, {} bytes",
                    m.sent, m.delivered, m.dropped, m.bytes
                );
                continue;
            }
            _ => {}
        }
        let origin = cluster.random_node();
        match cluster.query(origin, line) {
            Err(e) => println!("{}", e.render(line)),
            Ok(res) if !res.ok => println!("query timed out"),
            Ok(res) => {
                let header: Vec<String> =
                    res.relation.schema.iter().map(|v| format!("?{v}")).collect();
                println!("{}", header.join(" | "));
                for row in res.relation.rows.iter().take(25) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                if res.relation.len() > 25 {
                    println!("… {} more rows", res.relation.len() - 25);
                }
                println!(
                    "[{} rows; {} msgs, {} hops, {} simulated]",
                    res.relation.len(),
                    res.cost.messages,
                    res.cost.hops,
                    res.cost.latency
                );
            }
        }
    }
    println!("bye.");
}

//! Similarity search: the q-gram index vs naive evaluation (paper §2,
//! ref [6]) — same answers, very different network bills.
//!
//! ```sh
//! cargo run --example similarity_search
//! ```

use unistore::config::ScanPref;
use unistore::{PlanMode, UniCluster, UniConfig};
use unistore_workload::{PubParams, PubWorld};

fn main() {
    let world = PubWorld::generate(
        &PubParams {
            n_authors: 150,
            n_conferences: 40,
            typo_rate: 0.25, // plenty of misspelled series names
            ..Default::default()
        },
        21,
    );
    let query = "SELECT ?s,?cn WHERE {(?c,'series',?s) (?c,'confname',?cn)
                 FILTER edist(?s,'ICDE')<2}";

    println!("searching series names within edit distance 1 of 'ICDE'…\n");
    let mut costs = Vec::new();
    for (label, pref) in [
        ("q-gram index ", Some(ScanPref::QGram)),
        ("naive sweep   ", Some(ScanPref::NaiveSimilarity)),
        ("optimizer     ", None),
    ] {
        let mut cluster = UniCluster::build(64, UniConfig::default(), 21);
        cluster.load(world.all_tuples());
        cluster.set_plan_mode(PlanMode { scan_pref: pref, ..Default::default() });
        let origin = unistore_simnet::NodeId(0);
        let out = cluster.query(origin, query).unwrap();
        assert!(out.ok);
        println!(
            "{label}  → {:3} rows   {:5} messages   {:7} bytes   {} latency",
            out.relation.len(),
            out.cost.messages,
            out.cost.bytes,
            out.cost.latency
        );
        costs.push((label, out.relation.len(), out.cost.messages));
    }

    // All three strategies return identical row counts.
    assert!(costs.windows(2).all(|w| w[0].1 == w[1].1), "identical answers");
    println!("\nmatched series include the typo'd variants, e.g.:");
    let mut cluster = UniCluster::build(64, UniConfig::default(), 21);
    cluster.load(world.all_tuples());
    let out = cluster.query(unistore_simnet::NodeId(0), query).unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for row in &out.relation.rows {
        if seen.insert(row[0].to_string()) && seen.len() <= 8 {
            println!("  {}", row[0]);
        }
    }
}

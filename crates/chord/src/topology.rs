//! Converged-ring planning, shared by the driver harness
//! ([`crate::cluster`]) and the [`Overlay`](unistore_overlay::Overlay)
//! backend: ring-id assignment, successor/predecessor wiring and exact
//! finger tables.

use unistore_simnet::NodeId;
use unistore_util::fxhash::mix64;
use unistore_util::Key;

use crate::node::{ring_key_bucket, ring_key_exact};

/// A planned, converged Chord ring.
#[derive(Clone, Debug)]
pub struct ChordTopology {
    /// `(ring position, node id)` sorted ascending by ring position.
    pub ring_order: Vec<(u64, NodeId)>,
    /// Ring position per node id (dense).
    pub by_id: Vec<u64>,
    /// Prefix depth of the auxiliary bucket index.
    pub bucket_depth: u8,
}

/// The wired routing state of one ring member.
#[derive(Clone, Debug)]
pub struct RingWiring {
    /// `(id, ring position)` of the predecessor — the primary of this
    /// member's replica set under successor replication.
    pub predecessor: (NodeId, u64),
    /// `(id, ring position)` of the successor.
    pub successor: (NodeId, u64),
    /// `(id, ring position)` of the successor's successor — the
    /// routing fallback when the successor is suspected dead (Chord's
    /// two-deep successor list).
    pub successor2: (NodeId, u64),
    /// Deduped fingers, ascending ring distance from the member.
    pub fingers: Vec<(NodeId, u64)>,
}

impl ChordTopology {
    /// Plans a ring of `n` nodes: well-mixed, deterministic,
    /// collision-free ring ids for n ≪ 2^64.
    pub fn plan(n: usize, bucket_depth: u8, seed: u64) -> Self {
        assert!(n >= 1);
        let mut ring_order: Vec<(u64, NodeId)> = (0..n)
            .map(|i| {
                (mix64(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407)), NodeId(i as u32))
            })
            .collect();
        ring_order.sort_unstable();
        let mut by_id: Vec<u64> = vec![0; n];
        for &(ring, id) in &ring_order {
            by_id[id.index()] = ring;
        }
        ChordTopology { ring_order, by_id, bucket_depth }
    }

    /// `(ring position, id)` of the node owning ring position `target`.
    pub fn successor_of(&self, target: u64) -> (u64, NodeId) {
        let pos = self.ring_order.partition_point(|&(r, _)| r < target);
        self.ring_order[pos % self.ring_order.len()]
    }

    /// Successor/predecessor/fingers of ring member `id`.
    pub fn wiring(&self, id: NodeId) -> RingWiring {
        let m = self.ring_order.len();
        let ring = self.by_id[id.index()];
        let pos = self.ring_order.partition_point(|&(r, _)| r < ring);
        debug_assert_eq!(self.ring_order[pos], (ring, id), "id is a ring member");
        let (succ_ring, succ_id) = self.ring_order[(pos + 1) % m];
        let (succ2_ring, succ2_id) = self.ring_order[(pos + 2) % m];
        let (pred_ring, pred_id) = self.ring_order[(pos + m - 1) % m];
        let mut fingers: Vec<(NodeId, u64)> = Vec::new();
        for k in 0..64u32 {
            let target = ring.wrapping_add(1u64 << k);
            let (f_ring, f_id) = self.successor_of(target);
            if f_id != id && !fingers.iter().any(|&(fid, _)| fid == f_id) {
                fingers.push((f_id, f_ring));
            }
        }
        // Ascending ring distance from self.
        fingers.sort_by_key(|&(_, r)| r.wrapping_sub(ring));
        RingWiring {
            predecessor: (pred_id, pred_ring),
            successor: (succ_id, succ_ring),
            successor2: (succ2_id, succ2_ring),
            fingers,
        }
    }

    /// Peers holding `key` in the converged state: the owner of its
    /// exact-index position and the owner of its bucket-index position.
    pub fn holders_of_key(&self, key: Key) -> Vec<usize> {
        let exact = self.successor_of(ring_key_exact(key)).1.index();
        let bucket = self.successor_of(ring_key_bucket(key, self.bucket_depth)).1.index();
        if exact == bucket {
            vec![exact]
        } else {
            vec![exact, bucket]
        }
    }
}

impl unistore_overlay::OverlayTopology for ChordTopology {
    fn holders(&self, key: Key) -> Vec<usize> {
        self.holders_of_key(key)
    }

    fn partitions(&self) -> usize {
        self.ring_order.len()
    }

    fn replication(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wiring_matches_sorted_ring() {
        let topo = ChordTopology::plan(16, 10, 3);
        for pos in 0..16 {
            let (ring, id) = topo.ring_order[pos];
            let w = topo.wiring(id);
            assert_eq!(w.successor.1, topo.ring_order[(pos + 1) % 16].0);
            assert_eq!(w.predecessor.1, topo.ring_order[(pos + 15) % 16].0);
            assert_eq!(w.predecessor.0, topo.ring_order[(pos + 15) % 16].1);
            assert!(!w.fingers.iter().any(|&(f, _)| f == id), "no self-fingers");
            let _ = ring;
        }
    }

    #[test]
    fn holders_cover_both_indexes() {
        let topo = ChordTopology::plan(32, 10, 9);
        for key in (0..50u64).map(|i| i << 40) {
            let holders = topo.holders_of_key(key);
            assert!(!holders.is_empty() && holders.len() <= 2);
            assert_eq!(topo.successor_of(ring_key_exact(key)).1.index(), holders[0]);
        }
    }
}

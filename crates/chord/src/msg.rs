//! Chord protocol messages and driver events.

use bytes::{Bytes, BytesMut};

use unistore_simnet::NodeId;
use unistore_util::item::Item;
use unistore_util::wire::{put_list, BatchOp, BatchVerb, Wire, WireError};
use unistore_util::{ItemFilter, Key};

use crate::store::RecordKey;

/// Correlation id.
pub type QueryId = u64;

/// One op of a [`ChordMsg::OpBatch`]: the shared compact op format
/// ([`BatchOp`]: original key, version, verb) plus which of the two
/// indexes it addresses. A logical write fans out into two of these —
/// one per index (exact + bucket) — but the payload is shipped once per
/// message, referenced by the verb's item tag.
///
/// The ring position is **not** on the wire: every node derives it from
/// `(key, bucket)` with the shared hash (`ring_key_exact` /
/// `ring_key_bucket`), saving ~10 bytes per op per edge — op tags are
/// the dominant freight of a large batch. The bucket bit rides
/// [`BatchOp`]'s flag byte (`BatchOp::encode_flagged`), so both
/// backends share one op codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChordBatchOp {
    /// `true` = the auxiliary bucket index, `false` = the exact index.
    pub bucket: bool,
    /// Position of this op in the origin's full op list, stable across
    /// sub-batch re-grouping. Echoed by [`ChordMsg::BatchAck`], so the
    /// origin knows exactly which ops landed and a timed-out batch
    /// retransmits only the un-acked remainder.
    pub idx: u32,
    /// Key, version and verb, as in the backend-agnostic batch format.
    pub op: BatchOp,
}

/// Flag bit marking bucket-index ops (above [`BatchOp`]'s own bits).
const BUCKET_FLAG: u8 = 4;

impl Wire for ChordBatchOp {
    fn encode(&self, buf: &mut BytesMut) {
        self.op.encode_flagged(if self.bucket { BUCKET_FLAG } else { 0 }, buf);
        self.idx.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let (op, extra) = BatchOp::decode_flagged(buf, BUCKET_FLAG)?;
        let idx = u32::decode(buf)?;
        Ok(ChordBatchOp { bucket: extra != 0, idx, op })
    }

    fn wire_size(&self) -> usize {
        self.op.wire_size() + self.idx.wire_size()
    }
}

/// Chord messages.
#[derive(Clone, Debug)]
pub enum ChordMsg<I> {
    /// Exact lookup of a ring position (greedy finger routing).
    Lookup {
        /// Correlation id.
        qid: QueryId,
        /// Hashed ring position to resolve.
        ring_key: u64,
        /// Issuer; receives the reply.
        origin: NodeId,
        /// Hops so far.
        hops: u32,
        /// Semi-join filter the owner applies before replying.
        filter: Option<ItemFilter>,
    },
    /// Answer to [`ChordMsg::Lookup`] or [`ChordMsg::BucketGet`]:
    /// `(original key, item)` pairs.
    LookupReply {
        /// Correlation id.
        qid: QueryId,
        /// Entries found.
        entries: Vec<(Key, I)>,
        /// Hops the request took.
        hops: u32,
        /// `false` on a routing failure.
        ok: bool,
    },
    /// Routed insert, stored at the successor of `ring_key`.
    Insert {
        /// Correlation id.
        qid: QueryId,
        /// Ring position to store under.
        ring_key: u64,
        /// Original (order-preserving) key, kept for bucket filtering.
        key: Key,
        /// Payload.
        item: I,
        /// Version for loose-consistency updates (0 = initial insert).
        version: u64,
        /// Issuer; receives the ack.
        origin: NodeId,
        /// Hops so far.
        hops: u32,
    },
    /// Insert confirmation (also acknowledges [`ChordMsg::Delete`]).
    InsertAck {
        /// Correlation id.
        qid: QueryId,
        /// Hops to the responsible node.
        hops: u32,
    },
    /// Routed removal of the entry with logical identity `ident` stored
    /// under `(ring_key, key)` (update maintenance): records a
    /// tombstone at `version` that supersedes a strictly older stored
    /// entry and keeps vetoing writes at `<= version`. Acknowledged
    /// with [`ChordMsg::InsertAck`].
    Delete {
        /// Correlation id.
        qid: QueryId,
        /// Ring position to delete from.
        ring_key: u64,
        /// Original (order-preserving) key the entry was stored under.
        key: Key,
        /// Logical identity of the entry to remove.
        ident: u64,
        /// Version of the delete.
        version: u64,
        /// Issuer; receives the ack.
        origin: NodeId,
        /// Hops so far.
        hops: u32,
    },
    /// Many routed writes coalesced into one message: each distinct
    /// payload travels once in `items`, referenced by the ops' compact
    /// tags. At every node the batch re-splits into a locally applied
    /// remainder plus one sub-batch per next hop; appliers ack the
    /// origin with one aggregated [`ChordMsg::BatchAck`].
    OpBatch {
        /// Correlation id of the whole batch.
        qid: QueryId,
        /// Issuer, receives the aggregated acks.
        origin: NodeId,
        /// Routing hops of this sub-batch so far.
        hops: u32,
        /// Distinct payloads, shipped once each.
        items: Vec<I>,
        /// The write ops, referencing `items` by index.
        ops: Vec<ChordBatchOp>,
    },
    /// Aggregated ack naming the applied ops by their origin-side
    /// positions ([`ChordBatchOp::idx`]). Positional acks are idempotent
    /// — a late duplicate re-marks ops already marked — which is what
    /// lets a timed-out batch retransmit only its un-acked remainder
    /// without any attempt-number bookkeeping.
    BatchAck {
        /// Correlation id of the batch.
        qid: QueryId,
        /// Origin-side op positions applied at the acking node.
        applied: Vec<u32>,
        /// Hops the sub-batch travelled to that node.
        hops: u32,
    },
    /// Range query in *bucket* mode, handled at the origin: fans out one
    /// [`ChordMsg::BucketGet`] per bucket intersecting `[lo, hi]`.
    BucketRange {
        /// Correlation id.
        qid: QueryId,
        /// Inclusive bounds on original keys.
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// Issuer.
        origin: NodeId,
    },
    /// Fetches one bucket, filtering entries to `[lo, hi]`.
    BucketGet {
        /// Correlation id.
        qid: QueryId,
        /// Ring position of the bucket.
        ring_key: u64,
        /// Inclusive bounds on original keys.
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// Issuer.
        origin: NodeId,
        /// Hops so far.
        hops: u32,
        /// Semi-join filter the bucket owner applies before replying.
        filter: Option<ItemFilter>,
    },
    /// Broadcast range query (finger spanning tree, El-Ansary style).
    /// Covers ring positions in `(sender, limit)`.
    Bcast {
        /// Correlation id.
        qid: QueryId,
        /// Inclusive bounds on original keys.
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// End of the ring interval this branch is responsible for.
        limit: u64,
        /// Hops from the origin.
        hops: u32,
        /// Semi-join filter every node applies to its local scan.
        filter: Option<ItemFilter>,
    },
    /// Convergecast reply: a subtree's aggregated matches.
    BcastReply {
        /// Correlation id.
        qid: QueryId,
        /// Aggregated `(original key, item)` entries.
        entries: Vec<(Key, I)>,
        /// Nodes covered by the subtree.
        nodes: u32,
        /// Deepest hop count in the subtree.
        hops: u32,
    },
    /// Push replication of applied writes from a primary to its
    /// successor replica. One level deep: replicas only apply, never
    /// re-push, so loops are impossible.
    Replicate {
        /// `(record key, version, item-or-tombstone)` records.
        entries: Vec<(RecordKey, u64, Option<I>)>,
    },
    /// Anti-entropy request: "here is what I have". Sent by a replica
    /// to its predecessor (the primary of its replica set).
    Digest {
        /// `(record key, version)` summary of the sender's store.
        entries: Vec<(RecordKey, u64)>,
    },
    /// Anti-entropy response: records the requester was missing —
    /// tombstones included, so deletes propagate.
    DigestReply {
        /// `(record key, version, item-or-tombstone)` records.
        entries: Vec<(RecordKey, u64, Option<I>)>,
    },
    /// Routing-liveness probe of a successor or finger. A peer that
    /// stays silent past the ping deadline is suspected and `next_hop`
    /// routes around it until it is heard from again.
    Ping,
    /// Answer to [`ChordMsg::Ping`] (any traffic clears suspicion;
    /// this just guarantees there is some).
    Pong,
}

mod tag {
    pub const LOOKUP: u8 = 1;
    pub const LOOKUP_REPLY: u8 = 2;
    pub const INSERT: u8 = 3;
    pub const INSERT_ACK: u8 = 4;
    pub const BUCKET_RANGE: u8 = 5;
    pub const BUCKET_GET: u8 = 6;
    pub const BCAST: u8 = 7;
    pub const BCAST_REPLY: u8 = 8;
    pub const DELETE: u8 = 9;
    pub const OP_BATCH: u8 = 10;
    pub const BATCH_ACK: u8 = 11;
    pub const REPLICATE: u8 = 12;
    pub const DIGEST: u8 = 13;
    pub const DIGEST_REPLY: u8 = 14;
    pub const PING: u8 = 15;
    pub const PONG: u8 = 16;
}

impl<I: Item> Wire for ChordMsg<I> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ChordMsg::Lookup { qid, ring_key, origin, hops, filter } => {
                tag::LOOKUP.encode(buf);
                qid.encode(buf);
                ring_key.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
                filter.encode(buf);
            }
            ChordMsg::LookupReply { qid, entries, hops, ok } => {
                tag::LOOKUP_REPLY.encode(buf);
                qid.encode(buf);
                put_list(buf, entries);
                hops.encode(buf);
                ok.encode(buf);
            }
            ChordMsg::OpBatch { qid, origin, hops, items, ops } => {
                tag::OP_BATCH.encode(buf);
                qid.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
                put_list(buf, items);
                put_list(buf, ops);
            }
            ChordMsg::BatchAck { qid, applied, hops } => {
                tag::BATCH_ACK.encode(buf);
                qid.encode(buf);
                put_list(buf, applied);
                hops.encode(buf);
            }
            ChordMsg::Insert { qid, ring_key, key, item, version, origin, hops } => {
                tag::INSERT.encode(buf);
                qid.encode(buf);
                ring_key.encode(buf);
                key.encode(buf);
                item.encode(buf);
                version.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
            }
            ChordMsg::InsertAck { qid, hops } => {
                tag::INSERT_ACK.encode(buf);
                qid.encode(buf);
                hops.encode(buf);
            }
            ChordMsg::Delete { qid, ring_key, key, ident, version, origin, hops } => {
                tag::DELETE.encode(buf);
                qid.encode(buf);
                ring_key.encode(buf);
                key.encode(buf);
                ident.encode(buf);
                version.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
            }
            ChordMsg::BucketRange { qid, lo, hi, origin } => {
                tag::BUCKET_RANGE.encode(buf);
                qid.encode(buf);
                lo.encode(buf);
                hi.encode(buf);
                origin.encode(buf);
            }
            ChordMsg::BucketGet { qid, ring_key, lo, hi, origin, hops, filter } => {
                tag::BUCKET_GET.encode(buf);
                qid.encode(buf);
                ring_key.encode(buf);
                lo.encode(buf);
                hi.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
                filter.encode(buf);
            }
            ChordMsg::Bcast { qid, lo, hi, limit, hops, filter } => {
                tag::BCAST.encode(buf);
                qid.encode(buf);
                lo.encode(buf);
                hi.encode(buf);
                limit.encode(buf);
                hops.encode(buf);
                filter.encode(buf);
            }
            ChordMsg::BcastReply { qid, entries, nodes, hops } => {
                tag::BCAST_REPLY.encode(buf);
                qid.encode(buf);
                put_list(buf, entries);
                nodes.encode(buf);
                hops.encode(buf);
            }
            ChordMsg::Replicate { entries } => {
                tag::REPLICATE.encode(buf);
                put_list(buf, entries);
            }
            ChordMsg::Digest { entries } => {
                tag::DIGEST.encode(buf);
                put_list(buf, entries);
            }
            ChordMsg::DigestReply { entries } => {
                tag::DIGEST_REPLY.encode(buf);
                put_list(buf, entries);
            }
            ChordMsg::Ping => tag::PING.encode(buf),
            ChordMsg::Pong => tag::PONG.encode(buf),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let t = u8::decode(buf)?;
        Ok(match t {
            tag::LOOKUP => ChordMsg::Lookup {
                qid: Wire::decode(buf)?,
                ring_key: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                filter: Wire::decode(buf)?,
            },
            tag::LOOKUP_REPLY => ChordMsg::LookupReply {
                qid: Wire::decode(buf)?,
                entries: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                ok: Wire::decode(buf)?,
            },
            tag::OP_BATCH => {
                let qid = Wire::decode(buf)?;
                let origin = Wire::decode(buf)?;
                let hops = Wire::decode(buf)?;
                let items: Vec<I> = Wire::decode(buf)?;
                let ops: Vec<ChordBatchOp> = Wire::decode(buf)?;
                for op in &ops {
                    if let BatchVerb::Insert { item } = op.op.verb {
                        if item as usize >= items.len() {
                            return Err(WireError::BadLength(item as u64));
                        }
                    }
                }
                ChordMsg::OpBatch { qid, origin, hops, items, ops }
            }
            tag::BATCH_ACK => ChordMsg::BatchAck {
                qid: Wire::decode(buf)?,
                applied: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
            },
            tag::INSERT => ChordMsg::Insert {
                qid: Wire::decode(buf)?,
                ring_key: Wire::decode(buf)?,
                key: Wire::decode(buf)?,
                item: Wire::decode(buf)?,
                version: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
            },
            tag::INSERT_ACK => {
                ChordMsg::InsertAck { qid: Wire::decode(buf)?, hops: Wire::decode(buf)? }
            }
            tag::DELETE => ChordMsg::Delete {
                qid: Wire::decode(buf)?,
                ring_key: Wire::decode(buf)?,
                key: Wire::decode(buf)?,
                ident: Wire::decode(buf)?,
                version: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
            },
            tag::BUCKET_RANGE => ChordMsg::BucketRange {
                qid: Wire::decode(buf)?,
                lo: Wire::decode(buf)?,
                hi: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
            },
            tag::BUCKET_GET => ChordMsg::BucketGet {
                qid: Wire::decode(buf)?,
                ring_key: Wire::decode(buf)?,
                lo: Wire::decode(buf)?,
                hi: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                filter: Wire::decode(buf)?,
            },
            tag::BCAST => ChordMsg::Bcast {
                qid: Wire::decode(buf)?,
                lo: Wire::decode(buf)?,
                hi: Wire::decode(buf)?,
                limit: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                filter: Wire::decode(buf)?,
            },
            tag::BCAST_REPLY => ChordMsg::BcastReply {
                qid: Wire::decode(buf)?,
                entries: Wire::decode(buf)?,
                nodes: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
            },
            tag::REPLICATE => ChordMsg::Replicate { entries: Wire::decode(buf)? },
            tag::DIGEST => ChordMsg::Digest { entries: Wire::decode(buf)? },
            tag::DIGEST_REPLY => ChordMsg::DigestReply { entries: Wire::decode(buf)? },
            tag::PING => ChordMsg::Ping,
            tag::PONG => ChordMsg::Pong,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Events a Chord node surfaces to the driver.
#[derive(Clone, Debug)]
pub enum ChordEvent<I> {
    /// A lookup issued locally finished.
    LookupDone {
        /// Correlation id.
        qid: QueryId,
        /// `(original key, item)` entries.
        entries: Vec<(Key, I)>,
        /// Hops of the route.
        hops: u32,
        /// `false` on failure/timeout.
        ok: bool,
    },
    /// An insert issued locally was acknowledged.
    InsertDone {
        /// Correlation id.
        qid: QueryId,
        /// Hops to the responsible node.
        hops: u32,
        /// `false` on timeout.
        ok: bool,
    },
    /// A batched write issued locally completed (or timed out).
    BatchDone {
        /// Correlation id of the batch.
        qid: QueryId,
        /// Ops the batch carried.
        ops: u32,
        /// Deepest hop count over all acked sub-batches.
        hops: u32,
        /// `false` on timeout.
        ok: bool,
    },
    /// A range query issued locally finished.
    RangeDone {
        /// Correlation id.
        qid: QueryId,
        /// Matching entries.
        entries: Vec<(Key, I)>,
        /// Nodes (broadcast) or buckets (bucket mode) that contributed.
        contributors: u32,
        /// Deepest hop count.
        hops: u32,
        /// Whether all expected contributions arrived.
        complete: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_util::item::RawItem;

    fn roundtrip(msg: ChordMsg<RawItem>) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        let back = ChordMsg::<RawItem>::from_bytes(&bytes).expect("decode");
        assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }

    #[test]
    fn all_variants_roundtrip() {
        let entries = vec![(5u64, RawItem(5)), (6, RawItem(6))];
        let msgs: Vec<ChordMsg<RawItem>> = vec![
            ChordMsg::Lookup { qid: 1, ring_key: 99, origin: NodeId(2), hops: 3, filter: None },
            ChordMsg::Lookup {
                qid: 1,
                ring_key: 99,
                origin: NodeId(2),
                hops: 3,
                filter: Some(ItemFilter {
                    field: 2,
                    bloom: unistore_util::BloomFilter::from_hashes([1u64, 2, 3], 0.01),
                }),
            },
            ChordMsg::LookupReply { qid: 1, entries: entries.clone(), hops: 4, ok: true },
            ChordMsg::Insert {
                qid: 2,
                ring_key: 7,
                key: 700,
                item: RawItem(1),
                version: 3,
                origin: NodeId(0),
                hops: 0,
            },
            ChordMsg::InsertAck { qid: 2, hops: 5 },
            ChordMsg::Delete {
                qid: 6,
                ring_key: 7,
                key: 70,
                ident: 700,
                version: 2,
                origin: NodeId(4),
                hops: 1,
            },
            ChordMsg::OpBatch {
                qid: 8,
                origin: NodeId(3),
                hops: 1,
                items: vec![RawItem(7)],
                ops: vec![
                    ChordBatchOp {
                        bucket: false,
                        idx: 0,
                        op: BatchOp { key: 700, version: 0, verb: BatchVerb::Insert { item: 0 } },
                    },
                    ChordBatchOp {
                        bucket: true,
                        idx: 1,
                        op: BatchOp { key: 700, version: 2, verb: BatchVerb::Delete { ident: 9 } },
                    },
                ],
            },
            ChordMsg::BatchAck { qid: 8, applied: vec![0, 1], hops: 3 },
            ChordMsg::BucketRange { qid: 3, lo: 10, hi: 90, origin: NodeId(1) },
            ChordMsg::BucketGet {
                qid: 3,
                ring_key: 55,
                lo: 10,
                hi: 90,
                origin: NodeId(1),
                hops: 2,
                filter: None,
            },
            ChordMsg::Bcast { qid: 4, lo: 0, hi: u64::MAX, limit: 12345, hops: 1, filter: None },
            ChordMsg::BcastReply { qid: 4, entries, nodes: 17, hops: 6 },
            ChordMsg::Replicate {
                entries: vec![((9, 90, 900), 1, Some(RawItem(9))), ((8, 80, 800), 2, None)],
            },
            ChordMsg::Digest { entries: vec![((9, 90, 900), 1), ((8, 80, 800), 2)] },
            ChordMsg::DigestReply { entries: vec![((9, 90, 900), 3, None)] },
            ChordMsg::Ping,
            ChordMsg::Pong,
        ];
        for m in msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let b = Bytes::from_static(&[99]);
        assert!(matches!(ChordMsg::<RawItem>::from_bytes(&b), Err(WireError::BadTag(99))));
    }

    #[test]
    fn edge_values_roundtrip() {
        roundtrip(ChordMsg::LookupReply { qid: u64::MAX, entries: vec![], hops: 0, ok: false });
        roundtrip(ChordMsg::Delete {
            qid: 0,
            ring_key: u64::MAX,
            key: u64::MAX,
            ident: u64::MAX,
            version: u64::MAX,
            origin: NodeId(u32::MAX - 1),
            hops: u32::MAX,
        });
        roundtrip(ChordMsg::Bcast { qid: 1, lo: u64::MAX, hi: 0, limit: 0, hops: 0, filter: None });
    }

    #[test]
    fn truncated_input_rejected() {
        let msg: ChordMsg<RawItem> =
            ChordMsg::Lookup { qid: 1, ring_key: 99, origin: NodeId(2), hops: 3, filter: None };
        let full = msg.to_bytes();
        for cut in 0..full.len() {
            let b = Bytes::copy_from_slice(&full[..cut]);
            assert!(
                ChordMsg::<RawItem>::from_bytes(&b).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    mod fuzz {
        use proptest::prelude::*;

        use super::*;

        proptest! {
            /// Wire fuzz for the repair-plane variants: any record set
            /// must decode back to itself and re-encode to identical
            /// bytes. A network that duplicates or reorders deliveries
            /// hands the decoder the same frame twice and in any order —
            /// parsing must be a pure function of the bytes.
            #[test]
            fn repair_wire_roundtrips(
                recs in proptest::collection::vec(
                    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
                    0..12,
                )
            ) {
                // Odd payload ⇒ a live item, even ⇒ a tombstone, so the
                // fuzz covers both record shapes.
                let records: Vec<(RecordKey, u64, Option<RawItem>)> = recs
                    .iter()
                    .map(|&(ring, key, ident, version, it)| {
                        ((ring, key, ident), version, (it % 2 == 1).then_some(RawItem(it)))
                    })
                    .collect();
                let digest: Vec<(RecordKey, u64)> =
                    recs.iter().map(|&(ring, key, ident, version, _)| ((ring, key, ident), version)).collect();
                let msgs = [
                    ChordMsg::Replicate { entries: records.clone() },
                    ChordMsg::Digest { entries: digest },
                    ChordMsg::DigestReply { entries: records },
                ];
                for msg in msgs {
                    let bytes = msg.to_bytes();
                    prop_assert_eq!(bytes.len(), msg.wire_size());
                    let back = ChordMsg::<RawItem>::from_bytes(&bytes).expect("decode");
                    prop_assert_eq!(format!("{back:?}"), format!("{msg:?}"));
                    prop_assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
                }
            }
        }
    }
}

//! [`Overlay`] implementation: Chord as a full UniStore backend.
//!
//! Exact lookups ride the ring under the uniform (order-destroying)
//! hash; range and prefix scans ride the auxiliary order-preserving
//! bucket index — the "additional structure" the paper says ring DHTs
//! need for range queries (§2). Every write pays both indexes, which is
//! part of the honest comparison against P-Grid.

use unistore_overlay::{ItemFilter, OpBatch, Overlay, OverlayDone, RangeMode};
use unistore_simnet::{Effects, NodeId};
use unistore_util::Key;

use crate::msg::{ChordBatchOp, ChordEvent, ChordMsg};
use crate::node::{ring_key_bucket, ring_key_exact, ChordConfig, ChordNode, Item};
use crate::topology::ChordTopology;

impl<I: Item + Send + 'static> Overlay for ChordNode<I> {
    type WireMsg = ChordMsg<I>;
    type Event = ChordEvent<I>;
    type Item = I;
    type Config = ChordConfig;
    type Topology = ChordTopology;

    const NAME: &'static str = "Chord";
    const ADAPTS_TO_SAMPLE: bool = false;
    const PUSHES_FILTERS: bool = true;
    const BATCHES_OPS: bool = true;

    fn plan(
        n_peers: usize,
        cfg: &ChordConfig,
        _sample: Option<&[Key]>,
        seed: u64,
    ) -> ChordTopology {
        // The uniform hash destroys key order, so the ring cannot adapt
        // to the data distribution — the sample is ignored by design.
        ChordTopology::plan(n_peers, cfg.bucket_depth, seed)
    }

    fn spawn(topology: &ChordTopology, peer: usize, cfg: &ChordConfig, seed: u64) -> Self {
        let id = NodeId(peer as u32);
        let mut node = ChordNode::new(id, topology.by_id[peer], cfg.clone(), seed);
        let w = topology.wiring(id);
        node.set_topology(w.predecessor, w.successor, w.successor2, w.fingers);
        node
    }

    fn id(&self) -> NodeId {
        ChordNode::id(self)
    }

    fn responsible(&self, key: Key) -> bool {
        ChordNode::responsible(self, ring_key_exact(key))
    }

    fn next_hop(&mut self, key: Key) -> Option<NodeId> {
        let rk = ring_key_exact(key);
        if ChordNode::responsible(self, rk) {
            None
        } else {
            Some(ChordNode::next_hop(self, rk))
        }
    }

    fn holds(&self, key: Key) -> bool {
        // Key-ordered scan over both indexes (exact and bucket mirror):
        // a planned holder of either index counts once it has the entry.
        self.store().iter_by_key(key, key).next().is_some()
    }

    fn routing_refs(&self) -> Vec<NodeId> {
        self.routing_peers()
    }

    fn replica_group(&self, key: Key) -> Vec<NodeId> {
        self.replica_peers(key)
    }

    fn preload(&mut self, key: Key, item: I, version: u64) {
        ChordNode::preload(self, key, item, version)
    }

    fn local_lookup(&mut self, qid: u64, key: Key, fx: &mut Effects<ChordMsg<I>, ChordEvent<I>>) {
        ChordNode::local_lookup(self, qid, key, fx)
    }

    fn local_range(
        &mut self,
        qid: u64,
        lo: Key,
        hi: Key,
        mode: RangeMode,
        fx: &mut Effects<ChordMsg<I>, ChordEvent<I>>,
    ) {
        match mode {
            RangeMode::Parallel => self.local_bucket_range(qid, lo, hi, None, fx),
            RangeMode::Sequential => self.local_broadcast_range(qid, lo, hi, None, fx),
        }
    }

    fn local_lookup_filtered(
        &mut self,
        qid: u64,
        key: Key,
        filter: Option<ItemFilter>,
        fx: &mut Effects<ChordMsg<I>, ChordEvent<I>>,
    ) {
        ChordNode::local_lookup_filtered(self, qid, key, filter, fx)
    }

    fn local_range_filtered(
        &mut self,
        qid: u64,
        lo: Key,
        hi: Key,
        mode: RangeMode,
        filter: Option<ItemFilter>,
        fx: &mut Effects<ChordMsg<I>, ChordEvent<I>>,
    ) {
        match mode {
            RangeMode::Parallel => self.local_bucket_range(qid, lo, hi, filter, fx),
            RangeMode::Sequential => self.local_broadcast_range(qid, lo, hi, filter, fx),
        }
    }

    fn lookup_msg(_cfg: &ChordConfig, qid: u64, key: Key, origin: NodeId) -> ChordMsg<I> {
        ChordMsg::Lookup { qid, ring_key: ring_key_exact(key), origin, hops: 0, filter: None }
    }

    fn insert_msgs(
        cfg: &ChordConfig,
        next_qid: &mut dyn FnMut() -> u64,
        key: Key,
        item: I,
        version: u64,
        origin: NodeId,
    ) -> Vec<(u64, ChordMsg<I>)> {
        // Both indexes: the exact position and the bucket position.
        [ring_key_exact(key), ring_key_bucket(key, cfg.bucket_depth)]
            .into_iter()
            .map(|ring_key| {
                let qid = next_qid();
                let msg = ChordMsg::Insert {
                    qid,
                    ring_key,
                    key,
                    item: item.clone(),
                    version,
                    origin,
                    hops: 0,
                };
                (qid, msg)
            })
            .collect()
    }

    fn delete_msgs(
        cfg: &ChordConfig,
        next_qid: &mut dyn FnMut() -> u64,
        key: Key,
        ident: u64,
        version: u64,
        origin: NodeId,
    ) -> Vec<(u64, ChordMsg<I>)> {
        [ring_key_exact(key), ring_key_bucket(key, cfg.bucket_depth)]
            .into_iter()
            .map(|ring_key| {
                let qid = next_qid();
                (qid, ChordMsg::Delete { qid, ring_key, key, ident, version, origin, hops: 0 })
            })
            .collect()
    }

    fn batch_msgs(
        _cfg: &ChordConfig,
        next_qid: &mut dyn FnMut() -> u64,
        batch: &OpBatch<I>,
        origin: NodeId,
    ) -> Vec<(u64, ChordMsg<I>)> {
        if batch.is_empty() {
            return Vec::new();
        }
        // Every logical op pays both indexes (exact + bucket ring
        // positions, derived from the key at every hop), but the payload
        // table is shared across the whole doubled op list — one wire
        // message, one copy per item.
        let ops: Vec<ChordBatchOp> = batch
            .ops
            .iter()
            .flat_map(|&op| [false, true].into_iter().map(move |bucket| (bucket, op)))
            .enumerate()
            .map(|(idx, (bucket, op))| ChordBatchOp { bucket, idx: idx as u32, op })
            .collect();
        let qid = next_qid();
        vec![(qid, ChordMsg::OpBatch { qid, origin, hops: 0, items: batch.items.clone(), ops })]
    }

    fn done(ev: ChordEvent<I>) -> OverlayDone<I> {
        match ev {
            ChordEvent::LookupDone { qid, entries, hops, ok } => OverlayDone::Lookup {
                qid,
                items: entries.into_iter().map(|(_, i)| i).collect(),
                hops,
                ok,
            },
            ChordEvent::RangeDone { qid, entries, hops, complete, .. } => OverlayDone::Range {
                qid,
                items: entries.into_iter().map(|(_, i)| i).collect(),
                hops,
                complete,
            },
            ChordEvent::InsertDone { qid, hops, ok } => OverlayDone::Insert { qid, hops, ok },
            ChordEvent::BatchDone { qid, ops, hops, ok } => {
                OverlayDone::Batch { qid, ops, hops, ok }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_overlay::OverlayTopology;
    use unistore_util::item::RawItem;

    #[test]
    fn spawned_ring_covers_every_key_once() {
        let cfg = ChordConfig::default();
        let topo = <ChordNode<RawItem> as Overlay>::plan(16, &cfg, None, 5);
        let nodes: Vec<ChordNode<RawItem>> =
            (0..16).map(|p| <ChordNode<RawItem> as Overlay>::spawn(&topo, p, &cfg, 5)).collect();
        for key in (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            let owners: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| Overlay::responsible(*n, key))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(owners.len(), 1, "exactly one exact-index owner per key");
            assert_eq!(owners[0], topo.holders(key)[0], "plan and nodes agree");
        }
    }

    #[test]
    fn preload_splits_across_indexes() {
        let cfg = ChordConfig::default();
        let topo = <ChordNode<RawItem> as Overlay>::plan(8, &cfg, None, 5);
        let key = 42u64 << 40;
        let holders = topo.holders(key);
        let mut stored = 0;
        for p in 0..8 {
            let mut node = <ChordNode<RawItem> as Overlay>::spawn(&topo, p, &cfg, 5);
            Overlay::preload(&mut node, key, RawItem(1), 0);
            let len = node.store().len();
            if holders.contains(&p) {
                assert!(len >= 1);
            } else {
                assert_eq!(len, 0, "non-holders store nothing");
            }
            stored += len;
        }
        assert_eq!(stored, 2, "one exact entry + one bucket entry");
    }
}

//! Driver-facing harness for the Chord baseline.

use rand::rngs::StdRng;
use rand::Rng;

use unistore_simnet::metrics::OpCost;
use unistore_simnet::{LatencyModel, NodeId, SimNet, SimTime};
use unistore_util::item::Item;
use unistore_util::rng::{derive_rng, stream};
use unistore_util::Key;

use crate::msg::{ChordEvent, ChordMsg, QueryId};
use crate::node::{ring_key_bucket, ring_key_exact, ChordConfig, ChordNode};
use crate::ring::in_open_closed;
use crate::topology::ChordTopology;

/// Which range algorithm the baseline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChordRangeMode {
    /// Finger-tree broadcast to all nodes (plain Chord's only option).
    Broadcast,
    /// Auxiliary bucket index (the "additional structure" the paper
    /// says Chord needs).
    Buckets,
}

/// Result of a Chord range query.
#[derive(Clone, Debug)]
pub struct ChordRangeOutcome<I> {
    /// `(original key, item)` matches.
    pub entries: Vec<(Key, I)>,
    /// Nodes or buckets that contributed.
    pub contributors: u32,
    /// Whether all expected contributions arrived.
    pub complete: bool,
    /// Network cost of the operation.
    pub cost: OpCost,
}

/// Result of a Chord lookup.
#[derive(Clone, Debug)]
pub struct ChordLookupOutcome<I> {
    /// `(original key, item)` matches.
    pub entries: Vec<(Key, I)>,
    /// `false` on failure.
    pub ok: bool,
    /// Network cost of the operation.
    pub cost: OpCost,
}

/// A simulated Chord ring.
pub struct ChordCluster<I: Item> {
    /// Underlying network.
    pub net: SimNet<ChordNode<I>>,
    /// The planned ring (ids sorted by ring position).
    topo: ChordTopology,
    cfg: ChordConfig,
    next_qid: QueryId,
    rng: StdRng,
}

impl<I: Item> ChordCluster<I> {
    /// Builds a converged ring of `n` nodes with exact finger tables.
    pub fn build(
        n: usize,
        cfg: ChordConfig,
        latency: impl LatencyModel + 'static,
        seed: u64,
    ) -> Self {
        assert!(n >= 1);
        let rng = derive_rng(seed, stream::OVERLAY);
        let topo = ChordTopology::plan(n, cfg.bucket_depth, seed);

        let mut net = SimNet::new(latency, seed);
        // Create nodes in NodeId order (ids dense 0..n), then wire
        // successor, predecessor and fingers from the planned ring.
        for (i, &ring) in topo.by_id.iter().enumerate() {
            net.add_node(ChordNode::new(NodeId(i as u32), ring, cfg.clone(), seed));
        }
        for &(_, id) in &topo.ring_order {
            let w = topo.wiring(id);
            net.node_mut(id).set_topology(w.predecessor, w.successor, w.successor2, w.fingers);
        }

        ChordCluster { net, topo, cfg, next_qid: 1, rng }
    }

    /// The node responsible for ring position `k`.
    pub fn responsible_node(&self, k: u64) -> NodeId {
        self.topo.successor_of(k).1
    }

    /// Uniformly random node id.
    pub fn random_node(&mut self) -> NodeId {
        NodeId(self.rng.gen_range(0..self.net.len() as u32))
    }

    /// Bucket depth of the auxiliary index.
    pub fn bucket_depth(&self) -> u8 {
        self.cfg.bucket_depth
    }

    /// Driver-side preload: stores the entry under both indexes
    /// (exact + bucket) without network traffic.
    pub fn preload(&mut self, key: Key, item: I) {
        for p in self.topo.holders_of_key(key) {
            self.net.node_mut(NodeId(p as u32)).preload(key, item.clone(), 0);
        }
    }

    fn fresh_qid(&mut self) -> QueryId {
        let q = self.next_qid;
        self.next_qid += 1;
        q
    }

    fn run_for_event(&mut self, qid: QueryId) -> Option<(SimTime, ChordEvent<I>)> {
        let deadline = self.net.now() + SimTime::from_secs(120_000);
        loop {
            if let Some(pos) = self.net.outputs().iter().position(|(_, _, ev)| {
                matches!(ev,
                    ChordEvent::LookupDone { qid: q, .. }
                    | ChordEvent::InsertDone { qid: q, .. }
                    | ChordEvent::RangeDone { qid: q, .. } if *q == qid)
            }) {
                let mut outs = self.net.take_outputs();
                let (t, _, ev) = outs.swap_remove(pos);
                return Some((t, ev));
            }
            if self.net.now() > deadline || !self.net.step() {
                return None;
            }
        }
    }

    /// Exact-key lookup from `origin`.
    pub fn lookup(&mut self, origin: NodeId, key: Key) -> ChordLookupOutcome<I> {
        let qid = self.fresh_qid();
        let before = self.net.metrics();
        let start = self.net.now();
        self.net.inject(
            origin,
            ChordMsg::Lookup { qid, ring_key: ring_key_exact(key), origin, hops: 0, filter: None },
        );
        match self.run_for_event(qid) {
            Some((t, ChordEvent::LookupDone { entries, hops, ok, .. })) => {
                let d = self.net.metrics().delta(&before);
                ChordLookupOutcome {
                    entries,
                    ok,
                    cost: OpCost {
                        messages: d.sent,
                        bytes: d.bytes,
                        latency: t.saturating_sub(start),
                        hops,
                    },
                }
            }
            _ => ChordLookupOutcome { entries: Vec::new(), ok: false, cost: OpCost::default() },
        }
    }

    /// Protocol-path insert from `origin` into **both** indexes — the
    /// "additional structure" means every write pays twice, which is part
    /// of the honest comparison.
    pub fn insert(&mut self, origin: NodeId, key: Key, item: I) -> (bool, OpCost) {
        let before = self.net.metrics();
        let start = self.net.now();
        let mut ok = true;
        let mut hops = 0;
        for ring_key in [ring_key_exact(key), ring_key_bucket(key, self.cfg.bucket_depth)] {
            let qid = self.fresh_qid();
            self.net.inject(
                origin,
                ChordMsg::Insert {
                    qid,
                    ring_key,
                    key,
                    item: item.clone(),
                    version: 0,
                    origin,
                    hops: 0,
                },
            );
            match self.run_for_event(qid) {
                Some((_, ChordEvent::InsertDone { hops: h, ok: o, .. })) => {
                    ok &= o;
                    hops = hops.max(h);
                }
                _ => ok = false,
            }
        }
        let d = self.net.metrics().delta(&before);
        let t = self.net.now();
        (ok, OpCost { messages: d.sent, bytes: d.bytes, latency: t.saturating_sub(start), hops })
    }

    /// Range query over original keys `[lo, hi]`.
    pub fn range(
        &mut self,
        origin: NodeId,
        lo: Key,
        hi: Key,
        mode: ChordRangeMode,
    ) -> ChordRangeOutcome<I> {
        let qid = self.fresh_qid();
        let before = self.net.metrics();
        let start = self.net.now();
        let msg = match mode {
            ChordRangeMode::Buckets => ChordMsg::BucketRange { qid, lo, hi, origin },
            ChordRangeMode::Broadcast => {
                let self_ring = self.net.node(origin).ring_id();
                ChordMsg::Bcast { qid, lo, hi, limit: self_ring, hops: 0, filter: None }
            }
        };
        self.net.inject(origin, msg);
        match self.run_for_event(qid) {
            Some((t, ChordEvent::RangeDone { entries, contributors, hops, complete, .. })) => {
                let d = self.net.metrics().delta(&before);
                ChordRangeOutcome {
                    entries,
                    contributors,
                    complete,
                    cost: OpCost {
                        messages: d.sent,
                        bytes: d.bytes,
                        latency: t.saturating_sub(start),
                        hops,
                    },
                }
            }
            _ => ChordRangeOutcome {
                entries: Vec::new(),
                contributors: 0,
                complete: false,
                cost: OpCost::default(),
            },
        }
    }

    /// Sanity check used by tests: every ring id is owned by exactly the
    /// node `responsible_node` returns, per the `(pred, self]` rule.
    pub fn check_ring_invariant(&self) -> bool {
        let m = self.topo.ring_order.len();
        (0..m).all(|pos| {
            let (ring, id) = self.topo.ring_order[pos];
            let (pred_ring, _) = self.topo.ring_order[(pos + m - 1) % m];
            m == 1 || in_open_closed(pred_ring, ring, ring) && self.responsible_node(ring) == id
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_simnet::ConstantLatency;
    use unistore_util::item::RawItem;

    fn cluster(n: usize) -> ChordCluster<RawItem> {
        ChordCluster::build(n, ChordConfig::default(), ConstantLatency(SimTime::from_millis(10)), 9)
    }

    #[test]
    fn ring_invariant_holds() {
        for n in [1usize, 2, 3, 16, 65] {
            let c = cluster(n);
            assert!(c.check_ring_invariant(), "ring broken for n={n}");
        }
    }

    #[test]
    fn lookup_finds_preloaded() {
        let mut c = cluster(32);
        for k in 0..100u64 {
            c.preload(k << 50, RawItem(k));
        }
        for k in (0..100u64).step_by(7) {
            let origin = c.random_node();
            let out = c.lookup(origin, k << 50);
            assert!(out.ok);
            assert_eq!(out.entries.len(), 1, "key {k}");
            assert_eq!(out.entries[0].1, RawItem(k));
        }
    }

    #[test]
    fn lookup_hops_logarithmic() {
        let mut c = cluster(128);
        for k in 0..64u64 {
            c.preload(k << 52, RawItem(k));
        }
        let mut max_hops = 0;
        for k in 0..64u64 {
            let origin = c.random_node();
            let out = c.lookup(origin, k << 52);
            assert!(out.ok);
            max_hops = max_hops.max(out.cost.hops);
        }
        // Chord bound: O(log2 N) w.h.p.; allow slack ×2.
        assert!(max_hops <= 14, "hops {max_hops} not logarithmic for n=128");
    }

    #[test]
    fn protocol_insert_then_lookup() {
        let mut c = cluster(16);
        let (ok, cost) = c.insert(NodeId(3), 42 << 40, RawItem(42));
        assert!(ok);
        assert!(cost.messages >= 2, "two index inserts must cost messages");
        let out = c.lookup(NodeId(7), 42 << 40);
        assert_eq!(out.entries.len(), 1);
    }

    #[test]
    fn broadcast_range_reaches_everyone() {
        let mut c = cluster(32);
        for k in 0..200u64 {
            c.preload(k << 54, RawItem(k));
        }
        let out = c.range(NodeId(0), 10 << 54, 50 << 54, ChordRangeMode::Broadcast);
        assert!(out.complete);
        assert_eq!(out.contributors, 32, "broadcast must visit all nodes");
        let mut got: Vec<u64> = out.entries.iter().map(|(_, r)| r.0).collect();
        got.sort_unstable();
        got.dedup(); // entries exist under both indexes
        assert_eq!(got, (10..=50).collect::<Vec<_>>());
        assert!(out.cost.messages as usize >= 32, "broadcast floods the ring");
    }

    #[test]
    fn bucket_range_correct_and_cheaper_than_broadcast() {
        let mut c = cluster(64);
        for k in 0..256u64 {
            c.preload(k << 56, RawItem(k));
        }
        // Narrow range: few buckets → far fewer messages than broadcast.
        let lo = 20u64 << 56;
        let hi = 24u64 << 56;
        let buckets = c.range(NodeId(1), lo, hi, ChordRangeMode::Buckets);
        assert!(buckets.complete);
        let mut got: Vec<u64> = buckets.entries.iter().map(|(_, r)| r.0).collect();
        got.sort_unstable();
        assert_eq!(got, (20..=24).collect::<Vec<_>>());

        let bcast = c.range(NodeId(1), lo, hi, ChordRangeMode::Broadcast);
        assert!(bcast.complete);
        assert!(
            buckets.cost.messages < bcast.cost.messages,
            "bucket index must beat broadcast for selective ranges ({} vs {})",
            buckets.cost.messages,
            bcast.cost.messages
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut c = cluster(32);
            for k in 0..64u64 {
                c.preload(k << 55, RawItem(k));
            }
            let a = c.lookup(NodeId(1), 7 << 55);
            let b = c.range(NodeId(2), 0, 30 << 55, ChordRangeMode::Buckets);
            (a.cost.messages, b.cost.messages, b.entries.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn anti_entropy_repairs_replica_that_missed_pushes() {
        let cfg = ChordConfig {
            replicate: true,
            anti_entropy_interval: SimTime::from_secs(5),
            ..ChordConfig::default()
        };
        let mut c: ChordCluster<RawItem> =
            ChordCluster::build(8, cfg, ConstantLatency(SimTime::from_millis(10)), 9);
        // An adjacent (primary, replica) pair on the ring.
        let (_, primary) = c.topo.ring_order[0];
        let (_, replica) = c.topo.ring_order[1];

        // The replica misses every push: crash it, write through the
        // protocol into the primary's exact-index range, revive it.
        c.net.schedule_down(replica, c.net.now());
        let mut written = Vec::new();
        for k in 0..200u64 {
            let key = k << 45;
            let ring_key = ring_key_exact(key);
            if c.responsible_node(ring_key) != primary {
                continue;
            }
            let qid = c.fresh_qid();
            c.net.inject(
                primary,
                ChordMsg::Insert {
                    qid,
                    ring_key,
                    key,
                    item: RawItem(k),
                    version: 0,
                    origin: primary,
                    hops: 0,
                },
            );
            written.push(key);
        }
        assert!(written.len() >= 8, "need a meaningful batch ({} keys)", written.len());
        let settle = c.net.now() + SimTime::from_secs(1);
        while c.net.now() < settle && c.net.step() {}
        assert_eq!(c.net.node(replica).store().len(), 0, "pushes to the dead replica are lost");

        // Revival re-arms the anti-entropy chain; within a few jittered
        // periods the digest pull repairs everything the replica missed.
        c.net.schedule_up(replica, c.net.now());
        let deadline = c.net.now() + SimTime::from_secs(30);
        while c.net.now() < deadline && c.net.step() {}
        let digest = c.net.node(replica).store().digest();
        let missing: Vec<_> = c
            .net
            .node(primary)
            .store()
            .newer_than(&digest)
            .into_iter()
            .filter(|e| c.responsible_node(e.0 .0) == primary)
            .collect();
        assert!(missing.is_empty(), "replica still missing {} records", missing.len());

        // Replica copies answer no queries: a broadcast over the whole
        // key space sees each written record exactly once.
        let out = c.range(primary, 0, u64::MAX, ChordRangeMode::Broadcast);
        assert!(out.complete);
        let mut got: Vec<u64> = out.entries.iter().map(|(k, _)| *k).collect();
        got.sort_unstable();
        assert_eq!(got, written, "repair must not duplicate broadcast results");
    }

    #[test]
    fn singleton_ring_works() {
        let mut c = cluster(1);
        c.preload(5, RawItem(5));
        let out = c.lookup(NodeId(0), 5);
        assert!(out.ok);
        assert_eq!(out.entries.len(), 1);
    }

    #[test]
    fn suspected_peers_are_routed_around_and_forgiven() {
        let cfg = ChordConfig {
            ping_interval: SimTime::from_secs(5),
            ping_timeout: SimTime::from_secs(1),
            ..ChordConfig::default()
        };
        let mut c: ChordCluster<RawItem> =
            ChordCluster::build(16, cfg, ConstantLatency(SimTime::from_millis(10)), 9);
        for k in 0..64u64 {
            c.preload(k << 55, RawItem(k));
        }
        let dead = c.topo.ring_order[3].1;
        let live: Vec<NodeId> = (0..16u32).map(NodeId).filter(|&n| n != dead).collect();

        // Crash one node: within a probe round its peers suspect it.
        c.net.schedule_down(dead, c.net.now());
        let deadline = c.net.now() + SimTime::from_secs(20);
        while c.net.now() < deadline && c.net.step() {}
        let suspecting = live.iter().filter(|&&n| c.net.node(n).suspected.contains(&dead)).count();
        assert!(suspecting > 0, "no peer suspected the dead node after a probe round");

        // Every key whose exact-index owner still lives must resolve:
        // routes that used the dead node as a finger detour around it.
        let (mut ok, mut total) = (0usize, 0usize);
        for k in 0..64u64 {
            let key = k << 55;
            if c.responsible_node(ring_key_exact(key)) == dead {
                continue;
            }
            total += 1;
            let out = c.lookup(live[0], key);
            ok += (out.ok && !out.entries.is_empty()) as usize;
        }
        assert!(total >= 32, "need a meaningful surviving key set ({total})");
        assert_eq!(ok, total, "a live owner's keys must route around the dead finger");

        // Revival: the next probe round's pong (or any traffic) clears
        // the suspicion — the ring forgives as fast as it suspects.
        c.net.schedule_up(dead, c.net.now());
        let deadline = c.net.now() + SimTime::from_secs(20);
        while c.net.now() < deadline && c.net.step() {}
        let still = live.iter().filter(|&&n| c.net.node(n).suspected.contains(&dead)).count();
        assert_eq!(still, 0, "{still} peers still suspect the revived node");
    }
}

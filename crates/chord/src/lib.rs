//! Chord: a full UniStore storage backend, and the baseline for the
//! range-query comparison (experiment E6).
//!
//! The paper (§2) claims: *"P-Grid supports efficient substring search
//! and range queries through its basic infrastructure, where other DHTs
//! require additional structures (e.g., in Chord an additional
//! trie-structure is constructed on top of its ring-based overlay network
//! to support range queries)."* To measure that claim instead of
//! asserting it, this crate implements Chord with:
//!
//! * a 64-bit identifier ring under a **uniform** (order-destroying)
//!   hash, finger tables and O(log N) greedy routing ([`node`]),
//! * exact-key lookups, inserts and identity deletes,
//! * range queries via
//!   * **broadcast** — El-Ansary's finger-tree flooding reaching all N
//!     nodes (what plain Chord must do), and
//!   * a **bucket index** — the "additional structure": keys are
//!     *also* stored under the hash of their fixed-depth order-preserving
//!     prefix, so a range decomposes into consecutive buckets, each
//!     fetched with one O(log N) lookup ([`node`], [`cluster`]).
//!
//! [`ChordNode`] implements the
//! [`Overlay`](unistore_overlay::Overlay) trait ([`overlay`],
//! [`topology`]), so the entire VQL → MQP → adaptive-optimizer stack of
//! the `unistore` crate runs unchanged over this ring — exact lookups
//! through the uniform hash, range/prefix scans through the bucket
//! index — enabling apples-to-apples comparisons on real queries.

pub mod cluster;
pub mod msg;
pub mod node;
pub mod overlay;
pub mod replicate;
pub mod ring;
pub mod store;
pub mod topology;

pub use cluster::{ChordCluster, ChordRangeMode};
pub use msg::{ChordEvent, ChordMsg};
pub use node::{ChordConfig, ChordNode};
pub use ring::ring_dist;
pub use topology::ChordTopology;

//! Identifier-ring arithmetic.
//!
//! Chord identifiers live on a circle of 2^64 points; all interval logic
//! is modular. `u64` wrapping arithmetic does the work.

/// Clockwise distance from `a` to `b` on the ring.
#[inline]
pub fn ring_dist(a: u64, b: u64) -> u64 {
    b.wrapping_sub(a)
}

/// True if `x` lies in the half-open ring interval `(a, b]`.
///
/// This is the Chord responsibility test: the successor of point `p`
/// owns every `x` with `x ∈ (pred, succ]`.
#[inline]
pub fn in_open_closed(a: u64, b: u64, x: u64) -> bool {
    ring_dist(a, x) != 0 && ring_dist(a, x) <= ring_dist(a, b)
}

/// True if `x` lies in the open ring interval `(a, b)`.
#[inline]
pub fn in_open_open(a: u64, b: u64, x: u64) -> bool {
    let d_ab = ring_dist(a, b);
    let d_ax = ring_dist(a, x);
    d_ax != 0 && d_ax < d_ab
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_wraps() {
        assert_eq!(ring_dist(10, 20), 10);
        assert_eq!(ring_dist(20, 10), u64::MAX - 9);
        assert_eq!(ring_dist(5, 5), 0);
    }

    #[test]
    fn open_closed_basic() {
        assert!(in_open_closed(10, 20, 15));
        assert!(in_open_closed(10, 20, 20));
        assert!(!in_open_closed(10, 20, 10));
        assert!(!in_open_closed(10, 20, 25));
    }

    #[test]
    fn open_closed_wrapping() {
        // Interval (u64::MAX - 5, 5] wraps through zero.
        let a = u64::MAX - 5;
        assert!(in_open_closed(a, 5, 0));
        assert!(in_open_closed(a, 5, u64::MAX));
        assert!(in_open_closed(a, 5, 5));
        assert!(!in_open_closed(a, 5, a));
        assert!(!in_open_closed(a, 5, 100));
    }

    #[test]
    fn degenerate_full_circle() {
        // (a, a] is the full circle minus nothing in Chord's convention:
        // every x != a has dist in (0, 0] → false; only x == a has dist 0
        // → also false by the != 0 guard. We treat (a, a] as *full*
        // responsibility at the singleton-ring level in node logic, not
        // here; the primitive stays strict.
        assert!(!in_open_closed(7, 7, 7));
        // dist(a, x) <= dist(a, a) = 0 is false for x != a.
        assert!(!in_open_closed(7, 7, 8));
    }

    #[test]
    fn open_open_excludes_endpoint() {
        assert!(in_open_open(10, 20, 15));
        assert!(!in_open_open(10, 20, 20));
        assert!(!in_open_open(10, 20, 10));
    }
}

//! Successor replication and digest-exchange anti-entropy.
//!
//! The Chord-side port of P-Grid's hybrid push/pull repair (paper ref
//! [4], Datta et al., ICDCS 2003): a primary **pushes** every applied
//! write to its successor; a replica that missed pushes (offline,
//! lossy link) catches up through periodic **pull anti-entropy** — it
//! offers its version digest to its predecessor (the primary of its
//! replica set), which answers with every record it owns that is
//! strictly newer than (or absent from) the digest. Both backends
//! drive the exchange through
//! [`unistore_overlay::repair::diff_newer`], so the version rules —
//! strictly newer wins, tombstones travel — are shared by
//! construction.

use unistore_simnet::NodeId;
use unistore_util::Key;

use crate::msg::ChordMsg;
use crate::node::{ChordNode, Fx, Item};
use crate::store::RecordKey;

impl<I: Item> ChordNode<I> {
    /// Applies a routed insert this node is responsible for; under
    /// replication, a newly applied write is pushed to the successor
    /// (one level deep — replicas only apply, never re-push).
    pub(crate) fn apply_insert(
        &mut self,
        ring_key: u64,
        key: Key,
        item: I,
        version: u64,
        fx: &mut Fx<I>,
    ) {
        if !self.cfg.replicate {
            self.store.insert(ring_key, key, item, version);
            return;
        }
        let ident = item.ident();
        if self.store.insert(ring_key, key, item.clone(), version) {
            self.push_record((ring_key, key, ident), version, Some(item), fx);
        }
    }

    /// Applies a routed delete; under replication the tombstone is
    /// pushed too, so deletes propagate to the replica.
    pub(crate) fn apply_delete(
        &mut self,
        ring_key: u64,
        key: Key,
        ident: u64,
        version: u64,
        fx: &mut Fx<I>,
    ) {
        self.store.remove(ring_key, key, ident, version);
        if self.cfg.replicate {
            self.push_record((ring_key, key, ident), version, None, fx);
        }
    }

    fn push_record(&mut self, record: RecordKey, version: u64, item: Option<I>, fx: &mut Fx<I>) {
        let (succ, _) = self.successor;
        if succ == self.id() {
            return; // singleton ring: nowhere to replicate
        }
        fx.send(succ, ChordMsg::Replicate { entries: vec![(record, version, item)] });
    }

    /// Applies pushed or pulled records — live entries and tombstones
    /// alike — under the shared strictly-newer rule.
    pub(crate) fn handle_replicate(&mut self, entries: Vec<(RecordKey, u64, Option<I>)>) {
        for ((ring_key, key, ident), version, item) in entries {
            self.store.apply_record(ring_key, key, ident, item, version);
        }
    }

    /// Periodic anti-entropy: offer our digest to the predecessor, the
    /// primary of this node's replica set.
    pub(crate) fn run_anti_entropy(&mut self, fx: &mut Fx<I>) {
        let (pred, _) = self.predecessor;
        if pred == self.id() {
            return; // singleton ring
        }
        fx.send(pred, ChordMsg::Digest { entries: self.store.digest() });
    }

    /// Answers a digest with everything the requester is missing,
    /// tombstones included — restricted to records this node is
    /// *primary* for: its store also holds replica copies pulled from
    /// its own predecessor, and relaying those would smear every record
    /// around the ring one hop per exchange.
    pub(crate) fn handle_digest(
        &mut self,
        from: NodeId,
        digest: Vec<(RecordKey, u64)>,
        fx: &mut Fx<I>,
    ) {
        let mut newer = self.store.newer_than(&digest);
        newer.retain(|&((rk, _, _), _, _)| self.responsible(rk));
        if !newer.is_empty() {
            fx.send(from, ChordMsg::DigestReply { entries: newer });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ChordConfig;
    use unistore_simnet::Effects;
    use unistore_util::item::RawItem;

    fn replicating() -> ChordConfig {
        ChordConfig { replicate: true, ..ChordConfig::default() }
    }

    /// Three-point ring: predecessor at 50, self at 100, successor at
    /// 200 — this node is primary for `(50, 100]`.
    fn node(cfg: ChordConfig) -> ChordNode<RawItem> {
        let mut n = ChordNode::new(NodeId(0), 100, cfg, 7);
        n.set_topology((NodeId(1), 50), (NodeId(2), 200), (NodeId(1), 50), Vec::new());
        n
    }

    #[test]
    fn applied_write_is_pushed_to_successor() {
        let mut n = node(replicating());
        let mut fx = Effects::new();
        n.apply_insert(80, 5, RawItem(5), 1, &mut fx);
        assert_eq!(fx.sends().len(), 1);
        let (to, msg) = &fx.sends()[0];
        assert_eq!(*to, NodeId(2));
        match msg {
            ChordMsg::Replicate { entries } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].0, (80, 5, RawItem(5).ident()));
                assert_eq!(entries[0].1, 1);
            }
            other => panic!("unexpected message {other:?}"),
        }
        // A rejected (stale) write is not pushed.
        let mut fx = Effects::new();
        n.apply_insert(80, 5, RawItem(5), 1, &mut fx);
        assert!(fx.is_empty(), "stale write must not replicate");
    }

    #[test]
    fn delete_pushes_tombstone() {
        let mut n = node(replicating());
        let mut fx = Effects::new();
        n.apply_delete(80, 5, RawItem(5).ident(), 2, &mut fx);
        assert_eq!(fx.sends().len(), 1);
        match &fx.sends()[0].1 {
            ChordMsg::Replicate { entries } => assert!(entries[0].2.is_none()),
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn replication_off_pushes_nothing() {
        let mut n = node(ChordConfig::default());
        let mut fx = Effects::new();
        n.apply_insert(80, 5, RawItem(5), 1, &mut fx);
        n.apply_delete(80, 5, RawItem(5).ident(), 2, &mut fx);
        assert!(fx.is_empty());
    }

    #[test]
    fn anti_entropy_pulls_from_predecessor() {
        let mut n = node(replicating());
        n.store_mut().insert(80, 5, RawItem(5), 1);
        let mut fx = Effects::new();
        n.run_anti_entropy(&mut fx);
        assert_eq!(fx.sends().len(), 1);
        let (to, msg) = &fx.sends()[0];
        assert_eq!(*to, NodeId(1), "the digest goes to the primary");
        match msg {
            ChordMsg::Digest { entries } => assert_eq!(entries.len(), 1),
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn digest_answered_with_owned_records_only() {
        let mut n = node(replicating());
        // Primary record (ring position in (50, 100]) and a replica
        // copy pulled from this node's own predecessor (position 40).
        n.store_mut().insert(80, 5, RawItem(5), 1);
        n.store_mut().insert(40, 6, RawItem(6), 1);
        let mut fx = Effects::new();
        n.handle_digest(NodeId(9), Vec::new(), &mut fx);
        assert_eq!(fx.sends().len(), 1);
        match &fx.sends()[0].1 {
            ChordMsg::DigestReply { entries } => {
                assert_eq!(entries.len(), 1, "replica copies must not relay");
                assert_eq!(entries[0].0 .0, 80);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn digest_with_nothing_missing_stays_silent() {
        let mut n = node(replicating());
        n.store_mut().insert(80, 5, RawItem(5), 1);
        let digest = n.store().digest();
        let mut fx = Effects::new();
        n.handle_digest(NodeId(9), digest, &mut fx);
        assert!(fx.is_empty());
    }

    #[test]
    fn replicate_applies_under_version_rules() {
        let mut n = node(replicating());
        let ident = RawItem(5).ident();
        n.handle_replicate(vec![((80, 5, ident), 3, Some(RawItem(5)))]);
        assert_eq!(n.store().len(), 1);
        // A stale tombstone loses; a newer one shadows.
        n.handle_replicate(vec![((80, 5, ident), 2, None)]);
        assert_eq!(n.store().len(), 1, "stale tombstone must not kill the entry");
        n.handle_replicate(vec![((80, 5, ident), 4, None)]);
        assert!(n.store().is_empty());
    }
}

//! The Chord node: finger routing, bucket fan-out, broadcast tree.

use rand::rngs::StdRng;
use rand::Rng;

use unistore_simnet::{Effects, NodeBehavior, NodeId, SimTime, Timer};
use unistore_util::fxhash::mix64;
use unistore_util::rng::{derive_rng, stream};
use unistore_util::wire::BatchVerb;
use unistore_util::{FxHashMap, FxHashSet, ItemFilter, Key};

pub use unistore_util::item::Item;

use crate::msg::{ChordBatchOp, ChordEvent, ChordMsg, QueryId};
use crate::ring::{in_open_closed, in_open_open};
use crate::store::{collect_keyed, ChordStore};

/// Effects buffer specialized to Chord.
pub type Fx<I> = Effects<ChordMsg<I>, ChordEvent<I>>;

/// Salt separating the exact-key index from the bucket index on the ring.
const EXACT_SALT: u64 = 0x5155_4552_595f_4b45; // "QUERY_KE"
const BUCKET_SALT: u64 = 0x4255_434b_4554_5f49; // "BUCKET_I"

/// Ring position of the exact-key index entry for `key`.
pub fn ring_key_exact(key: Key) -> u64 {
    mix64(key ^ EXACT_SALT)
}

/// Ring position of the bucket holding `key` at `depth` bits.
pub fn ring_key_bucket(key: Key, depth: u8) -> u64 {
    mix64((key >> (64 - depth as u32)) ^ BUCKET_SALT)
}

/// Chord configuration.
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Prefix depth (bits) of the auxiliary bucket index; `2^depth`
    /// buckets partition the original key space.
    pub bucket_depth: u8,
    /// Deadline for driver-issued operations.
    pub query_timeout: SimTime,
    /// How many times the origin retransmits a timed-out batch before
    /// reporting failure. Only the un-acked remainder is re-sent
    /// (positional acks tell the origin exactly which ops landed), so
    /// under message loss the outstanding set shrinks geometrically —
    /// a whole-batch retry would face the same all-or-nothing odds
    /// every attempt. Same name and default as P-Grid's knob.
    pub op_retries: u32,
    /// Push applied writes to the successor replica and repair missed
    /// pushes with periodic digest-exchange anti-entropy (the same pull
    /// protocol P-Grid runs, see `unistore_overlay::repair`). Off by
    /// default: the baseline comparison counts messages on the healthy
    /// path, and replication traffic would distort it.
    pub replicate: bool,
    /// Period of the anti-entropy digest exchange with the predecessor
    /// (jittered ±50% to avoid lockstep). Only armed when `replicate`.
    pub anti_entropy_interval: SimTime,
    /// Period of the routing-liveness probe: each tick pings the
    /// successor and every finger, and a peer that misses
    /// [`ChordConfig::ping_timeout`] is suspected — [`ChordNode`]
    /// routes around suspects until they are heard from again. Zero
    /// disables probing (the default: the healthy-path baseline
    /// comparisons count messages, and probe traffic would distort
    /// them).
    pub ping_interval: SimTime,
    /// How long a probed peer may stay silent before it is suspected.
    pub ping_timeout: SimTime,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            bucket_depth: 10,
            query_timeout: SimTime::from_secs(30),
            op_retries: 2,
            replicate: false,
            anti_entropy_interval: SimTime::from_secs(60),
            ping_interval: SimTime::from_micros(0),
            ping_timeout: SimTime::from_secs(2),
        }
    }
}

/// Timer kinds.
mod timer {
    pub const QUERY_TIMEOUT: u32 = 1;
    pub const ANTI_ENTROPY: u32 = 2;
    pub const PING: u32 = 3;
    pub const PING_DEADLINE: u32 = 4;
}

#[derive(Debug)]
enum Pending<I> {
    Lookup,
    Insert,
    /// Batched writes awaiting positional acks for every op. The full
    /// op set is kept so a timed-out batch can retransmit exactly the
    /// un-acked remainder (re-application is idempotent under the
    /// versioned store); `acked[i]` marks op `i` of the original list.
    Batch {
        items: Vec<I>,
        ops: Vec<ChordBatchOp>,
        acked: Vec<bool>,
        done: u32,
        hops: u32,
        attempts: u32,
    },
    Buckets {
        expected: u32,
        received: u32,
        entries: Vec<(Key, I)>,
        hops: u32,
        failed: bool,
    },
}

/// Convergecast state of one broadcast branch.
#[derive(Debug)]
struct BcastState<I> {
    /// Parent to reply to; `None` at the origin.
    parent: Option<NodeId>,
    expected: u32,
    received: u32,
    entries: Vec<(Key, I)>,
    nodes: u32,
    hops: u32,
}

/// A Chord node.
pub struct ChordNode<I: Item> {
    id: NodeId,
    ring_id: u64,
    /// `(id, ring position)` of the predecessor — the primary this node
    /// replicates under successor replication.
    pub(crate) predecessor: (NodeId, u64),
    pub(crate) successor: (NodeId, u64),
    /// The successor's successor: routing fallback when the successor
    /// is suspected dead and is not itself the destination owner.
    successor2: (NodeId, u64),
    /// Deduped fingers, ascending ring distance from `ring_id`.
    fingers: Vec<(NodeId, u64)>,
    pub(crate) store: ChordStore<I>,
    pub(crate) cfg: ChordConfig,
    pending: FxHashMap<QueryId, Pending<I>>,
    bcast: FxHashMap<QueryId, BcastState<I>>,
    rng: StdRng,
    /// Messages handled, for load accounting.
    pub msg_load: u64,
    /// Exact-key reads dispatched via the exact index (`[0]`) vs. the
    /// bucket mirror (`[1]`); drives replica-aware read balancing.
    reads_via: [u64; 2],
    /// Routing-table peers presumed dead: they missed a ping deadline
    /// and have not been heard from since. `next_hop` routes around
    /// them.
    pub(crate) suspected: FxHashSet<NodeId>,
    /// Peers probed this ping round and not yet heard from.
    awaiting_pong: FxHashSet<NodeId>,
}

impl<I: Item> ChordNode<I> {
    /// Creates a node; topology (successor/fingers) is wired by the
    /// cluster builder.
    pub fn new(id: NodeId, ring_id: u64, cfg: ChordConfig, seed: u64) -> Self {
        ChordNode {
            id,
            ring_id,
            predecessor: (id, ring_id), // patched by the builder
            successor: (id, ring_id),
            successor2: (id, ring_id),
            fingers: Vec::new(),
            store: ChordStore::new(),
            cfg,
            pending: FxHashMap::default(),
            bcast: FxHashMap::default(),
            rng: derive_rng(seed, stream::NODE_BASE + id.0 as u64),
            msg_load: 0,
            reads_via: [0, 0],
            suspected: FxHashSet::default(),
            awaiting_pong: FxHashSet::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's ring position.
    pub fn ring_id(&self) -> u64 {
        self.ring_id
    }

    /// Local store (driver-side preloading and inspection).
    pub fn store_mut(&mut self) -> &mut ChordStore<I> {
        &mut self.store
    }

    /// Local store, read-only.
    pub fn store(&self) -> &ChordStore<I> {
        &self.store
    }

    /// Wires the topology (cluster builder only).
    pub fn set_topology(
        &mut self,
        predecessor: (NodeId, u64),
        successor: (NodeId, u64),
        successor2: (NodeId, u64),
        fingers: Vec<(NodeId, u64)>,
    ) {
        self.predecessor = predecessor;
        self.successor = successor;
        self.successor2 = successor2;
        self.fingers = fingers;
    }

    /// True if this node owns ring position `k` (`k ∈ (pred, self]`).
    pub(crate) fn responsible(&self, k: u64) -> bool {
        if self.predecessor.1 == self.ring_id {
            return true; // singleton ring
        }
        in_open_closed(self.predecessor.1, self.ring_id, k)
    }

    /// Next hop for ring position `k`: the successor if `k` lands in
    /// `(self, succ]`, otherwise the closest preceding finger that is
    /// not suspected dead. When the owner itself is the (suspected)
    /// successor there is no detour — the message goes there anyway
    /// and the sender can fail fast instead (see `handle_lookup`).
    pub(crate) fn next_hop(&self, k: u64) -> NodeId {
        if in_open_closed(self.ring_id, self.successor.1, k) {
            return self.successor.0;
        }
        for &(node, ring) in self.fingers.iter().rev() {
            if in_open_open(self.ring_id, k, ring) && !self.suspected.contains(&node) {
                return node;
            }
        }
        // The successor is the hop of last resort; when it is suspected
        // (and, since `k` is past it, not the owner) skip one node
        // ahead. `successor2` never overshoots: the owner is the first
        // ring member at or past `k`, which is `successor2` or later.
        if self.suspected.contains(&self.successor.0) && self.successor2.0 != self.id {
            return self.successor2.0;
        }
        self.successor.0
    }

    fn register(&mut self, fx: &mut Fx<I>, qid: QueryId, p: Pending<I>) {
        self.pending.insert(qid, p);
        fx.set_timer(self.cfg.query_timeout, Timer::new(timer::QUERY_TIMEOUT, qid));
    }

    /// Arms the next anti-entropy tick with ±50% jitter to avoid
    /// lockstep digest storms (the same idiom as P-Grid's
    /// `arm_periodic`).
    fn arm_anti_entropy(&mut self, fx: &mut Fx<I>) {
        let jitter = self.rng.gen_range(0.5..1.5);
        let base = self.cfg.anti_entropy_interval.as_micros() as f64;
        let delay = SimTime::from_micros((base * jitter) as u64);
        fx.set_timer(delay, Timer::new(timer::ANTI_ENTROPY, 0));
    }

    /// Arms the next routing-liveness probe (same ±50% jitter idiom).
    fn arm_ping(&mut self, fx: &mut Fx<I>) {
        let jitter = self.rng.gen_range(0.5..1.5);
        let base = self.cfg.ping_interval.as_micros() as f64;
        let delay = SimTime::from_micros((base * jitter) as u64);
        fx.set_timer(delay, Timer::new(timer::PING, 0));
    }

    /// Live replica group for `key` from this node's view: if this node
    /// is the current primary of either index position (exact or
    /// bucket), itself plus — under successor replication — its current
    /// successor, who receives the pushed replica. Empty when this node
    /// is not a primary for the key. Observability for the scale
    /// campaign's repair-lag measurement; tracks re-pointed successors
    /// that the build-time plan cannot see.
    pub fn replica_peers(&self, key: Key) -> Vec<NodeId> {
        let mut group = Vec::new();
        for rk in [ring_key_exact(key), ring_key_bucket(key, self.cfg.bucket_depth)] {
            if self.responsible(rk) {
                group.push(self.id);
                if self.cfg.replicate && self.successor.0 != self.id {
                    group.push(self.successor.0);
                }
            }
        }
        group.sort_unstable();
        group.dedup();
        group
    }

    /// Every distinct peer the routing state references — predecessor,
    /// successors, fingers — self excluded, sorted. Observability for
    /// the scale campaign's routing-staleness measurement.
    pub fn routing_peers(&self) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = Vec::with_capacity(self.fingers.len() + 3);
        peers.push(self.predecessor.0);
        peers.push(self.successor.0);
        peers.push(self.successor2.0);
        peers.extend(self.fingers.iter().map(|&(node, _)| node));
        peers.sort_unstable();
        peers.dedup();
        peers.retain(|&p| p != self.id);
        peers
    }

    /// One probe round: ping every distinct routing-table peer and
    /// start the silence deadline. Suspicion is per-round — a peer
    /// still silent when [`timer::PING_DEADLINE`] fires is suspected.
    fn run_ping_round(&mut self, fx: &mut Fx<I>) {
        self.awaiting_pong.clear();
        let mut targets: Vec<NodeId> = Vec::with_capacity(self.fingers.len() + 2);
        targets.push(self.successor.0);
        targets.push(self.successor2.0);
        targets.extend(self.fingers.iter().map(|&(node, _)| node));
        targets.sort_unstable();
        targets.dedup();
        for node in targets {
            if node != self.id {
                self.awaiting_pong.insert(node);
                fx.send(node, ChordMsg::Ping);
            }
        }
        if !self.awaiting_pong.is_empty() {
            fx.set_timer(self.cfg.ping_timeout, Timer::new(timer::PING_DEADLINE, 0));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_lookup(
        &mut self,
        from: NodeId,
        qid: QueryId,
        ring_key: u64,
        origin: NodeId,
        hops: u32,
        range: Option<(Key, Key)>,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register(fx, qid, Pending::Lookup);
        }
        if self.responsible(ring_key) {
            // Semi-join pushdown: drop non-matching items at the data,
            // before they are ever cloned out of the store.
            let entries = match range {
                None => collect_keyed(&filter, self.store.iter_ring(ring_key)),
                Some((lo, hi)) => {
                    collect_keyed(&filter, self.store.iter_ring_filtered(ring_key, lo, hi))
                }
            };
            self.answer_lookup(qid, origin, entries, hops, true, fx);
        } else {
            let next = self.next_hop(ring_key);
            // The owner itself is suspected dead: no detour can reach
            // the data, so fail fast — the origin's retry chain can
            // try the other index mirror now instead of waiting out
            // the op timeout.
            if self.suspected.contains(&next)
                && in_open_closed(self.ring_id, self.successor.1, ring_key)
            {
                self.answer_lookup(qid, origin, Vec::new(), hops, false, fx);
                return;
            }
            let msg = match range {
                None => ChordMsg::Lookup { qid, ring_key, origin, hops: hops + 1, filter },
                Some((lo, hi)) => {
                    ChordMsg::BucketGet { qid, ring_key, lo, hi, origin, hops: hops + 1, filter }
                }
            };
            fx.send(next, msg);
        }
    }

    fn answer_lookup(
        &mut self,
        qid: QueryId,
        origin: NodeId,
        entries: Vec<(Key, I)>,
        hops: u32,
        ok: bool,
        fx: &mut Fx<I>,
    ) {
        if origin == self.id {
            self.handle_lookup_reply(qid, entries, hops, ok, fx);
        } else {
            fx.send(origin, ChordMsg::LookupReply { qid, entries, hops, ok });
        }
    }

    fn handle_lookup_reply(
        &mut self,
        qid: QueryId,
        reply_entries: Vec<(Key, I)>,
        reply_hops: u32,
        ok: bool,
        fx: &mut Fx<I>,
    ) {
        match self.pending.get_mut(&qid) {
            Some(Pending::Lookup) => {
                self.pending.remove(&qid);
                fx.emit(ChordEvent::LookupDone {
                    qid,
                    entries: reply_entries,
                    hops: reply_hops,
                    ok,
                });
            }
            Some(Pending::Buckets { expected, received, entries, hops, failed }) => {
                *received += 1;
                entries.extend(reply_entries);
                *hops = (*hops).max(reply_hops);
                *failed |= !ok;
                if *received >= *expected {
                    let (entries, hops, contributors, complete) =
                        (std::mem::take(entries), *hops, *received, !*failed);
                    self.pending.remove(&qid);
                    fx.emit(ChordEvent::RangeDone { qid, entries, contributors, hops, complete });
                }
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_insert(
        &mut self,
        from: NodeId,
        qid: QueryId,
        ring_key: u64,
        key: Key,
        item: I,
        version: u64,
        origin: NodeId,
        hops: u32,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register(fx, qid, Pending::Insert);
        }
        if self.responsible(ring_key) {
            self.apply_insert(ring_key, key, item, version, fx);
            if origin == self.id {
                self.handle_insert_ack(qid, hops, fx);
            } else {
                fx.send(origin, ChordMsg::InsertAck { qid, hops });
            }
        } else {
            let next = self.next_hop(ring_key);
            fx.send(
                next,
                ChordMsg::Insert { qid, ring_key, key, item, version, origin, hops: hops + 1 },
            );
        }
    }

    fn handle_insert_ack(&mut self, qid: QueryId, hops: u32, fx: &mut Fx<I>) {
        if self.pending.remove(&qid).is_some() {
            fx.emit(ChordEvent::InsertDone { qid, hops, ok: true });
        }
    }

    /// Handles a routed batch of writes arriving on the wire; the
    /// origin additionally registers the pending state that accumulates
    /// the positional acks (and feeds retransmits on timeout).
    #[allow(clippy::too_many_arguments)]
    fn handle_op_batch(
        &mut self,
        from: NodeId,
        qid: QueryId,
        origin: NodeId,
        hops: u32,
        items: Vec<I>,
        ops: Vec<ChordBatchOp>,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register(
                fx,
                qid,
                Pending::Batch {
                    items: items.clone(),
                    ops: ops.clone(),
                    acked: vec![false; ops.len()],
                    done: 0,
                    hops: 0,
                    attempts: 0,
                },
            );
        }
        self.route_batch(qid, origin, hops, items, ops, fx);
    }

    /// Routes a (sub-)batch one step: applies the ops this node is
    /// responsible for (both indexes live in one ring, so a sub-batch
    /// may mix exact- and bucket-index ops), re-groups the remainder by
    /// next hop, and acks the applied ops' positions to the origin in
    /// one aggregated [`ChordMsg::BatchAck`].
    fn route_batch(
        &mut self,
        qid: QueryId,
        origin: NodeId,
        hops: u32,
        items: Vec<I>,
        ops: Vec<ChordBatchOp>,
        fx: &mut Fx<I>,
    ) {
        let mut applied: Vec<u32> = Vec::new();
        let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            // The ring position is derived, not shipped: op tags cross
            // every edge of their route, so they carry only the original
            // key plus an index flag.
            let ring_key = match op.bucket {
                true => ring_key_bucket(op.op.key, self.cfg.bucket_depth),
                false => ring_key_exact(op.op.key),
            };
            if self.responsible(ring_key) {
                match op.op.verb {
                    BatchVerb::Insert { item } => {
                        let item = items[item as usize].clone();
                        self.apply_insert(ring_key, op.op.key, item, op.op.version, fx);
                    }
                    BatchVerb::Delete { ident } => {
                        self.apply_delete(ring_key, op.op.key, ident, op.op.version, fx);
                    }
                }
                applied.push(op.idx);
            } else {
                let next = self.next_hop(ring_key);
                match groups.iter_mut().find(|(n, _)| *n == next) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((next, vec![i])),
                }
            }
        }
        for (next, idxs) in groups {
            let (sub_items, sub_ops) = subset_batch(&items, &ops, &idxs);
            fx.send(
                next,
                ChordMsg::OpBatch { qid, origin, hops: hops + 1, items: sub_items, ops: sub_ops },
            );
        }
        if !applied.is_empty() {
            if origin == self.id {
                self.handle_batch_ack(qid, applied, hops, fx);
            } else {
                fx.send(origin, ChordMsg::BatchAck { qid, applied, hops });
            }
        }
    }

    /// Folds a positional batch ack; completes the batch when every op
    /// is marked. Duplicate and late acks (e.g. from before a
    /// retransmission) re-mark already-marked ops, so they can only
    /// help; positions outside the batch are ignored.
    fn handle_batch_ack(&mut self, qid: QueryId, applied: Vec<u32>, ack_hops: u32, fx: &mut Fx<I>) {
        let Some(Pending::Batch { acked, done, hops, .. }) = self.pending.get_mut(&qid) else {
            return;
        };
        for idx in applied {
            if let Some(slot) = acked.get_mut(idx as usize) {
                if !*slot {
                    *slot = true;
                    *done += 1;
                }
            }
        }
        *hops = (*hops).max(ack_hops);
        if *done as usize >= acked.len() {
            let (ops_total, max_hops) = (*done, *hops);
            self.pending.remove(&qid);
            fx.emit(ChordEvent::BatchDone { qid, ops: ops_total, hops: max_hops, ok: true });
        }
    }

    /// Routed removal by logical identity; acked like an insert.
    #[allow(clippy::too_many_arguments)]
    fn handle_delete(
        &mut self,
        from: NodeId,
        qid: QueryId,
        ring_key: u64,
        key: Key,
        ident: u64,
        version: u64,
        origin: NodeId,
        hops: u32,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register(fx, qid, Pending::Insert);
        }
        if self.responsible(ring_key) {
            self.apply_delete(ring_key, key, ident, version, fx);
            if origin == self.id {
                self.handle_insert_ack(qid, hops, fx);
            } else {
                fx.send(origin, ChordMsg::InsertAck { qid, hops });
            }
        } else {
            let next = self.next_hop(ring_key);
            fx.send(
                next,
                ChordMsg::Delete { qid, ring_key, key, ident, version, origin, hops: hops + 1 },
            );
        }
    }

    /// Issues a locally originated exact-key lookup (the embedding
    /// UniStore node calls this as if it were the driver); completion
    /// arrives as a [`ChordEvent::LookupDone`] emit.
    pub fn local_lookup(&mut self, qid: QueryId, key: Key, fx: &mut Fx<I>) {
        self.local_lookup_filtered(qid, key, None, fx);
    }

    /// Locally originated exact-key lookup carrying a semi-join filter
    /// the owner applies before replying.
    ///
    /// Every write pays both the exact index and the bucket index, so
    /// the two are exact mirrors: an inclusive `[key, key]` fetch
    /// against the bucket position returns the same items as an exact
    /// fetch. That makes the bucket index a free read replica — prefer
    /// whichever mirror is locally owned (zero hops), otherwise
    /// alternate between them so a hot key's reads land on two owners
    /// instead of one.
    pub fn local_lookup_filtered(
        &mut self,
        qid: QueryId,
        key: Key,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        let rk = ring_key_exact(key);
        let bk = ring_key_bucket(key, self.cfg.bucket_depth);
        let via_bucket = if self.responsible(rk) {
            false
        } else if self.responsible(bk) {
            true
        } else {
            self.reads_via[1] < self.reads_via[0]
        };
        self.reads_via[via_bucket as usize] += 1;
        if via_bucket {
            self.handle_lookup(NodeId::EXTERNAL, qid, bk, self.id, 0, Some((key, key)), filter, fx);
        } else {
            self.handle_lookup(NodeId::EXTERNAL, qid, rk, self.id, 0, None, filter, fx);
        }
    }

    /// Read-dispatch split across the two mirror indexes
    /// `(exact, bucket)`; inspection and load accounting.
    pub fn reads_via(&self) -> (u64, u64) {
        (self.reads_via[0], self.reads_via[1])
    }

    /// Issues a locally originated range scan over original keys
    /// `[lo, hi]` through the auxiliary bucket index.
    pub fn local_bucket_range(
        &mut self,
        qid: QueryId,
        lo: Key,
        hi: Key,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        self.handle_bucket_range(qid, lo, hi, filter, fx);
    }

    /// Issues a locally originated range scan via the finger-tree
    /// broadcast (the index-free fallback plain Chord must use).
    pub fn local_broadcast_range(
        &mut self,
        qid: QueryId,
        lo: Key,
        hi: Key,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        self.handle_bcast(NodeId::EXTERNAL, qid, lo, hi, self.ring_id, 0, filter, fx);
    }

    /// Places an entry directly into the local store under every index
    /// position this node is responsible for (driver-side preloading).
    pub fn preload(&mut self, key: Key, item: I, version: u64) {
        let rk = ring_key_exact(key);
        if self.responsible(rk) {
            self.store.insert(rk, key, item.clone(), version);
        }
        let bk = ring_key_bucket(key, self.cfg.bucket_depth);
        if self.responsible(bk) {
            self.store.insert(bk, key, item, version);
        }
    }

    /// Origin-side bucket fan-out: one [`ChordMsg::BucketGet`] per bucket
    /// intersecting `[lo, hi]`.
    fn handle_bucket_range(
        &mut self,
        qid: QueryId,
        lo: Key,
        hi: Key,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        let depth = self.cfg.bucket_depth as u32;
        let b_lo = lo >> (64 - depth);
        let b_hi = hi >> (64 - depth);
        let expected = (b_hi - b_lo + 1) as u32;
        self.register(
            fx,
            qid,
            Pending::Buckets { expected, received: 0, entries: Vec::new(), hops: 0, failed: false },
        );
        for b in b_lo..=b_hi {
            let ring_key = mix64(b ^ BUCKET_SALT);
            // Route each bucket fetch like a range-restricted lookup,
            // starting at ourselves.
            self.handle_lookup(
                self.id,
                qid,
                ring_key,
                self.id,
                0,
                Some((lo, hi)),
                filter.clone(),
                fx,
            );
        }
    }

    /// Broadcast branch: answer locally, split `(self, limit)` among the
    /// fingers inside it, convergecast replies.
    #[allow(clippy::too_many_arguments)]
    fn handle_bcast(
        &mut self,
        from: NodeId,
        qid: QueryId,
        lo: Key,
        hi: Key,
        limit: u64,
        hops: u32,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        let parent = if from == NodeId::EXTERNAL { None } else { Some(from) };
        // Replica copies answer no queries: a broadcast visits every
        // node, so serving only records this node is primary for keeps
        // results duplicate-free under successor replication.
        let local = collect_keyed(
            &filter,
            self.store
                .iter_by_key_ring(lo, hi)
                .filter(|&(rk, _, _)| self.responsible(rk))
                .map(|(_, k, i)| (k, i)),
        );
        // Children: fingers strictly inside (self, limit), each getting
        // the sub-interval up to the next finger (or the limit). At the
        // origin `limit == self.ring_id`, which means the full circle.
        let full_circle = limit == self.ring_id;
        let inside: Vec<(NodeId, u64)> = self
            .fingers
            .iter()
            .copied()
            .filter(|&(_, ring)| {
                if full_circle {
                    ring != self.ring_id
                } else {
                    in_open_open(self.ring_id, limit, ring)
                }
            })
            .collect();
        let expected = inside.len() as u32;
        self.bcast.insert(
            qid,
            BcastState { parent, expected, received: 0, entries: local, nodes: 1, hops },
        );
        for (i, &(node, _)) in inside.iter().enumerate() {
            let child_limit = if i + 1 < inside.len() { inside[i + 1].1 } else { limit };
            fx.send(
                node,
                ChordMsg::Bcast {
                    qid,
                    lo,
                    hi,
                    limit: child_limit,
                    hops: hops + 1,
                    filter: filter.clone(),
                },
            );
        }
        if expected == 0 {
            self.finish_bcast(qid, fx);
        }
        if parent.is_none() {
            // Origin: arm the completion timeout.
            fx.set_timer(self.cfg.query_timeout, Timer::new(timer::QUERY_TIMEOUT, qid));
        }
    }

    fn handle_bcast_reply(
        &mut self,
        qid: QueryId,
        entries: Vec<(Key, I)>,
        nodes: u32,
        hops: u32,
        fx: &mut Fx<I>,
    ) {
        let Some(st) = self.bcast.get_mut(&qid) else { return };
        st.received += 1;
        st.entries.extend(entries);
        st.nodes += nodes;
        st.hops = st.hops.max(hops);
        if st.received >= st.expected {
            self.finish_bcast(qid, fx);
        }
    }

    fn finish_bcast(&mut self, qid: QueryId, fx: &mut Fx<I>) {
        let Some(st) = self.bcast.remove(&qid) else { return };
        match st.parent {
            Some(parent) => fx.send(
                parent,
                ChordMsg::BcastReply { qid, entries: st.entries, nodes: st.nodes, hops: st.hops },
            ),
            None => fx.emit(ChordEvent::RangeDone {
                qid,
                entries: st.entries,
                contributors: st.nodes,
                hops: st.hops,
                complete: true,
            }),
        }
    }

    fn handle_timeout(&mut self, qid: QueryId, fx: &mut Fx<I>) {
        if let Some(p) = self.pending.remove(&qid) {
            match p {
                Pending::Lookup => {
                    fx.emit(ChordEvent::LookupDone { qid, entries: Vec::new(), hops: 0, ok: false })
                }
                Pending::Insert => fx.emit(ChordEvent::InsertDone { qid, hops: 0, ok: false }),
                Pending::Batch { items, ops, acked, done, hops, attempts } => {
                    let remainder: Vec<usize> = (0..ops.len()).filter(|&i| !acked[i]).collect();
                    if attempts < self.cfg.op_retries && !remainder.is_empty() {
                        // Retransmit only the outstanding ops: acked work
                        // stays marked, a late ack from the previous
                        // attempt still counts, and re-applied ops are
                        // no-ops at the versioned stores. The remainder
                        // shrinks geometrically under independent loss,
                        // where re-sending the whole batch would face the
                        // same all-or-nothing odds every attempt.
                        let (sub_items, sub_ops) = subset_batch(&items, &ops, &remainder);
                        self.register(
                            fx,
                            qid,
                            Pending::Batch {
                                items,
                                ops,
                                acked,
                                done,
                                hops,
                                attempts: attempts + 1,
                            },
                        );
                        self.route_batch(qid, self.id, 0, sub_items, sub_ops, fx);
                    } else {
                        fx.emit(ChordEvent::BatchDone { qid, ops: done, hops, ok: false })
                    }
                }
                Pending::Buckets { entries, hops, received, .. } => {
                    fx.emit(ChordEvent::RangeDone {
                        qid,
                        entries,
                        contributors: received,
                        hops,
                        complete: false,
                    })
                }
            }
            return;
        }
        // An origin-side broadcast that never completed.
        if let Some(st) = self.bcast.remove(&qid) {
            if st.parent.is_none() {
                fx.emit(ChordEvent::RangeDone {
                    qid,
                    entries: st.entries,
                    contributors: st.nodes,
                    hops: st.hops,
                    complete: false,
                });
            }
        }
    }
}

/// Sub-batch of the ops at `indices`, with the payload table re-indexed
/// so only referenced items are carried — the per-hop re-grouping step,
/// shared with P-Grid through [`unistore_util::wire::subset_shared`].
fn subset_batch<I: Clone>(
    items: &[I],
    ops: &[ChordBatchOp],
    indices: &[usize],
) -> (Vec<I>, Vec<ChordBatchOp>) {
    unistore_util::wire::subset_shared(
        items,
        ops,
        indices,
        |op| match op.op.verb {
            BatchVerb::Insert { item } => Some(item),
            BatchVerb::Delete { .. } => None,
        },
        |op, item| op.op.verb = BatchVerb::Insert { item },
    )
}

impl<I: Item> NodeBehavior for ChordNode<I> {
    type Msg = ChordMsg<I>;
    type Out = ChordEvent<I>;

    fn on_start(&mut self, _now: SimTime, fx: &mut Fx<I>) {
        // Also runs on revival, so a node that was down resumes the
        // repair cadence immediately instead of waiting for a timer
        // chain that died while it was offline.
        if self.cfg.replicate {
            self.arm_anti_entropy(fx);
        }
        if self.cfg.ping_interval > SimTime::from_micros(0) {
            // A revived node's suspicions are as stale as its absence
            // was long: start trusting and let the probes re-learn.
            self.suspected.clear();
            self.awaiting_pong.clear();
            self.arm_ping(fx);
        }
    }

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: ChordMsg<I>, fx: &mut Fx<I>) {
        self.msg_load += 1;
        // Any traffic from a peer proves it lives.
        self.suspected.remove(&from);
        self.awaiting_pong.remove(&from);
        match msg {
            ChordMsg::Lookup { qid, ring_key, origin, hops, filter } => {
                self.handle_lookup(from, qid, ring_key, origin, hops, None, filter, fx)
            }
            ChordMsg::LookupReply { qid, entries, hops, ok } => {
                self.handle_lookup_reply(qid, entries, hops, ok, fx)
            }
            ChordMsg::Insert { qid, ring_key, key, item, version, origin, hops } => {
                self.handle_insert(from, qid, ring_key, key, item, version, origin, hops, fx)
            }
            ChordMsg::InsertAck { qid, hops } => self.handle_insert_ack(qid, hops, fx),
            ChordMsg::OpBatch { qid, origin, hops, items, ops } => {
                self.handle_op_batch(from, qid, origin, hops, items, ops, fx)
            }
            ChordMsg::BatchAck { qid, applied, hops } => {
                self.handle_batch_ack(qid, applied, hops, fx)
            }
            ChordMsg::Delete { qid, ring_key, key, ident, version, origin, hops } => {
                self.handle_delete(from, qid, ring_key, key, ident, version, origin, hops, fx)
            }
            ChordMsg::BucketRange { qid, lo, hi, .. } => {
                self.handle_bucket_range(qid, lo, hi, None, fx)
            }
            ChordMsg::BucketGet { qid, ring_key, lo, hi, origin, hops, filter } => {
                self.handle_lookup(from, qid, ring_key, origin, hops, Some((lo, hi)), filter, fx)
            }
            ChordMsg::Bcast { qid, lo, hi, limit, hops, filter } => {
                self.handle_bcast(from, qid, lo, hi, limit, hops, filter, fx)
            }
            ChordMsg::BcastReply { qid, entries, nodes, hops } => {
                self.handle_bcast_reply(qid, entries, nodes, hops, fx)
            }
            ChordMsg::Replicate { entries } => self.handle_replicate(entries),
            ChordMsg::Digest { entries } => self.handle_digest(from, entries, fx),
            ChordMsg::DigestReply { entries } => self.handle_replicate(entries),
            ChordMsg::Ping => fx.send(from, ChordMsg::Pong),
            ChordMsg::Pong => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, t: Timer, fx: &mut Fx<I>) {
        match t.kind {
            timer::QUERY_TIMEOUT => self.handle_timeout(t.payload, fx),
            timer::ANTI_ENTROPY => {
                self.run_anti_entropy(fx);
                self.arm_anti_entropy(fx);
            }
            timer::PING => {
                self.run_ping_round(fx);
                self.arm_ping(fx);
            }
            timer::PING_DEADLINE => {
                let silent: Vec<NodeId> = self.awaiting_pong.drain().collect();
                self.suspected.extend(silent);
            }
            _ => {}
        }
    }
}

//! Chord-side local storage.
//!
//! Unlike P-Grid, the ring position of an entry is *not* its semantic
//! key: items are stored under `ring_key = hash(key)` (exact index) and,
//! for the auxiliary range index, under `ring_key = hash(bucket(key))`.
//! Entries therefore remember their original order-preserving key so
//! that bucket scans can filter to the requested interval. Entries are
//! versioned with the same superseding rule as P-Grid's local store
//! (paper ref [4] loose consistency): a write is applied only when its
//! version exceeds the stored one, and deletes leave tombstones that
//! keep blocking stale re-inserts of the same logical entry, so both
//! backends resolve concurrent updates identically.

use std::collections::BTreeMap;
use std::ops::Bound;

use unistore_util::item::Item;
use unistore_util::{ItemFilter, Key};

/// Applies an optional semi-join filter over borrowed `(key, item)`
/// candidates, cloning only the survivors into reply entries — dropped
/// candidates are never materialized (the Chord counterpart of
/// [`ItemFilter::collect_filtered`]).
pub fn collect_keyed<'a, I: Item + 'a>(
    filter: &Option<ItemFilter>,
    candidates: impl Iterator<Item = (Key, &'a I)>,
) -> Vec<(Key, I)> {
    match filter {
        Some(f) => candidates.filter(|(_, i)| f.accepts(*i)).map(|(k, i)| (k, i.clone())).collect(),
        None => candidates.map(|(k, i)| (k, i.clone())).collect(),
    }
}

/// Full address of one stored record: `(ring position, original key,
/// logical identity)` — the Chord counterpart of P-Grid's `(key, ident)`
/// record key in the shared digest-exchange protocol.
pub type RecordKey = (u64, Key, u64);

/// One stored entry: the original key plus the payload.
#[derive(Clone, Debug)]
pub struct ChordEntry<I> {
    /// Original, order-preserving key (pre-hash).
    pub key: Key,
    /// Payload.
    pub item: I,
}

/// Local store of a Chord node, keyed by ring position. The value is
/// `(version, item-or-tombstone)`: `None` marks a deleted entry whose
/// version still vetoes stale writes.
#[derive(Clone, Debug, Default)]
pub struct ChordStore<I> {
    entries: BTreeMap<(u64, Key, u64), (u64, Option<I>)>,
}

impl<I: Item> ChordStore<I> {
    /// Empty store.
    pub fn new() -> Self {
        ChordStore { entries: BTreeMap::new() }
    }

    /// Stores an entry under a ring position. Applies the write only if
    /// it is new or strictly newer than the stored version — live or
    /// tombstoned (the same rule as P-Grid's `LocalStore::apply_record`);
    /// returns whether it was applied.
    pub fn insert(&mut self, ring_key: u64, key: Key, item: I, version: u64) -> bool {
        self.apply_record(ring_key, key, item.ident(), Some(item), version)
    }

    /// Applies one record — live entry or tombstone — under the shared
    /// strictly-newer rule; the entry point for push replication and
    /// anti-entropy repair (the same contract as P-Grid's
    /// `LocalStore::apply_record`). Returns whether it was applied.
    pub fn apply_record(
        &mut self,
        ring_key: u64,
        key: Key,
        ident: u64,
        item: Option<I>,
        version: u64,
    ) -> bool {
        match self.entries.get_mut(&(ring_key, key, ident)) {
            Some((existing, _)) if *existing >= version => false,
            Some(slot) => {
                *slot = (version, item);
                true
            }
            None => {
                self.entries.insert((ring_key, key, ident), (version, item));
                true
            }
        }
    }

    /// All entries stored under one ring position.
    pub fn get(&self, ring_key: u64) -> Vec<ChordEntry<I>> {
        self.iter_ring(ring_key).map(|(key, i)| ChordEntry { key, item: i.clone() }).collect()
    }

    /// Entries under `ring_key` whose *original* key lies in `[lo, hi]`.
    pub fn get_filtered(&self, ring_key: u64, lo: Key, hi: Key) -> Vec<ChordEntry<I>> {
        self.iter_ring_filtered(ring_key, lo, hi)
            .map(|(key, i)| ChordEntry { key, item: i.clone() })
            .collect()
    }

    /// Every entry whose original key lies in `[lo, hi]`, regardless of
    /// ring position (broadcast-mode local scan).
    pub fn scan_by_key(&self, lo: Key, hi: Key) -> Vec<ChordEntry<I>> {
        self.iter_by_key(lo, hi).map(|(key, i)| ChordEntry { key, item: i.clone() }).collect()
    }

    /// Borrowed view of the live entries under one ring position. Leaf
    /// handlers filter through this *before* cloning, so semi-join
    /// pushdown never materializes dropped candidates.
    pub fn iter_ring(&self, ring_key: u64) -> impl Iterator<Item = (Key, &I)> {
        self.iter_ring_filtered(ring_key, 0, Key::MAX)
    }

    /// Borrowed view of the live entries under `ring_key` whose original
    /// key lies in `[lo, hi]`.
    pub fn iter_ring_filtered(
        &self,
        ring_key: u64,
        lo: Key,
        hi: Key,
    ) -> impl Iterator<Item = (Key, &I)> {
        // An inverted interval yields an explicitly empty (but
        // well-formed) bound pair: BTreeMap panics on start > end.
        let bounds = match lo <= hi {
            true => (Bound::Included((ring_key, lo, 0)), Bound::Included((ring_key, hi, u64::MAX))),
            false => (Bound::Included((ring_key, lo, 0)), Bound::Excluded((ring_key, lo, 0))),
        };
        self.entries
            .range(bounds)
            .filter_map(|(&(_, key, _), (_, item))| item.as_ref().map(|i| (key, i)))
    }

    /// Borrowed scan over every live entry with original key in
    /// `[lo, hi]`, regardless of ring position.
    pub fn iter_by_key(&self, lo: Key, hi: Key) -> impl Iterator<Item = (Key, &I)> {
        self.iter_by_key_ring(lo, hi).map(|(_, key, i)| (key, i))
    }

    /// Like [`ChordStore::iter_by_key`], but also yielding each entry's
    /// ring position, so node-local scans can be restricted to records
    /// the node is primary for (replica copies answer no queries).
    pub fn iter_by_key_ring(&self, lo: Key, hi: Key) -> impl Iterator<Item = (u64, Key, &I)> {
        self.entries
            .iter()
            .filter(move |(&(_, key, _), _)| key >= lo && key <= hi)
            .filter_map(|(&(rk, key, _), (_, item))| item.as_ref().map(|i| (rk, key, i)))
    }

    /// Removes the entry with logical identity `ident` stored under
    /// `(ring_key, key)` by recording a tombstone at `version` — like
    /// P-Grid's `LocalStore::remove`: the tombstone is recorded even
    /// over nothing, so late-arriving writes at `<= version` stay dead,
    /// and it only supersedes a strictly older stored version. Returns
    /// `true` if a live, strictly older entry was actually shadowed.
    pub fn remove(&mut self, ring_key: u64, key: Key, ident: u64, version: u64) -> bool {
        let shadowed = matches!(
            self.entries.get(&(ring_key, key, ident)),
            Some((v, Some(_))) if *v < version
        );
        self.apply_record(ring_key, key, ident, None, version);
        shadowed
    }

    /// `(record key, version)` summary of every record — tombstones
    /// included — offered to a partner in digest-exchange anti-entropy.
    pub fn digest(&self) -> Vec<(RecordKey, u64)> {
        self.entries.iter().map(|(&k, &(v, _))| (k, v)).collect()
    }

    /// Records strictly newer than what `digest` reports (or absent
    /// from it) — the pull half of anti-entropy, shared with P-Grid
    /// through [`unistore_overlay::repair::diff_newer`]. Tombstones
    /// travel too, so deletes propagate to repaired replicas.
    pub fn newer_than(&self, digest: &[(RecordKey, u64)]) -> Vec<(RecordKey, u64, Option<I>)> {
        let mine = self.entries.iter().map(|(&k, (v, item))| (k, *v, item.as_ref()));
        unistore_overlay::repair::diff_newer(mine, digest)
    }

    /// Number of live entries (tombstones excluded).
    pub fn len(&self) -> usize {
        self.entries.values().filter(|(_, item)| item.is_some()).count()
    }

    /// True when no live entries exist.
    pub fn is_empty(&self) -> bool {
        !self.entries.values().any(|(_, item)| item.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_util::fxhash::hash_bytes;
    use unistore_util::item::RawItem as TestItem;

    #[test]
    fn insert_get_roundtrip() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        let rk = hash_bytes(b"k1");
        s.insert(rk, 100, TestItem(1), 0);
        s.insert(rk, 200, TestItem(2), 0);
        let got = s.get(rk);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].key, 100);
        assert!(s.get(rk ^ 1).is_empty());
    }

    #[test]
    fn filtered_respects_original_keys() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        let rk = 42;
        for k in [10u64, 20, 30, 40] {
            s.insert(rk, k, TestItem(k), 0);
        }
        let got = s.get_filtered(rk, 15, 35);
        let keys: Vec<u64> = got.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![20, 30]);
    }

    #[test]
    fn scan_by_key_crosses_ring_positions() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        s.insert(1, 10, TestItem(1), 0);
        s.insert(999, 20, TestItem(2), 0);
        s.insert(500, 99, TestItem(3), 0);
        let got = s.scan_by_key(5, 25);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn duplicate_ident_overwrites() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        assert!(s.insert(1, 10, TestItem(7), 0));
        assert!(!s.insert(1, 10, TestItem(7), 0), "same version is rejected");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_targets_one_entry_exactly() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        s.insert(1, 10, TestItem(7), 0);
        s.insert(1, 20, TestItem(7), 0); // same identity, different key
        s.insert(1, 10, TestItem(8), 0);
        s.insert(2, 10, TestItem(7), 0); // other ring position untouched
        assert!(s.remove(1, 10, 7, 1));
        assert_eq!(s.len(), 3, "only the addressed entry is shadowed");
        let live: Vec<u64> = s.get(1).iter().map(|e| e.item.0).collect();
        assert_eq!(live, vec![TestItem(8).0, TestItem(7).0]);
        assert_eq!(s.get(2).len(), 1);
        assert!(!s.remove(1, 10, 99, 1), "absent identity shadows nothing");
    }

    #[test]
    fn filtered_bounds_are_inclusive() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        for k in [10u64, 20, 30] {
            s.insert(5, k, TestItem(k), 0);
        }
        let keys: Vec<u64> = s.get_filtered(5, 10, 30).iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![10, 20, 30]);
        assert!(s.get_filtered(5, 11, 19).is_empty());
    }

    #[test]
    fn empty_store_reports_empty() {
        let s: ChordStore<TestItem> = ChordStore::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.get(0).is_empty());
        assert!(s.scan_by_key(0, u64::MAX).is_empty());
    }

    #[test]
    fn newer_version_supersedes_older_is_rejected() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        assert!(s.insert(1, 10, TestItem(7), 0));
        assert!(s.insert(1, 10, TestItem(7), 5), "newer version applies");
        assert!(!s.insert(1, 10, TestItem(7), 3), "stale write is rejected");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_spares_newer_versions() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        s.insert(1, 10, TestItem(7), 5);
        assert!(!s.remove(1, 10, 7, 3), "delete at v3 must not kill the v5 entry");
        assert_eq!(s.len(), 1);
        assert!(!s.remove(1, 10, 7, 5), "equal version loses, entry stays live");
        assert_eq!(s.len(), 1);
        assert!(s.remove(1, 10, 7, 6), "a newer delete shadows it");
        assert!(s.is_empty());
    }

    #[test]
    fn tombstone_blocks_stale_reinsert() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        s.insert(1, 10, TestItem(7), 0);
        assert!(s.remove(1, 10, 7, 2));
        assert!(s.is_empty());
        assert!(!s.insert(1, 10, TestItem(7), 0), "stale write loses to the tombstone");
        assert!(!s.insert(1, 10, TestItem(7), 2), "equal version loses too");
        assert!(s.is_empty());
        assert!(s.insert(1, 10, TestItem(7), 3), "a genuinely newer write un-deletes");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn digest_and_newer_than() {
        let mut a: ChordStore<TestItem> = ChordStore::new();
        let mut b: ChordStore<TestItem> = ChordStore::new();
        a.insert(1, 10, TestItem(1), 1);
        a.insert(2, 20, TestItem(2), 1);
        b.insert(1, 10, TestItem(1), 1);
        // b lacks the record under ring position 2 → pull must return it.
        let missing = a.newer_than(&b.digest());
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].0, (2, 20, TestItem(2).ident()));
        // a has everything b has → nothing to pull the other way.
        assert!(b.newer_than(&a.digest()).is_empty());
    }

    #[test]
    fn digest_carries_tombstones() {
        let mut a: ChordStore<TestItem> = ChordStore::new();
        a.insert(1, 10, TestItem(7), 0);
        a.remove(1, 10, 7, 2);
        let fresh: ChordStore<TestItem> = ChordStore::new();
        let missing = a.newer_than(&fresh.digest());
        assert_eq!(missing.len(), 1);
        assert!(missing[0].2.is_none(), "the tombstone travels");
        assert_eq!(missing[0].1, 2, "at the delete's version");
    }

    #[test]
    fn tombstone_over_nothing_still_blocks() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        assert!(!s.remove(1, 10, 7, 2), "nothing live to shadow");
        assert!(!s.insert(1, 10, TestItem(7), 1), "late stale write stays dead");
        assert!(s.is_empty());
    }
}

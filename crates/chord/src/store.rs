//! Chord-side local storage.
//!
//! Unlike P-Grid, the ring position of an entry is *not* its semantic
//! key: items are stored under `ring_key = hash(key)` (exact index) and,
//! for the auxiliary range index, under `ring_key = hash(bucket(key))`.
//! Entries therefore remember their original order-preserving key so
//! that bucket scans can filter to the requested interval.

use std::collections::BTreeMap;
use std::ops::Bound;

use unistore_util::item::Item;
use unistore_util::Key;

/// One stored entry: the original key plus the payload.
#[derive(Clone, Debug)]
pub struct ChordEntry<I> {
    /// Original, order-preserving key (pre-hash).
    pub key: Key,
    /// Payload.
    pub item: I,
}

/// Local store of a Chord node, keyed by ring position.
#[derive(Clone, Debug, Default)]
pub struct ChordStore<I> {
    entries: BTreeMap<(u64, Key, u64), I>,
}

impl<I: Item> ChordStore<I> {
    /// Empty store.
    pub fn new() -> Self {
        ChordStore { entries: BTreeMap::new() }
    }

    /// Stores an entry under a ring position.
    pub fn insert(&mut self, ring_key: u64, key: Key, item: I) {
        self.entries.insert((ring_key, key, item.ident()), item);
    }

    /// All entries stored under one ring position.
    pub fn get(&self, ring_key: u64) -> Vec<ChordEntry<I>> {
        self.entries
            .range((
                Bound::Included((ring_key, 0, 0)),
                Bound::Included((ring_key, Key::MAX, u64::MAX)),
            ))
            .map(|(&(_, key, _), item)| ChordEntry { key, item: item.clone() })
            .collect()
    }

    /// Entries under `ring_key` whose *original* key lies in `[lo, hi]`.
    pub fn get_filtered(&self, ring_key: u64, lo: Key, hi: Key) -> Vec<ChordEntry<I>> {
        self.entries
            .range((Bound::Included((ring_key, lo, 0)), Bound::Included((ring_key, hi, u64::MAX))))
            .map(|(&(_, key, _), item)| ChordEntry { key, item: item.clone() })
            .collect()
    }

    /// Every entry whose original key lies in `[lo, hi]`, regardless of
    /// ring position (broadcast-mode local scan).
    pub fn scan_by_key(&self, lo: Key, hi: Key) -> Vec<ChordEntry<I>> {
        self.entries
            .iter()
            .filter(|(&(_, key, _), _)| key >= lo && key <= hi)
            .map(|(&(_, key, _), item)| ChordEntry { key, item: item.clone() })
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_util::fxhash::hash_bytes;
    use unistore_util::item::RawItem as TestItem;

    #[test]
    fn insert_get_roundtrip() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        let rk = hash_bytes(b"k1");
        s.insert(rk, 100, TestItem(1));
        s.insert(rk, 200, TestItem(2));
        let got = s.get(rk);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].key, 100);
        assert!(s.get(rk ^ 1).is_empty());
    }

    #[test]
    fn filtered_respects_original_keys() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        let rk = 42;
        for k in [10u64, 20, 30, 40] {
            s.insert(rk, k, TestItem(k));
        }
        let got = s.get_filtered(rk, 15, 35);
        let keys: Vec<u64> = got.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![20, 30]);
    }

    #[test]
    fn scan_by_key_crosses_ring_positions() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        s.insert(1, 10, TestItem(1));
        s.insert(999, 20, TestItem(2));
        s.insert(500, 99, TestItem(3));
        let got = s.scan_by_key(5, 25);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn duplicate_ident_overwrites() {
        let mut s: ChordStore<TestItem> = ChordStore::new();
        s.insert(1, 10, TestItem(7));
        s.insert(1, 10, TestItem(7));
        assert_eq!(s.len(), 1);
    }
}

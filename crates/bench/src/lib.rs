//! Shared helpers for the experiment harness and benches.

pub mod alloc;

use unistore_util::stats::percentile;

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a table header with separator.
pub fn header(cols: &[&str]) {
    row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Summarizes a latency sample (milliseconds) as p50/p90/p99.
pub fn latency_summary(ms: &[f64]) -> (f64, f64, f64) {
    (percentile(ms, 50.0), percentile(ms, 90.0), percentile(ms, 99.0))
}

/// Formats a float compactly.
pub fn f(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_orders() {
        let ms: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (p50, p90, p99) = latency_summary(&ms);
        assert!(p50 < p90 && p90 < p99);
    }

    #[test]
    fn format_scales() {
        assert_eq!(f(1234.7), "1235");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(0.1234), "0.123");
    }
}

//! A counting global allocator for the allocation-trajectory record.
//!
//! Every binary, bench and test that links `unistore-bench` allocates
//! through [`CountingAlloc`]: a thin wrapper over the system allocator
//! that maintains process-wide counters of allocation calls and
//! requested bytes. The overhead is two relaxed atomic adds per
//! allocation, so timing benches stay honest while `bench-snapshot`
//! turns the counters into allocs/op and bytes/op for `BENCH_alloc.json`.
//!
//! The counters are global, not per-thread: [`measure`] deltas are only
//! meaningful when the measured closure is the sole allocating activity,
//! which holds for the single-threaded simulation harness.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator plus relaxed counters of calls and requested bytes.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`; the counters never affect
// the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh backing allocation from the caller's point
        // of view: count the new size, like a Vec doubling would cost.
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation activity observed during a [`measure`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocation calls (alloc + alloc_zeroed + realloc).
    pub allocs: u64,
    /// Total requested bytes across those calls.
    pub bytes: u64,
}

impl AllocStats {
    /// Allocations per operation when the measured closure ran `ops`
    /// operations.
    pub fn allocs_per_op(&self, ops: usize) -> f64 {
        self.allocs as f64 / ops.max(1) as f64
    }

    /// Requested bytes per operation.
    pub fn bytes_per_op(&self, ops: usize) -> f64 {
        self.bytes as f64 / ops.max(1) as f64
    }
}

/// Runs `f` and returns its result plus the allocation delta it caused.
///
/// Counters are process-wide: concurrent allocating threads would be
/// attributed to the closure. The snapshot harness is single-threaded.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let a0 = ALLOCS.load(Relaxed);
    let b0 = BYTES.load(Relaxed);
    let r = f();
    let stats = AllocStats { allocs: ALLOCS.load(Relaxed) - a0, bytes: BYTES.load(Relaxed) - b0 };
    (r, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_a_known_allocation() {
        let (v, stats) = measure(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(stats.allocs >= 1, "one Vec allocation must be visible");
        assert!(stats.bytes >= 4096, "requested bytes include the Vec payload");
    }

    #[test]
    fn measure_of_nothing_is_zero() {
        let ((), stats) = measure(|| {
            let x = 1u64 + 2;
            std::hint::black_box(x);
        });
        assert_eq!(stats, AllocStats::default());
    }

    #[test]
    fn per_op_rates_divide() {
        let s = AllocStats { allocs: 100, bytes: 6400 };
        assert_eq!(s.allocs_per_op(50), 2.0);
        assert_eq!(s.bytes_per_op(50), 128.0);
        // ops = 0 must not divide by zero.
        assert_eq!(s.allocs_per_op(0), 100.0);
    }
}

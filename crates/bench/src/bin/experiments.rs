//! Regenerates every quantitative claim of the UniStore paper.
//!
//! ```sh
//! cargo run --release -p unistore-bench --bin experiments          # all
//! cargo run --release -p unistore-bench --bin experiments -- e1 e6 # some
//! cargo run --release -p unistore-bench --bin experiments -- bench-snapshot
//! ```
//!
//! Each experiment section prints the paper's claim, the measured
//! table, and the verdict the table supports.
//! EXPERIMENTS.md records a captured run. `bench-snapshot` runs
//! headlessly for CI and writes four perf-trajectory records:
//! `BENCH_joins.json` (E6 join strategies), `BENCH_stats.json`
//! (incremental statistics maintenance), `BENCH_ingest.json` (the
//! batched write pipeline vs the per-op fan-out, both backends) and
//! `BENCH_concurrency.json` (the pipelined query driver: throughput
//! and tail latency vs offered load, uniform vs Zipf-skewed reads,
//! result cache off vs on, both backends). `fault-snapshot` runs the
//! failure-masking availability matrix (fault class x backend x retry
//! policy) and writes `BENCH_faults.json`. `scale-snapshot` runs the
//! scale-and-churn survival campaign (mixed Zipf read/write traffic
//! with churn, loss, a partition and a correlated mass failure all
//! active at once, N up to 4096 with `full`) and writes
//! `BENCH_scale.json`: ops/sec, tail latencies, replication repair
//! lag, routing staleness and per-node load skew vs N, both backends.

// The bench harness measures real elapsed time by design; wall-clock
// reads are sanctioned here (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use unistore::backends::{chord_config, ChordUniCluster};
use unistore::config::ScanPref;
use unistore::{BackoffPolicy, PlanMode, UniCluster, UniConfig};
use unistore_bench::{f, header, latency_summary, row};
use unistore_chord::node::ChordConfig;
use unistore_chord::{ChordCluster, ChordRangeMode};
use unistore_overlay::Overlay;
use unistore_pgrid::cluster::Topology;
use unistore_pgrid::{PGridCluster, PGridConfig, RangeMode};
use unistore_query::{RangeAlgo, ScanStrategy};
use unistore_simnet::churn::{install_churn, install_mass_failure, ChurnConfig};
use unistore_simnet::fault::{FaultPlan, Window};
use unistore_simnet::{ConstantLatency, NodeId, PlanetLabLatency, SimTime};
use unistore_store::index::{attr_value_key, oid_key, value_key};
use unistore_store::{Oid, Triple, Tuple, Value};
use unistore_util::item::RawItem;
use unistore_util::stats::{gini, percentile};
use unistore_util::zipf::Zipf;
use unistore_util::Key;
use unistore_workload::{PubParams, PubWorld};

const SEED: u64 = 20070415; // ICDE 2007

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    if args.iter().any(|a| a == "bench-snapshot") {
        bench_snapshot();
        return;
    }
    if args.iter().any(|a| a == "alloc-snapshot") {
        alloc_snapshot();
        return;
    }
    if args.iter().any(|a| a == "fault-snapshot") {
        fault_snapshot();
        return;
    }
    if args.iter().any(|a| a == "scale-snapshot") {
        scale_snapshot(&args);
        return;
    }
    if args.iter().any(|a| a == "determinism-check") {
        determinism_check();
        return;
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);
    if want("e1") {
        e1_scalability();
    }
    if want("e2") {
        e2_planetlab();
    }
    if want("e3") {
        e3_adaptivity();
    }
    if want("e4") {
        e4_fig2();
    }
    if want("e5") {
        e5_balance();
    }
    if want("e6") {
        e6_chord();
    }
    if want("e7") {
        e7_qgram();
    }
    if want("e8") {
        e8_costmodel();
    }
    if want("e9") {
        e9_skyline();
    }
    if want("e10") {
        e10_updates();
    }
    if want("e11") {
        e11_churn();
    }
    if want("e12") {
        e12_bootstrap();
    }
}

fn quiet_pgrid() -> PGridConfig {
    PGridConfig {
        maintenance_interval: SimTime::from_secs(1_000_000_000),
        anti_entropy_interval: SimTime::from_secs(1_000_000_000),
        ..PGridConfig::default()
    }
}

fn spread_keys(n: u64) -> Vec<u64> {
    (0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()
}

/// E1 — claim C1: "logarithmic search complexity in the number of
/// nodes".
fn e1_scalability() {
    println!("\n## E1 — lookup cost vs network size (claim: logarithmic)\n");
    header(&["peers N", "log2(N)", "avg hops", "max hops", "avg msgs"]);
    for exp in [4u32, 6, 8, 10, 12] {
        let n = 1usize << exp;
        let mut c: PGridCluster<RawItem> = PGridCluster::build(
            n,
            quiet_pgrid(),
            Topology::Uniform,
            ConstantLatency(SimTime::from_millis(10)),
            SEED,
        );
        let keys = spread_keys(512);
        for &k in &keys {
            c.preload(k, RawItem(k), 0);
        }
        let mut hops = Vec::new();
        let mut msgs = Vec::new();
        for i in 0..100 {
            let origin = c.random_peer();
            let out = c.lookup(origin, keys[i * 5 % keys.len()]);
            assert!(out.ok);
            hops.push(out.cost.hops as f64);
            msgs.push(out.cost.messages as f64);
        }
        row(&[
            n.to_string(),
            exp.to_string(),
            f(hops.iter().sum::<f64>() / hops.len() as f64),
            f(hops.iter().cloned().fold(0.0, f64::max)),
            f(msgs.iter().sum::<f64>() / msgs.len() as f64),
        ]);
    }
    println!("\nverdict: hops grow with log2(N) and stay bounded by the trie depth.");
}

/// E2 — claim C3: "even with up to 400 PlanetLab nodes query answer
/// times are still only a couple of seconds".
fn e2_planetlab() {
    println!("\n## E2 — 400 peers under PlanetLab latency (claim: couple of seconds)\n");
    let world = PubWorld::generate(
        &PubParams { n_authors: 150, n_conferences: 25, ..Default::default() },
        SEED,
    );
    let mut cluster = UniCluster::build_with_latency(
        400,
        UniConfig::default(),
        PlanetLabLatency::new(SEED),
        SEED,
    );
    cluster.load(world.all_tuples());
    let queries: Vec<(&str, String)> = vec![
        ("point", "SELECT ?v WHERE {('auth7','age',?v)}".into()),
        (
            "range",
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 40}".into(),
        ),
        (
            "3-way join",
            "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}"
                .into(),
        ),
        ("similarity", "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<3}".into()),
        (
            "skyline",
            "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age)
             (?a,'num_of_pubs',?cnt) (?a,'has_published',?title) (?p,'title',?title)
             (?p,'published_in',?conf) (?c,'confname',?conf)
             (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}
             ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"
                .into(),
        ),
    ];
    header(&["query", "p50 (s)", "p90 (s)", "p99 (s)", "avg msgs"]);
    for (label, q) in &queries {
        let mut lat = Vec::new();
        let mut msgs = Vec::new();
        for _ in 0..10 {
            let origin = cluster.random_node();
            let out = cluster.query(origin, q).expect("query parses");
            assert!(out.ok, "{label} timed out");
            lat.push(out.cost.latency.as_secs_f64());
            msgs.push(out.cost.messages as f64);
        }
        let (p50, p90, p99) = latency_summary(&lat);
        row(&[
            label.to_string(),
            f(p50),
            f(p90),
            f(p99),
            f(msgs.iter().sum::<f64>() / msgs.len() as f64),
        ]);
    }
    println!(
        "\nverdict: all query classes answer within a couple of (simulated) seconds at N=400."
    );
}

/// E3 — claim C7: identical queries, different strategies, different
/// performance depending on data; the optimizer picks well.
fn e3_adaptivity() {
    println!("\n## E3 — optimizer adaptivity (claim: strategy choice depends on data)\n");
    println!("similarity query: q-gram index vs naive sweep at two data scales\n");
    header(&["conferences", "strategy", "msgs", "bytes", "latency (ms)", "rows"]);
    for n_conf in [25usize, 400] {
        let world = PubWorld::generate(
            &PubParams {
                n_authors: 50,
                n_conferences: n_conf,
                typo_rate: 0.2,
                ..Default::default()
            },
            SEED,
        );
        for (label, pref) in [
            ("qgram", Some(ScanPref::QGram)),
            ("naive", Some(ScanPref::NaiveSimilarity)),
            ("auto", None),
        ] {
            let mut cluster = UniCluster::build(64, UniConfig::default(), SEED);
            cluster.load(world.all_tuples());
            cluster.set_plan_mode(PlanMode { scan_pref: pref, ..Default::default() });
            let out = cluster
                .query(NodeId(0), "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<2}")
                .unwrap();
            assert!(out.ok);
            row(&[
                n_conf.to_string(),
                label.to_string(),
                out.cost.messages.to_string(),
                out.cost.bytes.to_string(),
                f(out.cost.latency.as_millis_f64()),
                out.relation.len().to_string(),
            ]);
        }
    }
    println!("\njoin: fetch vs collect for selective and unselective left sides\n");
    header(&["left side", "strategy", "msgs", "latency (ms)", "rows"]);
    let world = PubWorld::generate(
        &PubParams { n_authors: 120, n_conferences: 20, ..Default::default() },
        SEED,
    );
    let selective = "SELECT ?t WHERE {(?a,'name','alice-0') (?a,'has_published',?t)
                     (?p,'title',?t) (?p,'year',?y)}";
    let unselective = "SELECT ?t WHERE {(?a,'name',?n) (?a,'has_published',?t)
                       (?p,'title',?t) (?p,'year',?y)}";
    for (side, q) in [("1 author", selective), ("all authors", unselective)] {
        for (label, pref) in [
            ("fetch", Some(unistore_query::JoinStrategy::Fetch)),
            ("collect", Some(unistore_query::JoinStrategy::Collect)),
            ("auto", None),
        ] {
            let mut cluster = UniCluster::build(64, UniConfig::default(), SEED);
            cluster.load(world.all_tuples());
            cluster.set_plan_mode(PlanMode { join_pref: pref, ..Default::default() });
            let out = cluster.query(NodeId(0), q).unwrap();
            assert!(out.ok);
            row(&[
                side.to_string(),
                label.to_string(),
                out.cost.messages.to_string(),
                f(out.cost.latency.as_millis_f64()),
                out.relation.len().to_string(),
            ]);
        }
    }
    println!("\nverdict: no single strategy dominates; the cost-based choice tracks the winner.");
}

/// E4 — Fig. 2: 2 tuples → 18 index entries over 8 peers; all three
/// indexes answer.
fn e4_fig2() {
    println!("\n## E4 — Fig. 2 reproduction (2 tuples, 3 indexes, 8 peers)\n");
    // The figure shows the three primary indexes, hence no q-grams.
    let cfg = UniConfig { with_qgrams: false, balanced: false, ..UniConfig::default() };
    let mut cluster = UniCluster::build(8, cfg, SEED);
    cluster.load(vec![
        Tuple::new("a12")
            .with("title", Value::str("Similarity..."))
            .with("confname", Value::str("ICDE 2006 - Workshops"))
            .with("year", Value::Int(2006)),
        Tuple::new("v34")
            .with("title", Value::str("Progressive..."))
            .with("confname", Value::str("ICDE 2005"))
            .with("year", Value::Int(2005)),
    ]);
    header(&["peer", "trie path", "stored index entries"]);
    let mut total = 0;
    for (id, node) in cluster.net.iter_nodes() {
        let n = node.overlay.store().len();
        total += n;
        row(&[id.to_string(), node.overlay.path().to_string(), n.to_string()]);
    }
    println!("\ntotal entries: {total} (paper: 18 = 2 tuples × 3 attributes × 3 indexes)");
    let (by_oid, c1) = cluster.raw_lookup(NodeId(0), oid_key(&Oid::new("a12")));
    let (by_av, c2) = cluster.raw_lookup(NodeId(1), attr_value_key("year", &Value::Int(2005)));
    let (by_v, c3) = cluster.raw_lookup(NodeId(2), value_key(&Value::Int(2006)));
    println!(
        "OID index:  {} triples of a12 in {} hops (reproduction of origin tuple)",
        by_oid.len(),
        c1.hops
    );
    println!(
        "A#v index:  {} triple for year=2005 in {} hops (A_i ≥ v_i queries)",
        by_av.len(),
        c2.hops
    );
    println!(
        "v index:    {} triple for value 2006 in {} hops (attribute-open queries)",
        by_v.len(),
        c3.hops
    );
    assert_eq!(total, 18);
    assert_eq!(by_oid.len(), 3);
}

/// E5 — claim C5: load balancing copes with arbitrary skew.
fn e5_balance() {
    println!("\n## E5 — storage balance under skew (claim: balancing handles skew)\n");
    header(&["zipf θ", "topology", "gini", "max/avg load"]);
    for theta in [0.0f64, 0.5, 0.8, 1.0, 1.2] {
        let mut rng = unistore_util::rng::derive_rng(SEED, 77);
        let zipf = Zipf::new(512, theta);
        // 512 Zipf-weighted regions tile the FULL key space, so at θ=0
        // the uniform trie is a fair baseline; skew then concentrates
        // density without shrinking the domain.
        let keys: Vec<u64> = (0..20_000)
            .map(|_| {
                ((zipf.sample(&mut rng) as u64) << 55)
                    | rand::Rng::gen_range(&mut rng, 0..(1u64 << 55))
            })
            .collect();
        for balanced in [true, false] {
            let topo = if balanced {
                Topology::Balanced { sample: keys.clone() }
            } else {
                Topology::Uniform
            };
            let mut c: PGridCluster<RawItem> = PGridCluster::build(
                64,
                quiet_pgrid(),
                topo,
                ConstantLatency(SimTime::from_millis(1)),
                SEED,
            );
            for (i, &k) in keys.iter().enumerate() {
                c.preload(k, RawItem(i as u64), 0);
            }
            let loads = c.storage_loads();
            let avg = loads.iter().sum::<f64>() / loads.len() as f64;
            let max = loads.iter().cloned().fold(0.0, f64::max);
            row(&[
                format!("{theta:.1}"),
                if balanced { "balanced (P-Grid)" } else { "uniform (strawman)" }.to_string(),
                f(gini(&loads)),
                f(max / avg.max(1.0)),
            ]);
        }
    }
    println!("\nverdict: the data-adaptive trie keeps Gini low as skew grows; the uniform trie degrades.");
}

/// E6 — claim C4: P-Grid answers range queries natively; Chord needs an
/// additional structure or a broadcast.
fn e6_chord() {
    println!(
        "\n## E6 — range queries: P-Grid native vs Chord (claim: Chord needs extra structure)\n"
    );
    let n = 256usize;
    let n_keys = 4096u64;
    let keys: Vec<u64> = (0..n_keys).map(|i| i << 52).collect();

    let mut pg: PGridCluster<RawItem> = PGridCluster::build(
        n,
        quiet_pgrid(),
        Topology::Uniform,
        ConstantLatency(SimTime::from_millis(10)),
        SEED,
    );
    for &k in &keys {
        pg.preload(k, RawItem(k >> 52), 0);
    }
    let mut ch: ChordCluster<RawItem> = ChordCluster::build(
        n,
        ChordConfig::default(),
        ConstantLatency(SimTime::from_millis(10)),
        SEED,
    );
    for &k in &keys {
        ch.preload(k, RawItem(k >> 52));
    }

    header(&["selectivity", "system", "msgs", "latency (ms)", "rows"]);
    for frac in [0.001f64, 0.01, 0.1, 0.5] {
        let width = (n_keys as f64 * frac) as u64;
        let lo = 100u64 << 52;
        let hi = (100 + width.max(1) - 1) << 52;
        let expect = width.max(1) as usize;

        let out = pg.range(NodeId(0), lo, hi, RangeMode::Parallel);
        assert!(
            out.complete && out.items.len() == expect,
            "pgrid {} vs {}",
            out.items.len(),
            expect
        );
        row(&[
            format!("{:.1}%", frac * 100.0),
            "P-Grid (native)".into(),
            out.cost.messages.to_string(),
            f(out.cost.latency.as_millis_f64()),
            out.items.len().to_string(),
        ]);

        let out = ch.range(NodeId(0), lo, hi, ChordRangeMode::Buckets);
        assert!(out.complete);
        let mut rows_set: Vec<u64> = out.entries.iter().map(|(k, _)| *k).collect();
        rows_set.sort_unstable();
        rows_set.dedup();
        assert_eq!(rows_set.len(), expect, "chord buckets incomplete");
        row(&[
            format!("{:.1}%", frac * 100.0),
            "Chord + bucket index".into(),
            out.cost.messages.to_string(),
            f(out.cost.latency.as_millis_f64()),
            rows_set.len().to_string(),
        ]);

        let out = ch.range(NodeId(0), lo, hi, ChordRangeMode::Broadcast);
        assert!(out.complete);
        let mut rows_set: Vec<u64> = out.entries.iter().map(|(k, _)| *k).collect();
        rows_set.sort_unstable();
        rows_set.dedup();
        row(&[
            format!("{:.1}%", frac * 100.0),
            "Chord broadcast".into(),
            out.cost.messages.to_string(),
            f(out.cost.latency.as_millis_f64()),
            rows_set.len().to_string(),
        ]);
    }

    // The full stack over both backends: identical VQL queries through
    // the same MQP pipeline, P-Grid native vs Chord + bucket index.
    println!("\nreal queries over both overlays (identical VQL, identical optimizer)\n");
    let world = PubWorld::generate(
        &PubParams { n_authors: 80, n_conferences: 15, ..Default::default() },
        SEED,
    );
    let queries: Vec<(&str, &str)> = vec![
        ("point", "SELECT ?v WHERE {('auth7','age',?v)}"),
        ("range", "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 40}"),
        (
            "3-way join",
            "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}",
        ),
        (
            "5-way join",
            "SELECT ?n,?cn,?y WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?cn)
             (?c,'confname',?cn) (?c,'year',?y)}",
        ),
    ];
    let mut pg_uni = UniCluster::build(64, UniConfig::default(), SEED);
    pg_uni.load(world.all_tuples());
    let mut ch_uni = ChordUniCluster::build_overlay(64, chord_config(), SEED);
    ch_uni.load(world.all_tuples());
    header(&["query", "system", "msgs", "hops", "KiB", "latency (ms)", "rows"]);
    for (label, q) in &queries {
        let pg_out = pg_uni.query(NodeId(0), q).unwrap();
        assert!(pg_out.ok, "{label} timed out on P-Grid");
        let ch_out = ch_uni.query(NodeId(0), q).unwrap();
        assert!(ch_out.ok, "{label} timed out on Chord");
        let canon = |r: &unistore_query::Relation| {
            let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(
            canon(&pg_out.relation),
            canon(&ch_out.relation),
            "{label}: backends must agree on the answer"
        );
        let pg_name = <unistore_pgrid::PGridPeer<Triple> as Overlay>::NAME;
        let ch_name = format!("{}+buckets", <unistore_chord::ChordNode<Triple> as Overlay>::NAME);
        for (system, out) in [(pg_name.to_string(), &pg_out), (ch_name, &ch_out)] {
            row(&[
                label.to_string(),
                system,
                out.cost.messages.to_string(),
                out.cost.hops.to_string(),
                f(out.cost.bytes as f64 / 1024.0),
                f(out.cost.latency.as_millis_f64()),
                out.relation.len().to_string(),
            ]);
        }
    }
    println!("\nverdict: P-Grid's native ranges beat both Chord variants on raw ops; on full");
    println!("VQL plans the auxiliary bucket index keeps Chord's answers identical but every");
    println!("query pays more hops, bytes and latency — the paper's §2 'additional");
    println!("structures' cost, now measured under the real optimizer instead of asserted.");

    // Join-strategy shootout: collect vs fetch vs Bloom-filtered
    // semi-join pushdown, on both backends, result-checked against the
    // oracle. The cost model prices plans by shipped bytes; this is
    // where the semi-join earns its keep.
    println!("\njoin strategies on the multi-join workloads (KiB is the headline column)\n");
    let rows = join_strategy_comparison();
    header(&["query", "system", "strategy", "msgs", "hops", "KiB", "latency (ms)", "rows"]);
    for r in &rows {
        row(&[
            r.query.clone(),
            r.backend.clone(),
            r.strategy.clone(),
            r.msgs.to_string(),
            r.hops.to_string(),
            f(r.kib),
            f(r.latency_ms),
            r.rows.to_string(),
        ]);
    }
    report_semi_join_savings(&rows);
    println!("\nverdict: shipping a Bloom filter over the left side's join keys lets the");
    println!("leaves drop non-matching triples before replying — same message structure as");
    println!("collect, a fraction of its bytes, and identical relations on both backends.");
}

/// One measured (query, backend, strategy) cell of the join comparison.
struct JoinRow {
    query: String,
    backend: String,
    strategy: String,
    msgs: u64,
    hops: u32,
    kib: f64,
    latency_ms: f64,
    rows: usize,
}

/// Runs the 3-way and 5-way join workloads under every join strategy on
/// both backends, asserting every result equals the local oracle.
///
/// The world is *universal-storage shaped*: besides the publication
/// graph it carries twice as many unpublished drafts, whose `title` and
/// `year` entries share the scanned index regions but join with
/// nothing. That is the regime the paper's Fig. 2 layout implies —
/// heterogeneous data accumulating in shared attribute regions — and
/// it is what collect ships to the plan holder while the semi-join
/// filter drops it at the leaves.
fn join_strategy_comparison() -> Vec<JoinRow> {
    use unistore_query::JoinStrategy;

    let world = PubWorld::generate(
        &PubParams { n_authors: 80, n_conferences: 15, draft_fraction: 2.0, ..Default::default() },
        SEED,
    );
    let queries: Vec<(&str, &str)> = vec![
        (
            "3-way join",
            "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}",
        ),
        (
            "5-way join",
            "SELECT ?n,?cn,?y WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?cn)
             (?c,'confname',?cn) (?c,'year',?y)}",
        ),
    ];
    let strategies: Vec<(&str, PlanMode)> = vec![
        ("collect", PlanMode { join_pref: Some(JoinStrategy::Collect), ..Default::default() }),
        ("fetch", PlanMode { join_pref: Some(JoinStrategy::Fetch), ..Default::default() }),
        ("semi-join", PlanMode { join_pref: Some(JoinStrategy::SemiJoin), ..Default::default() }),
        ("auto", PlanMode::default()),
    ];
    let canon = |r: &unistore_query::Relation| {
        let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
        rows.sort();
        rows
    };
    // One deployment per backend; only the planner mode changes between
    // runs (queries are read-only and costs are measured as metric
    // deltas, so reuse is safe and keeps the CI step cheap).
    let mut pg = UniCluster::build(64, UniConfig::default(), SEED);
    pg.load(world.all_tuples());
    let mut ch = ChordUniCluster::build_overlay(64, chord_config(), SEED);
    ch.load(world.all_tuples());
    let mut out = Vec::new();
    for (label, q) in &queries {
        let oracle = canon(&pg.oracle().query(q).expect("oracle parses"));
        for (strat, mode) in &strategies {
            pg.set_plan_mode(*mode);
            ch.set_plan_mode(*mode);
            for (backend, outcome) in [
                ("P-Grid", pg.query(NodeId(0), q).unwrap()),
                ("Chord+buckets", ch.query(NodeId(0), q).unwrap()),
            ] {
                assert!(outcome.ok, "{label}/{strat} timed out on {backend}");
                assert_eq!(
                    canon(&outcome.relation),
                    oracle,
                    "{label}/{strat} diverged from the oracle on {backend}"
                );
                out.push(JoinRow {
                    query: label.to_string(),
                    backend: backend.to_string(),
                    strategy: strat.to_string(),
                    msgs: outcome.cost.messages,
                    hops: outcome.cost.hops,
                    kib: outcome.cost.bytes as f64 / 1024.0,
                    latency_ms: outcome.cost.latency.as_millis_f64(),
                    rows: outcome.relation.len(),
                });
            }
        }
    }
    out
}

/// Prints the semi-join's shipped-KiB reduction against collect and
/// checks the headline claim (≥ 30% on the 5-way join, both backends).
fn report_semi_join_savings(rows: &[JoinRow]) {
    println!();
    for query in ["3-way join", "5-way join"] {
        for backend in ["P-Grid", "Chord+buckets"] {
            let kib = |strategy: &str| {
                rows.iter()
                    .find(|r| r.query == query && r.backend == backend && r.strategy == strategy)
                    .map(|r| r.kib)
                    .unwrap_or(f64::NAN)
            };
            let (collect, semi) = (kib("collect"), kib("semi-join"));
            let cut = 100.0 * (1.0 - semi / collect);
            println!(
                "{query} / {backend}: semi-join ships {semi:.1} KiB vs collect {collect:.1} KiB \
                 ({cut:.0}% less)"
            );
            if query == "5-way join" {
                assert!(
                    semi <= 0.7 * collect,
                    "semi-join must cut >= 30% of shipped KiB on the 5-way join \
                     ({backend}: {semi:.1} vs {collect:.1})"
                );
            }
        }
    }
}

/// Headless CI entry: runs the join comparison and writes
/// `BENCH_joins.json` for the perf-trajectory record.
fn bench_snapshot() {
    let rows = join_strategy_comparison();
    report_semi_join_savings(&rows);
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"query\": \"{}\", \"backend\": \"{}\", \"strategy\": \"{}\", \
             \"msgs\": {}, \"hops\": {}, \"kib\": {:.3}, \"latency_ms\": {:.3}, \
             \"rows\": {}}}{}\n",
            r.query,
            r.backend,
            r.strategy,
            r.msgs,
            r.hops,
            r.kib,
            r.latency_ms,
            r.rows,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_joins.json", &json).expect("write BENCH_joins.json");
    println!("\nwrote BENCH_joins.json ({} rows)", rows.len());
    stats_snapshot();
    ingest_snapshot();
    concurrency_snapshot();
    alloc_snapshot();
}

/// One measured cell of the allocation record.
struct AllocRow {
    section: &'static str,
    case: &'static str,
    ops: usize,
    allocs_per_op: f64,
    bytes_per_op: f64,
}

/// Headless CI entry #5: the allocation trajectory of the hot paths.
///
/// Measures steady-state allocations per operation (after a warmup
/// pass that fills the wire-buffer pool and the attribute interner)
/// with the counting global allocator in `unistore_bench::alloc`, and
/// asserts the zero-allocation claims in-code:
///
/// * message sizing (`wire_size`) and wire decode allocate ≥ 5x less
///   than the pre-pooling baselines, which are re-implemented here
///   verbatim (fresh unreserved buffer per encode; the
///   copy → `String` → `Arc` chain per decoded string);
/// * a filtered leaf scan's allocations are independent of how many
///   candidates the semi-join filter drops — dropped candidates are
///   never materialized on either backend's store.
fn alloc_snapshot() {
    use std::sync::Arc;

    use bytes::{Buf, Bytes, BytesMut};
    use unistore_bench::alloc::{measure, AllocStats};
    use unistore_chord::store::{collect_keyed, ChordStore};
    use unistore_pgrid::LocalStore;
    use unistore_store::index::TripleKeys;
    use unistore_store::triple::field;
    use unistore_util::item::Item;
    use unistore_util::wire::{get_varint, OpBatch, Wire};
    use unistore_util::{BloomFilter, ItemFilter};

    println!("\n## allocation snapshot (allocs/op, steady state)\n");
    let mut rows: Vec<AllocRow> = Vec::new();
    let mut push = |section: &'static str, case: &'static str, ops: usize, s: AllocStats| {
        let r = AllocRow {
            section,
            case,
            ops,
            allocs_per_op: s.allocs_per_op(ops),
            bytes_per_op: s.bytes_per_op(ops),
        };
        println!(
            "{section:>10} / {case:<28} {:>8.2} allocs/op {:>10.1} bytes/op",
            r.allocs_per_op, r.bytes_per_op
        );
        rows.push(r);
        rows.last().unwrap().allocs_per_op
    };

    // --- encode: pooled wire_size vs the pre-pooling baseline -------
    // The batch mirrors `wire_batch.rs`: 64 write ops with full index
    // fan-out and shared payloads, the unit `insert_batch` ships.
    let batch = {
        let mut batch = OpBatch::new();
        let mut i = 0usize;
        while batch.len() < 64 {
            let t = Triple::new(
                &format!("obj{i}"),
                if i % 2 == 0 { "title" } else { "year" },
                if i % 2 == 0 {
                    Value::str(&format!("Similarity Queries on Structured Data {i}"))
                } else {
                    Value::Int(1990 + (i % 30) as i64)
                },
            );
            let keys = TripleKeys::derive(&t, true).all();
            let item = batch.add_item(t);
            for key in keys {
                if batch.len() >= 64 {
                    break;
                }
                batch.push_insert(key, item, 0);
            }
            i += 1;
        }
        batch
    };
    const ITERS: usize = 256;
    // Warmup: fills the thread-local buffer pool.
    for _ in 0..8 {
        std::hint::black_box(batch.wire_size());
    }
    let (_, pooled) = measure(|| {
        for _ in 0..ITERS {
            std::hint::black_box(batch.wire_size());
        }
    });
    // The pre-PR default `wire_size`, verbatim: encode into a fresh,
    // unreserved scratch buffer and throw it away.
    let (_, naive_enc) = measure(|| {
        for _ in 0..ITERS {
            let mut buf = BytesMut::new();
            batch.encode(&mut buf);
            std::hint::black_box(buf.len());
        }
    });
    let pooled_rate = push("encode", "pooled wire_size (64-op batch)", ITERS, pooled);
    let naive_rate = push("encode", "naive fresh-buffer baseline", ITERS, naive_enc);
    assert!(
        naive_rate >= 5.0 * pooled_rate && naive_rate >= 1.0,
        "pooled wire_size must allocate >= 5x less than the fresh-buffer \
         baseline (pooled {pooled_rate:.2}, naive {naive_rate:.2} allocs/op)"
    );
    let (_, ship) = measure(|| {
        for _ in 0..ITERS {
            std::hint::black_box(batch.to_bytes().len());
        }
    });
    push("encode", "to_bytes (exact capacity)", ITERS, ship);

    // --- decode: in-place strings vs the copy-chain baseline --------
    // A stream of short-string triples (inline in `CompactStr`, attr
    // interned), decoded back-to-back. The naive decoder replays the
    // pre-PR byte handling: every string detaches a view, copies it
    // into an owned `String`, then copies again into an `Arc<str>`.
    let triples: Vec<Triple> = (0..64)
        .map(|i| {
            Triple::new(&format!("obj{i}"), "published_in", Value::str(&format!("c{}", i % 10)))
        })
        .collect();
    let stream = {
        let mut buf = BytesMut::new();
        for t in &triples {
            t.encode(&mut buf);
        }
        buf.freeze()
    };
    fn naive_str(buf: &mut Bytes) -> Arc<str> {
        let len = get_varint(buf).expect("len") as usize;
        let raw = buf.copy_to_bytes(len);
        let s = String::from_utf8(raw.to_vec()).expect("utf8");
        Arc::from(s)
    }
    fn naive_triple(buf: &mut Bytes) -> (Arc<str>, Arc<str>, Arc<str>) {
        let oid = naive_str(buf);
        let attr = naive_str(buf);
        let tag = u8::decode(buf).expect("tag");
        assert_eq!(tag, 0, "stream is all-string values");
        (oid, attr, naive_str(buf))
    }
    // Warmup interns the attribute.
    {
        let mut b = stream.clone();
        while !b.is_empty() {
            std::hint::black_box(Triple::decode(&mut b).expect("decode"));
        }
    }
    let n_triples = triples.len();
    const DECODE_PASSES: usize = 64;
    let (_, inplace) = measure(|| {
        for _ in 0..DECODE_PASSES {
            let mut b = stream.clone();
            while !b.is_empty() {
                std::hint::black_box(Triple::decode(&mut b).expect("decode"));
            }
        }
    });
    let (_, naive_dec) = measure(|| {
        for _ in 0..DECODE_PASSES {
            let mut b = stream.clone();
            while !b.is_empty() {
                std::hint::black_box(naive_triple(&mut b));
            }
        }
    });
    let ops = DECODE_PASSES * n_triples;
    let inplace_rate = push("decode", "in-place (intern + inline)", ops, inplace);
    let naive_dec_rate = push("decode", "naive copy-chain baseline", ops, naive_dec);
    assert!(
        naive_dec_rate >= 5.0 * inplace_rate && naive_dec_rate >= 1.0,
        "in-place decode must allocate >= 5x less than the copy-chain \
         baseline (in-place {inplace_rate:.2}, naive {naive_dec_rate:.2} allocs/op)"
    );

    // --- leaf scan: allocations independent of dropped candidates ---
    // A filtered scan clones only survivors; piling 16x more dropped
    // candidates under the same key must not change allocs/op.
    let survivors: Vec<Triple> =
        (0..8).map(|i| Triple::new(&format!("s{i}"), "year", Value::Int(2000 + i))).collect();
    let bloom = BloomFilter::from_hashes(
        survivors.iter().map(|t| t.field_hash(field::VALUE).expect("value hash")),
        1e-4,
    );
    let filter = Some(ItemFilter { field: field::VALUE, bloom });
    const SCAN_PASSES: usize = 256;
    let mut scan_rates = [0.0f64; 2];
    for (slot, dropped) in [(0usize, 100usize), (1, 1600)] {
        let mut pg: LocalStore<Triple> = LocalStore::new();
        let mut ch: ChordStore<Triple> = ChordStore::new();
        for (i, t) in survivors.iter().enumerate() {
            pg.apply(7, t.clone(), 0);
            ch.insert(7, i as u64, t.clone(), 0);
        }
        for i in 0..dropped {
            let t = Triple::new(&format!("d{i}"), "year", Value::Int(10_000 + i as i64));
            pg.apply(7, t.clone(), 0);
            ch.insert(7, 1000 + i as u64, t, 0);
        }
        std::hint::black_box(ItemFilter::collect_filtered(&filter, pg.iter_key(7)));
        let (_, scan) = measure(|| {
            for _ in 0..SCAN_PASSES {
                std::hint::black_box(ItemFilter::collect_filtered(&filter, pg.iter_key(7)));
            }
        });
        let case = if dropped == 100 { "pgrid, 100 dropped" } else { "pgrid, 1600 dropped" };
        scan_rates[slot] = push("leaf-scan", case, SCAN_PASSES, scan);
        let (_, keyed) = measure(|| {
            for _ in 0..SCAN_PASSES {
                std::hint::black_box(collect_keyed(&filter, ch.iter_ring(7)));
            }
        });
        let case = if dropped == 100 { "chord, 100 dropped" } else { "chord, 1600 dropped" };
        push("leaf-scan", case, SCAN_PASSES, keyed);
        // The materializing baseline (clone everything, then retain)
        // is recorded for contrast: its bytes/op scale with `dropped`.
        let (_, mat) = measure(|| {
            for _ in 0..SCAN_PASSES {
                let mut v = pg.get(7);
                ItemFilter::retain(&filter, &mut v);
                std::hint::black_box(v);
            }
        });
        let case =
            if dropped == 100 { "materialize, 100 dropped" } else { "materialize, 1600 dropped" };
        push("leaf-scan", case, SCAN_PASSES, mat);
    }
    assert!(
        scan_rates[1] <= scan_rates[0] + 0.5,
        "filtered leaf-scan allocs/op must be independent of dropped candidates \
         (100 dropped: {:.2}, 1600 dropped: {:.2})",
        scan_rates[0],
        scan_rates[1]
    );

    // --- end-to-end: the 3-way join on both backends (trend only) ---
    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        SEED,
    );
    let q = "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}";
    let mut pg = UniCluster::build(16, UniConfig::default(), SEED);
    pg.load(world.all_tuples());
    assert!(pg.query(NodeId(0), q).expect("warmup").ok, "warmup completes");
    let (out, pg_alloc) = measure(|| pg.query(NodeId(1), q).expect("query"));
    assert!(out.ok, "3-way join timed out on P-Grid");
    push("join3", "P-Grid", 1, pg_alloc);
    let mut ch = ChordUniCluster::build_overlay(16, chord_config(), SEED);
    ch.load(world.all_tuples());
    assert!(ch.query(NodeId(0), q).expect("warmup").ok, "warmup completes");
    let (out, ch_alloc) = measure(|| ch.query(NodeId(1), q).expect("query"));
    assert!(out.ok, "3-way join timed out on Chord");
    push("join3", "Chord+buckets", 1, ch_alloc);

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"section\": \"{}\", \"case\": \"{}\", \"ops\": {}, \
             \"allocs_per_op\": {:.3}, \"bytes_per_op\": {:.1}}}{}\n",
            r.section,
            r.case,
            r.ops,
            r.allocs_per_op,
            r.bytes_per_op,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_alloc.json", &json).expect("write BENCH_alloc.json");
    println!("wrote BENCH_alloc.json ({} rows)", rows.len());
}

/// One measured cell of the concurrency comparison.
struct ConcRow {
    backend: &'static str,
    dist: &'static str,
    cache: &'static str,
    window: usize,
    queries: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    cache_hits: u64,
}

/// Headless CI entry #4: the concurrent query pipeline. Drives the
/// same Zipf- or uniform-skewed point-read mix through the pipelined
/// driver at two offered loads (admission windows of 8 and 32), with
/// the node-local result cache off and on, on both backends. Reports
/// simulated-time throughput and p50/p99 latency and asserts the
/// headline in-code: with the replica/cache read path enabled, the
/// Zipf p99 beats the cache-off p99 at the same offered load.
fn concurrency_snapshot() {
    const N_QUERIES: usize = 96;
    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        SEED,
    );
    let quiet = SimTime::from_secs(1_000_000_000);

    /// One pipelined pass from cold caches: the whole mix is submitted
    /// up front, so reported latency includes the admission-queue wait
    /// beyond the window — the tail a client at this offered load
    /// observes. Returns `(qps, p50, p99, hits)` in simulated time.
    fn run<O: Overlay<Item = Triple>>(
        cluster: &mut UniCluster<O>,
        queries: &[String],
    ) -> (f64, f64, f64, u64) {
        let n = cluster.net.len() as u32;
        let t0 = cluster.net.now();
        for (i, q) in queries.iter().enumerate() {
            cluster.query_submit(NodeId(i as u32 % n), q).expect("query parses");
        }
        let outcomes = cluster.query_wait_all();
        let mut lat: Vec<f64> = Vec::with_capacity(outcomes.len());
        for (i, (_, out)) in outcomes.into_iter().enumerate() {
            assert!(out.ok, "concurrency bench query {i} timed out");
            lat.push(out.cost.latency.as_micros() as f64 / 1000.0);
        }
        let elapsed = (cluster.net.now().saturating_sub(t0)).as_micros() as f64 / 1e6;
        let (p50, _, p99) = latency_summary(&lat);
        let hits: u64 = (0..n).map(|i| cluster.net.node(NodeId(i)).cache_hits).sum();
        (queries.len() as f64 / elapsed.max(1e-9), p50, p99, hits)
    }

    let mut rows: Vec<ConcRow> = Vec::new();
    for (dist, theta) in [("uniform", 0.0), ("zipf1.5", 1.5)] {
        let queries =
            unistore_workload::zipf_read_queries(&world, "published_in", N_QUERIES, theta, SEED);
        for window in [8usize, 32] {
            for (cache_label, cache_cap) in [("off", 0usize), ("on", 64)] {
                for backend in ["P-Grid", "Chord+buckets"] {
                    let (qps, p50, p99, hits) = if backend == "P-Grid" {
                        let cfg = UniConfig::default()
                            .with_stats_refresh(quiet)
                            .with_max_in_flight(window)
                            .with_result_cache(cache_cap);
                        let mut c = UniCluster::build(16, cfg, SEED);
                        c.load(world.all_tuples());
                        run(&mut c, &queries)
                    } else {
                        let cfg = chord_config()
                            .with_stats_refresh(quiet)
                            .with_max_in_flight(window)
                            .with_result_cache(cache_cap);
                        let mut c = ChordUniCluster::build_overlay(16, cfg, SEED);
                        c.load(world.all_tuples());
                        run(&mut c, &queries)
                    };
                    rows.push(ConcRow {
                        backend,
                        dist,
                        cache: cache_label,
                        window,
                        queries: N_QUERIES,
                        qps,
                        p50_ms: p50,
                        p99_ms: p99,
                        cache_hits: hits,
                    });
                }
            }
        }
    }

    println!("\n## Concurrency — pipelined reads vs offered load (16 nodes)\n");
    header(&["backend", "dist", "cache", "window", "qps(sim)", "p50 ms", "p99 ms", "hits"]);
    for r in &rows {
        row(&[
            r.backend.to_string(),
            r.dist.to_string(),
            r.cache.to_string(),
            r.window.to_string(),
            f(r.qps),
            f(r.p50_ms),
            f(r.p99_ms),
            r.cache_hits.to_string(),
        ]);
    }

    for backend in ["P-Grid", "Chord+buckets"] {
        for window in [8usize, 32] {
            let cell = |cache: &str| {
                rows.iter()
                    .find(|r| {
                        r.backend == backend
                            && r.dist == "zipf1.5"
                            && r.window == window
                            && r.cache == cache
                    })
                    .expect("cell")
            };
            let (off, on) = (cell("off"), cell("on"));
            println!(
                "{backend} zipf w={window}: p99 {} -> {} ms, qps {} -> {}",
                f(off.p99_ms),
                f(on.p99_ms),
                f(off.qps),
                f(on.qps)
            );
            assert!(
                on.p99_ms < off.p99_ms,
                "{backend} w={window}: Zipf p99 with the cache/replica read path \
                 ({:.3} ms) must beat cache-off ({:.3} ms) at the same offered load",
                on.p99_ms,
                off.p99_ms
            );
            assert!(
                on.cache_hits > 0,
                "{backend} w={window}: the Zipf mix must actually hit the result cache"
            );
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"backend\": \"{}\", \"dist\": \"{}\", \"cache\": \"{}\", \
             \"window\": {}, \"queries\": {}, \"qps_sim\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"cache_hits\": {}}}{}\n",
            r.backend,
            r.dist,
            r.cache,
            r.window,
            r.queries,
            r.qps,
            r.p50_ms,
            r.p99_ms,
            r.cache_hits,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_concurrency.json", &json).expect("write BENCH_concurrency.json");
    println!("wrote BENCH_concurrency.json ({} rows)", rows.len());
}

/// One measured cell of the fault-availability matrix.
struct FaultRow {
    backend: &'static str,
    scenario: &'static str,
    mix: &'static str,
    policy: &'static str,
    queries: usize,
    completed: usize,
    cov90: usize,
    mean_cov: f64,
    p50_ms: f64,
    p99_ms: f64,
    hedges: u64,
}

/// Headless CI entry #5: the failure-masking query layer. Runs the
/// availability matrix (fault class x backend x retry policy): a
/// healthy control, moderate churn + 2% message loss under point and
/// scan mixes, and a lossy degraded path where the adaptive hedged
/// policy races a fixed-interval retry baseline. In-code floors pin
/// the availability claims; writes `BENCH_faults.json`.
/// `determinism-check`: the CI gate behind the repo's central premise —
/// the simulator is a correctness oracle only while same-seed runs are
/// bit-identical. Runs the mixed E6-style VQL workload under moderate
/// churn plus 2% loss **twice** with the same seed, on **both**
/// backends, with the [`SimNet`] message-trace digest enabled, and
/// asserts the two runs produce identical trace digests, network
/// metrics, and result digests. Any hash-map iteration order, wall
/// clock, or entropy leak that reaches protocol behavior shows up here
/// as a digest mismatch (std `HashMap`'s per-map random seeds differ
/// even within one process, so a leak cannot hide behind a stable
/// environment).
fn determinism_check() {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        SEED,
    );
    let mixed: Vec<String> = {
        let mut v = unistore_workload::zipf_read_queries(&world, "published_in", 8, 0.8, SEED ^ 1);
        v.push("SELECT ?n WHERE {(?a,'name',?n)}".into());
        v.push("SELECT ?c WHERE {(?x,'confname',?c)}".into());
        v.push("SELECT ?n,?p WHERE {(?a,'name',?n) (?a,'num_of_pubs',?p) FILTER ?p < 8}".into());
        v.push("SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}".into());
        v
    };

    /// One full traced run: build → load → churn + loss → query mix.
    /// Returns (trace digest, net metrics, result digest).
    fn run<O: Overlay<Item = Triple>>(
        mut cluster: UniCluster<O>,
        world: &PubWorld,
        queries: &[String],
    ) -> (u64, unistore_simnet::NetMetrics, u64) {
        cluster.net.set_trace(true);
        cluster.load(world.all_tuples());
        let mut rng = unistore_util::rng::derive_rng(SEED, unistore_util::rng::stream::CHURN);
        let churned = install_churn(
            &mut cluster.net,
            &mut rng,
            &ChurnConfig::moderate(),
            SimTime::from_secs(7_200),
        );
        let n = cluster.net.len() as u32;
        let origins: Vec<NodeId> =
            (0..n).map(NodeId).filter(|id| !churned.contains(id)).take(4).collect();
        cluster.net.set_loss_rate(0.02);
        cluster.settle(SimTime::from_secs(300));
        let mut results = FNV_OFFSET;
        for (i, q) in queries.iter().enumerate() {
            if let Ok(out) = cluster.query(origins[i % origins.len()], q) {
                let line = format!(
                    "{:?}|{:?}|{}|{:.6}",
                    out.relation.schema,
                    out.relation.rows,
                    out.ok,
                    out.coverage.fraction()
                );
                results = fnv(results, line.as_bytes());
            }
            cluster.settle(SimTime::from_secs(5));
        }
        (cluster.net.trace_digest(), cluster.net.metrics(), results)
    }

    println!("\n## determinism-check — same-seed double runs must be bit-identical\n");
    header(&["backend", "peers", "trace digest", "msgs sent", "bytes", "result digest", "verdict"]);
    let mut ok = true;
    for (backend, peers) in
        [("P-Grid", 16), ("P-Grid", 64), ("Chord+buckets", 16), ("Chord+buckets", 64)]
    {
        let (a, b) = if backend == "P-Grid" {
            let cfg = || {
                let mut cfg = UniConfig::default()
                    .with_replication(3)
                    .with_maintenance(SimTime::from_secs(10), SimTime::from_secs(30))
                    .with_min_coverage(0.9);
                cfg.query_timeout = SimTime::from_secs(30);
                cfg.overlay.query_timeout = SimTime::from_secs(8);
                cfg
            };
            (
                run(UniCluster::build(peers, cfg(), SEED), &world, &mixed),
                run(UniCluster::build(peers, cfg(), SEED), &world, &mixed),
            )
        } else {
            let cfg = || {
                let mut cfg = chord_config().with_min_coverage(0.9);
                cfg.overlay.replicate = true;
                cfg.overlay.anti_entropy_interval = SimTime::from_secs(30);
                cfg.overlay.ping_interval = SimTime::from_secs(10);
                cfg.query_timeout = SimTime::from_secs(30);
                cfg.overlay.query_timeout = SimTime::from_secs(8);
                cfg
            };
            (
                run(ChordUniCluster::build_overlay(peers, cfg(), SEED), &world, &mixed),
                run(ChordUniCluster::build_overlay(peers, cfg(), SEED), &world, &mixed),
            )
        };
        let identical = a == b;
        ok &= identical;
        row(&[
            backend.to_string(),
            peers.to_string(),
            format!("{:#018x}", a.0),
            a.1.sent.to_string(),
            a.1.bytes.to_string(),
            format!("{:#018x}", a.2),
            if identical { "identical".into() } else { "DIVERGED".into() },
        ]);
        if !identical {
            eprintln!(
                "run 1: trace {:#018x} metrics {:?} results {:#018x}\n\
                 run 2: trace {:#018x} metrics {:?} results {:#018x}",
                a.0, a.1, a.2, b.0, b.1, b.2
            );
        }
    }
    assert!(ok, "determinism-check FAILED: same-seed runs diverged (see digests above)");
    println!("\ndeterminism-check OK: both backends bit-identical across same-seed runs");
}

fn fault_snapshot() {
    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        SEED,
    );
    fn pgrid_fault_cfg() -> UniConfig {
        let mut cfg = UniConfig::default()
            .with_replication(3)
            .with_maintenance(SimTime::from_secs(10), SimTime::from_secs(30));
        cfg.overlay.refs_per_level = 4;
        cfg.query_timeout = SimTime::from_secs(30);
        cfg.overlay.query_timeout = SimTime::from_secs(8);
        cfg
    }
    fn chord_fault_cfg() -> UniConfig<ChordConfig> {
        let mut cfg = chord_config();
        cfg.overlay.replicate = true;
        cfg.overlay.anti_entropy_interval = SimTime::from_secs(30);
        cfg.overlay.ping_interval = SimTime::from_secs(10);
        cfg.query_timeout = SimTime::from_secs(30);
        cfg.overlay.query_timeout = SimTime::from_secs(8);
        cfg
    }

    /// Issues `queries` round-robin from `origins`, `spacing` apart.
    /// Queries the layer gives up on are charged `fail_ms` — the
    /// client-observed time to a final answer — so no policy can
    /// flatter its tail by failing fast. Returns
    /// `(completed, cov90, mean_cov, p50, p99, hedges)`.
    fn measure<O: Overlay<Item = Triple>>(
        cluster: &mut UniCluster<O>,
        origins: &[NodeId],
        queries: &[String],
        spacing: SimTime,
        fail_ms: f64,
    ) -> (usize, usize, f64, f64, f64, u64) {
        let mut completed = 0usize;
        let mut cov90 = 0usize;
        let mut covs: Vec<f64> = Vec::with_capacity(queries.len());
        let mut lat: Vec<f64> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            let out = cluster.query(origins[i % origins.len()], q).expect("query parses");
            let cov = out.coverage.fraction();
            completed += out.ok as usize;
            cov90 += (out.ok && cov >= 0.9) as usize;
            covs.push(cov);
            lat.push(if out.ok { out.cost.latency.as_micros() as f64 / 1000.0 } else { fail_ms });
            if spacing > SimTime::from_micros(0) {
                cluster.settle(spacing);
            }
        }
        let mean_cov = covs.iter().sum::<f64>() / covs.len().max(1) as f64;
        let (p50, _, p99) = latency_summary(&lat);
        let n = cluster.net.len() as u32;
        let hedges: u64 = (0..n).map(|i| cluster.net.node(NodeId(i)).hedges).sum();
        (completed, cov90, mean_cov, p50, p99, hedges)
    }

    /// Installs [`ChurnConfig::moderate`] plus 2% loss, warms the RTT
    /// windows of four stable origins while the ring is healthy, lets
    /// churn reach steady state, then runs the mix spaced 10 s apart.
    fn churn_cell<O: Overlay<Item = Triple>>(
        mut cluster: UniCluster<O>,
        world: &PubWorld,
        queries: &[String],
    ) -> (usize, usize, f64, f64, f64, u64) {
        cluster.load(world.all_tuples());
        let mut rng = unistore_util::rng::derive_rng(SEED, unistore_util::rng::stream::CHURN);
        let churned = install_churn(
            &mut cluster.net,
            &mut rng,
            &ChurnConfig::moderate(),
            SimTime::from_secs(7_200),
        );
        let n = cluster.net.len() as u32;
        // Queries originate at peers outside the churn set — the
        // paper's stable infrastructure peers. The *data* they reach
        // still lives on churning nodes; only the client endpoint is
        // pinned up.
        let origins: Vec<NodeId> =
            (0..n).map(NodeId).filter(|id| !churned.contains(id)).take(4).collect();
        assert!(origins.len() == 4, "churn spared only {} of 4 needed origins", origins.len());
        let warm = unistore_workload::zipf_read_queries(world, "published_in", 40, 0.0, SEED ^ 3);
        for (i, q) in warm.iter().enumerate() {
            let _ = cluster.query(origins[i % origins.len()], q);
        }
        cluster.net.set_loss_rate(0.02);
        cluster.settle(SimTime::from_secs(600));
        measure(&mut cluster, &origins, queries, SimTime::from_secs(10), 120_000.0)
    }

    /// A fixed origin on a lossy (5%) but churn-free network: the
    /// degraded path where retry policy, not data placement, decides
    /// the tail. RTT windows warm before the loss switches on.
    fn degraded_cell<O: Overlay<Item = Triple>>(
        mut cluster: UniCluster<O>,
        world: &PubWorld,
        queries: &[String],
    ) -> (usize, usize, f64, f64, f64, u64) {
        cluster.load(world.all_tuples());
        let origin = NodeId(0);
        let warm = unistore_workload::zipf_read_queries(world, "published_in", 12, 0.0, SEED ^ 4);
        for q in &warm {
            let _ = cluster.query(origin, q);
        }
        cluster.net.set_loss_rate(0.05);
        measure(&mut cluster, &[origin], queries, SimTime::from_micros(0), 120_000.0)
    }

    let mut rows: Vec<FaultRow> = Vec::new();

    // --- Healthy control: masking layer on, nothing failing. -------
    let mixed: Vec<String> = {
        let mut v = unistore_workload::zipf_read_queries(&world, "published_in", 8, 0.8, SEED ^ 1);
        v.push("SELECT ?n WHERE {(?a,'name',?n)}".into());
        v.push("SELECT ?c WHERE {(?x,'confname',?c)}".into());
        v.push("SELECT ?n,?p WHERE {(?a,'name',?n) (?a,'num_of_pubs',?p) FILTER ?p < 8}".into());
        v.push("SELECT ?n,?e WHERE {(?a,'name',?n) (?a,'email',?e)}".into());
        v
    };
    for backend in ["P-Grid", "Chord+buckets"] {
        let cell = if backend == "P-Grid" {
            let mut c = UniCluster::build(16, pgrid_fault_cfg().with_min_coverage(0.9), SEED);
            c.load(world.all_tuples());
            measure(&mut c, &[NodeId(0)], &mixed, SimTime::from_micros(0), 120_000.0)
        } else {
            let mut c =
                ChordUniCluster::build_overlay(16, chord_fault_cfg().with_min_coverage(0.9), SEED);
            c.load(world.all_tuples());
            measure(&mut c, &[NodeId(0)], &mixed, SimTime::from_micros(0), 120_000.0)
        };
        rows.push(FaultRow {
            backend,
            scenario: "healthy",
            mix: "mixed",
            policy: "adaptive+hedged",
            queries: mixed.len(),
            completed: cell.0,
            cov90: cell.1,
            mean_cov: cell.2,
            p50_ms: cell.3,
            p99_ms: cell.4,
            hedges: cell.5,
        });
    }

    // --- Moderate churn + 2% loss, point and scan mixes. ------------
    const N_CHURN_Q: usize = 60;
    let points =
        unistore_workload::zipf_read_queries(&world, "published_in", N_CHURN_Q, 1.1, SEED ^ 2);
    let scans: Vec<String> = (0..N_CHURN_Q)
        .map(|i| {
            match i % 3 {
                0 => "SELECT ?n WHERE {(?a,'name',?n)}",
                1 => "SELECT ?c WHERE {(?x,'confname',?c)}",
                _ => "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}",
            }
            .to_string()
        })
        .collect();
    for (mix, queries) in [("points", &points), ("scans", &scans)] {
        for backend in ["P-Grid", "Chord+buckets"] {
            let cell = if backend == "P-Grid" {
                let c = UniCluster::build(24, pgrid_fault_cfg().with_min_coverage(0.9), SEED);
                churn_cell(c, &world, queries)
            } else {
                let c = ChordUniCluster::build_overlay(
                    24,
                    chord_fault_cfg().with_min_coverage(0.9),
                    SEED,
                );
                churn_cell(c, &world, queries)
            };
            rows.push(FaultRow {
                backend,
                scenario: "churn+loss2%",
                mix,
                policy: "adaptive+hedged",
                queries: queries.len(),
                completed: cell.0,
                cov90: cell.1,
                mean_cov: cell.2,
                p50_ms: cell.3,
                p99_ms: cell.4,
                hedges: cell.5,
            });
        }
    }

    // --- Degraded path: adaptive+hedged vs fixed-interval retries. --
    let degraded = unistore_workload::zipf_read_queries(&world, "published_in", 48, 0.0, SEED ^ 5);
    let fixed = BackoffPolicy {
        rtt_multiplier: 0.0,
        min_attempt: SimTime::from_secs(10),
        hedging: false,
        hedge_multiplier: 2.0,
    };
    for (policy_label, policy) in
        [("adaptive+hedged", BackoffPolicy::default()), ("fixed-10s", fixed)]
    {
        for backend in ["P-Grid", "Chord+buckets"] {
            let cell = if backend == "P-Grid" {
                let cfg = pgrid_fault_cfg().with_min_coverage(1.0).with_backoff(policy);
                degraded_cell(UniCluster::build(16, cfg, SEED), &world, &degraded)
            } else {
                let cfg = chord_fault_cfg().with_min_coverage(1.0).with_backoff(policy);
                degraded_cell(ChordUniCluster::build_overlay(16, cfg, SEED), &world, &degraded)
            };
            rows.push(FaultRow {
                backend,
                scenario: "loss5%",
                mix: "points",
                policy: policy_label,
                queries: degraded.len(),
                completed: cell.0,
                cov90: cell.1,
                mean_cov: cell.2,
                p50_ms: cell.3,
                p99_ms: cell.4,
                hedges: cell.5,
            });
        }
    }

    println!("\n## Faults — availability matrix (fault class x backend x policy)\n");
    header(&[
        "backend", "scenario", "mix", "policy", "q", "done", "cov>=.9", "mean cov", "p50 ms",
        "p99 ms", "hedges",
    ]);
    for r in &rows {
        row(&[
            r.backend.to_string(),
            r.scenario.to_string(),
            r.mix.to_string(),
            r.policy.to_string(),
            r.queries.to_string(),
            r.completed.to_string(),
            r.cov90.to_string(),
            f(r.mean_cov),
            f(r.p50_ms),
            f(r.p99_ms),
            r.hedges.to_string(),
        ]);
    }

    // Floors. Healthy path: the masking layer must be invisible —
    // everything completes at full coverage.
    for r in rows.iter().filter(|r| r.scenario == "healthy") {
        assert!(
            r.completed == r.queries && (r.mean_cov - 1.0).abs() < 1e-12,
            "{}: healthy path must complete {}/{} at coverage 1.0 (got {} at {:.4})",
            r.backend,
            r.queries,
            r.queries,
            r.completed,
            r.mean_cov
        );
    }
    // Moderate churn + 2% loss, point reads: >= 95% of queries answer
    // with coverage >= 0.9 on BOTH backends (P-Grid via replica
    // failover, Chord via its exact/bucket mirror pair).
    for r in rows.iter().filter(|r| r.scenario == "churn+loss2%" && r.mix == "points") {
        let floor = (r.queries * 95).div_ceil(100);
        assert!(
            r.cov90 >= floor,
            "{} churn points: {}/{} answered with coverage >= 0.9, floor {}",
            r.backend,
            r.cov90,
            r.queries,
            floor
        );
    }
    // Scan mixes degrade by design: P-Grid trees route around dead
    // replicas, Chord scans are primary-bound. Floors pin the measured
    // gap so a regression on either side is loud.
    for r in rows.iter().filter(|r| r.scenario == "churn+loss2%" && r.mix == "scans") {
        let floor = if r.backend == "P-Grid" { (r.queries * 80) / 100 } else { r.queries / 4 };
        assert!(
            r.cov90 >= floor,
            "{} churn scans: {}/{} answered with coverage >= 0.9, floor {}",
            r.backend,
            r.cov90,
            r.queries,
            floor
        );
    }
    // Degraded path: hedged adaptive retries must beat the fixed
    // baseline's p99 — and must actually hedge.
    for backend in ["P-Grid", "Chord+buckets"] {
        let cell = |policy: &str| {
            rows.iter()
                .find(|r| r.scenario == "loss5%" && r.backend == backend && r.policy == policy)
                .expect("cell")
        };
        let (hedged, fixed) = (cell("adaptive+hedged"), cell("fixed-10s"));
        println!(
            "{backend} loss5%: p99 {} ms hedged vs {} ms fixed, {} hedges",
            f(hedged.p99_ms),
            f(fixed.p99_ms),
            hedged.hedges
        );
        assert!(
            hedged.p99_ms < fixed.p99_ms,
            "{backend}: hedged p99 ({:.1} ms) must beat fixed-retry p99 ({:.1} ms)",
            hedged.p99_ms,
            fixed.p99_ms
        );
        assert!(hedged.hedges > 0, "{backend}: the hedged cell never hedged");
        assert!(fixed.hedges == 0, "{backend}: the fixed cell must not hedge");
        assert!(
            hedged.completed >= fixed.completed,
            "{backend}: hedging lost completions ({} vs {})",
            hedged.completed,
            fixed.completed
        );
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"backend\": \"{}\", \"scenario\": \"{}\", \"mix\": \"{}\", \
             \"policy\": \"{}\", \"queries\": {}, \"completed\": {}, \"cov90\": {}, \
             \"mean_cov\": {:.4}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"hedges\": {}}}{}\n",
            r.backend,
            r.scenario,
            r.mix,
            r.policy,
            r.queries,
            r.completed,
            r.cov90,
            r.mean_cov,
            r.p50_ms,
            r.p99_ms,
            r.hedges,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("wrote BENCH_faults.json ({} rows)", rows.len());
}

/// One measured cell of the scale-and-churn campaign.
struct ScaleRow {
    backend: &'static str,
    n: usize,
    build_ms: f64,
    offered: usize,
    completed: usize,
    cov90: usize,
    mean_cov: f64,
    qps_sim: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    retries: u64,
    hedges: u64,
    suppressed: u64,
    attempts: u64,
    writes_ok: u64,
    writes_err: u64,
    gini_load: f64,
    stale_frac: f64,
    repair_s: f64,
    downs: u64,
    ups: u64,
    wall_ms: f64,
}

/// Headless CI entry #6: the scale-and-churn survival campaign
/// (DESIGN.md §"Scale and churn"). Each cell runs one deployment size
/// under *everything at once*: moderate exponential churn, 2% uniform
/// loss, a partition window with a correlated mass failure inside it, a
/// delay spike, and sustained Zipf-skewed mixed read/write traffic
/// driven through the pipelined admission window. Writes
/// `BENCH_scale.json`. `smoke` restricts the sweep to {64, 256} (the CI
/// setting); the default adds 1024 (the acceptance scale); `full` adds
/// 4096.
///
/// In-code floors: ≥95% of offered queries answer with coverage ≥0.9 on
/// BOTH backends at every size; total attempts (initial + retries +
/// hedges) stay ≤3× offered (the retry-storm bound); the replication
/// repair of a write issued *during* the failure window converges after
/// revival.
fn scale_snapshot(args: &[String]) {
    let sizes: Vec<usize> = if args.iter().any(|a| a == "smoke") {
        vec![64, 256]
    } else if args.iter().any(|a| a == "full") {
        vec![64, 256, 1024, 4096]
    } else {
        vec![64, 256, 1024]
    };
    let world = PubWorld::generate(
        &PubParams { n_authors: 60, n_conferences: 15, ..Default::default() },
        SEED,
    );

    fn pgrid_scale_cfg() -> UniConfig {
        let mut cfg = UniConfig::default()
            .with_replication(3)
            .with_maintenance(SimTime::from_secs(30), SimTime::from_secs(60))
            .with_min_coverage(0.9);
        cfg.overlay.refs_per_level = 4;
        cfg.query_timeout = SimTime::from_secs(30);
        cfg.overlay.query_timeout = SimTime::from_secs(8);
        cfg
    }
    fn chord_scale_cfg() -> UniConfig<ChordConfig> {
        let mut cfg = chord_config().with_min_coverage(0.9);
        cfg.overlay.replicate = true;
        cfg.overlay.anti_entropy_interval = SimTime::from_secs(60);
        cfg.overlay.ping_interval = SimTime::from_secs(20);
        cfg.query_timeout = SimTime::from_secs(30);
        cfg.overlay.query_timeout = SimTime::from_secs(8);
        cfg
    }

    /// The *live* replica group of `key`: the union, over all up
    /// primaries, of [`Overlay::replica_group`]. Tracks runtime drift
    /// (P-Grid path migrations, Chord successor re-pointing) that the
    /// build-time topology plan cannot see.
    fn live_group<O: Overlay<Item = Triple>>(
        cluster: &UniCluster<O>,
        key: Key,
    ) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut primaries = Vec::new();
        let mut group = Vec::new();
        for i in 0..cluster.net.len() as u32 {
            let id = NodeId(i);
            if !cluster.net.is_up(id) {
                continue;
            }
            let g = cluster.net.node(id).overlay.replica_group(key);
            if !g.is_empty() {
                primaries.push(id);
                group.extend(g);
            }
        }
        group.sort_unstable();
        group.dedup();
        (group, primaries)
    }

    /// Repair-convergence predicate: every up member of the live
    /// replica group holds the key, and at least one member is up.
    fn converged<O: Overlay<Item = Triple>>(cluster: &UniCluster<O>, key: Key) -> bool {
        let (group, _) = live_group(cluster, key);
        let up: Vec<NodeId> = group.into_iter().filter(|&h| cluster.net.is_up(h)).collect();
        !up.is_empty() && up.iter().all(|&h| cluster.net.node(h).overlay.holds(key))
    }

    /// One full campaign cell: moderate churn and 2% loss throughout;
    /// once traffic is flowing, a partition island is cut around part
    /// of the canary key's *live* replica group (with a correlated mass
    /// failure inside it), a canary write is issued mid-window through
    /// client retries, and after the window a global delay spike hits
    /// while the drain finishes. Repair lag is the time from window
    /// close until the live replica group converges on the canary.
    fn campaign<O: Overlay<Item = Triple>>(
        backend: &'static str,
        mut cluster: UniCluster<O>,
        n: usize,
        build_ms: f64,
        world: &PubWorld,
    ) -> ScaleRow {
        let wall0 = std::time::Instant::now();
        cluster.load(world.all_tuples());
        let reads =
            unistore_workload::zipf_read_queries(world, "published_in", 120, 1.1, SEED ^ 11);
        let writes =
            unistore_workload::zipf_write_batches(world, "published_in", 12, 6, 1.1, SEED ^ 13);
        let canaries: Vec<Tuple> = (0..4)
            .map(|k| Tuple::new(&format!("canary{k}")).with("rtag", Value::str("canary")))
            .collect();
        let canary_key = attr_value_key("rtag", &Value::str("canary"));

        let mut rng = unistore_util::rng::derive_rng(SEED, unistore_util::rng::stream::CHURN);
        let churned = install_churn(
            &mut cluster.net,
            &mut rng,
            &ChurnConfig::moderate(),
            SimTime::from_secs(3_600),
        );
        let origins: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|id| !churned.contains(id)).take(8).collect();
        assert!(!origins.is_empty(), "churn spared no origin at n={n}");

        // Warm the origins' RTT windows while the network is healthy.
        let warm = unistore_workload::zipf_read_queries(world, "published_in", 16, 0.0, SEED ^ 17);
        for (i, q) in warm.iter().enumerate() {
            let _ = cluster.query(origins[i % origins.len()], q);
        }

        let t0 = cluster.net.now();
        cluster.net.set_loss_rate(0.02);

        let delivered_before: Vec<u64> = cluster.net.delivered_per_node().to_vec();
        let metrics_before = cluster.net.metrics();
        let t_start = cluster.net.now();
        let mut win: Option<Window> = None;
        let mut canary_done = false;
        let (mut writes_ok, mut writes_err) = (0u64, 0u64);
        let mut repair_s: Option<f64> = None;
        for (i, q) in reads.iter().enumerate() {
            cluster.query_submit(origins[i % origins.len()], q).expect("query parses");
            if (i + 1) % 10 == 0 {
                let (ok, _) = cluster.insert_batch(
                    origins[(i / 10) % origins.len()],
                    &writes[(i / 10) % writes.len()],
                );
                writes_ok += ok as u64;
                writes_err += !ok as u64;
            }
            // Arm the fault windows once traffic has run for 45 s: the
            // island is cut around the canary's replica group *as it
            // exists right now* — secondaries first, always leaving at
            // least one primary and every query origin reachable, so
            // the canary write has somewhere to land and repair has a
            // source — padded with filler nodes to partition scale.
            if win.is_none() && cluster.net.now() >= t0 + SimTime::from_secs(45) {
                let (group, primaries) = live_group(&cluster, canary_key);
                let half = (group.len() / 2).max(1);
                let keep_primary = primaries.len().saturating_sub(1);
                let mut island: Vec<NodeId> = group
                    .iter()
                    .copied()
                    .filter(|m| !primaries.contains(m))
                    .chain(primaries.iter().copied().take(keep_primary))
                    .filter(|m| !origins.contains(m))
                    .take(half)
                    .collect();
                let island_size = (n / 32).max(4).min(n / 2);
                let mut cand = island.first().map(|h| h.0).unwrap_or(0);
                while island.len() < island_size {
                    cand = (cand + 1) % n as u32;
                    let c = NodeId(cand);
                    if !island.contains(&c) && !origins.contains(&c) && !group.contains(&c) {
                        island.push(c);
                    }
                }
                island.sort_unstable_by_key(|h| h.0);
                let now = cluster.net.now();
                let w = Window::new(now + SimTime::from_secs(10), now + SimTime::from_secs(100));
                let spike =
                    Window::new(w.until + SimTime::from_secs(30), w.until + SimTime::from_secs(60));
                cluster.net.set_fault_plan(
                    FaultPlan::new()
                        .partition("canary-island", island.iter().copied(), w)
                        .delay_spike(None, None, SimTime::from_millis(100), spike),
                );
                install_mass_failure(&mut cluster.net, &mut rng, &island, w, 0.5);
                win = Some(w);
            }
            // The canary write is a *client-retried* write: one routed
            // attempt can die inside the partition window (the batch
            // protocol acks or fails, it does not queue), so the client
            // re-issues from rotating origins until the ack lands. The
            // repair clock is gated on the canary *key* converging at
            // its live replica group, not on the full-batch ack: the
            // batch also carries the canary tuples' other index entries,
            // and one churned-down owner among those delays the ack
            // (visible in `writes_err`) without saying anything about
            // replication repair of the canary key itself.
            if let Some(w) = win {
                if repair_s.is_none()
                    && !canary_done
                    && cluster.net.now() >= w.from + SimTime::from_secs(5)
                {
                    let (ok, _) = cluster.insert_batch(origins[i % origins.len()], &canaries);
                    canary_done = ok;
                    writes_ok += ok as u64;
                    writes_err += !ok as u64;
                }
            }
            cluster.settle(SimTime::from_secs(2));
            if let Some(w) = win {
                if repair_s.is_none()
                    && cluster.net.now() > w.until
                    && converged(&cluster, canary_key)
                {
                    repair_s = Some(cluster.net.now().saturating_sub(w.until).as_secs_f64());
                }
            }
        }
        let outcomes = cluster.query_wait_all();
        let win = win.expect("fault window armed during traffic");

        // Keep polling repair convergence after the drain, capped.
        while repair_s.is_none() {
            if cluster.net.now().saturating_sub(win.until) >= SimTime::from_secs(600) {
                break;
            }
            if cluster.net.now() > win.until && converged(&cluster, canary_key) {
                repair_s = Some(cluster.net.now().saturating_sub(win.until).as_secs_f64());
                break;
            }
            if !canary_done {
                let (ok, _) = cluster.insert_batch(origins[0], &canaries);
                canary_done = ok;
                writes_ok += ok as u64;
                writes_err += !ok as u64;
            }
            cluster.settle(SimTime::from_secs(5));
        }

        let offered = reads.len();
        let mut completed = 0usize;
        let mut cov90 = 0usize;
        let mut covs: Vec<f64> = Vec::with_capacity(offered);
        let mut lat: Vec<f64> = Vec::with_capacity(offered);
        for (_, out) in &outcomes {
            let cov = out.coverage.fraction();
            completed += out.ok as usize;
            cov90 += (out.ok && cov >= 0.9) as usize;
            covs.push(cov);
            lat.push(if out.ok { out.cost.latency.as_micros() as f64 / 1000.0 } else { 120_000.0 });
        }
        let elapsed = cluster.net.now().saturating_sub(t_start).as_micros() as f64 / 1e6;
        let (p50, _, p99) = latency_summary(&lat);
        let p999 = percentile(&lat, 99.9);

        let (mut retries, mut hedges, mut suppressed) = (0u64, 0u64, 0u64);
        let (mut refs_total, mut refs_stale) = (0u64, 0u64);
        for i in 0..n as u32 {
            let node = cluster.net.node(NodeId(i));
            retries += node.retries;
            hedges += node.hedges;
            suppressed += node.suppressed;
            for r in node.overlay.routing_refs() {
                refs_total += 1;
                refs_stale += !cluster.net.is_up(r) as u64;
            }
        }
        let loads: Vec<f64> = cluster
            .net
            .delivered_per_node()
            .iter()
            .zip(&delivered_before)
            .map(|(a, b)| (a - b) as f64)
            .collect();
        let md = cluster.net.metrics().delta(&metrics_before);
        ScaleRow {
            backend,
            n,
            build_ms,
            offered,
            completed,
            cov90,
            mean_cov: covs.iter().sum::<f64>() / covs.len().max(1) as f64,
            qps_sim: completed as f64 / elapsed.max(1e-9),
            p50_ms: p50,
            p99_ms: p99,
            p999_ms: p999,
            retries,
            hedges,
            suppressed,
            attempts: offered as u64 + retries + hedges,
            writes_ok,
            writes_err,
            gini_load: gini(&loads),
            stale_frac: refs_stale as f64 / (refs_total.max(1)) as f64,
            repair_s: repair_s.unwrap_or(600.0),
            downs: md.downs,
            ups: md.ups,
            wall_ms: wall0.elapsed().as_secs_f64() * 1000.0,
        }
    }

    let mut rows: Vec<ScaleRow> = Vec::new();
    for &n in &sizes {
        let t = std::time::Instant::now();
        let c = UniCluster::build(n, pgrid_scale_cfg(), SEED);
        let build_ms = t.elapsed().as_secs_f64() * 1000.0;
        rows.push(campaign("P-Grid", c, n, build_ms, &world));

        let t = std::time::Instant::now();
        let c = ChordUniCluster::build_overlay(n, chord_scale_cfg(), SEED);
        let build_ms = t.elapsed().as_secs_f64() * 1000.0;
        rows.push(campaign("Chord+buckets", c, n, build_ms, &world));
    }

    println!("\n## Scale — churn + loss + partition + mass failure, mixed Zipf load\n");
    header(&[
        "backend", "N", "build ms", "q", "done", "cov>=.9", "qps(sim)", "p99 ms", "p999 ms", "att",
        "supp", "gini", "stale", "repair s",
    ]);
    for r in &rows {
        row(&[
            r.backend.to_string(),
            r.n.to_string(),
            f(r.build_ms),
            r.offered.to_string(),
            r.completed.to_string(),
            r.cov90.to_string(),
            f(r.qps_sim),
            f(r.p99_ms),
            f(r.p999_ms),
            r.attempts.to_string(),
            r.suppressed.to_string(),
            f(r.gini_load),
            f(r.stale_frac),
            f(r.repair_s),
        ]);
    }

    for r in &rows {
        let floor = (r.offered * 95).div_ceil(100);
        assert!(
            r.cov90 >= floor,
            "{} n={}: {}/{} queries answered with coverage >= 0.9, floor {}",
            r.backend,
            r.n,
            r.cov90,
            r.offered,
            floor
        );
        assert!(
            r.attempts <= 3 * r.offered as u64,
            "{} n={}: {} attempts for {} offered queries breaches the 3x retry-storm bound",
            r.backend,
            r.n,
            r.attempts,
            r.offered
        );
        assert!(
            r.repair_s < 600.0,
            "{} n={}: canary replicas never reconverged after the failure window",
            r.backend,
            r.n
        );
        assert!(
            (0.0..=1.0).contains(&r.gini_load) && (0.0..=1.0).contains(&r.stale_frac),
            "{} n={}: skew/staleness out of range",
            r.backend,
            r.n
        );
        assert!(r.downs > 0 && r.ups > 0, "{} n={}: no churn actually executed", r.backend, r.n);
    }
    // The paper's balancing claim, quantified at the largest measured
    // size: report P-Grid's load skew against Chord's.
    if let Some(&max_n) = sizes.iter().max() {
        let skew = |backend: &str| {
            rows.iter().find(|r| r.backend == backend && r.n == max_n).map(|r| r.gini_load)
        };
        if let (Some(p), Some(c)) = (skew("P-Grid"), skew("Chord+buckets")) {
            println!("\nload skew at N={max_n}: P-Grid gini {} vs Chord gini {}", f(p), f(c));
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"backend\": \"{}\", \"n\": {}, \"build_ms\": {:.1}, \"offered\": {}, \
             \"completed\": {}, \"cov90\": {}, \"mean_cov\": {:.4}, \"qps_sim\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"retries\": {}, \
             \"hedges\": {}, \"suppressed\": {}, \"attempts\": {}, \"writes_ok\": {}, \
             \"writes_err\": {}, \"gini_load\": {:.4}, \"stale_frac\": {:.4}, \
             \"repair_s\": {:.1}, \"downs\": {}, \"ups\": {}, \"wall_ms\": {:.0}}}{}\n",
            r.backend,
            r.n,
            r.build_ms,
            r.offered,
            r.completed,
            r.cov90,
            r.mean_cov,
            r.qps_sim,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.retries,
            r.hedges,
            r.suppressed,
            r.attempts,
            r.writes_ok,
            r.writes_err,
            r.gini_load,
            r.stale_frac,
            r.repair_s,
            r.downs,
            r.ups,
            r.wall_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json ({} rows)", rows.len());
}

/// One measured (backend, mode) cell of the ingest comparison.
struct IngestRow {
    backend: &'static str,
    mode: &'static str,
    triples: usize,
    msgs: u64,
    kib: f64,
    msgs_per_1k: f64,
    kib_per_1k: f64,
    wall_tps: f64,
}

/// Headless CI entry #3: the batched write pipeline. Ingests the same
/// tuple stream through the routed write path twice per backend — the
/// per-op message fan-out vs `insert_batch` with 64-triple batches
/// (per-hop `OpBatch` coalescing, shared payloads, aggregated acks) —
/// and writes `BENCH_ingest.json`. Asserts the headline claims in-code:
/// at batch size 64 the coalesced pipeline ships ≥5× fewer messages and
/// ≥2× fewer KiB per 1k triples on BOTH backends, with oracle-identical
/// query results afterward.
fn ingest_snapshot() {
    const N_TUPLES: usize = 256; // 4 attributes each → 1024 triples
    const BATCH_TUPLES: usize = 16; // × 4 triples = batch size 64
    let tuples: Vec<Tuple> = (0..N_TUPLES)
        .map(|i| {
            Tuple::new(&format!("obj{i}"))
                .with("name", Value::str(&format!("object-number-{i}")))
                .with("score", Value::Int((i % 100) as i64))
                .with("tag", Value::str(if i % 2 == 0 { "even" } else { "odd" }))
                .with("rank", Value::Int((i % 7) as i64))
        })
        .collect();
    let n_triples: usize = tuples.iter().map(|t| t.to_triples().len()).sum();
    let queries = [
        "SELECT ?x WHERE {(?x,'tag','even')}",
        "SELECT ?x,?s WHERE {(?x,'score',?s) FILTER ?s >= 10 AND ?s < 20}",
    ];
    let canon = |r: &unistore_query::Relation| {
        let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
        rows.sort();
        rows
    };

    /// Drives one routed ingest of the tuple stream in `chunk`-tuple
    /// calls, returning `(msgs, bytes, wall seconds)` plus the
    /// canonicalized answers to the verification queries.
    fn run<O: unistore_overlay::Overlay<Item = Triple>>(
        cluster: &mut UniCluster<O>,
        tuples: &[Tuple],
        chunk: usize,
        queries: &[&str],
        canon: &dyn Fn(&unistore_query::Relation) -> Vec<String>,
    ) -> (u64, u64, f64, Vec<Vec<String>>) {
        let before = cluster.net.metrics();
        let t0 = std::time::Instant::now();
        for c in tuples.chunks(chunk) {
            let origin = cluster.random_node();
            let (ok, _) = cluster.insert_batch(origin, c);
            assert!(ok, "ingest batch must be fully acked");
        }
        let wall = t0.elapsed().as_secs_f64();
        let d = cluster.net.metrics().delta(&before);
        let mut answers = Vec::new();
        for q in queries {
            let out = cluster.query(NodeId(0), q).expect("query parses");
            assert!(out.ok, "post-ingest query timed out");
            let oracle = canon(&cluster.oracle().query(q).expect("oracle parses"));
            let got = canon(&out.relation);
            assert_eq!(got, oracle, "post-ingest answers must match the oracle: {q}");
            answers.push(got);
        }
        (d.sent, d.bytes, wall, answers)
    }

    // Quiet stats dissemination so the measured traffic is exactly the
    // write pipeline on both paths.
    let quiet = SimTime::from_secs(1_000_000_000);
    let mut rows: Vec<IngestRow> = Vec::new();
    let mut answers: Vec<Vec<Vec<String>>> = Vec::new();
    for (backend, batched) in
        [("P-Grid", false), ("P-Grid", true), ("Chord+buckets", false), ("Chord+buckets", true)]
    {
        let (msgs, bytes, wall, ans) = if backend == "P-Grid" {
            let cfg = UniConfig::default().with_batch_writes(batched).with_stats_refresh(quiet);
            let mut c = UniCluster::build(64, cfg, SEED);
            run(&mut c, &tuples, if batched { BATCH_TUPLES } else { 1 }, &queries, &canon)
        } else {
            let cfg = chord_config().with_batch_writes(batched).with_stats_refresh(quiet);
            let mut c = ChordUniCluster::build_overlay(64, cfg, SEED);
            run(&mut c, &tuples, if batched { BATCH_TUPLES } else { 1 }, &queries, &canon)
        };
        answers.push(ans);
        rows.push(IngestRow {
            backend,
            mode: if batched { "batched" } else { "per-op" },
            triples: n_triples,
            msgs,
            kib: bytes as f64 / 1024.0,
            msgs_per_1k: msgs as f64 * 1000.0 / n_triples as f64,
            kib_per_1k: bytes as f64 / 1024.0 * 1000.0 / n_triples as f64,
            wall_tps: n_triples as f64 / wall.max(1e-9),
        });
    }
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "all four loads must agree on answers");

    println!("\n## Ingest — batched write pipeline vs per-op fan-out (batch size 64)\n");
    header(&["backend", "mode", "triples", "msgs", "KiB", "msgs/1k", "KiB/1k", "triples/s"]);
    for r in &rows {
        row(&[
            r.backend.to_string(),
            r.mode.to_string(),
            r.triples.to_string(),
            r.msgs.to_string(),
            f(r.kib),
            f(r.msgs_per_1k),
            f(r.kib_per_1k),
            f(r.wall_tps),
        ]);
    }
    for backend in ["P-Grid", "Chord+buckets"] {
        let cell = |mode: &str| {
            rows.iter().find(|r| r.backend == backend && r.mode == mode).expect("cell")
        };
        let (per_op, batched) = (cell("per-op"), cell("batched"));
        let msg_cut = per_op.msgs_per_1k / batched.msgs_per_1k;
        let kib_cut = per_op.kib_per_1k / batched.kib_per_1k;
        println!("{backend}: {:.1}x fewer msgs, {:.1}x fewer KiB per 1k triples", msg_cut, kib_cut);
        assert!(
            msg_cut >= 5.0,
            "batch size 64 must ship >=5x fewer messages on {backend} (got {msg_cut:.2}x)"
        );
        assert!(
            kib_cut >= 2.0,
            "batch size 64 must ship >=2x fewer KiB on {backend} (got {kib_cut:.2}x)"
        );
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"backend\": \"{}\", \"mode\": \"{}\", \"batch_triples\": {}, \
             \"triples\": {}, \"msgs\": {}, \"kib\": {:.3}, \"msgs_per_1k\": {:.3}, \
             \"kib_per_1k\": {:.3}, \"wall_triples_per_sec\": {:.1}}}{}\n",
            r.backend,
            r.mode,
            if r.mode == "batched" { BATCH_TUPLES * 4 } else { 1 },
            r.triples,
            r.msgs,
            r.kib,
            r.msgs_per_1k,
            r.kib_per_1k,
            r.wall_tps,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("wrote BENCH_ingest.json ({} rows)", rows.len());
}

/// Headless CI entry #2: the statistics-maintenance trajectory. Writes
/// `BENCH_stats.json` with (a) the per-insert overhead of incremental
/// delta maintenance vs the old rebuild-from-scratch path and (b) the
/// plan quality a runtime-insert workload observes — the estimate the
/// planner prices a freshly inserted attribute at, against the stale
/// floor and the true cardinality.
fn stats_snapshot() {
    use std::time::Instant;
    use unistore_query::cost::NetParams;
    use unistore_query::GlobalStats;

    let world = PubWorld::generate(
        &PubParams { n_authors: 80, n_conferences: 15, ..Default::default() },
        SEED,
    );
    let triples: Vec<Triple> = world.all_tuples().iter().flat_map(Tuple::to_triples).collect();
    let net = NetParams { n_peers: 64.0, n_leaves: 64.0, replication: 1.0, hop_ms: 40.0 };
    let extra: Vec<Triple> = (0..500i64)
        .map(|i| Triple::new(&format!("item{i}"), "rating", Value::Int(i % 5)))
        .collect();

    // (a) incremental maintenance: O(delta) per write.
    let mut incr = GlobalStats::build(&triples, net);
    let t0 = Instant::now();
    for t in &extra {
        incr.apply_insert(t);
    }
    let incr_us = t0.elapsed().as_secs_f64() * 1e6 / extra.len() as f64;

    // (b) the pre-delta path: rebuild from scratch after every write
    // (measured over fewer rounds — it is quadratic by construction).
    let mut all = triples.clone();
    let rounds = 50usize;
    let t0 = Instant::now();
    for t in extra.iter().take(rounds) {
        all.push(t.clone());
        std::hint::black_box(GlobalStats::build(&all, net));
    }
    let rebuild_us = t0.elapsed().as_secs_f64() * 1e6 / rounds as f64;
    let speedup = rebuild_us / incr_us.max(1e-9);

    // Plan quality under a runtime-insert workload: freeze the
    // load-time snapshot, push a brand-new attribute through the routed
    // path, and compare what each snapshot prices the attribute at.
    let mut cluster = UniCluster::build(16, UniConfig::default(), SEED);
    cluster.load(world.all_tuples());
    let stale = cluster.cost_model().expect("model after load");
    let origin = NodeId(2);
    let fresh_tuples: Vec<Tuple> = (0..8i64)
        .map(|i| Tuple::new(&format!("item{i}")).with("rating", Value::Int(i % 5)))
        .collect();
    let (ok, _) = cluster.insert_batch(origin, &fresh_tuples);
    assert!(ok, "routed batch insert must be acked");
    let fresh = cluster.cost_model().expect("model after inserts");
    let scan = ScanStrategy::AttrValueLookup { attr: "rating".into(), value: Value::Int(1) };
    let est_fresh = fresh.scan(&scan, None).cardinality;
    let est_stale = stale.scan(&scan, None).cardinality;
    let actual = {
        let mut oracle = cluster.oracle();
        oracle.query("SELECT ?x WHERE {(?x,'rating',1)}").unwrap().rows.len() as f64
    };
    let out = cluster.query(origin, "SELECT ?x WHERE {(?x,'rating',1)}").unwrap();
    assert!(out.ok && out.relation.rows.len() as f64 == actual, "runtime-insert query answers");
    let choice = cluster
        .take_traces()
        .into_iter()
        .find(|d| d.pattern.contains("rating"))
        .map(|d| d.choice)
        .unwrap_or_default();

    assert!(
        speedup > 10.0,
        "incremental stats must beat per-write rebuilds decisively (got {speedup:.1}x)"
    );
    println!(
        "\nstats maintenance: {incr_us:.2} us/insert incremental vs {rebuild_us:.2} us/insert \
         rebuild ({speedup:.0}x) over {} triples",
        triples.len()
    );
    println!(
        "runtime-insert plan: choice={choice}, est {est_fresh:.1} rows fresh / {est_stale:.1} \
         stale-floor, actual {actual}"
    );
    let json = format!(
        "{{\n  \"dataset_triples\": {},\n  \"incremental_us_per_insert\": {incr_us:.4},\n  \
         \"rebuild_us_per_insert\": {rebuild_us:.4},\n  \"speedup\": {speedup:.2},\n  \
         \"runtime_insert_plan_choice\": \"{choice}\",\n  \"est_rows_fresh\": {est_fresh:.3},\n  \
         \"est_rows_stale_floor\": {est_stale:.3},\n  \"actual_rows\": {actual}\n}}\n",
        triples.len()
    );
    std::fs::write("BENCH_stats.json", &json).expect("write BENCH_stats.json");
    println!("wrote BENCH_stats.json");
}

/// E7 — claim C6: the q-gram index makes string similarity efficient.
fn e7_qgram() {
    println!("\n## E7 — similarity cost vs dataset size (claim: q-gram index scales)\n");
    header(&["string triples", "k", "strategy", "msgs", "bytes", "rows"]);
    for n_conf in [200usize, 1000, 4000] {
        let world = PubWorld::generate(
            &PubParams {
                n_authors: 2,
                n_conferences: n_conf,
                typo_rate: 0.2,
                ..Default::default()
            },
            SEED,
        );
        // k = 1 only: with a 4-character target and k ≥ 2 the gram-count
        // guarantee lapses and the planner (correctly) refuses the
        // q-gram strategy — see `strategy::scan_candidates`.
        for k in [1usize] {
            let q = format!("SELECT ?s WHERE {{(?c,'series',?s) FILTER edist(?s,'ICDE')<={k}}}");
            let mut rows_seen = Vec::new();
            for (label, pref) in
                [("qgram", Some(ScanPref::QGram)), ("naive", Some(ScanPref::NaiveSimilarity))]
            {
                let mut cluster = UniCluster::build(64, UniConfig::default(), SEED);
                cluster.load(world.all_tuples());
                cluster.set_plan_mode(PlanMode { scan_pref: pref, ..Default::default() });
                let out = cluster.query(NodeId(0), &q).unwrap();
                assert!(out.ok);
                rows_seen.push(out.relation.len());
                row(&[
                    n_conf.to_string(),
                    k.to_string(),
                    label.to_string(),
                    out.cost.messages.to_string(),
                    out.cost.bytes.to_string(),
                    out.relation.len().to_string(),
                ]);
            }
            assert_eq!(rows_seen[0], rows_seen[1], "strategies must agree");
        }
    }
    println!("\nverdict: the q-gram index pays a fixed per-gram lookup fee but ships only");
    println!("count-filtered candidates — its *byte* cost beats the naive sweep and the gap");
    println!("grows with data size. Message-wise the naive sweep profits from the");
    println!("order-preserving layout clustering the whole attribute into few leaves; the");
    println!("optimizer weighs both and picks per situation (paper: \"each beneficial in");
    println!("special situations\").");
}

/// E8 — claim C1: "predict exact costs … almost all logarithmic".
fn e8_costmodel() {
    println!("\n## E8 — cost model: predicted vs measured messages/hops\n");
    let world = PubWorld::generate(
        &PubParams { n_authors: 120, n_conferences: 30, ..Default::default() },
        SEED,
    );
    let mut cluster = UniCluster::build(64, UniConfig::default(), SEED);
    cluster.load(world.all_tuples());
    // Execute at the origin (no plan forwarding) so measurement isolates
    // the scan operator itself.
    cluster.set_plan_mode(PlanMode { no_forward: true, ..Default::default() });
    let model = cluster.cost_model().expect("stats loaded");

    let cases: Vec<(&str, ScanStrategy, String)> = vec![
        (
            "av-lookup",
            ScanStrategy::AttrValueLookup { attr: "age".into(), value: Value::Int(30) },
            "SELECT ?x WHERE {(?x,'age',30)}".into(),
        ),
        (
            "oid-lookup",
            ScanStrategy::OidLookup { oid: "auth3".into() },
            "SELECT ?v WHERE {('auth3','age',?v)}".into(),
        ),
        (
            "range(narrow)",
            ScanStrategy::AttrRange {
                attr: "age".into(),
                lo: Some(Value::Int(30)),
                hi: Some(Value::Int(33)),
                algo: RangeAlgo::Parallel,
            },
            "SELECT ?g WHERE {(?a,'age',?g) FILTER ?g >= 30 AND ?g <= 33}".into(),
        ),
        (
            "range(wide)",
            ScanStrategy::AttrRange {
                attr: "age".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            "SELECT ?g WHERE {(?a,'age',?g)}".into(),
        ),
        (
            "qgram",
            ScanStrategy::QGram { attr: "series".into(), target: "ICDE".into(), k: 1 },
            "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<2}".into(),
        ),
    ];
    header(&[
        "operator",
        "pred msgs (bound)",
        "meas msgs",
        "pred hops (bound)",
        "meas hops",
        "bound holds",
    ]);
    let mut all_bounded = true;
    for (label, strategy, q) in cases {
        let pref = match &strategy {
            ScanStrategy::QGram { .. } => Some(ScanPref::QGram),
            _ => None,
        };
        cluster.set_plan_mode(PlanMode { scan_pref: pref, no_forward: true, ..Default::default() });
        let est = model.scan(&strategy, None);
        let out = cluster.query(NodeId(5), &q).unwrap();
        assert!(out.ok);
        let holds = (out.cost.messages as f64) <= est.cost.messages
            && (out.cost.hops as f64) <= est.cost.depth;
        all_bounded &= holds;
        row(&[
            label.to_string(),
            f(est.cost.messages),
            out.cost.messages.to_string(),
            f(est.cost.depth),
            out.cost.hops.to_string(),
            holds.to_string(),
        ]);
    }
    println!("\nverdict: the model's predictions are worst-case guarantees (paper: \"for each");
    println!("physical operator … worst-case guarantees, almost all logarithmic\"); measured");
    println!("costs stay below them while preserving the ordering the optimizer needs.");
    assert!(all_bounded, "a worst-case bound was violated");
}

/// E9 — the paper's §2 flagship query end to end.
fn e9_skyline() {
    println!("\n## E9 — the paper's skyline query (§2 example)\n");
    let q = "SELECT ?name,?age,?cnt
             WHERE {(?a,'name',?name) (?a,'age',?age)
                    (?a,'num_of_pubs',?cnt)
                    (?a,'has_published',?title) (?p,'title',?title)
                    (?p,'published_in',?conf) (?c,'confname',?conf)
                    (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}
             ORDER BY SKYLINE OF ?age MIN, ?cnt MAX";
    header(&["peers", "rows", "msgs", "KiB", "latency (ms)", "oracle match"]);
    for n in [64usize, 256] {
        let world = PubWorld::generate(
            &PubParams { n_authors: 100, n_conferences: 20, ..Default::default() },
            SEED,
        );
        let mut cluster = UniCluster::build(n, UniConfig::default(), SEED);
        cluster.load(world.all_tuples());
        let out = cluster.query(NodeId(1), q).unwrap();
        assert!(out.ok);
        let mut oracle = cluster.oracle();
        let expected = oracle.query(q).unwrap();
        row(&[
            n.to_string(),
            out.relation.len().to_string(),
            out.cost.messages.to_string(),
            f(out.cost.bytes as f64 / 1024.0),
            f(out.cost.latency.as_millis_f64()),
            (out.relation.len() == expected.len()).to_string(),
        ]);
    }
    println!("\nverdict: similarity-filtered multi-join plus skyline runs end to end and matches the oracle.");
}

/// E10 — claim C8: updates with loose consistency (push/pull).
fn e10_updates() {
    println!("\n## E10 — update propagation with loose consistency\n");
    let mut cfg = UniConfig::default()
        .with_replication(3)
        .with_maintenance(SimTime::from_secs(1_000_000_000), SimTime::from_secs(15));
    cfg.overlay.query_timeout = SimTime::from_secs(5);
    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        SEED,
    );
    let mut cluster = UniCluster::build(24, cfg, SEED);
    cluster.load(world.all_tuples());

    let mut stale_before = 0u32;
    let mut stale_after = 0u32;
    let mut reads = 0u32;
    for trial in 0..10u32 {
        let author = format!("auth{}", trial);
        let key = oid_key(&Oid::new(&author));
        let holders: Vec<NodeId> = (0..24u32)
            .map(NodeId)
            .filter(|&p| !cluster.net.node(p).overlay.store().get(key).is_empty())
            .collect();
        if holders.len() < 3 {
            continue;
        }
        // One replica sleeps through the update.
        let lagging = holders[0];
        cluster.net.schedule_down(lagging, cluster.net.now());
        cluster.settle(SimTime::from_millis(1));
        let old_age = cluster
            .net
            .node(holders[1])
            .overlay
            .store()
            .get(key)
            .into_iter()
            .find(|t| t.attr.as_ref() == "age")
            .unwrap();
        let new_val = 100 + trial as i64;
        assert!(cluster.update(holders[1], &old_age, Value::Int(new_val), 1));
        cluster.net.schedule_up(lagging, cluster.net.now());
        cluster.settle(SimTime::from_millis(1));

        // Immediately after revival: reads hitting any single replica.
        for origin in 0..5u32 {
            let (items, _) = cluster.raw_lookup(NodeId(origin * 4 % 24), key);
            let age = items.iter().find(|t| t.attr.as_ref() == "age");
            reads += 1;
            if age.is_none_or(|t| t.value.as_f64() != Some(new_val as f64)) {
                stale_before += 1;
            }
        }
        // After anti-entropy converges.
        cluster.settle(SimTime::from_secs(90));
        for origin in 0..5u32 {
            let (items, _) = cluster.raw_lookup(NodeId(origin * 4 % 24), key);
            let age = items.iter().find(|t| t.attr.as_ref() == "age");
            if age.is_none_or(|t| t.value.as_f64() != Some(new_val as f64)) {
                stale_after += 1;
            }
        }
    }
    header(&["phase", "stale reads", "total reads", "stale %"]);
    row(&[
        "right after update (1/3 replicas lagging)".into(),
        stale_before.to_string(),
        reads.to_string(),
        f(100.0 * stale_before as f64 / reads.max(1) as f64),
    ]);
    row(&[
        "after pull anti-entropy".into(),
        stale_after.to_string(),
        reads.to_string(),
        f(100.0 * stale_after as f64 / reads.max(1) as f64),
    ]);
    println!("\nverdict: reads can be stale immediately after an update (loose guarantees),");
    println!("and pull anti-entropy drives staleness to ~0 — the paper's [4] behaviour.");
}

/// E11 — claim C2: 1000+ peers, unreliable and highly dynamic.
fn e11_churn() {
    println!("\n## E11 — 1024 peers under churn (claim: robust in dynamic environments)\n");
    header(&["scenario", "success %", "p50 latency (ms)", "queries"]);
    for (label, churny) in [("stable", false), ("churn 40%", true)] {
        let mut cfg = UniConfig::default()
            .with_replication(4)
            .with_maintenance(SimTime::from_secs(30), SimTime::from_secs(60));
        cfg.overlay.refs_per_level = 4;
        cfg.overlay.ping_timeout = SimTime::from_secs(2);
        cfg.overlay.query_timeout = SimTime::from_secs(20);
        cfg.query_timeout = SimTime::from_secs(60);
        let world = PubWorld::generate(
            &PubParams { n_authors: 200, n_conferences: 30, ..Default::default() },
            SEED,
        );
        let mut cluster =
            UniCluster::build_with_latency(1024, cfg, PlanetLabLatency::new(SEED), SEED);
        cluster.load(world.all_tuples());
        if churny {
            let mut rng = unistore_util::rng::derive_rng(SEED, 5150);
            install_churn(
                &mut cluster.net,
                &mut rng,
                &ChurnConfig {
                    mean_session: SimTime::from_secs(180),
                    mean_downtime: SimTime::from_secs(45),
                    churn_fraction: 0.4,
                },
                SimTime::from_secs(1200),
            );
            cluster.settle(SimTime::from_secs(60));
        }
        let mut ok = 0u32;
        let mut total = 0u32;
        let mut lat = Vec::new();
        for i in 0..40u32 {
            cluster.settle(SimTime::from_secs(15));
            let origin = NodeId((i * 97) % 1024);
            if !cluster.net.is_up(origin) {
                continue;
            }
            total += 1;
            let author = format!("auth{}", i % 200);
            let out = cluster
                .query(origin, &format!("SELECT ?v WHERE {{('{author}','age',?v)}}"))
                .unwrap();
            if out.ok && !out.relation.is_empty() {
                ok += 1;
                lat.push(out.cost.latency.as_millis_f64());
            }
        }
        let (p50, _, _) = latency_summary(&lat);
        row(&[
            label.to_string(),
            f(100.0 * ok as f64 / total.max(1) as f64),
            f(p50),
            total.to_string(),
        ]);
    }
    println!("\nverdict: at 1024 peers queries stay answerable; churn costs some success");
    println!("percentage, recovered by replication + routing maintenance.");
}

/// E12 (bonus) — dynamic construction: the pairwise bootstrap protocol
/// converges to a working trie (paper §2, ref [1]).
fn e12_bootstrap() {
    println!("\n## E12 — bootstrap convergence (pairwise exchanges, no coordination)\n");
    let mut cfg = quiet_pgrid();
    cfg.split_threshold = 4;
    cfg.exchange_interval = SimTime::from_secs(1);
    // Routing-table gossip runs alongside the exchanges, as in the real
    // system — it fills levels the pairwise meetings missed.
    cfg.maintenance_interval = SimTime::from_secs(10);
    let n = 32usize;
    let mut c: PGridCluster<RawItem> =
        PGridCluster::build_bootstrap(n, cfg, ConstantLatency(SimTime::from_millis(10)), SEED);
    // Every peer contributes its own slice of data (conference attendees
    // bringing their own tuples, §4).
    let keys = spread_keys(encode_len(n as u64 * 16));
    for (i, &k) in keys.iter().enumerate() {
        c.net.node_mut(NodeId((i % n) as u32)).preload(k, RawItem(k), 0);
    }
    header(&["sim time (s)", "avg depth", "max depth", "refs/peer", "lookup success %"]);
    for checkpoint in [5u64, 20, 60, 180] {
        c.settle(SimTime::from_secs(checkpoint) - (c.net.now().saturating_sub(SimTime::ZERO)));
        let depths: Vec<f64> = c.net.iter_nodes().map(|(_, p)| p.path().len() as f64).collect();
        let refs: Vec<f64> =
            c.net.iter_nodes().map(|(_, p)| p.routing().ref_count() as f64).collect();
        let mut ok = 0;
        let trials = 40;
        for i in 0..trials {
            let origin = c.random_peer();
            let out = c.lookup(origin, keys[(i * 13) % keys.len()]);
            ok += (out.ok && !out.items.is_empty()) as u32;
        }
        row(&[
            checkpoint.to_string(),
            f(depths.iter().sum::<f64>() / n as f64),
            f(depths.iter().cloned().fold(0.0, f64::max)),
            f(refs.iter().sum::<f64>() / n as f64),
            f(100.0 * ok as f64 / trials as f64),
        ]);
    }
    println!("\nverdict: structure emerges from pairwise exchanges alone; lookups become");
    println!("answerable as paths specialize and reference tables fill.");
}

fn encode_len(n: u64) -> u64 {
    n
}

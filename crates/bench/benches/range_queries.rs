//! Criterion: the two range algorithms and the Chord baselines (E6
//! companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unistore_chord::node::ChordConfig;
use unistore_chord::{ChordCluster, ChordRangeMode};
use unistore_pgrid::cluster::Topology;
use unistore_pgrid::{PGridCluster, PGridConfig, RangeMode};
use unistore_simnet::{ConstantLatency, NodeId, SimTime};
use unistore_util::item::RawItem;

fn quiet() -> PGridConfig {
    PGridConfig {
        maintenance_interval: SimTime::from_secs(1_000_000_000),
        anti_entropy_interval: SimTime::from_secs(1_000_000_000),
        ..PGridConfig::default()
    }
}

fn bench_pgrid_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("pgrid_range");
    group.sample_size(15);
    let mut cluster: PGridCluster<RawItem> = PGridCluster::build(
        128,
        quiet(),
        Topology::Uniform,
        ConstantLatency(SimTime::from_millis(1)),
        3,
    );
    for k in 0..2048u64 {
        cluster.preload(k << 53, RawItem(k), 0);
    }
    for (label, mode) in [("parallel", RangeMode::Parallel), ("sequential", RangeMode::Sequential)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let out = cluster.range(NodeId(0), 100 << 53, 300 << 53, mode);
                assert!(out.complete);
                out.items.len()
            })
        });
    }
    group.finish();
}

fn bench_chord_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_range");
    group.sample_size(15);
    let mut cluster: ChordCluster<RawItem> = ChordCluster::build(
        128,
        ChordConfig::default(),
        ConstantLatency(SimTime::from_millis(1)),
        3,
    );
    for k in 0..2048u64 {
        cluster.preload(k << 53, RawItem(k));
    }
    for (label, mode) in
        [("buckets", ChordRangeMode::Buckets), ("broadcast", ChordRangeMode::Broadcast)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let out = cluster.range(NodeId(0), 100 << 53, 300 << 53, mode);
                assert!(out.complete);
                out.entries.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pgrid_range, bench_chord_range);
criterion_main!(benches);

//! Criterion: similarity machinery — q-gram extraction, count filter,
//! edit distance, and the end-to-end similarity query (E7 companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unistore::config::ScanPref;
use unistore::{PlanMode, UniCluster, UniConfig};
use unistore_simnet::NodeId;
use unistore_store::qgram::{edit_distance, passes_count_filter, qgrams};
use unistore_workload::{PubParams, PubWorld};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("qgram_primitives");
    let long = "International Conference on Data Engineering Workshops 2006";
    group.bench_function("qgrams_long", |b| b.iter(|| qgrams(std::hint::black_box(long))));
    group.bench_function("edit_distance_close", |b| {
        b.iter(|| {
            edit_distance(std::hint::black_box("ICDE 2006"), std::hint::black_box("ICDE 2005"))
        })
    });
    group.bench_function("edit_distance_long", |b| {
        b.iter(|| {
            edit_distance(
                std::hint::black_box(long),
                std::hint::black_box("VLDB Journal Special Issue on P2P Data Management"),
            )
        })
    });
    group.bench_function("count_filter", |b| {
        b.iter(|| passes_count_filter(std::hint::black_box(long), std::hint::black_box("ICDE"), 2))
    });
    group.finish();
}

fn bench_similarity_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_query");
    group.sample_size(10);
    let world = PubWorld::generate(
        &PubParams { n_authors: 20, n_conferences: 200, typo_rate: 0.2, ..Default::default() },
        5,
    );
    for (label, pref) in
        [("qgram", Some(ScanPref::QGram)), ("naive", Some(ScanPref::NaiveSimilarity))]
    {
        let mut cluster = UniCluster::build(32, UniConfig::default(), 5);
        cluster.load(world.all_tuples());
        cluster.set_plan_mode(PlanMode { scan_pref: pref, ..Default::default() });
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let out = cluster
                    .query(
                        NodeId(0),
                        "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<2}",
                    )
                    .unwrap();
                assert!(out.ok);
                out.relation.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_similarity_query);
criterion_main!(benches);

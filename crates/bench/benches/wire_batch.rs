//! Criterion: wire encode/decode of the batched write pipeline's
//! [`OpBatch`] payload at 1 / 64 / 1024 ops, so encoding regressions
//! are visible outside the end-to-end ingest numbers
//! (`BENCH_ingest.json`). `wire_size` is timed with the thread-local
//! buffer pool on and off, making the pooling win visible as time (the
//! allocs/op record lives in `BENCH_alloc.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unistore_store::index::TripleKeys;
use unistore_store::{Triple, Value};
use unistore_util::wire::{pool, OpBatch, Wire};

/// A batch of `n_ops` write ops over realistic triples: every triple
/// contributes its full index fan-out (OID + A#v + v + q-grams), with
/// the payload shared across its keys — exactly what `insert_batch`
/// ships.
fn batch_of(n_ops: usize) -> OpBatch<Triple> {
    let mut batch = OpBatch::new();
    let mut i = 0usize;
    while batch.len() < n_ops {
        let t = Triple::new(
            &format!("obj{i}"),
            if i % 2 == 0 { "title" } else { "year" },
            if i % 2 == 0 {
                Value::str(&format!("Similarity Queries on Structured Data {i}"))
            } else {
                Value::Int(1990 + (i % 30) as i64)
            },
        );
        let keys = TripleKeys::derive(&t, true).all();
        let item = batch.add_item(t);
        for key in keys {
            if batch.len() >= n_ops {
                break;
            }
            batch.push_insert(key, item, 0);
        }
        i += 1;
    }
    batch
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("op_batch_wire");
    for n_ops in [1usize, 64, 1024] {
        let batch = batch_of(n_ops);
        group.bench_with_input(BenchmarkId::new("encode", n_ops), &batch, |b, batch| {
            b.iter(|| batch.to_bytes().len())
        });
        let bytes = batch.to_bytes();
        group.bench_with_input(BenchmarkId::new("decode", n_ops), &bytes, |b, bytes| {
            b.iter(|| OpBatch::<Triple>::from_bytes(bytes).expect("decode").len())
        });
        group.bench_with_input(BenchmarkId::new("wire_size", n_ops), &batch, |b, batch| {
            b.iter(|| batch.wire_size())
        });
        group.bench_with_input(
            BenchmarkId::new("wire_size_unpooled", n_ops),
            &batch,
            |b, batch| {
                b.iter(|| {
                    pool::set_enabled(false);
                    let n = batch.wire_size();
                    pool::set_enabled(true);
                    n
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode_decode);
criterion_main!(benches);

//! Criterion: lookup routing on both overlays (E1 companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unistore_chord::node::ChordConfig;
use unistore_chord::ChordCluster;
use unistore_pgrid::cluster::Topology;
use unistore_pgrid::{PGridCluster, PGridConfig};
use unistore_simnet::{ConstantLatency, SimTime};
use unistore_util::item::RawItem;

fn quiet() -> PGridConfig {
    PGridConfig {
        maintenance_interval: SimTime::from_secs(1_000_000_000),
        anti_entropy_interval: SimTime::from_secs(1_000_000_000),
        ..PGridConfig::default()
    }
}

fn keys(n: u64) -> Vec<u64> {
    (0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()
}

fn bench_pgrid_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("pgrid_lookup");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let mut cluster: PGridCluster<RawItem> = PGridCluster::build(
            n,
            quiet(),
            Topology::Uniform,
            ConstantLatency(SimTime::from_millis(1)),
            7,
        );
        let ks = keys(256);
        for &k in &ks {
            cluster.preload(k, RawItem(k), 0);
        }
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) % ks.len();
                let origin = cluster.random_peer();
                let out = cluster.lookup(origin, ks[i]);
                assert!(out.ok);
                out.cost.hops
            })
        });
    }
    group.finish();
}

fn bench_chord_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_lookup");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let mut cluster: ChordCluster<RawItem> = ChordCluster::build(
            n,
            ChordConfig::default(),
            ConstantLatency(SimTime::from_millis(1)),
            7,
        );
        let ks = keys(256);
        for &k in &ks {
            cluster.preload(k, RawItem(k));
        }
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) % ks.len();
                let origin = cluster.random_node();
                let out = cluster.lookup(origin, ks[i]);
                assert!(out.ok);
                out.cost.hops
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pgrid_lookup, bench_chord_lookup);
criterion_main!(benches);

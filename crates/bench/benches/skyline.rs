//! Criterion: the skyline operator (E9 companion) and the full flagship
//! query.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unistore::{UniCluster, UniConfig};
use unistore_query::relation::Relation;
use unistore_query::skyline::skyline;
use unistore_simnet::NodeId;
use unistore_store::Value;
use unistore_vql::ast::{SkyDir, SkyItem};
use unistore_workload::{PubParams, PubWorld};

fn rel(n: usize, seed: u64) -> Relation {
    let mut x = seed;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33) as i64 % 1000
    };
    Relation {
        schema: vec![Arc::from("a"), Arc::from("b"), Arc::from("c")],
        rows: (0..n)
            .map(|_| vec![Value::Int(next()), Value::Int(next()), Value::Int(next())])
            .collect(),
    }
}

fn items(dims: usize) -> Vec<SkyItem> {
    let names = ["a", "b", "c"];
    (0..dims)
        .map(|i| SkyItem {
            var: Arc::from(names[i]),
            dir: if i % 2 == 0 { SkyDir::Min } else { SkyDir::Max },
        })
        .collect()
}

fn bench_skyline_operator(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline_bnl");
    for n in [100usize, 1000, 10_000] {
        for dims in [2usize, 3] {
            let input = rel(n, 42);
            let its = items(dims);
            group.bench_with_input(BenchmarkId::new(format!("{dims}d"), n), &(), |b, _| {
                b.iter(|| {
                    let mut r = input.clone();
                    skyline(&mut r, &its);
                    r.len()
                })
            });
        }
    }
    group.finish();
}

fn bench_flagship_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_flagship_query");
    group.sample_size(10);
    let world = PubWorld::generate(
        &PubParams { n_authors: 60, n_conferences: 15, ..Default::default() },
        9,
    );
    let mut cluster = UniCluster::build(64, UniConfig::default(), 9);
    cluster.load(world.all_tuples());
    group.bench_function("n64", |b| {
        b.iter(|| {
            let out = cluster
                .query(
                    NodeId(1),
                    "SELECT ?name,?age,?cnt
                     WHERE {(?a,'name',?name) (?a,'age',?age)
                            (?a,'num_of_pubs',?cnt)
                            (?a,'has_published',?title) (?p,'title',?title)
                            (?p,'published_in',?conf) (?c,'confname',?conf)
                            (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}
                     ORDER BY SKYLINE OF ?age MIN, ?cnt MAX",
                )
                .unwrap();
            assert!(out.ok);
            out.relation.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_skyline_operator, bench_flagship_query);
criterion_main!(benches);

//! Criterion: the triple layer — decomposition, key derivation, local
//! store operations (E4 companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unistore_pgrid::item::LocalStore;
use unistore_store::index::TripleKeys;
use unistore_store::{Triple, Tuple, Value};

fn tuple() -> Tuple {
    Tuple::new("a12")
        .with("title", Value::str("Similarity Queries on Structured Data"))
        .with("confname", Value::str("ICDE 2006 - Workshops"))
        .with("year", Value::Int(2006))
        .with("pages", Value::Int(12))
}

fn bench_decompose_and_derive(c: &mut Criterion) {
    let mut group = c.benchmark_group("triple_layer");
    let t = tuple();
    group.bench_function("tuple_to_triples", |b| b.iter(|| t.to_triples().len()));
    let triples = t.to_triples();
    group.bench_function("derive_keys_primary", |b| {
        b.iter(|| {
            triples
                .iter()
                .map(|t| TripleKeys::derive(t, false).primary()[0])
                .fold(0u64, |a, k| a ^ k)
        })
    });
    group.bench_function("derive_keys_with_qgrams", |b| {
        b.iter(|| triples.iter().map(|t| TripleKeys::derive(t, true).qgrams.len()).sum::<usize>())
    });
    group.finish();
}

fn bench_local_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_store");
    for n in [1_000u64, 10_000] {
        let mut store: LocalStore<Triple> = LocalStore::new();
        for i in 0..n {
            let t = Triple::new(&format!("o{i}"), "year", Value::Int(1990 + (i % 20) as i64));
            store.apply(i << 40, t, 0);
        }
        group.bench_with_input(BenchmarkId::new("get_range_1pct", n), &(), |b, _| {
            b.iter(|| store.get_range(0, (n / 100) << 40).len())
        });
        group.bench_with_input(BenchmarkId::new("point_get", n), &(), |b, _| {
            b.iter(|| store.get((n / 2) << 40).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompose_and_derive, bench_local_store);
criterion_main!(benches);

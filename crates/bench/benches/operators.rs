//! Criterion: query-layer building blocks — joins, VQL parsing, plan
//! serialization (E3/E8 companions).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use unistore_query::relation::Relation;
use unistore_query::{Logical, Mqp, MqpNode};
use unistore_store::Value;
use unistore_util::wire::Wire;
use unistore_vql::{analyze, parse};

fn rel(n: usize, key_mod: i64, cols: &[&str]) -> Relation {
    Relation {
        schema: cols.iter().map(|c| Arc::from(*c)).collect(),
        rows: (0..n)
            .map(|i| {
                let mut row = vec![Value::Int(i as i64 % key_mod)];
                for c in 1..cols.len() {
                    row.push(Value::Int((i * c) as i64));
                }
                row
            })
            .collect(),
    }
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join");
    for n in [100usize, 1_000, 10_000] {
        let left = rel(n, (n / 10).max(1) as i64, &["k", "x"]);
        let right = rel(n, (n / 10).max(1) as i64, &["k", "y"]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| left.join(&right).len())
        });
    }
    group.finish();
}

const PAPER_QUERY: &str = "SELECT ?name,?age,?cnt
    WHERE {(?a,'name',?name) (?a,'age',?age)
           (?a,'num_of_pubs',?cnt)
           (?a,'has_published',?title) (?p,'title',?title)
           (?p,'published_in',?conf) (?c,'confname',?conf)
           (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}
    ORDER BY SKYLINE OF ?age MIN, ?cnt MAX";

fn bench_vql(c: &mut Criterion) {
    let mut group = c.benchmark_group("vql");
    group.bench_function("parse_paper_query", |b| {
        b.iter(|| parse(std::hint::black_box(PAPER_QUERY)).unwrap())
    });
    group.bench_function("parse_analyze_plan", |b| {
        b.iter(|| {
            let a = analyze(parse(PAPER_QUERY).unwrap()).unwrap();
            Logical::from_query(&a).size()
        })
    });
    group.finish();
}

fn bench_mqp_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("mqp_wire");
    let a = analyze(parse(PAPER_QUERY).unwrap()).unwrap();
    let mut root = MqpNode::from_logical(&Logical::from_query(&a));
    // Embed a realistic partial result.
    root.resolve_first_scan(rel(500, 50, &["a", "name"]));
    let mqp = Mqp::new(1, 0, root, a.query.filters.clone(), None);
    group.bench_function("encode", |b| b.iter(|| mqp.to_bytes().len()));
    let bytes = mqp.to_bytes();
    group.bench_function("decode", |b| b.iter(|| Mqp::from_bytes(&bytes).unwrap().qid));
    group.finish();
}

criterion_group!(benches, bench_join, bench_vql, bench_mqp_wire);
criterion_main!(benches);

//! Universal-relation (de)composition.
//!
//! Paper §2 / Fig. 2: a logical tuple `(OID, v1, …, vn)` over schema
//! `R(A1, …, An)` becomes `n` triples; vertical storage "supersedes the
//! explicit representation of null values making the universal relation
//! approach feasible even for heterogeneous data".

use std::sync::Arc;

use unistore_util::{intern, FxHashMap};

use crate::triple::{Oid, Triple};
use crate::value::Value;

/// A logical tuple: an OID plus attribute/value fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Tuple {
    /// Logical identifier.
    pub oid: Oid,
    /// Attribute/value pairs (absent attributes = nulls, simply omitted).
    pub fields: Vec<(Arc<str>, Value)>,
}

impl Tuple {
    /// Starts a tuple for the given OID.
    pub fn new(oid: &str) -> Tuple {
        Tuple { oid: Oid::new(oid), fields: Vec::new() }
    }

    /// Adds a field (builder style). Attribute names intern, matching
    /// [`Triple::new`].
    pub fn with(mut self, attr: &str, value: Value) -> Tuple {
        self.fields.push((intern(attr), value));
        self
    }

    /// The value of an attribute, if present.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.fields.iter().find(|(a, _)| a.as_ref() == attr).map(|(_, v)| v)
    }

    /// Vertical decomposition: one triple per field (paper Fig. 2).
    pub fn to_triples(&self) -> Vec<Triple> {
        self.fields
            .iter()
            .map(|(attr, value)| Triple {
                oid: self.oid.clone(),
                attr: attr.clone(),
                value: value.clone(),
            })
            .collect()
    }

    /// Reassembles logical tuples from a bag of triples (grouping by
    /// OID). Field order follows first occurrence. Attributes are
    /// multi-valued: distinct values of one attribute all survive; only
    /// exact `(attr, value)` duplicates collapse.
    pub fn from_triples(triples: impl IntoIterator<Item = Triple>) -> Vec<Tuple> {
        // Typical vertical decompositions carry a handful of fields per
        // tuple; pre-sizing the field Vec skips its first growth steps.
        const FIELDS_HINT: usize = 4;
        let triples = triples.into_iter();
        // Tuples accumulate in first-occurrence order; the map only
        // translates oid → slot, so assembling the result needs no
        // second hash pass (the old shape re-hashed every oid on a
        // final `groups.remove`).
        let mut tuples: Vec<Tuple> = Vec::new();
        let mut slots: FxHashMap<Oid, usize> =
            FxHashMap::with_capacity_and_hasher(triples.size_hint().0, Default::default());
        for t in triples {
            let slot = match slots.get(&t.oid) {
                Some(&slot) => slot,
                None => {
                    let slot = tuples.len();
                    slots.insert(t.oid.clone(), slot);
                    tuples.push(Tuple { oid: t.oid, fields: Vec::with_capacity(FIELDS_HINT) });
                    slot
                }
            };
            let fields = &mut tuples[slot].fields;
            if !fields.iter().any(|(a, v)| *a == t.attr && v.eq_values(&t.value)) {
                fields.push((t.attr, t.value));
            }
        }
        tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's Fig. 2 example: two publication tuples with three
    /// attributes each → 6 triples (times 3 indexes = 18 index entries,
    /// covered in `index.rs`).
    fn fig2_tuples() -> Vec<Tuple> {
        vec![
            Tuple::new("a12")
                .with("title", Value::str("Similarity..."))
                .with("confname", Value::str("ICDE 2006 - Workshops"))
                .with("year", Value::Int(2006)),
            Tuple::new("v34")
                .with("title", Value::str("Progressive..."))
                .with("confname", Value::str("ICDE 2005"))
                .with("year", Value::Int(2005)),
        ]
    }

    #[test]
    fn fig2_decomposition_counts() {
        let triples: Vec<Triple> = fig2_tuples().iter().flat_map(Tuple::to_triples).collect();
        assert_eq!(triples.len(), 6, "2 tuples × 3 attributes");
        assert!(triples.iter().any(|t| t.to_string() == "(a12,'year',2006)"));
        assert!(triples.iter().any(|t| t.to_string() == "(v34,'confname','ICDE 2005')"));
    }

    #[test]
    fn roundtrip_preserves_tuples() {
        let tuples = fig2_tuples();
        let triples: Vec<Triple> = tuples.iter().flat_map(Tuple::to_triples).collect();
        let back = Tuple::from_triples(triples);
        assert_eq!(back, tuples);
    }

    #[test]
    fn heterogeneous_tuples_no_nulls() {
        // One peer shares phone numbers, another does not — no null
        // markers anywhere, just fewer triples.
        let a = Tuple::new("p1").with("name", Value::str("alice")).with("phone", Value::Int(123));
        let b = Tuple::new("p2").with("name", Value::str("bob"));
        let triples: Vec<Triple> = a.to_triples().into_iter().chain(b.to_triples()).collect();
        assert_eq!(triples.len(), 3);
        let back = Tuple::from_triples(triples);
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].get("phone"), None);
    }

    #[test]
    fn multivalued_attrs_survive_exact_dups_collapse() {
        let triples = vec![
            Triple::new("x", "v", Value::Int(1)),
            Triple::new("x", "v", Value::Int(2)),
            Triple::new("x", "v", Value::Int(2)),
        ];
        let back = Tuple::from_triples(triples);
        assert_eq!(back[0].fields.len(), 2, "two distinct values of ?v");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            n_tuples in 1usize..6,
            attrs in proptest::collection::vec("[a-z]{1,6}", 1..5),
        ) {
            // Distinct attribute names per tuple.
            let mut uniq = attrs.clone();
            uniq.sort();
            uniq.dedup();
            let tuples: Vec<Tuple> = (0..n_tuples)
                .map(|i| {
                    let mut t = Tuple::new(&format!("o{i}"));
                    for (j, a) in uniq.iter().enumerate() {
                        t = t.with(a, Value::Int((i * 10 + j) as i64));
                    }
                    t
                })
                .collect();
            let triples: Vec<Triple> =
                tuples.iter().flat_map(Tuple::to_triples).collect();
            prop_assert_eq!(Tuple::from_triples(triples), tuples);
        }
    }
}

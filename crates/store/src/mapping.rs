//! Schema mappings as metadata triples.
//!
//! Paper §2: *"we allow to store triples representing a simple kind of
//! schema mappings in order to overcome schema heterogeneities. This
//! additional metadata can be queried explicitly by the user — or even
//! automatically by the system to retrieve relevant data without needing
//! the user to interact."*
//!
//! A mapping `ns1:attr ≡ ns2:attr'` is itself a triple
//! `(ns1:attr, 'sys:maps_to', 'ns2:attr'')` — data and schema are stored
//! uniformly (the universal-relation idea). [`MappingSet`] computes the
//! symmetric-transitive closure so the query layer can expand an
//! attribute into all its known equivalents.

use std::sync::Arc;

use unistore_util::{intern, FxHashMap, FxHashSet};

use crate::triple::Triple;
use crate::value::Value;

/// The reserved attribute under which mappings are stored.
pub const MAPS_TO: &str = "sys:maps_to";

/// One attribute correspondence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// Source attribute (namespace-qualified).
    pub from: Arc<str>,
    /// Equivalent attribute.
    pub to: Arc<str>,
}

impl Mapping {
    /// Creates a correspondence (both sides are attribute names, so
    /// they intern).
    pub fn new(from: &str, to: &str) -> Mapping {
        Mapping { from: intern(from), to: intern(to) }
    }

    /// The metadata triple representing this mapping.
    pub fn to_triple(&self) -> Triple {
        Triple {
            oid: crate::triple::Oid(self.from.clone()),
            attr: intern(MAPS_TO),
            value: Value::Str(self.to.clone().into()),
        }
    }

    /// Parses a mapping back from a metadata triple.
    pub fn from_triple(t: &Triple) -> Option<Mapping> {
        if t.attr.as_ref() != MAPS_TO {
            return None;
        }
        let to = t.value.as_str()?;
        Some(Mapping { from: t.oid.0.clone(), to: intern(to) })
    }
}

/// A set of correspondences with closure computation.
#[derive(Clone, Debug, Default)]
pub struct MappingSet {
    adjacency: FxHashMap<Arc<str>, Vec<Arc<str>>>,
}

impl MappingSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a correspondence (symmetric: both directions become known).
    pub fn add(&mut self, m: &Mapping) {
        self.link(m.from.clone(), m.to.clone());
        self.link(m.to.clone(), m.from.clone());
    }

    fn link(&mut self, a: Arc<str>, b: Arc<str>) {
        let list = self.adjacency.entry(a).or_default();
        if !list.contains(&b) {
            list.push(b);
        }
    }

    /// Builds from metadata triples, ignoring non-mapping triples.
    pub fn from_triples<'a>(triples: impl IntoIterator<Item = &'a Triple>) -> Self {
        let mut set = Self::new();
        for t in triples {
            if let Some(m) = Mapping::from_triple(t) {
                set.add(&m);
            }
        }
        set
    }

    /// All attributes equivalent to `attr` (symmetric-transitive
    /// closure), including `attr` itself, in deterministic order.
    pub fn expand(&self, attr: &str) -> Vec<Arc<str>> {
        let start: Arc<str> = intern(attr);
        let mut seen: FxHashSet<Arc<str>> = FxHashSet::default();
        let mut order = vec![start.clone()];
        seen.insert(start.clone());
        let mut frontier = vec![start];
        while let Some(cur) = frontier.pop() {
            if let Some(next) = self.adjacency.get(&cur) {
                for n in next {
                    if seen.insert(n.clone()) {
                        order.push(n.clone());
                        frontier.push(n.clone());
                    }
                }
            }
        }
        order
    }

    /// Number of attributes with at least one correspondence.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True when no mapping is known.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_roundtrip() {
        let m = Mapping::new("dblp:confname", "conf:name");
        let t = m.to_triple();
        assert_eq!(t.attr.as_ref(), MAPS_TO);
        assert_eq!(Mapping::from_triple(&t), Some(m));
        // Non-mapping triples are ignored.
        let other = Triple::new("a", "year", Value::Int(2006));
        assert_eq!(Mapping::from_triple(&other), None);
    }

    #[test]
    fn expand_is_symmetric() {
        let mut s = MappingSet::new();
        s.add(&Mapping::new("a:x", "b:y"));
        assert_eq!(s.expand("a:x").len(), 2);
        assert_eq!(s.expand("b:y").len(), 2);
        assert!(s.expand("b:y").iter().any(|a| a.as_ref() == "a:x"));
    }

    #[test]
    fn expand_is_transitive() {
        let mut s = MappingSet::new();
        s.add(&Mapping::new("a:x", "b:y"));
        s.add(&Mapping::new("b:y", "c:z"));
        let ex = s.expand("a:x");
        assert_eq!(ex.len(), 3);
        assert!(ex.iter().any(|a| a.as_ref() == "c:z"));
    }

    #[test]
    fn expand_unknown_returns_self() {
        let s = MappingSet::new();
        let ex = s.expand("solo");
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].as_ref(), "solo");
    }

    #[test]
    fn from_triples_filters() {
        let triples = vec![
            Mapping::new("p:name", "q:fullname").to_triple(),
            Triple::new("a12", "year", Value::Int(2006)),
        ];
        let s = MappingSet::from_triples(&triples);
        assert_eq!(s.len(), 2); // both directions indexed
        assert_eq!(s.expand("p:name").len(), 2);
    }

    #[test]
    fn duplicate_mappings_are_idempotent() {
        let mut s = MappingSet::new();
        s.add(&Mapping::new("a", "b"));
        s.add(&Mapping::new("a", "b"));
        s.add(&Mapping::new("b", "a"));
        assert_eq!(s.expand("a").len(), 2);
    }
}

//! The UniStore triple layer.
//!
//! Paper §2: *"we follow the idea of the universal relation model …
//! we store data vertically, similar to the idea of RDF. Each tuple
//! `(OID, v1, …, vn)` of a relation `R(A1, …, An)` is stored as n triples
//! `(OID, Ai, vi)` … By default, we index each triple on the OID,
//! `Ai#vi`, and `vi`."* (Fig. 2.)
//!
//! This crate provides everything between raw DHT keys and the query
//! layer:
//!
//! * [`value`] — typed values (string / integer / float) with
//!   order-preserving key encodings,
//! * [`triple`] — the triple model and its [`unistore_util::item::Item`]
//!   implementation,
//! * [`tuple`] — universal-relation (de)composition: tuples ↔ triples,
//! * [`index`] — the key derivation for all four indexes (OID, A#v, v,
//!   q-gram), i.e. the paper's Fig. 2 placement,
//! * [`qgram`] — q-gram extraction, the count filter and edit distance
//!   (paper ref [6]),
//! * [`mapping`] — schema-mapping triples and query rewriting (the
//!   paper's "simple kind of schema mappings" metadata),
//! * [`local`] — a purely local reference store used as test oracle.

pub mod index;
pub mod local;
pub mod mapping;
pub mod qgram;
pub mod triple;
pub mod tuple;
pub mod value;

pub use index::{IndexKind, TripleKeys};
pub use mapping::{Mapping, MappingSet};
pub use qgram::{edit_distance, qgrams, QGRAM_Q};
pub use triple::{Oid, Triple};
pub use tuple::Tuple;
pub use value::Value;

//! A purely local triple store: the *reference engine*.
//!
//! Integration tests run every distributed query against this in-memory
//! oracle and require identical answers (oracle testing). Experiments
//! also use it to verify result completeness.

use crate::qgram::edit_distance;
use crate::triple::{Oid, Triple};
use crate::value::Value;

/// An in-memory bag of triples with predicate scans.
#[derive(Clone, Debug, Default)]
pub struct LocalTripleStore {
    triples: Vec<Triple>,
}

impl LocalTripleStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one triple. Attributes are multi-valued: only an exact
    /// `(oid, attr, value)` duplicate is idempotent; a different value
    /// of the same attribute coexists (mirroring the DHT's identity
    /// semantics).
    pub fn insert(&mut self, t: Triple) {
        let exists = self
            .triples
            .iter()
            .any(|e| e.oid == t.oid && e.attr == t.attr && e.value.eq_values(&t.value));
        if !exists {
            self.triples.push(t);
        }
    }

    /// Replaces all values of `(oid, attr)` with one new value (the
    /// oracle-side view of an update).
    pub fn replace(&mut self, t: Triple) {
        self.triples.retain(|e| !(e.oid == t.oid && e.attr == t.attr));
        self.triples.push(t);
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, ts: impl IntoIterator<Item = Triple>) {
        for t in ts {
            self.insert(t);
        }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples.
    pub fn all(&self) -> &[Triple] {
        &self.triples
    }

    /// Triples of one object.
    pub fn by_oid(&self, oid: &Oid) -> Vec<&Triple> {
        self.iter_by_oid(oid).collect()
    }

    /// Triples with an exact `(attr, value)` match.
    pub fn by_attr_value(&self, attr: &str, value: &Value) -> Vec<&Triple> {
        self.iter_by_attr_value(attr, value).collect()
    }

    /// Triples of one attribute with `lo ≤ value ≤ hi` (either bound
    /// optional).
    pub fn by_attr_range(
        &self,
        attr: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Vec<&Triple> {
        self.iter_by_attr_range(attr, lo, hi).collect()
    }

    /// Triples with a given value under *any* attribute (the v index).
    pub fn by_value(&self, value: &Value) -> Vec<&Triple> {
        self.iter_by_value(value).collect()
    }

    /// Triples of one attribute whose string value has the given prefix.
    pub fn by_attr_prefix(&self, attr: &str, prefix: &str) -> Vec<&Triple> {
        self.iter_by_attr_prefix(attr, prefix).collect()
    }

    /// Triples of one attribute whose string value is within edit
    /// distance `k` of `target` (the naive evaluation the q-gram index
    /// competes against).
    pub fn by_attr_similar(&self, attr: &str, target: &str, k: usize) -> Vec<&Triple> {
        self.iter_by_attr_similar(attr, target, k).collect()
    }

    // Iterator-returning variants of the `by_*` scans: callers that
    // post-filter (semi-join style) or count can walk candidates without
    // materializing a Vec of drops first.

    /// Borrowed scan over the triples of one object.
    pub fn iter_by_oid<'s, 'q>(
        &'s self,
        oid: &'q Oid,
    ) -> impl Iterator<Item = &'s Triple> + use<'s, 'q> {
        self.triples.iter().filter(move |t| &t.oid == oid)
    }

    /// Borrowed scan over exact `(attr, value)` matches.
    pub fn iter_by_attr_value<'s, 'q>(
        &'s self,
        attr: &'q str,
        value: &'q Value,
    ) -> impl Iterator<Item = &'s Triple> + use<'s, 'q> {
        self.triples.iter().filter(move |t| t.attr.as_ref() == attr && t.value.eq_values(value))
    }

    /// Borrowed scan over one attribute's triples with `lo ≤ value ≤ hi`.
    pub fn iter_by_attr_range<'s, 'q>(
        &'s self,
        attr: &'q str,
        lo: Option<&'q Value>,
        hi: Option<&'q Value>,
    ) -> impl Iterator<Item = &'s Triple> + use<'s, 'q> {
        self.triples.iter().filter(move |t| {
            t.attr.as_ref() == attr
                && lo.is_none_or(|l| t.value.cmp_values(l) != std::cmp::Ordering::Less)
                && hi.is_none_or(|h| t.value.cmp_values(h) != std::cmp::Ordering::Greater)
        })
    }

    /// Borrowed scan over triples with a given value under any attribute.
    pub fn iter_by_value<'s, 'q>(
        &'s self,
        value: &'q Value,
    ) -> impl Iterator<Item = &'s Triple> + use<'s, 'q> {
        self.triples.iter().filter(move |t| t.value.eq_values(value))
    }

    /// Borrowed scan over one attribute's triples with a string prefix.
    pub fn iter_by_attr_prefix<'s, 'q>(
        &'s self,
        attr: &'q str,
        prefix: &'q str,
    ) -> impl Iterator<Item = &'s Triple> + use<'s, 'q> {
        self.triples.iter().filter(move |t| {
            t.attr.as_ref() == attr && t.value.as_str().is_some_and(|s| s.starts_with(prefix))
        })
    }

    /// Borrowed scan over one attribute's triples within edit distance
    /// `k` of `target`.
    pub fn iter_by_attr_similar<'s, 'q>(
        &'s self,
        attr: &'q str,
        target: &'q str,
        k: usize,
    ) -> impl Iterator<Item = &'s Triple> + use<'s, 'q> {
        self.triples.iter().filter(move |t| {
            t.attr.as_ref() == attr
                && t.value.as_str().is_some_and(|s| edit_distance(s, target) <= k)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> LocalTripleStore {
        let mut s = LocalTripleStore::new();
        s.insert_all([
            Triple::new("a12", "title", Value::str("Similarity...")),
            Triple::new("a12", "confname", Value::str("ICDE 2006 - Workshops")),
            Triple::new("a12", "year", Value::Int(2006)),
            Triple::new("v34", "title", Value::str("Progressive...")),
            Triple::new("v34", "confname", Value::str("ICDE 2005")),
            Triple::new("v34", "year", Value::Int(2005)),
        ]);
        s
    }

    #[test]
    fn by_oid_groups_logical_tuple() {
        let s = store();
        assert_eq!(s.by_oid(&Oid::new("a12")).len(), 3);
        assert_eq!(s.by_oid(&Oid::new("zzz")).len(), 0);
    }

    #[test]
    fn exact_and_range_scans() {
        let s = store();
        assert_eq!(s.by_attr_value("year", &Value::Int(2006)).len(), 1);
        assert_eq!(
            s.by_attr_range("year", Some(&Value::Int(2005)), Some(&Value::Int(2006))).len(),
            2
        );
        assert_eq!(s.by_attr_range("year", Some(&Value::Int(2006)), None).len(), 1);
        assert_eq!(s.by_attr_range("year", None, None).len(), 2);
    }

    #[test]
    fn value_scan_is_attr_agnostic() {
        let mut s = store();
        s.insert(Triple::new("p9", "founded", Value::Int(2005)));
        assert_eq!(s.by_value(&Value::Int(2005)).len(), 2);
    }

    #[test]
    fn prefix_and_similarity() {
        let s = store();
        assert_eq!(s.by_attr_prefix("confname", "ICDE").len(), 2);
        assert_eq!(s.by_attr_prefix("confname", "ICDE 2005").len(), 1);
        // One character typo'd target still matches via edit distance.
        assert_eq!(s.by_attr_similar("confname", "ICDE 2004", 1).len(), 1);
        assert_eq!(s.by_attr_similar("confname", "VLDB", 2).len(), 0);
    }

    #[test]
    fn insert_is_multivalued_replace_is_not() {
        let mut s = store();
        // insert: a second year value coexists (multi-valued).
        s.insert(Triple::new("a12", "year", Value::Int(2007)));
        assert_eq!(s.len(), 7);
        // exact duplicates are idempotent.
        s.insert(Triple::new("a12", "year", Value::Int(2007)));
        assert_eq!(s.len(), 7);
        // replace: supersedes all values of the attribute.
        s.replace(Triple::new("a12", "year", Value::Int(2008)));
        assert_eq!(s.len(), 6);
        assert_eq!(s.by_attr_value("year", &Value::Int(2008)).len(), 1);
        assert_eq!(s.by_attr_value("year", &Value::Int(2006)).len(), 0);
    }
}

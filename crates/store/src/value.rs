//! Typed attribute values.
//!
//! UniStore stores heterogeneous public data; values are strings, integers
//! or floats (the paper's example schema, Fig. 3, has `String`, `Number`
//! and `Date` — dates are represented as integers here). Every value maps
//! onto the order-preserving key space so that range predicates
//! (`Ai ≥ vi`, paper §2) translate to key ranges.

use std::cmp::Ordering;
use std::fmt;

use bytes::{Bytes, BytesMut};

use unistore_util::ophash;
use unistore_util::wire::{Wire, WireError};
use unistore_util::CompactStr;

/// A triple's value.
///
/// Strings ride [`CompactStr`]: short payloads (≤ 22 bytes — OIDs,
/// names, most attribute values) live inline, so cloning a `Value`
/// never touches the allocator.
#[derive(Clone, Debug)]
pub enum Value {
    /// UTF-8 string.
    Str(CompactStr),
    /// Signed integer (also used for years/dates).
    Int(i64),
    /// Floating-point number.
    Float(f64),
}

/// Type-class tag used in key encodings: numbers sort before strings.
const CLASS_NUM: u64 = 0;
const CLASS_STR: u64 = 1;

impl Value {
    /// Convenience constructor from `&str`.
    pub fn str(s: &str) -> Value {
        Value::Str(CompactStr::new(s))
    }

    /// The numeric interpretation, if any (ints widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Full-width (64-bit) order-preserving encoding:
    /// `[class:1][payload:63]`. Monotone w.r.t. [`Value::cmp_values`].
    pub fn key_bits(&self) -> u64 {
        match self {
            Value::Int(i) => (CLASS_NUM << 63) | (ophash::encode_f64(*i as f64) >> 1),
            Value::Float(f) => (CLASS_NUM << 63) | (ophash::encode_f64(*f) >> 1),
            Value::Str(s) => (CLASS_STR << 63) | (ophash::encode_str(s) >> 1),
        }
    }

    /// Total order over values: numbers before strings, numbers by
    /// magnitude (ints and floats compare numerically), strings
    /// lexicographically by bytes.
    pub fn cmp_values(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.as_bytes().cmp(b.as_bytes()),
            (Value::Str(_), _) => Ordering::Greater,
            (_, Value::Str(_)) => Ordering::Less,
            (a, b) => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Semantic equality (numeric across Int/Float, byte-wise for
    /// strings).
    pub fn eq_values(&self, other: &Value) -> bool {
        self.cmp_values(other) == Ordering::Equal
    }

    /// Hash consistent with [`Value::eq_values`] (numeric classes
    /// collapse onto the f64 encoding).
    pub fn semantic_hash(&self) -> u64 {
        match self {
            Value::Str(s) => unistore_util::fxhash::hash_bytes(s.as_bytes()),
            Value::Int(i) => ophash::encode_f64(*i as f64),
            Value::Float(f) => ophash::encode_f64(*f),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.eq_values(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

mod tag {
    pub const STR: u8 = 0;
    pub const INT: u8 = 1;
    pub const FLOAT: u8 = 2;
}

impl Wire for Value {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Str(s) => {
                tag::STR.encode(buf);
                s.encode(buf);
            }
            Value::Int(i) => {
                tag::INT.encode(buf);
                i.encode(buf);
            }
            Value::Float(f) => {
                tag::FLOAT.encode(buf);
                f.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            tag::STR => Value::Str(Wire::decode(buf)?),
            tag::INT => Value::Int(Wire::decode(buf)?),
            tag::FLOAT => Value::Float(Wire::decode(buf)?),
            other => return Err(WireError::BadTag(other)),
        })
    }

    fn wire_size(&self) -> usize {
        1 + match self {
            Value::Str(s) => s.wire_size(),
            Value::Int(i) => i.wire_size(),
            Value::Float(f) => f.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_examples() {
        assert!(Value::Int(1).cmp_values(&Value::Int(2)) == Ordering::Less);
        assert!(Value::Int(2).cmp_values(&Value::Float(1.5)) == Ordering::Greater);
        assert!(Value::str("a").cmp_values(&Value::str("b")) == Ordering::Less);
        // Numbers sort before strings.
        assert!(Value::Int(999).cmp_values(&Value::str("0")) == Ordering::Less);
    }

    #[test]
    fn semantic_equality_across_numeric_types() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(Value::str("x"), Value::str("x"));
        assert_ne!(Value::str("3"), Value::Int(3));
    }

    #[test]
    fn key_bits_monotone_examples() {
        assert!(Value::Int(2005).key_bits() < Value::Int(2006).key_bits());
        assert!(Value::Float(-1.0).key_bits() < Value::Float(1.0).key_bits());
        assert!(Value::str("ICDE").key_bits() < Value::str("ICDF").key_bits());
        assert!(Value::Int(i64::MAX).key_bits() < Value::str("").key_bits());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("ICDE 2005").to_string(), "'ICDE 2005'");
        assert_eq!(Value::Int(2006).to_string(), "2006");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn wire_roundtrip() {
        for v in [Value::str("hello"), Value::Int(-42), Value::Float(3.25)] {
            let b = v.to_bytes();
            assert_eq!(b.len(), v.wire_size());
            assert_eq!(Value::from_bytes(&b).unwrap(), v);
        }
    }

    proptest! {
        #[test]
        fn prop_key_bits_monotone_int(
            // f64 rounding collapses far-apart i64s only beyond 2^53;
            // restrict to the exactly representable range.
            a in -(1i64 << 52)..(1i64 << 52),
            b in -(1i64 << 52)..(1i64 << 52),
        ) {
            let ord = a.cmp(&b);
            let kord = Value::Int(a).key_bits().cmp(&Value::Int(b).key_bits());
            prop_assert_eq!(ord, kord);
        }

        #[test]
        fn prop_key_bits_monotone_str(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let va = Value::str(&a);
            let vb = Value::str(&b);
            if va.key_bits() < vb.key_bits() {
                prop_assert!(va.cmp_values(&vb) == Ordering::Less);
            }
            if va.cmp_values(&vb) == Ordering::Less
                && a.len() <= 7 && b.len() <= 7 {
                // Short strings encode losslessly → strict monotone.
                prop_assert!(va.key_bits() < vb.key_bits());
            }
        }

        #[test]
        fn prop_wire_roundtrip(s in ".{0,24}", i: i64, f: f64) {
            prop_assume!(!f.is_nan());
            for v in [Value::str(&s), Value::Int(i), Value::Float(f)] {
                let b = v.to_bytes();
                prop_assert_eq!(Value::from_bytes(&b).unwrap(), v);
            }
        }
    }
}

//! Index-key derivation: the paper's Fig. 2 placement.
//!
//! *"By default, we index each triple on the OID, `Ai#vi` (the
//! concatenation of `Ai` and `vi`), and `vi`. This enables search based
//! on the unique key, queries of the form `Ai ≥ vi`, and using `vi` as
//! the key for queries on an arbitrary attribute."*
//!
//! All four indexes live in one 64-bit key space, discriminated by a
//! 2-bit tag:
//!
//! ```text
//! bits 63..62 | 61..48              | 47..0
//! 00 OID      |        uniform hash of the OID (62 bits)
//! 01 A#v      | attribute id (hash) | order-preserving value prefix
//! 10 v        |        order-preserving value prefix (62 bits)
//! 11 q-gram   | attribute id (hash) | gram (24 bits) | zeros
//! ```
//!
//! Value encodings are truncated prefixes, so key ranges are
//! *conservative supersets*: leaves always verify candidate triples
//! against the real predicate (done in the query layer).

use unistore_util::{keys, ophash, Key};

use crate::qgram::{self, QGRAM_Q};
use crate::triple::{Oid, Triple};
use crate::value::Value;

/// Which of the four indexes a key belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Exact lookup by object id.
    Oid,
    /// Attribute-qualified value index (`Ai#vi`).
    AttrValue,
    /// Attribute-agnostic value index (`vi`).
    Value,
    /// q-gram index for string similarity.
    QGram,
}

impl IndexKind {
    /// The 2-bit key-space tag.
    pub fn tag(self) -> u64 {
        match self {
            IndexKind::Oid => 0,
            IndexKind::AttrValue => 1,
            IndexKind::Value => 2,
            IndexKind::QGram => 3,
        }
    }

    /// Recovers the index from a key.
    pub fn of_key(key: Key) -> IndexKind {
        match key >> 62 {
            0 => IndexKind::Oid,
            1 => IndexKind::AttrValue,
            2 => IndexKind::Value,
            _ => IndexKind::QGram,
        }
    }
}

/// Width of the attribute-id field.
const ATTR_BITS: u8 = 14;

/// Attribute identifier: uniform hash folded to 14 bits. Collisions are
/// possible and harmless — they only cause spurious candidates that the
/// leaf-side verification filters out.
pub fn attr_id(attr: &str) -> u64 {
    unistore_util::fxhash::hash_bytes(attr.as_bytes()) & ((1 << ATTR_BITS) - 1)
}

/// Key of a triple in the OID index.
pub fn oid_key(oid: &Oid) -> Key {
    keys::pack(&[(IndexKind::Oid.tag(), 2)]) | (oid.hash() >> 2)
}

/// Key of `(attr, value)` in the A#v index.
pub fn attr_value_key(attr: &str, value: &Value) -> Key {
    av_key_from_bits(attr, value.key_bits())
}

fn av_key_from_bits(attr: &str, value_bits: u64) -> Key {
    keys::pack(&[(IndexKind::AttrValue.tag(), 2), (attr_id(attr), ATTR_BITS)]) | (value_bits >> 16)
}

/// Inclusive key range of the whole attribute in the A#v index.
pub fn attr_range(attr: &str) -> (Key, Key) {
    let head = keys::pack(&[(IndexKind::AttrValue.tag(), 2), (attr_id(attr), ATTR_BITS)]);
    (head, head | (u64::MAX >> 16))
}

/// Inclusive key range for `lo ≤ value ≤ hi` on one attribute
/// (`None` = unbounded on that side). Conservative: truncation may admit
/// neighbours that leaf verification rejects.
pub fn attr_value_range(attr: &str, lo: Option<&Value>, hi: Option<&Value>) -> (Key, Key) {
    let (full_lo, full_hi) = attr_range(attr);
    let k_lo = lo.map_or(full_lo, |v| attr_value_key(attr, v));
    let k_hi = hi.map_or(full_hi, |v| attr_value_key(attr, v));
    (k_lo, k_hi)
}

/// Inclusive key range of string values with the given prefix on one
/// attribute (paper: "efficient substring search and prefix queries").
pub fn attr_prefix_range(attr: &str, prefix: &str) -> (Key, Key) {
    let enc = ophash::encode_str(prefix);
    let prefix_bits = (prefix.len().min(ophash::STR_BYTES) * 8) as u8;
    // Value-class header (1 bit, strings = 1) + encoding shifted as in
    // `Value::key_bits`.
    let bits_lo = (1 << 63) | (enc >> 1);
    let bits_hi = (1 << 63) | (ophash::saturate(enc, prefix_bits) >> 1);
    (av_key_from_bits(attr, bits_lo), av_key_from_bits(attr, bits_hi))
}

/// Key of a value in the attribute-agnostic v index.
pub fn value_key(value: &Value) -> Key {
    keys::pack(&[(IndexKind::Value.tag(), 2)]) | (value.key_bits() >> 2)
}

/// Inclusive key range for `lo ≤ value ≤ hi` in the v index.
pub fn value_range(lo: &Value, hi: &Value) -> (Key, Key) {
    (value_key(lo), value_key(hi))
}

/// Key of one q-gram of one attribute in the q-gram index.
pub fn qgram_key(attr: &str, gram: u32) -> Key {
    keys::pack(&[(IndexKind::QGram.tag(), 2), (attr_id(attr), ATTR_BITS)])
        | ((gram as u64) << (48 - 8 * QGRAM_Q as u32))
}

/// All index keys derived from one triple.
#[derive(Clone, Debug, PartialEq)]
pub struct TripleKeys {
    /// OID-index key.
    pub oid: Key,
    /// A#v-index key.
    pub attr_value: Key,
    /// v-index key.
    pub value: Key,
    /// q-gram keys (string values only, empty otherwise).
    pub qgrams: Vec<Key>,
}

impl TripleKeys {
    /// Derives the keys; `with_qgrams` controls whether the similarity
    /// index is maintained (it triples the insert fan-out for strings).
    pub fn derive(t: &Triple, with_qgrams: bool) -> TripleKeys {
        let qgrams = match (&t.value, with_qgrams) {
            (Value::Str(s), true) => {
                let mut ks: Vec<Key> =
                    qgram::qgrams(s).into_iter().map(|g| qgram_key(&t.attr, g)).collect();
                ks.sort_unstable();
                ks.dedup();
                ks
            }
            _ => Vec::new(),
        };
        TripleKeys {
            oid: oid_key(&t.oid),
            attr_value: attr_value_key(&t.attr, &t.value),
            value: value_key(&t.value),
            qgrams,
        }
    }

    /// The three primary keys (paper default), without q-grams.
    pub fn primary(&self) -> [Key; 3] {
        [self.oid, self.attr_value, self.value]
    }

    /// Every key the triple is indexed under: the three primary keys
    /// plus the q-gram keys — the full placement/write fan-out.
    pub fn all(&self) -> Vec<Key> {
        let mut all: Vec<Key> = self.primary().to_vec();
        all.extend(&self.qgrams);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn tags_partition_the_key_space() {
        let t = Triple::new("a12", "year", Value::Int(2006));
        let k = TripleKeys::derive(&t, false);
        assert_eq!(IndexKind::of_key(k.oid), IndexKind::Oid);
        assert_eq!(IndexKind::of_key(k.attr_value), IndexKind::AttrValue);
        assert_eq!(IndexKind::of_key(k.value), IndexKind::Value);
        let s = Triple::new("a12", "title", Value::str("Similarity..."));
        let ks = TripleKeys::derive(&s, true);
        assert!(!ks.qgrams.is_empty());
        assert!(ks.qgrams.iter().all(|&k| IndexKind::of_key(k) == IndexKind::QGram));
    }

    #[test]
    fn fig2_yields_18_primary_index_entries() {
        let tuples = [
            Tuple::new("a12")
                .with("title", Value::str("Similarity..."))
                .with("confname", Value::str("ICDE 2006 - Workshops"))
                .with("year", Value::Int(2006)),
            Tuple::new("v34")
                .with("title", Value::str("Progressive..."))
                .with("confname", Value::str("ICDE 2005"))
                .with("year", Value::Int(2005)),
        ];
        let entries: usize = tuples
            .iter()
            .flat_map(Tuple::to_triples)
            .map(|t| TripleKeys::derive(&t, false).primary().len())
            .sum();
        assert_eq!(entries, 18, "paper Fig. 2: 18 resulting triples");
    }

    #[test]
    fn same_oid_triples_colocate() {
        let a = Triple::new("a12", "year", Value::Int(2006));
        let b = Triple::new("a12", "title", Value::str("Similarity..."));
        assert_eq!(oid_key(&a.oid), oid_key(&b.oid));
    }

    #[test]
    fn attr_value_keys_order_within_attribute() {
        let k5 = attr_value_key("year", &Value::Int(2005));
        let k6 = attr_value_key("year", &Value::Int(2006));
        assert!(k5 < k6);
        let (lo, hi) = attr_value_range("year", Some(&Value::Int(2005)), Some(&Value::Int(2006)));
        assert!(lo <= k5 && k6 <= hi);
        // Both inside the attribute's full range.
        let (alo, ahi) = attr_range("year");
        assert!(alo <= lo && hi <= ahi);
    }

    #[test]
    fn unbounded_sides_cover_attribute() {
        let (lo, hi) = attr_value_range("year", None, None);
        assert_eq!((lo, hi), attr_range("year"));
        let (lo2, hi2) = attr_value_range("year", Some(&Value::Int(2000)), None);
        assert!(lo2 > lo);
        assert_eq!(hi2, hi);
    }

    #[test]
    fn prefix_range_covers_extensions() {
        let (lo, hi) = attr_prefix_range("confname", "ICDE");
        for v in ["ICDE", "ICDE 2005", "ICDE 2006 - Workshops", "ICDEX"] {
            let k = attr_value_key("confname", &Value::str(v));
            assert!(lo <= k && k <= hi, "{v} escaped the prefix range");
        }
        let k = attr_value_key("confname", &Value::str("VLDB"));
        assert!(k < lo || k > hi, "VLDB must not match prefix ICDE");
        let k = attr_value_key("confname", &Value::str("ICDF"));
        assert!(k < lo || k > hi, "ICDF must not match prefix ICDE");
    }

    #[test]
    fn value_index_is_attribute_agnostic() {
        let a = value_key(&Value::Int(2006));
        let b = value_key(&Value::Int(2006));
        assert_eq!(a, b);
        let (lo, hi) = value_range(&Value::Int(2000), &Value::Int(2010));
        assert!(lo <= a && a <= hi);
    }

    #[test]
    fn qgram_keys_depend_on_attr_and_gram() {
        let g1 = qgram_key("title", 0x414243);
        let g2 = qgram_key("title", 0x414244);
        let g3 = qgram_key("name", 0x414243);
        assert_ne!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn derive_skips_qgrams_for_numbers_and_when_disabled() {
        let t = Triple::new("a", "year", Value::Int(2006));
        assert!(TripleKeys::derive(&t, true).qgrams.is_empty());
        let s = Triple::new("a", "name", Value::str("alice"));
        assert!(TripleKeys::derive(&s, false).qgrams.is_empty());
        assert!(!TripleKeys::derive(&s, true).qgrams.is_empty());
    }
}

//! q-grams, the count filter, and edit distance.
//!
//! Paper §2 / ref [6]: *"in [6] we introduced a q-gram index (q-gram: a
//! substring of fixed length q) in order to be able to process string
//! similarity efficiently."* A string's q-grams are indexed in the DHT;
//! a similarity predicate `edist(s, t) ≤ k` first fetches candidate
//! strings sharing enough q-grams (the *count filter* — a necessary
//! condition, so no false negatives), then verifies candidates with the
//! actual edit distance.

/// The gram length used throughout UniStore (the classic choice).
pub const QGRAM_Q: usize = 3;

/// Padding bytes (outside the expected text alphabet) so that string
/// boundaries contribute grams too.
const PAD_HEAD: u8 = 0x01;
const PAD_TAIL: u8 = 0x02;

/// The positional-free q-grams of `s`, packed into `u32`s (3 bytes
/// big-endian). The padded string contributes `len(s) + q - 1` grams.
///
/// Padding is virtual — windows index straight into `s` with the pads
/// synthesized at the boundaries — so the only allocation is the
/// exactly-sized output Vec.
pub fn qgrams(s: &str) -> Vec<u32> {
    let bytes = s.as_bytes();
    let n = bytes.len();
    let at = |j: usize| {
        if j < QGRAM_Q - 1 {
            PAD_HEAD
        } else if j < QGRAM_Q - 1 + n {
            bytes[j - (QGRAM_Q - 1)]
        } else {
            PAD_TAIL
        }
    };
    let mut out = Vec::with_capacity(n + QGRAM_Q - 1);
    for i in 0..n + QGRAM_Q - 1 {
        out.push(pack_gram(&[at(i), at(i + 1), at(i + 2)]));
    }
    out
}

/// Packs one 3-byte gram into a `u32` (24 significant bits).
pub fn pack_gram(gram: &[u8]) -> u32 {
    debug_assert_eq!(gram.len(), QGRAM_Q);
    (gram[0] as u32) << 16 | (gram[1] as u32) << 8 | gram[2] as u32
}

/// Lower bound on shared grams for `edist ≤ k` over padded strings:
/// `max(|s|, |t|) - 1 - (k - 1) * q` (may be ≤ 0, in which case the
/// filter cannot prune and all candidates must be verified).
pub fn count_filter_threshold(len_s: usize, len_t: usize, k: usize) -> isize {
    let m = len_s.max(len_t) as isize;
    m - 1 - (k as isize - 1) * QGRAM_Q as isize
}

/// Multiset intersection size of two gram lists.
pub fn shared_grams(a: &[u32], b: &[u32]) -> usize {
    let mut counts: unistore_util::FxHashMap<u32, isize> = Default::default();
    for &g in a {
        *counts.entry(g).or_default() += 1;
    }
    let mut shared = 0;
    for &g in b {
        if let Some(c) = counts.get_mut(&g) {
            if *c > 0 {
                *c -= 1;
                shared += 1;
            }
        }
    }
    shared
}

/// True when the count filter *cannot rule out* `edist(s, t) ≤ k`.
pub fn passes_count_filter(s: &str, t: &str, k: usize) -> bool {
    let threshold = count_filter_threshold(s.len(), t.len(), k);
    if threshold <= 0 {
        return true;
    }
    shared_grams(&qgrams(s), &qgrams(t)) as isize >= threshold
}

/// Levenshtein edit distance (unit costs), two-row DP.
///
/// Walks `char` boundaries directly (no `Vec<char>` materialization)
/// and reuses thread-local DP rows, so the similarity-verification leaf
/// path — which calls this per candidate — is allocation-free in steady
/// state.
pub fn edit_distance(a: &str, b: &str) -> usize {
    if a.is_empty() {
        return b.chars().count();
    }
    if b.is_empty() {
        return a.chars().count();
    }
    thread_local! {
        static ROWS: std::cell::RefCell<(Vec<usize>, Vec<usize>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }
    ROWS.with(|rows| {
        let (prev, cur) = &mut *rows.borrow_mut();
        let m = b.chars().count();
        prev.clear();
        prev.extend(0..=m);
        cur.clear();
        cur.resize(m + 1, 0);
        for (i, ca) in a.chars().enumerate() {
            cur[0] = i + 1;
            for (j, cb) in b.chars().enumerate() {
                let sub = prev[j] + usize::from(ca != cb);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(prev, cur);
        }
        prev[m]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gram_count_matches_formula() {
        assert_eq!(qgrams("ICDE").len(), 4 + QGRAM_Q - 1);
        assert_eq!(qgrams("").len(), QGRAM_Q - 1); // only padding windows
        assert_eq!(qgrams("ab").len(), 2 + QGRAM_Q - 1);
    }

    #[test]
    fn identical_strings_share_all_grams() {
        let g = qgrams("conference");
        assert_eq!(shared_grams(&g, &g), g.len());
    }

    #[test]
    fn edit_distance_examples() {
        assert_eq!(edit_distance("ICDE", "ICDE"), 0);
        assert_eq!(edit_distance("ICDE", "ICDM"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
        // The paper's example: series names within distance 2 of 'ICDE'.
        assert!(edit_distance("ICDE", "IDCE") <= 2);
        assert!(edit_distance("ICDE", "VLDB") > 2);
    }

    #[test]
    fn count_filter_examples() {
        // Typo'd conference names pass; unrelated names are pruned.
        assert!(passes_count_filter("ICDE 2006", "ICDE 2005", 2));
        assert!(passes_count_filter("Similarity", "Similarty", 2));
        assert!(!passes_count_filter("International Conference on Data Engineering", "VLDB", 1));
    }

    #[test]
    fn threshold_can_be_nonpositive() {
        // Short strings with large k: filter can't prune.
        assert!(count_filter_threshold(2, 2, 3) <= 0);
        assert!(passes_count_filter("ab", "xy", 3));
    }

    proptest! {
        /// The safety property the index relies on: the count filter
        /// never prunes a true match (no false negatives).
        #[test]
        fn prop_no_false_negatives(s in "[a-z]{0,12}", t in "[a-z]{0,12}", k in 1usize..4) {
            if edit_distance(&s, &t) <= k {
                prop_assert!(passes_count_filter(&s, &t, k),
                    "filter pruned a true match: {s:?} vs {t:?} (k={k})");
            }
        }

        #[test]
        fn prop_edit_distance_symmetric(s in "[a-z]{0,10}", t in "[a-z]{0,10}") {
            prop_assert_eq!(edit_distance(&s, &t), edit_distance(&t, &s));
        }

        #[test]
        fn prop_edit_distance_triangle(
            s in "[a-z]{0,8}", t in "[a-z]{0,8}", u in "[a-z]{0,8}"
        ) {
            prop_assert!(
                edit_distance(&s, &u) <= edit_distance(&s, &t) + edit_distance(&t, &u)
            );
        }

        #[test]
        fn prop_length_diff_lower_bound(s in "[a-z]{0,10}", t in "[a-z]{0,10}") {
            let d = edit_distance(&s, &t);
            prop_assert!(d >= s.len().abs_diff(t.len()));
            prop_assert!(d <= s.len().max(t.len()));
        }
    }
}

//! The triple: UniStore's unit of storage.
//!
//! `(OID, attribute, value)` — paper §2: *"OID is a unique key, e.g. a
//! URI … system generated, allowing to group the triples for a logical
//! tuple"*; attribute names may carry a namespace prefix (`ns:attr`) to
//! distinguish relations.

use std::fmt;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use unistore_util::compact::intern;
use unistore_util::fxhash::hash_bytes;
use unistore_util::item::Item;
use unistore_util::wire::{decode_str, Wire, WireError};

use crate::value::Value;

/// Field discriminants for semi-join filtering
/// ([`unistore_util::item::Item::field_hash`]): the filter names which
/// triple position its join keys bind.
pub mod field {
    /// The OID (subject) position.
    pub const SUBJECT: u8 = 0;
    /// The attribute position.
    pub const ATTR: u8 = 1;
    /// The value position.
    pub const VALUE: u8 = 2;
}

/// Object identifier grouping the triples of one logical tuple.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub Arc<str>);

impl Oid {
    /// Constructs from a string.
    pub fn new(s: &str) -> Oid {
        Oid(Arc::from(s))
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Uniform hash of the identifier (placement of the OID index).
    pub fn hash(&self) -> u64 {
        hash_bytes(self.0.as_bytes())
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({})", self.0)
    }
}

impl Wire for Oid {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Oid(Arc::<str>::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
}

/// One `(OID, attribute, value)` triple.
#[derive(Clone, Debug, PartialEq)]
pub struct Triple {
    /// Logical-tuple identifier.
    pub oid: Oid,
    /// Attribute name, optionally namespace-prefixed (`pub:year`).
    pub attr: Arc<str>,
    /// The value.
    pub value: Value,
}

impl Triple {
    /// Constructs a triple. Attribute names form a tiny closed set per
    /// schema, so they are interned: every triple of one attribute
    /// shares a single allocation.
    pub fn new(oid: &str, attr: &str, value: Value) -> Triple {
        Triple { oid: Oid::new(oid), attr: intern(attr), value }
    }

    /// The attribute without its namespace prefix.
    pub fn attr_local(&self) -> &str {
        match self.attr.split_once(':') {
            Some((_, local)) => local,
            None => &self.attr,
        }
    }

    /// The namespace prefix, if any.
    pub fn namespace(&self) -> Option<&str> {
        self.attr.split_once(':').map(|(ns, _)| ns)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},'{}',{})", self.oid, self.attr, self.value)
    }
}

impl Wire for Triple {
    fn encode(&self, buf: &mut BytesMut) {
        self.oid.encode(buf);
        self.attr.encode(buf);
        self.value.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Triple {
            oid: Oid::decode(buf)?,
            // Attributes intern on decode: steady-state ingest of a
            // known schema allocates nothing for this field.
            attr: decode_str(buf, intern)?,
            value: Value::decode(buf)?,
        })
    }

    fn wire_size(&self) -> usize {
        self.oid.wire_size() + self.attr.wire_size() + self.value.wire_size()
    }
}

impl Item for Triple {
    /// Logical identity is the full `(oid, attribute, value)` fact:
    /// attributes may be multi-valued (Fig. 3's `has_published`), so two
    /// values of one attribute are distinct entries. Updates are
    /// modelled as delete-old + insert-new (paper ref [4]); re-inserting
    /// the identical fact is idempotent via versions.
    fn ident(&self) -> u64 {
        hash_bytes(self.oid.0.as_bytes())
            ^ hash_bytes(self.attr.as_bytes()).rotate_left(1)
            ^ self.value.semantic_hash().rotate_left(2)
    }

    /// Per-position join-key hashes, matching how the query layer hashes
    /// bound variables: subject and attribute bind as strings
    /// (`hash_bytes`), the value by its semantic hash — exactly
    /// `value_hash` of the relation layer, so a Bloom filter built from
    /// a materialized column tests positive at the leaf for every true
    /// join match.
    fn field_hash(&self, field: u8) -> Option<u64> {
        match field {
            field::SUBJECT => Some(hash_bytes(self.oid.0.as_bytes())),
            field::ATTR => Some(hash_bytes(self.attr.as_bytes())),
            field::VALUE => Some(self.value.semantic_hash()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let t = Triple::new("a12", "confname", Value::str("ICDE 2006 - WS"));
        assert_eq!(t.to_string(), "(a12,'confname','ICDE 2006 - WS')");
        let t = Triple::new("a12", "year", Value::Int(2006));
        assert_eq!(t.to_string(), "(a12,'year',2006)");
    }

    #[test]
    fn namespace_splitting() {
        let t = Triple::new("a1", "pub:year", Value::Int(2006));
        assert_eq!(t.namespace(), Some("pub"));
        assert_eq!(t.attr_local(), "year");
        let t = Triple::new("a1", "year", Value::Int(2006));
        assert_eq!(t.namespace(), None);
        assert_eq!(t.attr_local(), "year");
    }

    #[test]
    fn ident_keyed_by_full_fact() {
        let a = Triple::new("a12", "year", Value::Int(2006));
        let b = Triple::new("a12", "year", Value::Int(2007));
        let c = Triple::new("a12", "name", Value::Int(2006));
        let d = Triple::new("a13", "year", Value::Int(2006));
        let a2 = Triple::new("a12", "year", Value::Int(2006));
        assert_eq!(a.ident(), a2.ident(), "identical facts → same identity");
        assert_ne!(a.ident(), b.ident(), "multi-valued attributes coexist");
        assert_ne!(a.ident(), c.ident());
        assert_ne!(a.ident(), d.ident());
        // Numeric classes collapse (Int 2006 == Float 2006.0).
        let f = Triple::new("a12", "year", Value::Float(2006.0));
        assert_eq!(a.ident(), f.ident());
    }

    #[test]
    fn field_hash_matches_bound_value_hashes() {
        let t = Triple::new("a12", "year", Value::Int(2006));
        // Subject/attr bind as strings; value by semantic hash.
        assert_eq!(t.field_hash(field::SUBJECT), Some(hash_bytes(b"a12")));
        assert_eq!(t.field_hash(field::ATTR), Some(hash_bytes(b"year")));
        assert_eq!(t.field_hash(field::VALUE), Some(Value::Int(2006).semantic_hash()));
        // Numeric classes collapse, like eq_values.
        assert_eq!(t.field_hash(field::VALUE), Some(Value::Float(2006.0).semantic_hash()));
        assert_eq!(t.field_hash(99), None);
    }

    #[test]
    fn wire_roundtrip() {
        let t = Triple::new("v34", "title", Value::str("Progressive..."));
        let b = t.to_bytes();
        assert_eq!(b.len(), t.wire_size());
        assert_eq!(Triple::from_bytes(&b).unwrap(), t);
    }
}

//! Inline/interned small strings for allocation-free hot paths.
//!
//! [`CompactStr`] stores strings of up to [`INLINE_CAP`] bytes inline
//! (no heap allocation at all — construction, clone and drop are plain
//! memcpys) and spills longer strings to a ref-counted `Arc<str>` whose
//! clone is a refcount bump. OIDs and attribute values in the UniStore
//! workloads are short identifier-like strings, so the inline arm
//! covers the hot path.
//!
//! [`intern`] canonicalizes strings drawn from a *small closed set* —
//! attribute names — through a global table, so the billionth decode of
//! `"pub:year"` shares one allocation with the first. The table is
//! size-capped: adversarial high-cardinality input degrades to plain
//! allocation, never unbounded memory.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use bytes::{Bytes, BytesMut};

use crate::fxhash::FxHashSet;
use crate::wire::{decode_str, put_str, str_wire_size, Wire, WireError};

/// Longest string stored inline (sized so `CompactStr` is 24 bytes —
/// one machine word wider than `Arc<str>`).
pub const INLINE_CAP: usize = 22;

/// A small-string-optimized immutable string.
///
/// Invariant: strings of length ≤ [`INLINE_CAP`] are *always* inline,
/// so representation is a function of content (equality and hashing
/// just delegate to `str`).
#[derive(Clone)]
pub struct CompactStr(Repr);

#[derive(Clone)]
enum Repr {
    Inline { len: u8, bytes: [u8; INLINE_CAP] },
    Heap(Arc<str>),
}

impl CompactStr {
    /// Constructs from a borrowed string: inline when it fits, one heap
    /// allocation otherwise.
    pub fn new(s: &str) -> CompactStr {
        match s.len() <= INLINE_CAP {
            true => {
                let mut bytes = [0u8; INLINE_CAP];
                bytes[..s.len()].copy_from_slice(s.as_bytes());
                CompactStr(Repr::Inline { len: s.len() as u8, bytes })
            }
            false => CompactStr(Repr::Heap(Arc::from(s))),
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            // Inline bytes always originate from a valid `&str` whose
            // length was recorded exactly.
            Repr::Inline { len, bytes } => unsafe {
                std::str::from_utf8_unchecked(&bytes[..*len as usize])
            },
            Repr::Heap(s) => s,
        }
    }

    /// True when the string is stored inline (no heap storage).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl Deref for CompactStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for CompactStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for CompactStr {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for CompactStr {
    fn from(s: &str) -> CompactStr {
        CompactStr::new(s)
    }
}

impl From<Arc<str>> for CompactStr {
    fn from(s: Arc<str>) -> CompactStr {
        // Short strings re-inline (keeps the representation invariant;
        // the copy is cheaper than the refcount traffic it avoids).
        match s.len() <= INLINE_CAP {
            true => CompactStr::new(&s),
            false => CompactStr(Repr::Heap(s)),
        }
    }
}

impl From<String> for CompactStr {
    fn from(s: String) -> CompactStr {
        match s.len() <= INLINE_CAP {
            true => CompactStr::new(&s),
            false => CompactStr(Repr::Heap(s.into())),
        }
    }
}

impl From<&CompactStr> for Arc<str> {
    fn from(s: &CompactStr) -> Arc<str> {
        match &s.0 {
            Repr::Inline { .. } => Arc::from(s.as_str()),
            Repr::Heap(a) => a.clone(),
        }
    }
}

impl PartialEq for CompactStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for CompactStr {}

impl PartialEq<str> for CompactStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialOrd for CompactStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompactStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for CompactStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Display for CompactStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for CompactStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl Wire for CompactStr {
    fn encode(&self, buf: &mut BytesMut) {
        // Byte-identical to `String`/`Arc<str>` on the wire.
        put_str(buf, self.as_str());
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        // Short strings decode straight into the inline arm: the only
        // copy is borrowed-bytes → stack.
        decode_str(buf, CompactStr::new)
    }

    fn wire_size(&self) -> usize {
        str_wire_size(self.as_str())
    }
}

/// Interned strings beyond this count fall through to plain allocation
/// (attribute vocabularies are tiny; the cap guards adversarial input).
const INTERN_CAP: usize = 4096;

static INTERNER: OnceLock<Mutex<FxHashSet<Arc<str>>>> = OnceLock::new();

/// Returns the canonical `Arc<str>` for `s`. The first caller per
/// distinct string pays one allocation; every later call — decoding a
/// triple's attribute off the wire, expanding a mapping — is a table
/// hit plus a refcount bump.
pub fn intern(s: &str) -> Arc<str> {
    let table = INTERNER.get_or_init(|| Mutex::new(FxHashSet::default()));
    let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = table.get(s) {
        return hit.clone();
    }
    let fresh: Arc<str> = Arc::from(s);
    if table.len() < INTERN_CAP {
        table.insert(fresh.clone());
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_threshold() {
        let at = "x".repeat(INLINE_CAP);
        let over = "x".repeat(INLINE_CAP + 1);
        assert!(CompactStr::new(&at).is_inline());
        assert!(!CompactStr::new(&over).is_inline());
        assert_eq!(CompactStr::new(&at).as_str(), at);
        assert_eq!(CompactStr::new(&over).as_str(), over);
        assert!(CompactStr::new("").is_inline());
    }

    #[test]
    fn short_arc_reinlines() {
        let a: Arc<str> = Arc::from("short");
        assert!(CompactStr::from(a).is_inline());
        let long: Arc<str> = Arc::from("x".repeat(40));
        let c = CompactStr::from(long.clone());
        assert!(!c.is_inline());
        // Heap arm shares the Arc, no copy.
        assert!(std::ptr::eq(Arc::<str>::from(&c).as_ptr(), long.as_ptr()));
    }

    #[test]
    fn equality_hash_order_delegate_to_str() {
        use std::collections::hash_map::DefaultHasher;
        let a = CompactStr::new("pub:year");
        let b = CompactStr::from(Arc::<str>::from("pub:year"));
        assert_eq!(a, b);
        assert!(a < CompactStr::new("pub:z"));
        let h = |c: &CompactStr| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn wire_identical_to_arc_str() {
        for s in ["", "year", &"x".repeat(22), &"y".repeat(100), "ünïcodé"] {
            let c = CompactStr::new(s);
            let a: Arc<str> = Arc::from(s);
            assert_eq!(c.to_bytes(), a.to_bytes(), "encoding drift for {s:?}");
            assert_eq!(c.wire_size(), a.wire_size());
            let back = CompactStr::from_bytes(&c.to_bytes()).unwrap();
            assert_eq!(back.as_str(), s);
            assert_eq!(back.is_inline(), s.len() <= INLINE_CAP);
        }
    }

    #[test]
    fn compact_str_is_24_bytes() {
        assert_eq!(std::mem::size_of::<CompactStr>(), 24);
    }

    #[test]
    fn intern_returns_shared_storage() {
        let a = intern("confname-test-attr");
        let b = intern("confname-test-attr");
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()), "interned strings share one allocation");
        assert_eq!(&*a, "confname-test-attr");
    }
}

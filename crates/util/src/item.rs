//! The contract for values storable in an overlay.
//!
//! Both overlays (`unistore-pgrid` and the `unistore-chord` baseline)
//! store opaque items; they need a wire encoding (honest message sizing)
//! and a *logical identity* so that updates supersede earlier versions of
//! the same logical entry instead of accumulating duplicates.

use crate::wire::Wire;

/// A value storable in a DHT overlay.
pub trait Item: Wire + Clone + std::fmt::Debug {
    /// Logical identity: two items with equal `ident` (under the same
    /// key) are versions of the same entry; an insert with a newer
    /// version replaces the older one.
    fn ident(&self) -> u64;

    /// Join-key hash of the field addressed by `field`, for semi-join
    /// filtering at the data ([`crate::bloom::ItemFilter`]). The
    /// discriminant values and the hash scheme are defined by the item
    /// type and must match what the query layer inserts into the filter.
    /// `None` (the default) means the item exposes no such field; the
    /// filter then conservatively keeps it.
    fn field_hash(&self, _field: u8) -> Option<u64> {
        None
    }
}

/// The simplest possible item, used by overlay-level tests and benches:
/// the payload *is* the identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RawItem(pub u64);

impl Wire for RawItem {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.0.encode(buf);
    }

    fn decode(buf: &mut bytes::Bytes) -> Result<Self, crate::wire::WireError> {
        Ok(RawItem(u64::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
}

impl Item for RawItem {
    fn ident(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_item_ident_is_payload() {
        assert_eq!(RawItem(42).ident(), 42);
    }

    #[test]
    fn raw_item_wire_roundtrip() {
        let r = RawItem(123456);
        let b = r.to_bytes();
        assert_eq!(RawItem::from_bytes(&b).unwrap(), r);
        assert_eq!(b.len(), r.wire_size());
    }
}

//! Disjoint inclusive `u64` interval sets.
//!
//! Both overlays detect range-query completion by *interval coverage*:
//! every leaf reply names the key interval it covers, and the query
//! completes when the union equals the requested interval. This also
//! doubles as a completeness guarantee under message loss.

/// A set of disjoint, sorted, inclusive `u64` intervals with merging.
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    /// Disjoint intervals in ascending order.
    ivs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `[lo, hi]`, merging overlapping or adjacent intervals.
    /// Inverted inputs (`lo > hi`) are ignored.
    pub fn add(&mut self, lo: u64, hi: u64) {
        if lo > hi {
            return;
        }
        let mut merged = Vec::with_capacity(self.ivs.len() + 1);
        let mut cur = (lo, hi);
        let mut placed = false;
        for &(a, b) in &self.ivs {
            if b.checked_add(1).is_some_and(|b1| b1 < cur.0) {
                // Strictly left of cur, not adjacent.
                merged.push((a, b));
            } else if cur.1.checked_add(1).is_some_and(|c1| c1 < a) {
                // Strictly right of cur: emit cur first (once).
                if !placed {
                    merged.push(cur);
                    placed = true;
                }
                merged.push((a, b));
            } else {
                // Overlapping or adjacent: absorb.
                cur = (cur.0.min(a), cur.1.max(b));
            }
        }
        if !placed {
            merged.push(cur);
        }
        self.ivs = merged;
    }

    /// True when a single stored interval contains `[lo, hi]`.
    pub fn covers(&self, lo: u64, hi: u64) -> bool {
        self.ivs.iter().any(|&(a, b)| a <= lo && hi <= b)
    }

    /// The stored intervals.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.ivs
    }

    /// Sum of interval lengths (saturating; full-space coverage returns
    /// `u64::MAX`).
    pub fn covered_len(&self) -> u64 {
        self.ivs.iter().fold(0u64, |acc, &(a, b)| acc.saturating_add((b - a).saturating_add(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_adjacent_and_overlapping() {
        let mut s = IntervalSet::new();
        s.add(10, 20);
        s.add(30, 40);
        assert_eq!(s.intervals(), &[(10, 20), (30, 40)]);
        assert!(!s.covers(10, 40));
        s.add(21, 29);
        assert_eq!(s.intervals(), &[(10, 40)]);
        assert!(s.covers(10, 40));
        assert!(s.covers(15, 35));
        assert!(!s.covers(5, 15));
    }

    #[test]
    fn out_of_order_inserts() {
        let mut s = IntervalSet::new();
        s.add(50, 60);
        s.add(10, 15);
        s.add(55, 70);
        s.add(0, 5);
        assert_eq!(s.intervals(), &[(0, 5), (10, 15), (50, 70)]);
        s.add(6, 9);
        assert_eq!(s.intervals(), &[(0, 15), (50, 70)]);
    }

    #[test]
    fn u64_extremes() {
        let mut s = IntervalSet::new();
        s.add(u64::MAX - 10, u64::MAX);
        s.add(0, u64::MAX - 11);
        assert!(s.covers(0, u64::MAX));
        assert_eq!(s.covered_len(), u64::MAX);
    }

    #[test]
    fn inverted_ignored() {
        let mut s = IntervalSet::new();
        s.add(10, 5);
        assert!(s.intervals().is_empty());
        assert_eq!(s.covered_len(), 0);
    }

    #[test]
    fn covered_len_sums() {
        let mut s = IntervalSet::new();
        s.add(0, 9);
        s.add(20, 29);
        assert_eq!(s.covered_len(), 20);
    }
}

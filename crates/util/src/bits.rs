//! Variable-length bit strings.
//!
//! P-Grid organizes peers as leaves of a virtual binary trie; a peer's
//! position is the bit string spelled by the root-to-leaf walk. [`BitPath`]
//! stores up to 64 bits (the width of the UniStore key space) in a single
//! machine word, most-significant bit first, so that
//! *path `p` is a prefix of key `k`* is a single mask-and-compare.

use std::fmt;

/// Maximum number of bits a [`BitPath`] can hold, equal to the key width.
pub const MAX_BITS: u8 = 64;

/// A bit string of length `0..=64`, stored left-aligned in a `u64`.
///
/// The empty path is the trie root. Bits beyond `len` are always zero,
/// which makes equality and ordering structural.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitPath {
    /// Bits, left aligned: bit 0 of the path is the MSB of `bits`.
    bits: u64,
    len: u8,
}

impl BitPath {
    /// The empty path (trie root).
    pub const ROOT: BitPath = BitPath { bits: 0, len: 0 };

    /// Creates a path from the `len` most significant bits of `bits`.
    ///
    /// # Panics
    /// Panics if `len > 64`.
    pub fn new(bits: u64, len: u8) -> Self {
        assert!(len <= MAX_BITS, "BitPath length {len} exceeds {MAX_BITS}");
        let mask = if len == 0 { 0 } else { u64::MAX << (64 - len as u32) };
        BitPath { bits: bits & mask, len }
    }

    /// Parses a path from a string of `'0'`/`'1'` characters.
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() > MAX_BITS as usize {
            return None;
        }
        let mut p = BitPath::ROOT;
        for c in s.chars() {
            match c {
                '0' => p = p.child(false),
                '1' => p = p.child(true),
                _ => return None,
            }
        }
        Some(p)
    }

    /// Number of bits in the path.
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` for the root path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw left-aligned bits.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.bits
    }

    /// The bit at position `i` (0 = first / most significant).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn bit(&self, i: u8) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.bits >> (63 - i as u32)) & 1 == 1
    }

    /// Extends the path by one bit.
    ///
    /// # Panics
    /// Panics if the path is already [`MAX_BITS`] long.
    #[inline]
    pub fn child(&self, bit: bool) -> BitPath {
        assert!(self.len < MAX_BITS, "BitPath overflow");
        let mut bits = self.bits;
        if bit {
            bits |= 1 << (63 - self.len as u32);
        }
        BitPath { bits, len: self.len + 1 }
    }

    /// Removes the last bit; the root is its own parent.
    #[inline]
    pub fn parent(&self) -> BitPath {
        if self.len == 0 {
            *self
        } else {
            BitPath::new(self.bits, self.len - 1)
        }
    }

    /// The sibling path: same prefix, last bit flipped. Root has no sibling.
    #[inline]
    pub fn sibling(&self) -> Option<BitPath> {
        if self.len == 0 {
            None
        } else {
            Some(BitPath { bits: self.bits ^ (1 << (63 - (self.len as u32 - 1))), len: self.len })
        }
    }

    /// First `n` bits of the path.
    ///
    /// # Panics
    /// Panics if `n > len`.
    #[inline]
    pub fn prefix(&self, n: u8) -> BitPath {
        assert!(n <= self.len, "prefix {n} longer than path {}", self.len);
        BitPath::new(self.bits, n)
    }

    /// `true` if `self` is a prefix of `other` (including equality).
    #[inline]
    pub fn is_prefix_of(&self, other: &BitPath) -> bool {
        self.len <= other.len && other.prefix(self.len) == *self
    }

    /// `true` if `self` is a prefix of the full 64-bit key `key`.
    #[inline]
    pub fn is_prefix_of_key(&self, key: u64) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u64::MAX << (64 - self.len as u32);
        (key & mask) == self.bits
    }

    /// Length of the longest common prefix with `other`.
    #[inline]
    pub fn common_prefix_len(&self, other: &BitPath) -> u8 {
        let max = self.len.min(other.len) as u32;
        if max == 0 {
            return 0;
        }
        let diff = self.bits ^ other.bits;
        (diff.leading_zeros().min(max)) as u8
    }

    /// Length of the longest common prefix with a full 64-bit key.
    #[inline]
    pub fn common_prefix_len_key(&self, key: u64) -> u8 {
        let diff = self.bits ^ key;
        (diff.leading_zeros().min(self.len as u32)) as u8
    }

    /// Smallest 64-bit key having this path as prefix (path padded with 0s).
    #[inline]
    pub fn min_key(&self) -> u64 {
        self.bits
    }

    /// Largest 64-bit key having this path as prefix (path padded with 1s).
    #[inline]
    pub fn max_key(&self) -> u64 {
        if self.len == 0 {
            u64::MAX
        } else {
            self.bits | (u64::MAX >> self.len as u32)
        }
    }

    /// `true` if the key range `[lo, hi]` intersects this path's subtree.
    #[inline]
    pub fn intersects_range(&self, lo: u64, hi: u64) -> bool {
        self.min_key() <= hi && lo <= self.max_key()
    }

    /// Iterator over the bits, first to last.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bit(i))
    }
}

impl crate::wire::Wire for BitPath {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        // Shift right so short paths encode as small varints.
        let packed = if self.len == 0 { 0 } else { self.bits >> (64 - self.len as u32) };
        crate::wire::put_varint(buf, packed);
        buf.extend_from_slice(&[self.len]);
    }

    fn decode(buf: &mut bytes::Bytes) -> Result<Self, crate::wire::WireError> {
        let packed = crate::wire::get_varint(buf)?;
        let len = u8::decode(buf)?;
        if len > MAX_BITS {
            return Err(crate::wire::WireError::BadLength(len as u64));
        }
        let bits = if len == 0 { 0 } else { packed << (64 - len as u32) };
        Ok(BitPath::new(bits, len))
    }

    fn wire_size(&self) -> usize {
        let packed = if self.len == 0 { 0 } else { self.bits >> (64 - self.len as u32) };
        crate::wire::varint_size(packed) + 1
    }
}

impl fmt::Display for BitPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in 0..self.len {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitPath({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_empty() {
        assert_eq!(BitPath::ROOT.len(), 0);
        assert!(BitPath::ROOT.is_empty());
        assert_eq!(BitPath::ROOT.to_string(), "ε");
    }

    #[test]
    fn child_and_bit_roundtrip() {
        let p = BitPath::ROOT.child(true).child(false).child(true);
        assert_eq!(p.len(), 3);
        assert!(p.bit(0));
        assert!(!p.bit(1));
        assert!(p.bit(2));
        assert_eq!(p.to_string(), "101");
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0", "1", "0110", "11111111", "010101010101"] {
            let p = BitPath::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!(BitPath::parse("01x").is_none());
    }

    #[test]
    fn parent_sibling() {
        let p = BitPath::parse("0110").unwrap();
        assert_eq!(p.parent().to_string(), "011");
        assert_eq!(p.sibling().unwrap().to_string(), "0111");
        assert!(BitPath::ROOT.sibling().is_none());
        assert_eq!(BitPath::ROOT.parent(), BitPath::ROOT);
    }

    #[test]
    fn prefix_relation() {
        let p = BitPath::parse("01").unwrap();
        let q = BitPath::parse("0110").unwrap();
        assert!(p.is_prefix_of(&q));
        assert!(!q.is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
        assert!(BitPath::ROOT.is_prefix_of(&p));
    }

    #[test]
    fn prefix_of_key() {
        let p = BitPath::parse("10").unwrap();
        assert!(p.is_prefix_of_key(0b10u64 << 62));
        assert!(p.is_prefix_of_key((0b10u64 << 62) | 12345));
        assert!(!p.is_prefix_of_key(0b01u64 << 62));
        assert!(BitPath::ROOT.is_prefix_of_key(u64::MAX));
    }

    #[test]
    fn common_prefix() {
        let a = BitPath::parse("0110").unwrap();
        let b = BitPath::parse("0101").unwrap();
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.common_prefix_len(&a), 4);
        assert_eq!(a.common_prefix_len(&BitPath::ROOT), 0);
    }

    #[test]
    fn key_range_bounds() {
        let p = BitPath::parse("01").unwrap();
        assert_eq!(p.min_key(), 0b01u64 << 62);
        assert_eq!(p.max_key(), (0b01u64 << 62) | (u64::MAX >> 2));
        assert_eq!(BitPath::ROOT.min_key(), 0);
        assert_eq!(BitPath::ROOT.max_key(), u64::MAX);
    }

    #[test]
    fn range_intersection() {
        let p = BitPath::parse("01").unwrap();
        // Subtree of "01" covers [0x4000.., 0x7fff..].
        assert!(p.intersects_range(0, u64::MAX));
        assert!(p.intersects_range(p.min_key(), p.min_key()));
        assert!(!p.intersects_range(0, p.min_key() - 1));
        assert!(!p.intersects_range(p.max_key() + 1, u64::MAX));
    }

    #[test]
    fn ordering_is_lexicographic_for_same_len() {
        let a = BitPath::parse("010").unwrap();
        let b = BitPath::parse("011").unwrap();
        assert!(a < b);
    }

    #[test]
    #[should_panic]
    fn bit_out_of_range_panics() {
        BitPath::parse("01").unwrap().bit(2);
    }

    #[test]
    fn wire_roundtrip() {
        use crate::wire::Wire;
        for s in ["", "0", "1", "0110", "1111111100000000", "010101010101"] {
            let p = if s.is_empty() { BitPath::ROOT } else { BitPath::parse(s).unwrap() };
            let bytes = p.to_bytes();
            assert_eq!(bytes.len(), p.wire_size());
            assert_eq!(BitPath::from_bytes(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn new_masks_low_bits() {
        // Garbage below the length must be cleared so Eq/Ord are structural.
        let a = BitPath::new(u64::MAX, 2);
        let b = BitPath::new(0b11u64 << 62, 2);
        assert_eq!(a, b);
    }
}

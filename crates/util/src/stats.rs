//! Descriptive statistics used by the cost model and the bench harness.
//!
//! * [`Summary`] — streaming mean/variance/min/max (Welford),
//! * [`percentile`] — exact percentile of a sample,
//! * [`gini`] — Gini coefficient, the balance metric of experiment E5,
//! * [`Histogram`] — equi-width histogram over the 64-bit key space, the
//!   statistic the query optimizer's cost model consumes (paper [5]:
//!   "we base these calculations on … the actual data distribution").

/// Streaming summary statistics (Welford's online algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile (nearest-rank) of a sample; `p` in `[0, 100]`.
///
/// Returns 0 for an empty slice. Sorts a copy — fine for bench-sized data.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Sliding window of recent latency observations with on-demand
/// quantiles — the input of the adaptive retry policy: per-attempt
/// timeouts and hedging delays are derived from observed completion-time
/// quantiles rather than fixed configuration constants.
///
/// A bounded ring buffer: the newest observation evicts the oldest once
/// the window is full, so the estimate tracks current network conditions
/// instead of averaging over the whole run.
#[derive(Clone, Debug)]
pub struct RttWindow {
    samples: Vec<f64>,
    next: usize,
    cap: usize,
}

impl RttWindow {
    /// A window retaining the `cap` most recent observations.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "RTT window needs capacity");
        RttWindow { samples: Vec::new(), next: 0, cap }
    }

    /// Records one observation (any non-negative unit; callers pick one
    /// and stay consistent).
    pub fn observe(&mut self, x: f64) {
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            self.samples[self.next] = x;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank quantile over the window; `p` in `[0, 100]`.
    /// `None` until at least one observation arrived.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(percentile(&self.samples, p))
    }
}

/// Gini coefficient of non-negative loads: 0 = perfectly balanced,
/// → 1 = maximally concentrated. Returns 0 for empty or all-zero input.
pub fn gini(loads: &[f64]) -> f64 {
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = loads.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let sum: f64 = v.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v.iter().enumerate().map(|(i, x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64
}

/// Equi-width histogram over `u64` keys with distinct-value tracking.
///
/// The cost model uses it to estimate the cardinality of key-range
/// predicates and the selectivity of equality predicates. Keys can be
/// [`Histogram::remove`]d again: distinct values are reference-counted,
/// so an interleaved insert/delete sequence lands on exactly the state
/// a fresh histogram over the surviving keys would have (as long as the
/// distinct tracking cap is never exceeded).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: u64,
    hi: u64,
    buckets: Vec<u64>,
    count: u64,
    /// key → number of live occurrences.
    distinct: crate::FxHashMap<u64, u32>,
    /// Cap on the distinct map; beyond it we stop tracking exactly.
    distinct_cap: usize,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi]` with `buckets` buckets.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `lo > hi`.
    pub fn new(lo: u64, hi: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo <= hi, "empty histogram domain");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            count: 0,
            distinct: Default::default(),
            distinct_cap: 4096,
        }
    }

    /// Covers the full 64-bit key space.
    pub fn full_range(buckets: usize) -> Self {
        Self::new(0, u64::MAX, buckets)
    }

    fn bucket_of(&self, key: u64) -> usize {
        let key = key.clamp(self.lo, self.hi);
        let span = (self.hi - self.lo) as u128 + 1;
        let off = (key - self.lo) as u128;
        ((off * self.buckets.len() as u128) / span) as usize
    }

    /// Records one key.
    pub fn add(&mut self, key: u64) {
        let b = self.bucket_of(key);
        self.buckets[b] += 1;
        self.count += 1;
        if let Some(rc) = self.distinct.get_mut(&key) {
            *rc += 1;
        } else if self.distinct.len() < self.distinct_cap {
            self.distinct.insert(key, 1);
        }
    }

    /// Removes one previously recorded occurrence of `key`. Removing a
    /// key that was never added is a no-op while the distinct map is
    /// exact (below the cap); beyond the cap the counters saturate at
    /// zero instead of corrupting the estimates.
    pub fn remove(&mut self, key: u64) {
        if !self.distinct.contains_key(&key) && self.distinct.len() < self.distinct_cap {
            return; // exact tracking says the key was never recorded
        }
        let b = self.bucket_of(key);
        if self.buckets[b] == 0 || self.count == 0 {
            return;
        }
        self.buckets[b] -= 1;
        self.count -= 1;
        if let Some(rc) = self.distinct.get_mut(&key) {
            *rc -= 1;
            if *rc == 0 {
                self.distinct.remove(&key);
            }
        }
    }

    /// Total number of recorded keys.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated number of distinct keys (exact up to the cap).
    pub fn distinct_estimate(&self) -> u64 {
        self.distinct.len() as u64
    }

    /// Estimated number of keys in `[lo, hi]` assuming intra-bucket
    /// uniformity.
    pub fn estimate_range(&self, lo: u64, hi: u64) -> f64 {
        if lo > hi || self.count == 0 {
            return 0.0;
        }
        let lo = lo.max(self.lo);
        let hi = hi.min(self.hi);
        if lo > hi {
            return 0.0;
        }
        let nb = self.buckets.len();
        let span = (self.hi - self.lo) as u128 + 1;
        let width = span / nb as u128; // last bucket may be wider; negligible
        let b_lo = self.bucket_of(lo);
        let b_hi = self.bucket_of(hi);
        if b_lo == b_hi {
            let frac = ((hi - lo) as u128 + 1) as f64 / width.max(1) as f64;
            return self.buckets[b_lo] as f64 * frac.min(1.0);
        }
        let mut est = 0.0;
        // Partial first bucket.
        let b_lo_end = self.lo as u128 + (b_lo as u128 + 1) * width - 1;
        let frac_lo = (b_lo_end.saturating_sub(lo as u128) + 1) as f64 / width.max(1) as f64;
        est += self.buckets[b_lo] as f64 * frac_lo.min(1.0);
        // Full middle buckets.
        for b in (b_lo + 1)..b_hi {
            est += self.buckets[b] as f64;
        }
        // Partial last bucket.
        let b_hi_start = self.lo as u128 + b_hi as u128 * width;
        let frac_hi = ((hi as u128).saturating_sub(b_hi_start) + 1) as f64 / width.max(1) as f64;
        est += self.buckets[b_hi] as f64 * frac_hi.min(1.0);
        est
    }

    /// Estimated cardinality of an equality predicate on one key.
    pub fn estimate_eq(&self) -> f64 {
        let d = self.distinct_estimate().max(1);
        self.count as f64 / d as f64
    }

    /// Merges another histogram with identical domain and bucket count.
    ///
    /// # Panics
    /// Panics on mismatched shape.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.hi, other.hi);
        assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        for (k, rc) in &other.distinct {
            if let Some(mine) = self.distinct.get_mut(k) {
                *mine += rc;
            } else if self.distinct.len() < self.distinct_cap {
                self.distinct.insert(*k, *rc);
            }
        }
    }

    /// Raw bucket counts (for serialization / display).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &data {
            all.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_examples() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn rtt_window_evicts_oldest() {
        let mut w = RttWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.quantile(99.0), None);
        for x in [10.0, 20.0, 30.0, 40.0] {
            w.observe(x);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.quantile(0.0), Some(10.0));
        assert_eq!(w.quantile(100.0), Some(40.0));
        // Two more observations push out the two oldest.
        w.observe(50.0);
        w.observe(60.0);
        assert_eq!(w.len(), 4);
        assert_eq!(w.quantile(0.0), Some(30.0));
        assert_eq!(w.quantile(100.0), Some(60.0));
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).abs() < 1e-12);
        // All load on one of many nodes → close to 1.
        let mut v = vec![0.0; 100];
        v[0] = 100.0;
        assert!(gini(&v) > 0.95);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn histogram_range_estimates() {
        let mut h = Histogram::new(0, 999, 10);
        for k in 0..1000u64 {
            h.add(k);
        }
        assert_eq!(h.count(), 1000);
        let est = h.estimate_range(0, 499);
        assert!((est - 500.0).abs() < 20.0, "est={est}");
        let est = h.estimate_range(250, 259);
        assert!((est - 10.0).abs() < 5.0, "est={est}");
        assert_eq!(h.estimate_range(2000, 3000), 0.0);
        assert_eq!(h.estimate_range(10, 5), 0.0);
    }

    #[test]
    fn histogram_eq_estimate_uses_distinct() {
        let mut h = Histogram::new(0, 99, 4);
        for _ in 0..10 {
            for k in 0..10u64 {
                h.add(k);
            }
        }
        // 100 rows, 10 distinct → ~10 rows per key.
        assert!((h.estimate_eq() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new(0, 99, 4);
        let mut b = Histogram::new(0, 99, 4);
        a.add(5);
        b.add(95);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.estimate_range(0, 99) > 1.9);
    }

    #[test]
    fn histogram_remove_inverts_add() {
        let mut h = Histogram::new(0, 999, 10);
        let mut fresh = Histogram::new(0, 999, 10);
        for k in 0..100u64 {
            h.add(k % 37);
        }
        for k in 0..50u64 {
            h.remove(k % 37);
        }
        // Survivors: the second half of the insertion sequence.
        for k in 50..100u64 {
            fresh.add(k % 37);
        }
        assert_eq!(h.count(), fresh.count());
        assert_eq!(h.bucket_counts(), fresh.bucket_counts());
        assert_eq!(h.distinct_estimate(), fresh.distinct_estimate());
        // Removing keys that were never added is a no-op.
        let snapshot = h.bucket_counts().to_vec();
        h.remove(999);
        h.remove(500);
        assert_eq!(h.bucket_counts(), &snapshot[..]);
    }

    #[test]
    fn histogram_clamps_out_of_domain_keys() {
        let mut h = Histogram::new(10, 20, 2);
        h.add(0); // clamped to 10
        h.add(100); // clamped to 20
        assert_eq!(h.count(), 2);
    }
}

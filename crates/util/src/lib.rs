//! Common substrate for the UniStore workspace.
//!
//! This crate collects the small, dependency-free building blocks shared by
//! every other crate in the reproduction of *UniStore: Querying a DHT-based
//! Universal Storage* (Karnstedt et al., ICDE 2007):
//!
//! * [`bits`] — variable-length bit strings ([`bits::BitPath`]) used for
//!   P-Grid trie paths and key prefixes,
//! * [`bloom`] — wire-encodable Bloom filters carrying semi-join keys to
//!   the peers responsible for the data,
//! * [`ophash`] — the order-preserving encodings that P-Grid relies on for
//!   range and prefix queries,
//! * [`keys`] — the 64-bit key space combining attribute prefixes with
//!   order-preserving value encodings,
//! * [`fxhash`] — a fast, non-cryptographic hasher for internal hash maps,
//! * [`zipf`] — skewed-distribution samplers used by the workload generator
//!   and the load-balancing experiments,
//! * [`stats`] — descriptive statistics (percentiles, Gini coefficient,
//!   equi-width histograms) used by the cost model and the bench harness,
//! * [`wire`] — a compact binary codec used to serialize messages and
//!   mutant query plans, providing honest byte-size accounting,
//! * [`rng`] — deterministic seed derivation so that every experiment is
//!   reproducible from a single master seed.

pub mod bits;
pub mod bloom;
pub mod compact;
pub mod fxhash;
pub mod interval;
pub mod item;
pub mod keys;
pub mod ophash;
pub mod rng;
pub mod stats;
pub mod wire;
pub mod zipf;

pub use bits::BitPath;
pub use bloom::{BloomFilter, ItemFilter};
pub use compact::{intern, CompactStr};
pub use fxhash::{FxHashMap, FxHashSet};
pub use keys::Key;

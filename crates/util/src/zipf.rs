//! Skewed-distribution samplers.
//!
//! The paper stresses (§2, claim C5) that an order-preserving hash makes
//! load balancing under *skewed* data distributions essential. The workload
//! generator and the balance experiments (E5) sample from Zipf
//! distributions implemented here (kept in `util` to avoid an extra
//! dependency and to guarantee determinism).

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `theta >= 0`.
///
/// `theta = 0` degenerates to uniform; `theta = 1` is the classic Zipf.
/// Sampling is inverse-CDF with binary search over a precomputed table:
/// O(n) memory, O(log n) per sample, exact and deterministic.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks and exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against FP round-off at the top end.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose CDF >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Samples `k` distinct indices from `0..n` (Floyd's algorithm).
///
/// Deterministic given the RNG; O(k) expected time.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut chosen = crate::FxHashSet::default();
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_masses() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_skew() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > 3_000, "rank 0 should dominate, got {}", counts[0]);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn distinct_sampling_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks = sample_distinct(&mut rng, 50, 20);
        assert_eq!(picks.len(), 20);
        #[allow(clippy::disallowed_types)]
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(picks.iter().all(|&p| p < 50));
    }

    #[test]
    fn distinct_sampling_clamps_k() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks = sample_distinct(&mut rng, 5, 10);
        assert_eq!(picks.len(), 5);
    }
}

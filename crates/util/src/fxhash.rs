//! A fast, non-cryptographic hasher for internal hash maps.
//!
//! UniStore's hot paths (routing tables, binding sets, statistics) hash
//! small keys — integers and short strings. The default SipHash protects
//! against HashDoS, which is irrelevant inside a deterministic simulator,
//! so we use the Fx algorithm (as used by rustc) implemented here to avoid
//! an extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` using [`FxHasher`].
// The one sanctioned mention of the std maps (see clippy.toml): these
// aliases pin a fixed-seed hasher, which is what makes them legal.
#[allow(clippy::disallowed_types)]
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` using [`FxHasher`].
#[allow(clippy::disallowed_types)]
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes one `u64` to a well-mixed `u64` (splitmix64 finalizer).
///
/// Used wherever a quick, high-quality scramble of an integer is needed,
/// e.g. deriving per-node RNG seeds or Chord identifiers.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a byte slice to a `u64` (FNV-1a folded through [`mix64`]).
///
/// This is the *uniform* (non-order-preserving) hash used for Chord
/// identifiers and for attribute-name prefixes in the key space.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    #[test]
    fn deterministic_across_instances() {
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let a = bh.hash_one("unistore");
        let b = bh.hash_one("unistore");
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_differ() {
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        assert_ne!(bh.hash_one("a"), bh.hash_one("b"));
        assert_ne!(bh.hash_one(1u64), bh.hash_one(2u64));
    }

    #[test]
    fn mix64_is_bijective_spot_check() {
        // splitmix64's finalizer is a bijection; inputs must not collide.
        #[allow(clippy::disallowed_types)]
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn hash_bytes_spreads_prefixes() {
        // Keys sharing a prefix must not cluster (needed for Chord).
        let a = hash_bytes(b"name#alice");
        let b = hash_bytes(b"name#alicf");
        assert_ne!(a >> 56, b >> 56, "high byte should differ after mixing");
    }

    #[test]
    fn fxmap_works() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("x", 1);
        m.insert("y", 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}

//! Deterministic seed derivation.
//!
//! Every experiment in the reproduction runs from a single master seed;
//! nodes, workload generators and latency models each receive a seed
//! *derived* from it, so that adding a component never perturbs the random
//! streams of existing ones (no shared RNG sequencing).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fxhash::mix64;

/// Derives a child seed from a master seed and a stream label.
///
/// Distinct `(seed, label)` pairs yield independent-looking streams.
#[inline]
pub fn derive_seed(master: u64, label: u64) -> u64 {
    mix64(master ^ mix64(label).rotate_left(17))
}

/// Creates a [`StdRng`] for the given master seed and stream label.
pub fn derive_rng(master: u64, label: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// Labels for well-known random streams, so call sites don't collide.
pub mod stream {
    /// Network latency sampling.
    pub const LATENCY: u64 = 1;
    /// Workload / data generation.
    pub const WORKLOAD: u64 = 2;
    /// Overlay construction (peer path assignment, reference selection).
    pub const OVERLAY: u64 = 3;
    /// Churn schedule.
    pub const CHURN: u64 = 4;
    /// Query generation.
    pub const QUERY: u64 = 5;
    /// Per-node protocol randomness; add the node id to this base.
    pub const NODE_BASE: u64 = 1 << 32;
    /// Per-node query-layer randomness (retry jitter); add the node id
    /// to this base. Disjoint from [`NODE_BASE`] (node ids are 32-bit)
    /// so the query layer never shares a stream with its own overlay
    /// peer.
    pub const QUERY_NODE_BASE: u64 = 1 << 33;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, stream::LATENCY);
        let mut b = derive_rng(42, stream::LATENCY);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = derive_rng(42, stream::LATENCY);
        let mut b = derive_rng(42, stream::WORKLOAD);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_masters_diverge() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}

//! The 64-bit UniStore key space.
//!
//! Every data item inserted into the DHT is addressed by a 64-bit key. The
//! triple layer derives *several* keys per triple (paper Fig. 2): one per
//! index. So that all indexes coexist in one trie, each key starts with a
//! small *index tag*, followed by index-specific fields; fields that range
//! queries run over use the order-preserving encodings of [`crate::ophash`].
//!
//! ```text
//!  bit 63..62 | 61..48        | 47..0
//!  tag        | attribute id  | order-preserving value prefix   (A#v index)
//!  tag        | uniform hash of the OID                          (OID index)
//!  tag        | order-preserving value prefix                    (v index)
//!  tag        | attribute id  | q-gram encoding                  (q-gram index)
//! ```
//!
//! This module provides the field-packing arithmetic; the semantic layout
//! lives in `unistore-store`.

/// A location in the UniStore key space.
///
/// Plain `u64` alias: keys are manipulated pervasively in routing and
/// storage code, where the newtype ceremony costs more than it protects.
pub type Key = u64;

/// Packs bit fields MSB-first into a key.
///
/// Each `(value, width)` pair contributes its `width` low bits. The total
/// width must not exceed 64; remaining low bits are zero.
///
/// # Panics
/// Panics if the total width exceeds 64 bits.
pub fn pack(fields: &[(u64, u8)]) -> Key {
    let mut key: u64 = 0;
    let mut used: u32 = 0;
    for &(value, width) in fields {
        let w = width as u32;
        assert!(used + w <= 64, "key fields exceed 64 bits");
        let masked = if w == 64 { value } else { value & ((1u64 << w) - 1) };
        used += w;
        key |= masked << (64 - used);
    }
    key
}

/// Packs a field whose bits are already *left-aligned* (e.g. the output of
/// an order-preserving encoder) into `width` bits starting below `offset`
/// used bits.
///
/// Keeps the most significant `width` bits of `value` — exactly what a
/// prefix-preserving hash requires when narrowing a 64-bit encoding into a
/// sub-field of the key.
pub fn pack_aligned(fields: &[(u64, u8)]) -> Key {
    let mut key: u64 = 0;
    let mut used: u32 = 0;
    for &(value, width) in fields {
        let w = width as u32;
        assert!(used + w <= 64, "key fields exceed 64 bits");
        let top = if w == 0 { 0 } else { value >> (64 - w) };
        used += w;
        key |= top << (64 - used);
    }
    key
}

/// Extracts the field of `width` bits starting `offset` bits from the MSB.
#[inline]
pub fn extract(key: Key, offset: u8, width: u8) -> u64 {
    if width == 0 {
        return 0;
    }
    let shifted = key << offset as u32;
    shifted >> (64 - width as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ophash;
    use proptest::prelude::*;

    #[test]
    fn pack_simple() {
        let k = pack(&[(0b10, 2), (0x3FFF, 14), (0, 48)]);
        assert_eq!(k >> 62, 0b10);
        assert_eq!(extract(k, 2, 14), 0x3FFF);
        assert_eq!(extract(k, 16, 48), 0);
    }

    #[test]
    fn pack_masks_oversized_values() {
        // A value wider than its field must be truncated to low bits.
        let k = pack(&[(0xFF, 4), (0, 60)]);
        assert_eq!(k >> 60, 0xF);
    }

    #[test]
    fn pack_aligned_keeps_msbs() {
        let enc = ophash::encode_str("ICDE");
        let k = pack_aligned(&[(0, 16), (enc, 48)]);
        // Top 48 bits of the encoding must appear below the 16-bit header.
        assert_eq!(extract(k, 16, 48), enc >> 16);
    }

    #[test]
    fn pack_aligned_is_monotone_in_value_field() {
        let a = ophash::encode_str("alpha");
        let b = ophash::encode_str("beta");
        let ka = pack_aligned(&[(7 << 48, 16), (a, 48)]);
        let kb = pack_aligned(&[(7 << 48, 16), (b, 48)]);
        assert!(ka < kb, "same header, ordered values → ordered keys");
    }

    #[test]
    #[should_panic]
    fn pack_overflow_panics() {
        pack(&[(0, 40), (0, 40)]);
    }

    proptest! {
        #[test]
        fn prop_extract_inverts_pack(a in 0u64..4, b in 0u64..(1<<14), c in 0u64..(1u64<<48)) {
            let k = pack(&[(a, 2), (b, 14), (c, 48)]);
            prop_assert_eq!(extract(k, 0, 2), a);
            prop_assert_eq!(extract(k, 2, 14), b);
            prop_assert_eq!(extract(k, 16, 48), c);
        }

        #[test]
        fn prop_pack_aligned_monotone(hdr in 0u64..(1<<16), x: u64, y: u64) {
            let kx = pack_aligned(&[(hdr << 48, 16), (x, 48)]);
            let ky = pack_aligned(&[(hdr << 48, 16), (y, 48)]);
            prop_assert_eq!(kx.cmp(&ky), (x >> 16).cmp(&(y >> 16)));
        }
    }
}

//! Thread-local scratch-buffer pool for the wire codec.
//!
//! The simulator sizes **every** send with [`super::Wire::wire_size`],
//! whose default implementation encodes into a scratch [`BytesMut`] —
//! so without reuse each simulated message pays a fresh allocation plus
//! O(log n) growth re-allocations before the bytes are thrown away.
//! The pool keeps a small per-thread stack of cleared buffers that
//! retain their high-water capacity: steady-state scratch encodes touch
//! the allocator zero times.
//!
//! [`take`] hands out a [`PooledBuf`] RAII handle; dropping it returns
//! the storage. Pooling can be forced off per thread via [`set_enabled`]
//! (the oracle suite runs both modes to prove the wire format is
//! byte-identical either way).

use std::cell::{Cell, RefCell};
use std::ops::{Deref, DerefMut};

use bytes::BytesMut;

/// Buffers retained per thread; deeper nesting falls back to fresh
/// allocations (encode recursion via the default `wire_size` is shallow).
const MAX_POOLED: usize = 8;

/// Capacity ceiling for a returned buffer: a one-off giant encode must
/// not pin its high-water mark in the pool forever.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<BytesMut>> = const { RefCell::new(Vec::new()) };
    static ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Turns pooling on (the default) or off for the current thread. Turning
/// it off also drops any retained buffers.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
    if !on {
        POOL.with(|p| p.borrow_mut().clear());
    }
}

/// Whether pooling is active on the current thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Number of buffers currently parked in this thread's pool.
pub fn pooled_count() -> usize {
    POOL.with(|p| p.borrow().len())
}

/// An empty scratch buffer from the pool (or freshly allocated when the
/// pool is empty or disabled). Returns its storage on drop.
pub fn take() -> PooledBuf {
    let buf = match enabled() {
        true => POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default(),
        false => BytesMut::new(),
    };
    debug_assert!(buf.is_empty(), "pooled buffers are parked cleared");
    PooledBuf { buf }
}

/// Runs `f` with a pooled scratch buffer.
pub fn with_buf<R>(f: impl FnOnce(&mut BytesMut) -> R) -> R {
    let mut buf = take();
    f(&mut buf)
}

/// RAII handle to a pooled [`BytesMut`]; derefs to the buffer and parks
/// the (cleared) storage back in the thread's pool on drop.
#[derive(Debug)]
pub struct PooledBuf {
    buf: BytesMut,
}

impl PooledBuf {
    /// Consumes the handle, keeping the bytes: the backing storage
    /// leaves the pool for good (used when the encode result must
    /// outlive the scratch scope).
    pub fn into_inner(self) -> BytesMut {
        // Drop glue would park the storage; moving the field out via
        // ManuallyDrop hands it to the caller instead.
        let this = std::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is never dropped, so `buf` is read exactly once.
        unsafe { std::ptr::read(&this.buf) }
    }
}

impl Deref for PooledBuf {
    type Target = BytesMut;

    fn deref(&self) -> &BytesMut {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut BytesMut {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if !enabled() || self.buf.capacity() == 0 || self.buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                let mut buf = buf;
                buf.clear();
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused() {
        set_enabled(true);
        POOL.with(|p| p.borrow_mut().clear());
        {
            let mut b = take();
            b.reserve(128);
            b.extend_from_slice(b"warm");
        }
        assert_eq!(pooled_count(), 1);
        let b = take();
        assert!(b.is_empty(), "reused buffer comes back cleared");
        assert!(b.capacity() >= 128, "reused buffer keeps its capacity");
        drop(b);
    }

    #[test]
    fn disabled_pool_retains_nothing() {
        set_enabled(false);
        {
            let mut b = take();
            b.extend_from_slice(b"xyz");
        }
        assert_eq!(pooled_count(), 0);
        set_enabled(true);
    }

    #[test]
    fn into_inner_detaches_storage() {
        set_enabled(true);
        POOL.with(|p| p.borrow_mut().clear());
        let mut b = take();
        b.extend_from_slice(b"keep me");
        let owned = b.into_inner();
        assert_eq!(&owned[..], b"keep me");
        assert_eq!(pooled_count(), 0, "detached storage never re-enters the pool");
    }

    #[test]
    fn pool_depth_is_bounded() {
        set_enabled(true);
        POOL.with(|p| p.borrow_mut().clear());
        let handles: Vec<_> = (0..2 * MAX_POOLED)
            .map(|_| {
                let mut b = take();
                b.extend_from_slice(b"x");
                b
            })
            .collect();
        drop(handles);
        assert!(pooled_count() <= MAX_POOLED);
    }
}

//! Order-preserving encodings.
//!
//! P-Grid's distinguishing feature (paper §2) is an *order-preserving,
//! prefix-preserving* hash function: keys that are close in the application
//! domain land close in the trie, which is what enables native range and
//! prefix queries. This module provides monotone encodings from application
//! values onto `u64`:
//!
//! * strings → lexicographic on the first [`STR_BYTES`] bytes,
//! * signed integers and floats → standard monotone bit transforms.
//!
//! Ties beyond the encoded prefix are resolved by filtering at the storage
//! leaves against the full value (see `unistore-store`), so truncation never
//! produces wrong results, only slightly coarser routing.

/// Number of leading bytes of a string that the encoding preserves.
pub const STR_BYTES: usize = 8;

/// Encodes a string order-preservingly into a `u64`.
///
/// The first 8 bytes are packed big-endian, shorter strings are
/// zero-padded; thus `encode_str(a) <= encode_str(b)` whenever `a <= b`
/// byte-lexicographically (with equality possible for strings sharing an
/// 8-byte prefix).
#[inline]
pub fn encode_str(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut buf = [0u8; STR_BYTES];
    let n = bytes.len().min(STR_BYTES);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

/// Encodes a signed integer monotonically: flips the sign bit so that
/// `i64::MIN → 0` and `i64::MAX → u64::MAX`.
#[inline]
pub fn encode_i64(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Inverse of [`encode_i64`].
#[inline]
pub fn decode_i64(u: u64) -> i64 {
    (u ^ (1 << 63)) as i64
}

/// Encodes an `f64` monotonically onto `u64` (total order, NaN sorts last).
///
/// Standard trick: positive floats get the sign bit set; negative floats
/// have all bits flipped.
#[inline]
pub fn encode_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`encode_f64`].
#[inline]
pub fn decode_f64(u: u64) -> f64 {
    let bits = if u >> 63 == 1 { u & !(1 << 63) } else { !u };
    f64::from_bits(bits)
}

/// Truncates an encoded value to its `n` most significant bits
/// (zero-filling the rest). Monotone for any fixed `n`.
#[inline]
pub fn truncate(u: u64, n: u8) -> u64 {
    if n == 0 {
        0
    } else if n >= 64 {
        u
    } else {
        u & (u64::MAX << (64 - n as u32))
    }
}

/// The largest encoded value sharing the first `n` bits with `u`
/// (one-filling the rest). Used to close range upper bounds.
#[inline]
pub fn saturate(u: u64, n: u8) -> u64 {
    if n == 0 {
        u64::MAX
    } else if n >= 64 {
        u
    } else {
        u | (u64::MAX >> n as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn str_encoding_examples() {
        assert!(encode_str("a") < encode_str("b"));
        assert!(encode_str("ICDE") < encode_str("ICDF"));
        assert!(encode_str("") < encode_str("a"));
        assert!(encode_str("abc") < encode_str("abd"));
        // Shared 8-byte prefix collapses — allowed by contract.
        assert_eq!(encode_str("conference-a"), encode_str("conferenc"));
    }

    #[test]
    fn i64_encoding_endpoints() {
        assert_eq!(encode_i64(i64::MIN), 0);
        assert_eq!(encode_i64(i64::MAX), u64::MAX);
        assert_eq!(encode_i64(0), 1 << 63);
        assert_eq!(decode_i64(encode_i64(-42)), -42);
    }

    #[test]
    fn f64_encoding_orders_negatives() {
        assert!(encode_f64(-2.0) < encode_f64(-1.0));
        assert!(encode_f64(-1.0) < encode_f64(0.0));
        assert!(encode_f64(0.0) < encode_f64(1.5));
        assert!(encode_f64(1.5) < encode_f64(f64::INFINITY));
        assert_eq!(decode_f64(encode_f64(3.25)), 3.25);
        assert_eq!(decode_f64(encode_f64(-3.25)), -3.25);
    }

    #[test]
    fn truncate_saturate_bracket() {
        let u = 0xDEAD_BEEF_CAFE_F00Du64;
        for n in [0u8, 1, 7, 16, 33, 63, 64] {
            assert!(truncate(u, n) <= u);
            assert!(saturate(u, n) >= u);
            assert_eq!(truncate(truncate(u, n), n), truncate(u, n));
        }
        assert_eq!(truncate(u, 64), u);
        assert_eq!(saturate(u, 64), u);
    }

    proptest! {
        #[test]
        fn prop_str_monotone(a in ".{0,16}", b in ".{0,16}") {
            // Compare on the truncated byte prefix the encoding promises.
            let ka = &a.as_bytes()[..a.len().min(STR_BYTES)];
            let kb = &b.as_bytes()[..b.len().min(STR_BYTES)];
            // Zero-pad to 8 so the comparison matches the encoding contract.
            let mut pa = [0u8; STR_BYTES]; pa[..ka.len()].copy_from_slice(ka);
            let mut pb = [0u8; STR_BYTES]; pb[..kb.len()].copy_from_slice(kb);
            prop_assert_eq!(encode_str(&a).cmp(&encode_str(&b)), pa.cmp(&pb));
        }

        #[test]
        fn prop_i64_monotone(a: i64, b: i64) {
            prop_assert_eq!(a.cmp(&b), encode_i64(a).cmp(&encode_i64(b)));
        }

        #[test]
        fn prop_i64_roundtrip(a: i64) {
            prop_assert_eq!(decode_i64(encode_i64(a)), a);
        }

        #[test]
        fn prop_f64_monotone(a: f64, b: f64) {
            prop_assume!(!a.is_nan() && !b.is_nan());
            // The encoding is a *total-order refinement*: it agrees with
            // IEEE comparison except that it separates -0.0 < +0.0.
            match a.partial_cmp(&b).unwrap() {
                std::cmp::Ordering::Less => prop_assert!(encode_f64(a) < encode_f64(b)),
                std::cmp::Ordering::Greater => prop_assert!(encode_f64(a) > encode_f64(b)),
                std::cmp::Ordering::Equal => {
                    prop_assert!(
                        encode_f64(a) == encode_f64(b) || a == 0.0,
                        "only ±0.0 may compare Equal yet encode differently"
                    );
                }
            }
        }

        #[test]
        fn prop_f64_roundtrip(a: f64) {
            prop_assume!(!a.is_nan());
            prop_assert_eq!(decode_f64(encode_f64(a)), a);
        }

        #[test]
        fn prop_truncate_monotone(a: u64, b: u64, n in 0u8..=64) {
            if a <= b {
                prop_assert!(truncate(a, n) <= truncate(b, n));
            }
        }
    }
}

//! Compact binary codec for messages and mutant query plans.
//!
//! The paper's Mutant Query Plan processing ships *plans with embedded
//! partial results* between peers. To account message sizes honestly in
//! the simulator (bytes on the wire drive the cost model and experiment
//! outputs), everything that crosses the simulated network implements
//! [`Wire`]: a simple length-prefixed, varint-based binary encoding built
//! on the `bytes` crate.

use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A tag byte did not match any known variant.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A length prefix was implausibly large.
    BadLength(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity cap for decoded collection lengths (guards fuzzed input).
const MAX_LEN: u64 = 1 << 28;

/// Types that can cross the simulated network.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes a value, consuming bytes from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Number of bytes [`Wire::encode`] would produce.
    ///
    /// Default implementation encodes into a scratch buffer; hot types
    /// should override with arithmetic.
    fn wire_size(&self) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Convenience: decodes from a full buffer, requiring full consumption.
    fn from_bytes(bytes: &Bytes) -> Result<Self, WireError> {
        let mut b = bytes.clone();
        let v = Self::decode(&mut b)?;
        if b.has_remaining() {
            return Err(WireError::BadLength(b.remaining() as u64));
        }
        Ok(v)
    }
}

/// Writes a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(WireError::BadLength(u64::MAX));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Size of the varint encoding of `v`.
pub fn varint_size(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_varint(buf)
    }

    fn wire_size(&self) -> usize {
        varint_size(*self)
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self as u64);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let v = get_varint(buf)?;
        u32::try_from(v).map_err(|_| WireError::BadLength(v))
    }

    fn wire_size(&self) -> usize {
        varint_size(*self as u64)
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self as u64);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let v = get_varint(buf)?;
        u16::try_from(v).map_err(|_| WireError::BadLength(v))
    }

    fn wire_size(&self) -> usize {
        varint_size(*self as u64)
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        Ok(buf.get_u8())
    }

    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        // ZigZag so small magnitudes stay small.
        let z = ((*self << 1) ^ (*self >> 63)) as u64;
        put_varint(buf, z);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let z = get_varint(buf)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn wire_size(&self) -> usize {
        varint_size(((*self << 1) ^ (*self >> 63)) as u64)
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.to_bits());
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 8 {
            return Err(WireError::UnexpectedEof);
        }
        Ok(f64::from_bits(buf.get_u64()))
    }

    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = get_varint(buf)?;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let len = len as usize;
        if buf.remaining() < len {
            return Err(WireError::UnexpectedEof);
        }
        let raw = buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn wire_size(&self) -> usize {
        varint_size(self.len() as u64) + self.len()
    }
}

impl Wire for Arc<str> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(String::decode(buf)?.into())
    }

    fn wire_size(&self) -> usize {
        varint_size(self.len() as u64) + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = get_varint(buf)?;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len.min(1024) as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }

    fn wire_size(&self) -> usize {
        varint_size(self.len() as u64) + self.iter().map(Wire::wire_size).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?, D::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size() + self.3.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.wire_size(), "wire_size must match encoding");
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(300u32);
        roundtrip(7u16);
        roundtrip(255u8);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(3.25f64);
        roundtrip(String::from("universal storage"));
        roundtrip(String::new());
        roundtrip::<Arc<str>>(Arc::from("pgrid"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42u64));
        roundtrip(None::<u64>);
        roundtrip((1u64, String::from("x")));
        roundtrip((1u64, 2u64, String::from("y")));
    }

    #[test]
    fn varint_sizes() {
        assert_eq!(varint_size(0), 1);
        assert_eq!(varint_size(127), 1);
        assert_eq!(varint_size(128), 2);
        assert_eq!(varint_size(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 123456789u64.to_bytes();
        let mut cut = bytes.slice(0..bytes.len() - 1);
        assert_eq!(u64::decode(&mut cut), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut buf = BytesMut::new();
        5u64.encode(&mut buf);
        buf.put_u8(0xFF);
        let b = buf.freeze();
        assert!(matches!(u64::from_bytes(&b), Err(WireError::BadLength(_))));
    }

    #[test]
    fn bool_bad_tag() {
        let b = Bytes::from_static(&[7]);
        assert_eq!(bool::from_bytes(&b), Err(WireError::BadTag(7)));
    }

    #[test]
    fn huge_length_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let b = buf.freeze();
        assert!(matches!(String::from_bytes(&b), Err(WireError::BadLength(_))));
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v: u64) { roundtrip(v); }

        #[test]
        fn prop_i64_roundtrip(v: i64) { roundtrip(v); }

        #[test]
        fn prop_string_roundtrip(s in ".{0,64}") { roundtrip(s); }

        #[test]
        fn prop_vec_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..32)) {
            roundtrip(v);
        }
    }
}

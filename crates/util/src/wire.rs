//! Compact binary codec for messages and mutant query plans.
//!
//! The paper's Mutant Query Plan processing ships *plans with embedded
//! partial results* between peers. To account message sizes honestly in
//! the simulator (bytes on the wire drive the cost model and experiment
//! outputs), everything that crosses the simulated network implements
//! [`Wire`]: a simple length-prefixed, varint-based binary encoding built
//! on the `bytes` crate.

use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

pub mod pool;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A tag byte did not match any known variant.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A length prefix was implausibly large.
    BadLength(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity cap for decoded collection lengths (guards fuzzed input).
const MAX_LEN: u64 = 1 << 28;

/// Types that can cross the simulated network.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes a value, consuming bytes from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Number of bytes [`Wire::encode`] would produce.
    ///
    /// Default implementation encodes into a **pooled** scratch buffer
    /// (the simulator sizes every send through here, so the scratch
    /// bytes are allocation-free in steady state); hot types should
    /// still override with arithmetic.
    fn wire_size(&self) -> usize {
        pool::with_buf(|buf| {
            self.encode(buf);
            buf.len()
        })
    }

    /// Convenience: encodes into a fresh buffer, sized exactly (one
    /// allocation; the sizing pass reuses pooled scratch storage).
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Convenience: decodes from a full buffer, requiring full consumption.
    fn from_bytes(bytes: &Bytes) -> Result<Self, WireError> {
        let mut b = bytes.clone();
        let v = Self::decode(&mut b)?;
        if b.has_remaining() {
            return Err(WireError::BadLength(b.remaining() as u64));
        }
        Ok(v)
    }
}

/// Writes a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(WireError::BadLength(u64::MAX));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes a length-prefixed list, pre-reserving the buffer from a
/// first-item size estimate. The hot reply paths (triple lists, range
/// replies, batch payloads) carry many homogeneous items; growing the
/// byte buffer incrementally re-allocates O(log total) times and copies
/// everything each time, while one up-front `reserve` makes the whole
/// encode a single allocation.
pub fn put_list<T: Wire>(buf: &mut BytesMut, items: &[T]) {
    put_varint(buf, items.len() as u64);
    if let Some(first) = items.first() {
        buf.reserve(first.wire_size() * items.len());
    }
    for item in items {
        item.encode(buf);
    }
}

/// Size of the varint encoding of `v`.
pub fn varint_size(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_varint(buf)
    }

    fn wire_size(&self) -> usize {
        varint_size(*self)
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self as u64);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let v = get_varint(buf)?;
        u32::try_from(v).map_err(|_| WireError::BadLength(v))
    }

    fn wire_size(&self) -> usize {
        varint_size(*self as u64)
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self as u64);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let v = get_varint(buf)?;
        u16::try_from(v).map_err(|_| WireError::BadLength(v))
    }

    fn wire_size(&self) -> usize {
        varint_size(*self as u64)
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        Ok(buf.get_u8())
    }

    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        // ZigZag so small magnitudes stay small.
        let z = ((*self << 1) ^ (*self >> 63)) as u64;
        put_varint(buf, z);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let z = get_varint(buf)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn wire_size(&self) -> usize {
        varint_size(((*self << 1) ^ (*self >> 63)) as u64)
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.to_bits());
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 8 {
            return Err(WireError::UnexpectedEof);
        }
        Ok(f64::from_bits(buf.get_u64()))
    }

    fn wire_size(&self) -> usize {
        8
    }
}

/// Decodes a length-prefixed UTF-8 string, validating **in place** over
/// the incoming buffer and handing the borrowed `&str` to `f` — the
/// caller builds its target type (`String`, `Arc<str>`, inline bytes)
/// in a single copy, with no intermediate `Vec<u8>`.
pub fn decode_str<R>(buf: &mut Bytes, f: impl FnOnce(&str) -> R) -> Result<R, WireError> {
    let len = get_varint(buf)?;
    if len > MAX_LEN {
        return Err(WireError::BadLength(len));
    }
    let len = len as usize;
    if buf.remaining() < len {
        return Err(WireError::UnexpectedEof);
    }
    let head = buf.chunk().get(..len).ok_or(WireError::UnexpectedEof)?;
    let s = std::str::from_utf8(head).map_err(|_| WireError::BadUtf8)?;
    let out = f(s);
    buf.advance(len);
    Ok(out)
}

/// Encodes a length-prefixed UTF-8 string (shared by every string-like
/// wire type so their encodings stay byte-identical).
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Wire size of a length-prefixed UTF-8 string.
pub fn str_wire_size(s: &str) -> usize {
    varint_size(s.len() as u64) + s.len()
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, self);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        decode_str(buf, str::to_owned)
    }

    fn wire_size(&self) -> usize {
        str_wire_size(self)
    }
}

impl Wire for Arc<str> {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, self);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        decode_str(buf, |s| Arc::from(s))
    }

    fn wire_size(&self) -> usize {
        str_wire_size(self)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = get_varint(buf)?;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len.min(1024) as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }

    fn wire_size(&self) -> usize {
        varint_size(self.len() as u64) + self.iter().map(Wire::wire_size).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?, D::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size() + self.3.wire_size()
    }
}

/// A wire value encoded **once** and shared by reference: clones share
/// the pre-built buffer, and every [`Wire::encode`] is a `memcpy` of
/// those bytes instead of a re-walk of the value.
///
/// Broadcast payloads are the motivating case: a stats-refresh flush
/// ships the identical `StatsDelta` to N−1 peers, and the naive path
/// paid N−1 deep clones plus N−1 full encodings (the simulator sizes
/// every send with [`Wire::wire_size`], whose default encodes into a
/// scratch buffer). Wrapping the payload in `Shared` pays the encoding
/// exactly once at the sender.
#[derive(Clone, Debug)]
pub struct Shared<T> {
    value: Arc<T>,
    bytes: Bytes,
}

impl<T: Wire> Shared<T> {
    /// Wraps a value, encoding it once.
    pub fn new(value: T) -> Shared<T> {
        let mut buf = BytesMut::with_capacity(value.wire_size());
        value.encode(&mut buf);
        Shared { value: Arc::new(value), bytes: buf.freeze() }
    }

    /// The wrapped value.
    pub fn get(&self) -> &T {
        &self.value
    }
}

impl<T: Wire> Wire for Shared<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.bytes);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        // The receiver re-encodes once to restore the shared buffer; its
        // own re-broadcasts then clone bytes again instead of re-walking.
        Ok(Shared::new(T::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.bytes.len()
    }
}

// ---- batched writes with shared payloads ------------------------------

/// What one batched write does at the responsible peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchVerb {
    /// Store the payload at index `item` of the batch's item table.
    Insert {
        /// Index into [`OpBatch::items`].
        item: u32,
    },
    /// Remove the entry with logical identity `ident` (tombstoning,
    /// index maintenance for updates).
    Delete {
        /// Logical identity of the entry to remove.
        ident: u64,
    },
}

/// One batched write op: placement key, version, verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOp {
    /// Placement key (one of the indexes the item lives under).
    pub key: u64,
    /// Version for loose-consistency updates (0 = initial insert).
    pub version: u64,
    /// Insert or delete.
    pub verb: BatchVerb,
}

/// A batch of write ops with **shared payloads**: each distinct item is
/// carried once in `items`, and the ops reference it by index.
///
/// UniStore's triple store fans every logical write out into its full
/// index set (`TripleKeys::all()` is up to a 7-way copy: OID, A#v, v,
/// plus q-gram keys); shipping each copy in its own message pays per-key
/// routing, per-key wire overhead and 7 full payload encodings. An
/// `OpBatch` ships the payload once per *message* with compact key tags
/// (`ops`) instead, and [`OpBatch::subset`] lets a routing step re-group
/// the batch per next hop so it only forks where responsibility actually
/// diverges.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct OpBatch<I> {
    /// Distinct payloads, shipped once each.
    pub items: Vec<I>,
    /// The write ops, referencing `items` by index.
    pub ops: Vec<BatchOp>,
}

impl<I> OpBatch<I> {
    /// An empty batch.
    pub fn new() -> OpBatch<I> {
        OpBatch { items: Vec::new(), ops: Vec::new() }
    }

    /// Adds a payload to the item table, returning its index for
    /// [`OpBatch::push_insert`]. Callers dedup (one entry per logical
    /// item, however many index keys reference it).
    pub fn add_item(&mut self, item: I) -> u32 {
        self.items.push(item);
        (self.items.len() - 1) as u32
    }

    /// Appends an insert of item `item` under `key`.
    pub fn push_insert(&mut self, key: u64, item: u32, version: u64) {
        debug_assert!((item as usize) < self.items.len(), "item index out of range");
        self.ops.push(BatchOp { key, version, verb: BatchVerb::Insert { item } });
    }

    /// Appends a delete of identity `ident` under `key`.
    pub fn push_delete(&mut self, key: u64, ident: u64, version: u64) {
        self.ops.push(BatchOp { key, version, verb: BatchVerb::Delete { ident } });
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The payload an insert op references (`None` for deletes).
    pub fn item_of(&self, op: &BatchOp) -> Option<&I> {
        match op.verb {
            BatchVerb::Insert { item } => self.items.get(item as usize),
            BatchVerb::Delete { .. } => None,
        }
    }
}

impl<I: Clone> OpBatch<I> {
    /// Sub-batch of the ops at `indices`, re-indexed so only the
    /// payloads the sub-batch references are carried — the per-hop
    /// re-grouping step of the batched write pipeline.
    pub fn subset(&self, indices: &[usize]) -> OpBatch<I> {
        let (items, ops) = subset_shared(
            &self.items,
            &self.ops,
            indices,
            |op| match op.verb {
                BatchVerb::Insert { item } => Some(item),
                BatchVerb::Delete { .. } => None,
            },
            |op, item| op.verb = BatchVerb::Insert { item },
        );
        OpBatch { items, ops }
    }
}

/// Re-groups a shared-payload batch: clones the ops at `indices` and
/// re-indexes the item table so only payloads the sub-batch references
/// are carried. Generic over the op representation — `item_ref` names
/// the payload an op references (`None` for deletes), `rebind` rewrites
/// the reference after remapping — so every backend's per-hop re-split
/// shares this one implementation.
pub fn subset_shared<I: Clone, Op: Copy>(
    items: &[I],
    ops: &[Op],
    indices: &[usize],
    item_ref: impl Fn(&Op) -> Option<u32>,
    mut rebind: impl FnMut(&mut Op, u32),
) -> (Vec<I>, Vec<Op>) {
    let mut remap: Vec<Option<u32>> = vec![None; items.len()];
    let mut sub_items: Vec<I> = Vec::new();
    let mut sub_ops: Vec<Op> = Vec::with_capacity(indices.len());
    for &i in indices {
        let mut op = ops[i];
        if let Some(item) = item_ref(&op) {
            let slot = &mut remap[item as usize];
            let new = match *slot {
                Some(n) => n,
                None => {
                    sub_items.push(items[item as usize].clone());
                    let n = (sub_items.len() - 1) as u32;
                    *slot = Some(n);
                    n
                }
            };
            rebind(&mut op, new);
        }
        sub_ops.push(op);
    }
    (sub_items, sub_ops)
}

/// Flag bits of the compact [`BatchOp`] encoding.
mod op_flags {
    /// The op is a delete (insert otherwise).
    pub const DELETE: u8 = 1;
    /// A nonzero version follows (initial inserts omit it).
    pub const VERSIONED: u8 = 2;
    /// All bits an encoder may set.
    pub const ALL: u8 = DELETE | VERSIONED;
}

// Op tags are the dominant freight of a large batch — every op crosses
// every edge of its route — so the encoding is deliberately tight: one
// flag byte, a fixed 8-byte key (index keys are high-entropy, a varint
// would average 9–10 bytes), the small varint payload reference, and
// the version only when nonzero (initial inserts, the bulk-ingest
// common case, are version 0).
impl BatchOp {
    /// Encodes the compact op format with backend-specific `extra`
    /// flag bits folded into the flag byte. Bits 0–1 belong to this
    /// type; `extra` must stay above them (Chord folds its bucket-index
    /// bit in this way so both backends share one codec).
    pub fn encode_flagged(&self, extra: u8, buf: &mut BytesMut) {
        debug_assert!(extra & op_flags::ALL == 0, "extra flags collide with BatchOp's");
        let mut flags = extra;
        if matches!(self.verb, BatchVerb::Delete { .. }) {
            flags |= op_flags::DELETE;
        }
        if self.version != 0 {
            flags |= op_flags::VERSIONED;
        }
        buf.put_u8(flags);
        buf.put_u64(self.key);
        match self.verb {
            BatchVerb::Insert { item } => item.encode(buf),
            BatchVerb::Delete { ident } => ident.encode(buf),
        }
        if self.version != 0 {
            self.version.encode(buf);
        }
    }

    /// Decodes the compact op format, returning the op plus whichever
    /// of the caller's `extra_mask` flag bits were set. Flag bits
    /// neither known to this type nor in `extra_mask` reject the input.
    pub fn decode_flagged(buf: &mut Bytes, extra_mask: u8) -> Result<(Self, u8), WireError> {
        let flags = u8::decode(buf)?;
        if flags & !(op_flags::ALL | extra_mask) != 0 {
            return Err(WireError::BadTag(flags));
        }
        if buf.remaining() < 8 {
            return Err(WireError::UnexpectedEof);
        }
        let key = buf.get_u64();
        let verb = match flags & op_flags::DELETE != 0 {
            false => BatchVerb::Insert { item: Wire::decode(buf)? },
            true => BatchVerb::Delete { ident: Wire::decode(buf)? },
        };
        let version = match flags & op_flags::VERSIONED != 0 {
            true => u64::decode(buf)?,
            false => 0,
        };
        Ok((BatchOp { key, version, verb }, flags & extra_mask))
    }
}

impl Wire for BatchOp {
    fn encode(&self, buf: &mut BytesMut) {
        self.encode_flagged(0, buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(BatchOp::decode_flagged(buf, 0)?.0)
    }

    fn wire_size(&self) -> usize {
        let payload = match self.verb {
            BatchVerb::Insert { item } => item.wire_size(),
            BatchVerb::Delete { ident } => ident.wire_size(),
        };
        1 + 8 + payload + if self.version != 0 { self.version.wire_size() } else { 0 }
    }
}

impl<I: Wire> Wire for OpBatch<I> {
    fn encode(&self, buf: &mut BytesMut) {
        // One up-front reservation: batches are the hot ingest payload.
        buf.reserve(self.wire_size());
        self.items.encode(buf);
        self.ops.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let items: Vec<I> = Wire::decode(buf)?;
        let ops: Vec<BatchOp> = Wire::decode(buf)?;
        // Reject dangling payload references up front so handlers can
        // index the item table without per-op bounds checks.
        for op in &ops {
            if let BatchVerb::Insert { item } = op.verb {
                if item as usize >= items.len() {
                    return Err(WireError::BadLength(item as u64));
                }
            }
        }
        Ok(OpBatch { items, ops })
    }

    fn wire_size(&self) -> usize {
        self.items.wire_size() + self.ops.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.wire_size(), "wire_size must match encoding");
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(300u32);
        roundtrip(7u16);
        roundtrip(255u8);
        roundtrip(true);
        roundtrip(false);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(3.25f64);
        roundtrip(String::from("universal storage"));
        roundtrip(String::new());
        roundtrip::<Arc<str>>(Arc::from("pgrid"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42u64));
        roundtrip(None::<u64>);
        roundtrip((1u64, String::from("x")));
        roundtrip((1u64, 2u64, String::from("y")));
    }

    #[test]
    fn varint_sizes() {
        assert_eq!(varint_size(0), 1);
        assert_eq!(varint_size(127), 1);
        assert_eq!(varint_size(128), 2);
        assert_eq!(varint_size(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 123456789u64.to_bytes();
        let mut cut = bytes.slice(0..bytes.len() - 1);
        assert_eq!(u64::decode(&mut cut), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut buf = BytesMut::new();
        5u64.encode(&mut buf);
        buf.put_u8(0xFF);
        let b = buf.freeze();
        assert!(matches!(u64::from_bytes(&b), Err(WireError::BadLength(_))));
    }

    #[test]
    fn bool_bad_tag() {
        let b = Bytes::from_static(&[7]);
        assert_eq!(bool::from_bytes(&b), Err(WireError::BadTag(7)));
    }

    #[test]
    fn huge_length_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let b = buf.freeze();
        assert!(matches!(String::from_bytes(&b), Err(WireError::BadLength(_))));
    }

    #[test]
    fn shared_encodes_identically_to_inner() {
        let v = vec![7u64, 8, 9];
        let s = Shared::new(v.clone());
        assert_eq!(s.to_bytes(), v.to_bytes(), "wrapper is wire-transparent");
        assert_eq!(s.wire_size(), v.wire_size());
        let back = Shared::<Vec<u64>>::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back.get(), &v);
        // Clones share the buffer — no re-encode, no deep copy.
        let c = s.clone();
        assert_eq!(c.bytes.as_ptr(), s.bytes.as_ptr());
    }

    fn sample_batch() -> OpBatch<String> {
        let mut b = OpBatch::new();
        let a = b.add_item("alpha".to_string());
        let z = b.add_item("zeta".to_string());
        b.push_insert(10, a, 0);
        b.push_insert(20, a, 0);
        b.push_insert(30, z, 2);
        b.push_delete(40, 0xDEAD, 3);
        b
    }

    #[test]
    fn op_batch_roundtrip() {
        let b = sample_batch();
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), b.wire_size());
        assert_eq!(OpBatch::<String>::from_bytes(&bytes).unwrap(), b);
        let empty: OpBatch<String> = OpBatch::new();
        assert!(empty.is_empty());
        roundtrip(empty);
    }

    #[test]
    fn op_batch_shares_payload_bytes() {
        // Two ops referencing one item must not double the payload.
        let mut one = OpBatch::new();
        let i = one.add_item("a-reasonably-long-payload".to_string());
        one.push_insert(1, i, 0);
        let mut two = one.clone();
        two.push_insert(2, i, 0);
        let op_size =
            BatchOp { key: 2, version: 0, verb: BatchVerb::Insert { item: i } }.wire_size();
        assert_eq!(two.wire_size(), one.wire_size() + op_size, "second op adds only a key tag");
    }

    #[test]
    fn op_batch_subset_reindexes_items() {
        let b = sample_batch();
        // Ops 2 and 3 reference only "zeta" (and a delete).
        let sub = b.subset(&[2, 3]);
        assert_eq!(sub.items, vec!["zeta".to_string()], "unreferenced payloads dropped");
        assert_eq!(sub.ops.len(), 2);
        assert_eq!(sub.ops[0].verb, BatchVerb::Insert { item: 0 }, "index remapped");
        assert_eq!(sub.ops[1].verb, BatchVerb::Delete { ident: 0xDEAD });
        // A subset referencing one item twice carries it once.
        let sub = b.subset(&[0, 1]);
        assert_eq!(sub.items.len(), 1);
        assert_eq!(sub.ops[0].verb, BatchVerb::Insert { item: 0 });
        assert_eq!(sub.ops[1].verb, BatchVerb::Insert { item: 0 });
    }

    #[test]
    fn op_batch_rejects_dangling_item_reference() {
        let mut b: OpBatch<String> = OpBatch::new();
        b.ops.push(BatchOp { key: 1, version: 0, verb: BatchVerb::Insert { item: 5 } });
        let bytes = b.to_bytes();
        assert!(matches!(OpBatch::<String>::from_bytes(&bytes), Err(WireError::BadLength(5))));
    }

    #[test]
    fn put_list_matches_vec_encoding() {
        let v = vec![1u64, 200, 30000, 4];
        let mut a = BytesMut::new();
        put_list(&mut a, &v);
        assert_eq!(a.freeze(), v.to_bytes());
        let empty: Vec<u64> = Vec::new();
        let mut b = BytesMut::new();
        put_list(&mut b, &empty);
        assert_eq!(b.freeze(), empty.to_bytes());
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v: u64) { roundtrip(v); }

        #[test]
        fn prop_i64_roundtrip(v: i64) { roundtrip(v); }

        #[test]
        fn prop_string_roundtrip(s in ".{0,64}") { roundtrip(s); }

        #[test]
        fn prop_vec_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..32)) {
            roundtrip(v);
        }

        /// Pooling is invisible on the wire: the same value encodes to
        /// byte-identical output and reports the same size with the
        /// thread-local scratch pool on and off.
        #[test]
        fn prop_pooling_is_wire_invisible(
            v in proptest::collection::vec(".{0,24}", 0..16),
        ) {
            pool::set_enabled(true);
            let pooled_bytes = v.to_bytes();
            let pooled_size = v.wire_size();
            pool::set_enabled(false);
            let plain_bytes = v.to_bytes();
            let plain_size = v.wire_size();
            pool::set_enabled(true);
            prop_assert_eq!(pooled_bytes, plain_bytes);
            prop_assert_eq!(pooled_size, plain_size);
        }
    }
}

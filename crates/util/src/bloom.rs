//! Wire-encodable Bloom filters for semi-join pushdown.
//!
//! UniStore's cost model prices plans almost entirely by shipped bytes
//! and messages, and the dominant byte cost of a distributed join is the
//! right side's candidate triples travelling to the plan holder. A
//! [`BloomFilter`] is the compact summary that travels the *other* way:
//! the plan holder encodes the already-materialized side's distinct join
//! keys and ships the filter inside the scan operation, so the peers
//! responsible for the data drop non-matching triples *before* replying.
//! The filter is conservative by construction — a membership test may
//! return a false positive (pruned later by the exact hash join) but
//! never a false negative, so filtered scans lose no true join match.
//!
//! [`ItemFilter`] pairs a filter with the item field it tests
//! ([`Item::field_hash`]), making the pushdown expressible at the
//! storage layer without the overlays knowing anything about triples.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::fxhash::mix64;
use crate::item::Item;
use crate::wire::{get_varint, put_varint, varint_size, Wire, WireError};

/// Salts separating the two derived hash functions (double hashing).
const SALT_A: u64 = 0x424c_4f4f_4d5f_4861; // "BLOOM_Ha"
const SALT_B: u64 = 0x424c_4f4f_4d5f_4862; // "BLOOM_Hb"

/// Hard cap on filter size: a filter that large stopped being a
/// bandwidth optimization long ago (also guards decoded input).
const MAX_WORDS: u64 = 1 << 20; // 8 MiB of bits

/// A Bloom filter over 64-bit element hashes.
///
/// Elements are already-mixed hashes (e.g. the semantic hash of a join
/// key); the filter derives its `k` probe positions by double hashing,
/// so no per-element rehashing of payload bytes is needed at the leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    /// Number of probe positions per element.
    k: u32,
    /// The bit array, 64 bits per word.
    words: Vec<u64>,
}

impl BloomFilter {
    /// Creates an empty filter sized for `n` distinct elements at target
    /// false-positive rate `fpr` (clamped to sane bounds). The classic
    /// sizing: `m = -n·ln p / ln²2` bits, `k = (m/n)·ln 2` probes.
    pub fn with_capacity(n: usize, fpr: f64) -> BloomFilter {
        let n = n.max(1) as f64;
        let p = fpr.clamp(1e-6, 0.5);
        let m_bits = (-(n * p.ln()) / (core::f64::consts::LN_2 * core::f64::consts::LN_2)).ceil();
        let words = ((m_bits / 64.0).ceil() as u64).clamp(1, MAX_WORDS) as usize;
        let k = ((words as f64 * 64.0 / n) * core::f64::consts::LN_2).round();
        BloomFilter { k: (k as u32).clamp(1, 16), words: vec![0; words] }
    }

    /// Builds a filter from element hashes at target `fpr`, sized for
    /// the number of *distinct* hashes provided.
    pub fn from_hashes(hashes: impl IntoIterator<Item = u64>, fpr: f64) -> BloomFilter {
        let hashes: Vec<u64> = hashes.into_iter().collect();
        let mut f = BloomFilter::with_capacity(hashes.len(), fpr);
        for h in hashes {
            f.insert(h);
        }
        f
    }

    /// Probe positions for an element (double hashing).
    #[inline]
    fn probes(&self, h: u64) -> impl Iterator<Item = (usize, u64)> + '_ {
        let m = self.words.len() as u64 * 64;
        let h1 = mix64(h ^ SALT_A);
        let h2 = mix64(h ^ SALT_B) | 1;
        (0..self.k as u64).map(move |i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            ((bit / 64) as usize, 1u64 << (bit % 64))
        })
    }

    /// Inserts an element hash.
    pub fn insert(&mut self, h: u64) {
        let m = self.words.len() as u64 * 64;
        let h1 = mix64(h ^ SALT_A);
        let h2 = mix64(h ^ SALT_B) | 1;
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Membership test: `true` means *possibly present* (false positives
    /// at roughly the configured rate), `false` means *definitely
    /// absent* — never wrong for inserted elements.
    pub fn contains(&self, h: u64) -> bool {
        self.probes(h).all(|(w, mask)| self.words[w] & mask != 0)
    }

    /// Number of bits in the filter.
    pub fn n_bits(&self) -> usize {
        self.words.len() * 64
    }
}

impl Wire for BloomFilter {
    fn encode(&self, buf: &mut BytesMut) {
        // Filters are the dominant request-side payload of a pushed-down
        // semi-join; reserve the exact size instead of growing word by
        // word.
        buf.reserve(self.wire_size());
        self.k.encode(buf);
        put_varint(buf, self.words.len() as u64);
        for w in &self.words {
            buf.put_u64(*w);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let k = u32::decode(buf)?;
        if !(1..=64).contains(&k) {
            return Err(WireError::BadLength(k as u64));
        }
        let n = get_varint(buf)?;
        if n == 0 || n > MAX_WORDS {
            return Err(WireError::BadLength(n));
        }
        if (buf.remaining() as u64) < n * 8 {
            return Err(WireError::UnexpectedEof);
        }
        let words = (0..n).map(|_| buf.get_u64()).collect();
        Ok(BloomFilter { k, words })
    }

    fn wire_size(&self) -> usize {
        self.k.wire_size() + varint_size(self.words.len() as u64) + 8 * self.words.len()
    }
}

/// A pushed-down semi-join filter: which field of a stored item to test
/// ([`Item::field_hash`]) and the Bloom filter over the acceptable join
/// keys. Travels inside storage-layer scan messages; leaves apply it
/// before replying.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemFilter {
    /// Field discriminant, interpreted by the stored item type.
    pub field: u8,
    /// Acceptable join-key hashes.
    pub bloom: BloomFilter,
}

impl ItemFilter {
    /// Whether the item survives the filter. Conservative: items whose
    /// type does not expose the addressed field always pass.
    pub fn accepts<I: Item>(&self, item: &I) -> bool {
        match item.field_hash(self.field) {
            Some(h) => self.bloom.contains(h),
            None => true,
        }
    }

    /// Retains only the surviving items (no-op for `None`) — the shared
    /// leaf-side application path of every backend.
    pub fn retain<I: Item>(filter: &Option<ItemFilter>, items: &mut Vec<I>) {
        if let Some(f) = filter {
            items.retain(|i| f.accepts(i));
        }
    }

    /// Filters **before** materializing: walks borrowed candidates and
    /// clones only the survivors, so a semi-join leaf scan never
    /// allocates for dropped candidates (the borrow-based counterpart
    /// of [`ItemFilter::retain`]).
    pub fn collect_filtered<'a, I: Item + 'a>(
        filter: &Option<ItemFilter>,
        candidates: impl Iterator<Item = &'a I>,
    ) -> Vec<I> {
        match filter {
            Some(f) => candidates.filter(|i| f.accepts(*i)).cloned().collect(),
            None => candidates.cloned().collect(),
        }
    }
}

impl Wire for ItemFilter {
    fn encode(&self, buf: &mut BytesMut) {
        self.field.encode(buf);
        self.bloom.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ItemFilter { field: u8::decode(buf)?, bloom: BloomFilter::decode(buf)? })
    }

    fn wire_size(&self) -> usize {
        1 + self.bloom.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::RawItem;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives_basic() {
        let hashes: Vec<u64> = (0..500u64).map(mix64).collect();
        let f = BloomFilter::from_hashes(hashes.iter().copied(), 0.01);
        for h in &hashes {
            assert!(f.contains(*h), "inserted element must test positive");
        }
    }

    #[test]
    fn false_positive_rate_in_the_ballpark() {
        let f = BloomFilter::from_hashes((0..1000u64).map(mix64), 0.01);
        let fps = (1000..101_000u64).map(mix64).filter(|&h| f.contains(h)).count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.05, "fpr {rate} way above the 1% target");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::from_hashes(std::iter::empty(), 0.01);
        assert!((0..1000u64).map(mix64).all(|h| !f.contains(h)));
    }

    #[test]
    fn sizing_scales_with_capacity() {
        let small = BloomFilter::with_capacity(10, 0.01);
        let big = BloomFilter::with_capacity(10_000, 0.01);
        assert!(big.n_bits() > small.n_bits());
        // ~9.6 bits/element at 1%: 10k elements ≈ 96k bits ≈ 12 KiB.
        assert!(big.wire_size() < 16 * 1024);
    }

    #[test]
    fn wire_roundtrip() {
        let f = BloomFilter::from_hashes((0..64u64).map(mix64), 0.02);
        let b = f.to_bytes();
        assert_eq!(b.len(), f.wire_size());
        assert_eq!(BloomFilter::from_bytes(&b).unwrap(), f);

        let item_f = ItemFilter { field: 2, bloom: f };
        let b = item_f.to_bytes();
        assert_eq!(b.len(), item_f.wire_size());
        assert_eq!(ItemFilter::from_bytes(&b).unwrap(), item_f);
    }

    #[test]
    fn bad_input_rejected() {
        // k = 0.
        let mut buf = BytesMut::new();
        0u32.encode(&mut buf);
        put_varint(&mut buf, 1);
        buf.put_u64(0);
        assert!(BloomFilter::from_bytes(&buf.freeze()).is_err());
        // Zero words.
        let mut buf = BytesMut::new();
        3u32.encode(&mut buf);
        put_varint(&mut buf, 0);
        assert!(BloomFilter::from_bytes(&buf.freeze()).is_err());
        // Truncated words.
        let mut buf = BytesMut::new();
        3u32.encode(&mut buf);
        put_varint(&mut buf, 2);
        buf.put_u64(7);
        assert!(matches!(BloomFilter::from_bytes(&buf.freeze()), Err(WireError::UnexpectedEof)));
    }

    #[test]
    fn item_filter_passes_fieldless_items() {
        // RawItem exposes no fields: the filter must keep everything.
        let f = ItemFilter { field: 0, bloom: BloomFilter::with_capacity(4, 0.01) };
        assert!(f.accepts(&RawItem(99)));
        let mut v = vec![RawItem(1), RawItem(2)];
        ItemFilter::retain(&Some(f), &mut v);
        assert_eq!(v.len(), 2);
    }

    proptest! {
        /// The load-bearing property: a Bloom filter never produces a
        /// false negative, so a filtered scan never drops a true match.
        #[test]
        fn prop_no_false_negatives(
            elems in proptest::collection::vec(any::<u64>(), 0..300),
            fpr in 0.001f64..0.3,
        ) {
            let f = BloomFilter::from_hashes(elems.iter().copied(), fpr);
            for e in &elems {
                prop_assert!(f.contains(*e));
            }
        }

        #[test]
        fn prop_wire_roundtrip(
            elems in proptest::collection::vec(any::<u64>(), 0..128),
            field in 0u8..3,
        ) {
            let f = ItemFilter { field, bloom: BloomFilter::from_hashes(elems, 0.01) };
            let b = f.to_bytes();
            prop_assert_eq!(b.len(), f.wire_size());
            prop_assert_eq!(ItemFilter::from_bytes(&b).unwrap(), f);
        }
    }
}

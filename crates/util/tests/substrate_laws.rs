//! Integration-level laws of the substrate crate: the order-preserving
//! hash family, `BitPath` trie-path algebra, and the wire codec on
//! payload shapes representative of what messages and mutant query
//! plans actually ship.

use std::sync::Arc;

use proptest::prelude::*;
use unistore_util::ophash::{
    decode_f64, decode_i64, encode_f64, encode_i64, encode_str, saturate, truncate, STR_BYTES,
};
use unistore_util::wire::{put_varint, varint_size, Wire, WireError};
use unistore_util::BitPath;

// ---------------------------------------------------------------------
// Order-preserving hash monotonicity
// ---------------------------------------------------------------------

#[test]
fn ophash_str_monotone_on_ascii_samples() {
    // The string encoding promises byte-wise order on the first
    // STR_BYTES bytes; for ASCII that is plain lexicographic order.
    let words =
        ["", "ICDE", "ICDE 2006", "SIGMOD", "VLDB", "a", "aa", "ab", "b", "icde", "zzzzzzzzz"];
    for a in &words {
        for b in &words {
            let pa = &a.as_bytes()[..a.len().min(STR_BYTES)];
            let pb = &b.as_bytes()[..b.len().min(STR_BYTES)];
            assert_eq!(
                encode_str(a).cmp(&encode_str(b)),
                pa.cmp(pb),
                "string encoding must order like its byte prefix: {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn ophash_int_monotone_across_sign() {
    let samples = [i64::MIN, -1_000_000, -2, -1, 0, 1, 2, 42, 1_000_000, i64::MAX];
    for &a in &samples {
        for &b in &samples {
            assert_eq!(a.cmp(&b), encode_i64(a).cmp(&encode_i64(b)), "{a} vs {b}");
        }
        assert_eq!(decode_i64(encode_i64(a)), a);
    }
}

#[test]
fn ophash_float_monotone_and_invertible() {
    let samples = [f64::NEG_INFINITY, -1.0e300, -2.5, -0.0, 0.0, 1.0e-300, 2.5, f64::INFINITY];
    for &a in &samples {
        for &b in &samples {
            if a < b {
                assert!(encode_f64(a) < encode_f64(b), "{a} vs {b}");
            }
        }
        assert_eq!(decode_f64(encode_f64(a)), a, "roundtrip of {a}");
    }
    // -0.0 and +0.0 compare equal as floats but must both roundtrip.
    assert!(decode_f64(encode_f64(-0.0)).is_sign_negative());
}

proptest! {
    #[test]
    fn prop_truncate_saturate_bracket(u: u64, n in 0u8..=64) {
        // truncate/saturate bound a key from below/above within its
        // n-bit prefix class, and are idempotent.
        prop_assert!(truncate(u, n) <= u);
        prop_assert!(saturate(u, n) >= u);
        prop_assert_eq!(truncate(truncate(u, n), n), truncate(u, n));
        prop_assert_eq!(saturate(saturate(u, n), n), saturate(u, n));
    }
}

// ---------------------------------------------------------------------
// BitPath prefix / ordering laws
// ---------------------------------------------------------------------

#[test]
fn bitpath_parse_display_roundtrip() {
    for s in ["0", "1", "01", "0110", "111100001111"] {
        let p = BitPath::parse(s).expect("valid path");
        assert_eq!(p.to_string(), s);
        assert_eq!(p.len() as usize, s.len());
    }
    assert_eq!(BitPath::parse("").unwrap().to_string(), "ε", "the root renders as ε");
    assert!(BitPath::parse("012").is_none(), "non-binary input rejected");
}

#[test]
fn bitpath_child_parent_inverse() {
    let p = BitPath::parse("0110").unwrap();
    for bit in [false, true] {
        let c = p.child(bit);
        assert_eq!(c.len(), p.len() + 1);
        assert_eq!(c.parent(), p);
        assert!(p.is_prefix_of(&c));
        assert_eq!(c.bit(p.len()), bit);
    }
}

#[test]
fn bitpath_root_is_prefix_of_everything() {
    let root = BitPath::ROOT;
    assert!(root.is_empty());
    for s in ["0", "1", "0101"] {
        let p = BitPath::parse(s).unwrap();
        assert!(root.is_prefix_of(&p));
        assert_eq!(root.common_prefix_len(&p), 0);
    }
    assert!(root.is_prefix_of_key(0));
    assert!(root.is_prefix_of_key(u64::MAX));
}

#[test]
fn bitpath_sibling_flips_last_bit() {
    let p = BitPath::parse("010").unwrap();
    let s = p.sibling().expect("non-root has a sibling");
    assert_eq!(s.to_string(), "011");
    assert_eq!(s.sibling().unwrap(), p);
    assert!(BitPath::ROOT.sibling().is_none());
}

#[test]
fn bitpath_key_interval_matches_prefix_test() {
    // A path owns exactly the keys in [min_key, max_key], which is
    // exactly the set is_prefix_of_key accepts.
    for s in ["0", "1", "01", "101", "0011"] {
        let p = BitPath::parse(s).unwrap();
        let (lo, hi) = (p.min_key(), p.max_key());
        assert!(lo <= hi);
        assert!(p.is_prefix_of_key(lo));
        assert!(p.is_prefix_of_key(hi));
        if lo > 0 {
            assert!(!p.is_prefix_of_key(lo - 1));
        }
        if hi < u64::MAX {
            assert!(!p.is_prefix_of_key(hi + 1));
        }
        assert!(p.intersects_range(lo, hi));
        assert!(p.intersects_range(0, u64::MAX));
    }
}

proptest! {
    #[test]
    fn prop_bitpath_prefix_orders_key_intervals(bits: u64, la in 0u8..10, lb in 0u8..10) {
        // Sibling subtrees at any level have disjoint, ordered intervals;
        // nested prefixes have nested intervals.
        let a = BitPath::new(bits, la);
        let b = BitPath::new(bits, lb);
        let (outer, inner) = if la <= lb { (a, b) } else { (b, a) };
        prop_assert!(outer.is_prefix_of(&inner));
        prop_assert!(outer.min_key() <= inner.min_key());
        prop_assert!(inner.max_key() <= outer.max_key());
    }

    #[test]
    fn prop_bitpath_common_prefix_symmetric(x: u64, y: u64, la in 0u8..12, lb in 0u8..12) {
        let a = BitPath::new(x, la);
        let b = BitPath::new(y, lb);
        let l = a.common_prefix_len(&b);
        prop_assert_eq!(l, b.common_prefix_len(&a));
        prop_assert_eq!(a.prefix(l), b.prefix(l));
    }
}

// ---------------------------------------------------------------------
// Wire codec round-trips on representative payload shapes
// ---------------------------------------------------------------------

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = v.to_bytes();
    assert_eq!(bytes.len(), v.wire_size(), "wire_size must match encoding");
    assert_eq!(T::from_bytes(&bytes).expect("decode"), v);
}

#[test]
fn wire_message_header_shape() {
    // (qid, origin, hops, key) — the header every routed storage message
    // carries.
    roundtrip((77_u64, 3_u32, 2_u32, u64::MAX));
}

#[test]
fn wire_triple_shape() {
    // (oid, attr, encoded value) — the triple payload of inserts and
    // lookup replies, including empty and non-ASCII strings.
    roundtrip(vec![
        (String::from("a12"), Arc::<str>::from("confname"), String::from("ICDE 2006")),
        (String::from("p7"), Arc::<str>::from("näme"), String::new()),
    ]);
}

#[test]
fn wire_plan_result_shape() {
    // A mutant plan ships its partial result: schema + rows of tagged
    // values, plus an optional LIMIT.
    let schema: Vec<Arc<str>> = vec![Arc::from("?name"), Arc::from("?age")];
    let rows: Vec<Vec<(u8, i64)>> = vec![vec![(0, 28), (1, -3)], vec![], vec![(2, i64::MIN)]];
    roundtrip((schema, rows, Some(10_u64)));
    roundtrip((Vec::<Arc<str>>::new(), Vec::<Vec<(u8, i64)>>::new(), None::<u64>));
}

#[test]
fn wire_varint_boundaries() {
    for v in [0, 127, 128, 16_383, 16_384, u64::MAX] {
        roundtrip(v);
        assert_eq!(v.wire_size(), varint_size(v));
    }
}

#[test]
fn wire_rejects_garbage_tail_and_truncation() {
    let mut buf = bytes::BytesMut::new();
    put_varint(&mut buf, 300);
    bytes::BufMut::put_u8(&mut buf, 0xAB);
    let b = buf.freeze();
    assert!(matches!(u64::from_bytes(&b), Err(WireError::BadLength(_))));

    let enc = (1_u64, String::from("unistore")).to_bytes();
    for cut in 0..enc.len() {
        let mut short = enc.slice(0..cut);
        assert!(
            <(u64, String)>::decode(&mut short).is_err(),
            "truncation at {cut} must not decode"
        );
    }
}

proptest! {
    #[test]
    fn prop_wire_nested_payload_roundtrip(
        rows in proptest::collection::vec(
            (any::<u64>(), ".{0,12}", proptest::collection::vec(any::<i64>(), 0..4)),
            0..8,
        ),
        limit in proptest::collection::vec(any::<u64>(), 0..2),
    ) {
        let payload = (rows, limit.first().copied());
        let bytes = payload.to_bytes();
        prop_assert_eq!(bytes.len(), payload.wire_size());
        prop_assert_eq!(
            <(Vec<(u64, String, Vec<i64>)>, Option<u64>)>::from_bytes(&bytes).unwrap(),
            payload
        );
    }
}

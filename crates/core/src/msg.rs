//! The UniStore node's message and event types.
//!
//! One envelope wraps both layers of the paper's stack: the storage
//! layer (whatever [`Overlay`](unistore_overlay::Overlay) backend the
//! node runs on) and the query-processing layer riding on it.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use unistore_overlay::OverlayDone;
use unistore_query::cost::StatsDelta;
use unistore_query::{Coverage, Mqp, Relation};
use unistore_store::Triple;
use unistore_util::wire::{Shared, Wire, WireError};
use unistore_util::Key;

/// Everything a UniStore node can receive. Generic over the storage
/// backend's message type.
#[derive(Clone, Debug)]
pub enum UniMsg<M> {
    /// Storage-layer traffic (P-Grid, Chord, …).
    Overlay(M),
    /// Query-layer traffic.
    Query(QueryMsg),
}

/// Query-layer messages.
#[derive(Clone, Debug)]
pub enum QueryMsg {
    /// Execute (the next step of) a mutant plan at the receiving peer.
    Execute {
        /// The travelling plan.
        mqp: Mqp,
    },
    /// Forward a mutant plan toward the peer responsible for `key`
    /// (routed like a lookup — but the payload is the plan itself).
    Route {
        /// Target key (anchor of the plan's next scan).
        key: Key,
        /// The travelling plan.
        mqp: Mqp,
    },
    /// Final result returning to the query origin.
    Result {
        /// Correlation id.
        qid: u64,
        /// The answer relation.
        relation: Relation,
        /// Accumulated hop count (plan travel + deepest scan).
        hops: u32,
        /// Completeness accounting accumulated by the travelling plan.
        coverage: Coverage,
    },
    /// A batch of statistics write events: the in-band dissemination of
    /// the paper's gossiped statistics metadata. Injected by write
    /// origins, then spread by the stats-refresh tick through an
    /// exactly-once binomial broadcast tree (DESIGN.md §"Scale and
    /// churn"); receivers fold it into their cost-model snapshot.
    StatsDelta {
        /// Snapshot generation the delta applies on top of. A full
        /// rebuild bumps the epoch; deltas still buffered or in flight
        /// from the previous epoch describe writes the rebuilt snapshot
        /// already contains and are dropped on receipt instead of being
        /// double-counted.
        epoch: u64,
        /// Broadcast-tree span: how many consecutive peers (the
        /// receiver plus the `span − 1` following it, ring-ordered by
        /// node id) the receiver covers. A receiver with `span > 1`
        /// relays to peers at power-of-two offsets before applying the
        /// delta; `span ≤ 1` is a pure leaf. Driver injections carry 0.
        span: u32,
        /// The write batch. [`Shared`] because every relay of the
        /// broadcast tree forwards the identical delta: the payload is
        /// encoded once and each send clones the buffer, not the
        /// encoding work.
        delta: Shared<StatsDelta>,
    },
    /// Asks the receiving node for a summary of its current statistics
    /// snapshot (observability for the live runtime, where node state
    /// cannot be inspected directly). Answered with [`UniEvent::Stats`].
    StatsProbe {
        /// Correlation id.
        qid: u64,
    },
}

mod tag {
    pub const OVERLAY: u8 = 1;
    pub const EXECUTE: u8 = 2;
    pub const ROUTE: u8 = 3;
    pub const RESULT: u8 = 4;
    pub const STATS_DELTA: u8 = 5;
    pub const STATS_PROBE: u8 = 6;
}

impl<M: Wire> Wire for UniMsg<M> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            UniMsg::Overlay(m) => {
                tag::OVERLAY.encode(buf);
                m.encode(buf);
            }
            UniMsg::Query(QueryMsg::Execute { mqp }) => {
                tag::EXECUTE.encode(buf);
                mqp.encode(buf);
            }
            UniMsg::Query(QueryMsg::Route { key, mqp }) => {
                tag::ROUTE.encode(buf);
                key.encode(buf);
                mqp.encode(buf);
            }
            UniMsg::Query(QueryMsg::Result { qid, relation, hops, coverage }) => {
                tag::RESULT.encode(buf);
                qid.encode(buf);
                relation.encode(buf);
                hops.encode(buf);
                coverage.encode(buf);
            }
            UniMsg::Query(QueryMsg::StatsDelta { epoch, span, delta }) => {
                tag::STATS_DELTA.encode(buf);
                epoch.encode(buf);
                span.encode(buf);
                delta.encode(buf);
            }
            UniMsg::Query(QueryMsg::StatsProbe { qid }) => {
                tag::STATS_PROBE.encode(buf);
                qid.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            tag::OVERLAY => UniMsg::Overlay(M::decode(buf)?),
            tag::EXECUTE => UniMsg::Query(QueryMsg::Execute { mqp: Mqp::decode(buf)? }),
            tag::ROUTE => {
                UniMsg::Query(QueryMsg::Route { key: Wire::decode(buf)?, mqp: Mqp::decode(buf)? })
            }
            tag::RESULT => UniMsg::Query(QueryMsg::Result {
                qid: Wire::decode(buf)?,
                relation: Relation::decode(buf)?,
                hops: Wire::decode(buf)?,
                coverage: Wire::decode(buf)?,
            }),
            tag::STATS_DELTA => UniMsg::Query(QueryMsg::StatsDelta {
                epoch: Wire::decode(buf)?,
                span: Wire::decode(buf)?,
                delta: Wire::decode(buf)?,
            }),
            tag::STATS_PROBE => UniMsg::Query(QueryMsg::StatsProbe { qid: Wire::decode(buf)? }),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Events a UniStore node emits to the driver.
#[derive(Clone, Debug)]
pub enum UniEvent {
    /// A query issued at this node finished.
    QueryDone {
        /// Correlation id.
        qid: u64,
        /// The answer.
        relation: Relation,
        /// Accumulated hops.
        hops: u32,
        /// `false` when the deadline budget ran out before any
        /// acceptable completion (the relation then holds the best
        /// partial result seen, possibly empty).
        ok: bool,
        /// Completeness accounting: how much of the responsible data
        /// the winning plan execution actually reached.
        coverage: Coverage,
    },
    /// A driver-issued raw storage operation finished.
    Storage(OverlayDone<Triple>),
    /// Answer to a [`QueryMsg::StatsProbe`]: a summary of the node's
    /// current statistics snapshot.
    Stats {
        /// Correlation id.
        qid: u64,
        /// Total triples the snapshot believes the system holds (0.0
        /// when the node has no cost model yet).
        total: f64,
        /// Per-attribute triple counts.
        attrs: Vec<(Arc<str>, f64)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unistore_chord::ChordMsg;
    use unistore_pgrid::PGridMsg;
    use unistore_query::MqpNode;
    use unistore_simnet::NodeId;
    use unistore_store::Value;
    use unistore_vql::parse;

    #[test]
    fn envelope_roundtrip() {
        let q = parse("SELECT ?n WHERE {(?a,'name',?n)} LIMIT 2").unwrap();
        let mqp = Mqp::new(
            7,
            3,
            MqpNode::Scan { pattern: q.patterns[0].clone() },
            q.filters.clone(),
            Some(2),
        );
        let rel = Relation { schema: vec![Arc::from("n")], rows: vec![vec![Value::str("alice")]] };
        let msgs: Vec<UniMsg<PGridMsg<Triple>>> = vec![
            UniMsg::Overlay(PGridMsg::Lookup {
                qid: 1,
                key: 2,
                origin: NodeId(3),
                hops: 0,
                filter: None,
            }),
            UniMsg::Query(QueryMsg::Execute { mqp: mqp.clone() }),
            UniMsg::Query(QueryMsg::Route { key: 99, mqp }),
            UniMsg::Query(QueryMsg::Result {
                qid: 7,
                relation: rel,
                hops: 5,
                coverage: {
                    let mut c = Coverage::full();
                    c.record_scan(2, 3);
                    c
                },
            }),
            UniMsg::Query(QueryMsg::StatsDelta {
                epoch: 3,
                span: 5,
                delta: Shared::new({
                    let mut d = StatsDelta::new();
                    d.record_insert(Triple::new("o9", "rating", Value::Int(5)));
                    d.record_delete(Triple::new("o9", "rating", Value::Int(4)));
                    d
                }),
            }),
            UniMsg::Query(QueryMsg::StatsProbe { qid: 11 }),
        ];
        for m in msgs {
            let b = m.to_bytes();
            assert_eq!(b.len(), m.wire_size());
            let back = UniMsg::<PGridMsg<Triple>>::from_bytes(&b).unwrap();
            assert_eq!(format!("{back:?}"), format!("{m:?}"));
        }
    }

    #[test]
    fn envelope_roundtrip_chord_backend() {
        // The same envelope carries any backend's storage messages.
        let m: UniMsg<ChordMsg<Triple>> = UniMsg::Overlay(ChordMsg::Lookup {
            qid: 4,
            ring_key: 77,
            origin: NodeId(1),
            hops: 2,
            filter: None,
        });
        let b = m.to_bytes();
        assert_eq!(b.len(), m.wire_size());
        let back = UniMsg::<ChordMsg<Triple>>::from_bytes(&b).unwrap();
        assert_eq!(format!("{back:?}"), format!("{m:?}"));
    }

    #[test]
    fn bad_tag() {
        let b = Bytes::from_static(&[77]);
        assert!(matches!(UniMsg::<PGridMsg<Triple>>::from_bytes(&b), Err(WireError::BadTag(77))));
    }
}

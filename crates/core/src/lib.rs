//! # UniStore
//!
//! A reproduction of *"UniStore: Querying a DHT-based Universal
//! Storage"* (Karnstedt, Sattler, Richtarsky, Müller, Hauswirth,
//! Schmidt, John — ICDE 2007): a triple store layered over a structured
//! overlay, queried with VQL, processed as mutant query plans with a
//! cost-based adaptive optimizer.
//!
//! The fastest way in is [`UniCluster`]:
//!
//! ```
//! use unistore::{UniCluster, UniConfig};
//! use unistore_store::{Tuple, Value};
//!
//! let mut cluster = UniCluster::build(16, UniConfig::default(), 42);
//! cluster.load(vec![
//!     Tuple::new("a1").with("name", Value::str("alice")).with("age", Value::Int(28)),
//!     Tuple::new("a2").with("name", Value::str("bob")).with("age", Value::Int(45)),
//! ]);
//! let origin = cluster.random_node();
//! let out = cluster.query(origin, "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}").unwrap();
//! assert_eq!(out.relation.len(), 1);
//! ```
//!
//! Layers (paper Fig. 1): `unistore-simnet` (network) →
//! `unistore-overlay` (the DHT abstraction) with two interchangeable
//! backends, `unistore-pgrid` (P-Grid, the paper's native substrate) and
//! `unistore-chord` (ring + order-preserving bucket index) →
//! `unistore-store` (triple storage) → `unistore-vql` + `unistore-query`
//! (VQL, algebra, cost model, mutant plans) → this crate (the node
//! gluing all layers — generic over the backend, see [`backends`] — the
//! cluster driver, and a live threaded runtime).

pub mod backends;
pub mod cluster;
pub mod config;
pub mod live;
pub mod msg;
pub mod node;
pub mod stats;

pub use backends::{chord_config, ChordLiveCluster, ChordOverlay, ChordUniCluster};
pub use cluster::{QueryOutcome, UniCluster};
pub use config::{BackoffPolicy, NodeParams, PlanMode, ScanPref, UniConfig};
pub use msg::{QueryMsg, UniEvent, UniMsg};
pub use node::UniNode;
pub use unistore_query::Coverage;

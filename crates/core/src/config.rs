//! Node and cluster configuration.

use unistore_pgrid::PGridConfig;
use unistore_query::JoinStrategy;
use unistore_simnet::SimTime;

/// Forced preferences for physical-operator selection — how experiment
/// E3 ("identical queries … while influencing the integrated optimizer")
/// turns the optimizer off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanPref {
    /// Prefer parallel (shower) range scans.
    ParallelRange,
    /// Prefer sequential (leaf walk) range scans.
    SequentialRange,
    /// Prefer the q-gram index for similarity predicates.
    QGram,
    /// Prefer naive evaluation (full attribute sweep) for similarity.
    NaiveSimilarity,
}

/// Planner behaviour of a node.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanMode {
    /// Forced scan preference (None = cost-based).
    pub scan_pref: Option<ScanPref>,
    /// Forced join strategy (None = cost-based).
    pub join_pref: Option<JoinStrategy>,
    /// Whether plans may travel to the data (mutant forwarding). When
    /// `false` every step executes from the current peer.
    pub no_forward: bool,
}

/// Cluster-level configuration.
#[derive(Clone, Debug)]
pub struct UniConfig {
    /// The storage-layer overlay configuration.
    pub pgrid: PGridConfig,
    /// Maintain the q-gram index on insert (paper ref [6]).
    pub with_qgrams: bool,
    /// Build the trie adapted to the data sample (P-Grid's balanced
    /// converged state); `false` builds the uniform strawman.
    pub balanced: bool,
    /// Time the origin waits for a query result.
    pub query_timeout: SimTime,
    /// Default planner behaviour for all nodes.
    pub plan_mode: PlanMode,
}

impl Default for UniConfig {
    fn default() -> Self {
        UniConfig {
            pgrid: PGridConfig {
                // Periodic traffic off by default so experiment cost
                // attribution is exact; churn experiments re-enable it.
                maintenance_interval: SimTime::from_secs(1_000_000_000),
                anti_entropy_interval: SimTime::from_secs(1_000_000_000),
                ..PGridConfig::default()
            },
            with_qgrams: true,
            balanced: true,
            query_timeout: SimTime::from_secs(120),
            plan_mode: PlanMode::default(),
        }
    }
}

impl UniConfig {
    /// Enables periodic maintenance and anti-entropy (churn/update
    /// experiments).
    pub fn with_maintenance(mut self, maintenance: SimTime, anti_entropy: SimTime) -> Self {
        self.pgrid.maintenance_interval = maintenance;
        self.pgrid.anti_entropy_interval = anti_entropy;
        self
    }

    /// Sets the replication factor.
    pub fn with_replication(mut self, r: usize) -> Self {
        self.pgrid = self.pgrid.with_replication(r);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_balanced() {
        let c = UniConfig::default();
        assert!(c.balanced);
        assert!(c.with_qgrams);
        assert!(c.pgrid.maintenance_interval > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn builders_compose() {
        let c = UniConfig::default()
            .with_replication(3)
            .with_maintenance(SimTime::from_secs(30), SimTime::from_secs(60));
        assert_eq!(c.pgrid.replication, 3);
        assert_eq!(c.pgrid.maintenance_interval, SimTime::from_secs(30));
    }
}

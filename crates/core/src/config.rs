//! Node and cluster configuration.

use unistore_pgrid::PGridConfig;
use unistore_query::JoinStrategy;
use unistore_simnet::SimTime;

/// Forced preferences for physical-operator selection — how experiment
/// E3 ("identical queries … while influencing the integrated optimizer")
/// turns the optimizer off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanPref {
    /// Prefer parallel (shower) range scans.
    ParallelRange,
    /// Prefer sequential (leaf walk) range scans.
    SequentialRange,
    /// Prefer the q-gram index for similarity predicates.
    QGram,
    /// Prefer naive evaluation (full attribute sweep) for similarity.
    NaiveSimilarity,
}

/// Planner behaviour of a node.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanMode {
    /// Forced scan preference (None = cost-based).
    pub scan_pref: Option<ScanPref>,
    /// Forced join strategy (None = cost-based). Forcing
    /// [`JoinStrategy::SemiJoin`] turns the Bloom-filter pushdown on
    /// wherever a join site admits it.
    pub join_pref: Option<JoinStrategy>,
    /// Whether plans may travel to the data (mutant forwarding). When
    /// `false` every step executes from the current peer.
    pub no_forward: bool,
    /// Disables the Bloom-filtered semi-join pushdown in cost-based
    /// planning (experiments compare shipped bytes with and without it).
    pub no_semi_join: bool,
}

/// Retry and hedging policy for origin-side query re-dispatch
/// (DESIGN.md §"Failure semantics").
///
/// The fixed-timeout/fixed-count retry loop of earlier revisions is
/// generalized into a *deadline budget*: the origin owns a total budget
/// of `query_timeout × (query_retries + 1)` and spends it on attempts
/// whose individual timeouts adapt to observed completion times.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// Per-attempt timeout = `rtt_multiplier × p99(observed completions)`
    /// once enough samples exist (falls back to the configured
    /// `query_timeout` until then).
    pub rtt_multiplier: f64,
    /// Floor for the adaptive per-attempt timeout, so a burst of fast
    /// completions cannot drive the timeout below sanity.
    pub min_attempt: SimTime,
    /// Enables hedged dispatch: when an attempt outlives
    /// `hedge_multiplier × p99`, a second copy of the plan is shipped
    /// and the first completion wins.
    pub hedging: bool,
    /// Delay factor (on the observed p99) before the hedge fires.
    pub hedge_multiplier: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            rtt_multiplier: 4.0,
            min_attempt: SimTime::from_millis(500),
            hedging: true,
            hedge_multiplier: 2.0,
        }
    }
}

/// The query-layer knobs a [`crate::UniNode`] needs, independent of the
/// storage backend's configuration — one view shared by the simulated
/// cluster driver and the live threaded runtime.
#[derive(Clone, Copy, Debug)]
pub struct NodeParams {
    /// Time the origin waits for a query result.
    pub query_timeout: SimTime,
    /// Origin-side query re-dispatches before reporting failure.
    pub query_retries: u32,
    /// Planner behaviour.
    pub plan_mode: PlanMode,
    /// Statistics-dissemination tick: how often a node flushes buffered
    /// [`unistore_query::cost::StatsDelta`]s to its peers.
    pub stats_refresh: SimTime,
    /// Capacity of the node-local (attr, value) result cache; `0`
    /// disables caching.
    pub result_cache: usize,
    /// Minimum acceptable [`unistore_query::Coverage`] fraction for a
    /// completion to be delivered as `ok` (0.0 = best-effort).
    pub min_coverage: f64,
    /// Retry / hedging policy.
    pub backoff: BackoffPolicy,
    /// Cap on attempt aliases outstanding at one origin before
    /// re-dispatches defer and hedges are skipped (the retry-storm
    /// guard — see [`UniConfig::attempt_budget`]).
    pub attempt_budget: usize,
    /// Seed for the node's private jitter stream (drivers set this to
    /// the cluster seed; the default 0 keeps params deterministic).
    pub seed: u64,
}

/// Cluster-level configuration, generic over the storage backend's own
/// configuration (`PGridConfig` by default; `ChordConfig` for the ring
/// backend — see [`crate::backends`]).
#[derive(Clone, Debug)]
pub struct UniConfig<C = PGridConfig> {
    /// The storage-layer overlay configuration.
    pub overlay: C,
    /// Maintain the q-gram index on insert (paper ref [6]).
    pub with_qgrams: bool,
    /// Build the topology adapted to the data sample where the backend
    /// supports it (P-Grid's balanced converged state); `false` builds
    /// the uniform strawman. Backends with order-destroying hashing
    /// ignore this.
    pub balanced: bool,
    /// Time the origin waits for a query result.
    pub query_timeout: SimTime,
    /// How many times the origin re-dispatches a query whose deadline
    /// expired before reporting failure. A forwarded mutant plan that
    /// lands on a crashed peer is lost wholesale; re-dispatching routes
    /// through a different reference and usually survives.
    pub query_retries: u32,
    /// Default planner behaviour for all nodes.
    pub plan_mode: PlanMode,
    /// Statistics-dissemination cadence: every node flushes the stat
    /// deltas it buffered to its peers on this maintenance tick, so
    /// long-running nodes converge to fresh statistics without restart.
    /// The staleness a remote plan can observe is bounded by one tick
    /// plus one hop (DESIGN.md §"Statistics distribution").
    pub stats_refresh: SimTime,
    /// Route writes as coalesced [`unistore_overlay::OpBatch`]es on
    /// backends that support them (`Overlay::BATCHES_OPS`). When
    /// `false`, every write expands into the per-op message fan-out —
    /// the uncoalesced baseline the ingest bench compares against
    /// (DESIGN.md §"Batched write pipeline").
    pub batch_writes: bool,
    /// Bound on queries admitted into the network at once by the
    /// pipelined drivers; submissions beyond the window queue at the
    /// driver until a completion frees a slot (DESIGN.md §"Concurrent
    /// query pipeline").
    pub max_in_flight: usize,
    /// Capacity (in distinct (attr, value) keys) of each node's local
    /// result cache for exact-match lookups. `0` — the default —
    /// disables the cache; benches and read-heavy deployments opt in.
    /// Entries are invalidated by the epoch-stamped `StatsDelta`
    /// stream, so a cached row is stale for at most one stats tick
    /// plus one hop.
    pub result_cache: usize,
    /// Minimum acceptable coverage fraction for a query completion to
    /// count as `ok`. `0.0` — the default — is best-effort: whatever
    /// the plan reached is delivered, with the shortfall reported in
    /// [`unistore_query::Coverage`]. `1.0` is fail-fast: any shortfall
    /// triggers a retry, and the final result is only `ok` when every
    /// responsible leaf answered.
    pub min_coverage: f64,
    /// Origin-side retry / hedging policy (DESIGN.md §"Failure
    /// semantics").
    pub backoff: BackoffPolicy,
    /// Cap on attempt aliases (initial dispatches + retries + hedges
    /// not yet resolved) outstanding at one origin node. At the cap,
    /// deadline-driven re-dispatches defer (the timer re-arms, the
    /// stranded attempts stay live) and hedges are skipped — the guard
    /// that keeps a correlated mass failure from amplifying a whole
    /// admission window into a retry storm (DESIGN.md §"Scale and
    /// churn"). The default 64 is twice the default admission window,
    /// so ordinary retries and hedges never hit it.
    pub attempt_budget: usize,
}

impl Default for UniConfig<PGridConfig> {
    fn default() -> Self {
        UniConfig::for_overlay(PGridConfig {
            // Periodic traffic off by default so experiment cost
            // attribution is exact; churn experiments re-enable it.
            maintenance_interval: SimTime::from_secs(1_000_000_000),
            anti_entropy_interval: SimTime::from_secs(1_000_000_000),
            ..PGridConfig::default()
        })
    }
}

impl<C> UniConfig<C> {
    /// Wraps a backend configuration with the shared cluster-level
    /// defaults — the single source of truth for every backend, so
    /// cross-backend comparisons run under identical query-layer
    /// settings.
    pub fn for_overlay(overlay: C) -> Self {
        UniConfig {
            overlay,
            with_qgrams: true,
            balanced: true,
            query_timeout: SimTime::from_secs(120),
            query_retries: 2,
            plan_mode: PlanMode::default(),
            stats_refresh: SimTime::from_secs(10),
            batch_writes: true,
            max_in_flight: 32,
            result_cache: 0,
            min_coverage: 0.0,
            backoff: BackoffPolicy::default(),
            attempt_budget: 64,
        }
    }

    /// Sets the minimum acceptable coverage fraction (0.0 = best-effort,
    /// 1.0 = fail-fast; see [`UniConfig::min_coverage`]).
    ///
    /// # Panics
    /// Panics unless `0.0 <= f <= 1.0`.
    pub fn with_min_coverage(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "coverage fraction must lie in [0, 1]");
        self.min_coverage = f;
        self
    }

    /// Enables or disables hedged query dispatch (on by default).
    pub fn with_hedging(mut self, enabled: bool) -> Self {
        self.backoff.hedging = enabled;
        self
    }

    /// Replaces the origin-side retry / hedging policy wholesale.
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Sets the per-origin attempt budget (the retry-storm guard; see
    /// [`UniConfig::attempt_budget`]).
    ///
    /// # Panics
    /// Panics if `n == 0` — a zero budget would suppress even the
    /// first retry of a lone query.
    pub fn with_attempt_budget(mut self, n: usize) -> Self {
        assert!(n > 0, "attempt budget must admit at least one attempt");
        self.attempt_budget = n;
        self
    }

    /// Sets the pipelined drivers' admission window (how many queries
    /// may be in flight in the network at once before submissions
    /// queue at the driver).
    ///
    /// # Panics
    /// Panics if `n == 0` — a zero-width window would never admit.
    pub fn with_max_in_flight(mut self, n: usize) -> Self {
        assert!(n > 0, "admission window must admit at least one query");
        self.max_in_flight = n;
        self
    }

    /// Sets the capacity of the per-node (attr, value) result cache
    /// (`0` disables it — the default).
    pub fn with_result_cache(mut self, capacity: usize) -> Self {
        self.result_cache = capacity;
        self
    }

    /// Sets the number of origin-side query re-dispatches.
    pub fn with_query_retries(mut self, retries: u32) -> Self {
        self.query_retries = retries;
        self
    }

    /// Sets the statistics-dissemination cadence (the staleness bound
    /// remote peers can observe). Use a very large interval to
    /// effectively disable in-band dissemination for experiments that
    /// need exact per-operation cost attribution.
    pub fn with_stats_refresh(mut self, interval: SimTime) -> Self {
        self.stats_refresh = interval;
        self
    }

    /// Enables or disables the batched write pipeline (on by default;
    /// the ingest bench flips it off to measure the per-op baseline).
    pub fn with_batch_writes(mut self, enabled: bool) -> Self {
        self.batch_writes = enabled;
        self
    }

    /// The query-layer knobs a node needs, backend-erased.
    pub fn node_params(&self) -> NodeParams {
        NodeParams {
            query_timeout: self.query_timeout,
            query_retries: self.query_retries,
            plan_mode: self.plan_mode,
            stats_refresh: self.stats_refresh,
            result_cache: self.result_cache,
            min_coverage: self.min_coverage,
            backoff: self.backoff,
            attempt_budget: self.attempt_budget,
            seed: 0,
        }
    }

    /// Forces the Bloom-filtered semi-join pushdown on or off for every
    /// node (on by default; experiments flip it to measure the shipped
    /// bytes it saves).
    pub fn with_semi_join(mut self, enabled: bool) -> Self {
        self.plan_mode.no_semi_join = !enabled;
        self
    }
}

impl UniConfig<PGridConfig> {
    /// Enables periodic maintenance and anti-entropy (churn/update
    /// experiments).
    pub fn with_maintenance(mut self, maintenance: SimTime, anti_entropy: SimTime) -> Self {
        self.overlay.maintenance_interval = maintenance;
        self.overlay.anti_entropy_interval = anti_entropy;
        self
    }

    /// Sets the replication factor.
    pub fn with_replication(mut self, r: usize) -> Self {
        self.overlay = self.overlay.with_replication(r);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_balanced() {
        let c = UniConfig::default();
        assert!(c.balanced);
        assert!(c.with_qgrams);
        assert_eq!(c.query_retries, 2);
        assert!(c.overlay.maintenance_interval > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn builders_compose() {
        let c = UniConfig::default()
            .with_replication(3)
            .with_maintenance(SimTime::from_secs(30), SimTime::from_secs(60))
            .with_query_retries(5);
        assert_eq!(c.overlay.replication, 3);
        assert_eq!(c.overlay.maintenance_interval, SimTime::from_secs(30));
        assert_eq!(c.query_retries, 5);
    }

    #[test]
    fn stats_refresh_knob() {
        let c = UniConfig::default();
        assert_eq!(c.stats_refresh, SimTime::from_secs(10), "dissemination on by default");
        let c = c.with_stats_refresh(SimTime::from_millis(50));
        assert_eq!(c.stats_refresh, SimTime::from_millis(50));
        assert_eq!(c.node_params().stats_refresh, SimTime::from_millis(50));
    }

    #[test]
    fn batch_writes_knob() {
        let c = UniConfig::default();
        assert!(c.batch_writes, "batched writes on by default");
        let c = c.with_batch_writes(false);
        assert!(!c.batch_writes);
    }

    #[test]
    fn pipeline_knobs() {
        let c = UniConfig::default();
        assert_eq!(c.max_in_flight, 32, "admission window defaults to 32");
        assert_eq!(c.result_cache, 0, "result cache off by default");
        let c = c.with_max_in_flight(8).with_result_cache(64);
        assert_eq!(c.max_in_flight, 8);
        assert_eq!(c.result_cache, 64);
        assert_eq!(c.node_params().result_cache, 64);
    }

    #[test]
    #[should_panic(expected = "admission window")]
    fn zero_admission_window_rejected() {
        let _ = UniConfig::default().with_max_in_flight(0);
    }

    #[test]
    fn failure_masking_knobs() {
        let c = UniConfig::default();
        assert_eq!(c.min_coverage, 0.0, "best-effort by default");
        assert!(c.backoff.hedging, "hedging on by default");
        let c = c.with_min_coverage(0.9).with_hedging(false);
        assert_eq!(c.min_coverage, 0.9);
        assert!(!c.backoff.hedging);
        let p = c.node_params();
        assert_eq!(p.min_coverage, 0.9);
        assert!(!p.backoff.hedging);
        assert_eq!(p.seed, 0, "drivers override the seed");
    }

    #[test]
    fn attempt_budget_knob() {
        let c = UniConfig::default();
        assert_eq!(c.attempt_budget, 64, "budget defaults to 2× admission window");
        let c = c.with_attempt_budget(8);
        assert_eq!(c.attempt_budget, 8);
        assert_eq!(c.node_params().attempt_budget, 8);
    }

    #[test]
    #[should_panic(expected = "attempt budget")]
    fn zero_attempt_budget_rejected() {
        let _ = UniConfig::default().with_attempt_budget(0);
    }

    #[test]
    #[should_panic(expected = "coverage fraction")]
    fn out_of_range_coverage_rejected() {
        let _ = UniConfig::default().with_min_coverage(1.5);
    }

    #[test]
    fn semi_join_knob_toggles_plan_mode() {
        let c = UniConfig::default();
        assert!(!c.plan_mode.no_semi_join, "pushdown on by default");
        let c = c.with_semi_join(false);
        assert!(c.plan_mode.no_semi_join);
        let c = c.with_semi_join(true);
        assert!(!c.plan_mode.no_semi_join);
    }
}

//! Live threaded runtime.
//!
//! The paper stresses that UniStore "is not intended to run simulations,
//! rather … a platform intended for usage" (§1). The protocol code in
//! this repository is runtime-agnostic (everything is a
//! [`NodeBehavior`]); this module runs the *same* node implementation on
//! real OS threads with real channels and wall-clock timers, proving the
//! simulator is an execution harness, not a semantic crutch. Like the
//! simulated driver it is generic over the [`Overlay`] backend.
//!
//! Each node is one thread; `crossbeam` channels are the links; timers
//! are a local deadline heap served between receives. The driver
//! injects queries exactly like the simulated cluster does.

// This IS the sanctioned wall-clock module (see clippy.toml): the live
// runtime exists precisely to run the protocol against real time.
#![allow(clippy::disallowed_methods)]

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use unistore_overlay::{Overlay, OverlayTopology};
use unistore_pgrid::PGridPeer;
use unistore_query::{Logical, Mqp, MqpNode, Relation, StatsDelta};
use unistore_simnet::{Effects, NodeBehavior, NodeId, SimTime, Timer};
use unistore_store::index::TripleKeys;
use unistore_store::{Triple, Tuple};
use unistore_util::wire::Shared;
use unistore_util::{FxHashMap, FxHashSet, Key};
use unistore_vql::{analyze, parse, VqlError};

use crate::config::UniConfig;
use crate::msg::{QueryMsg, UniEvent, UniMsg};
use crate::node::UniNode;
use crate::stats::build_cost_model;

type Inbox<M> = (NodeId, UniMsg<M>);

/// A node's statistics summary as reported by
/// [`LiveCluster::stats_probe`]: total triples plus per-attribute
/// counts.
pub type StatsSummary = (f64, Vec<(Arc<str>, f64)>);

/// A running, threaded UniStore deployment over an [`Overlay`] backend
/// (P-Grid unless specified otherwise).
pub struct LiveCluster<O: Overlay<Item = Triple> = PGridPeer<Triple>> {
    senders: Vec<Sender<Inbox<O::Msg>>>,
    outputs: Receiver<(NodeId, UniEvent)>,
    handles: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    next_qid: u64,
    n: usize,
    /// Overlay configuration, kept for routed runtime writes.
    ocfg: O::Config,
    with_qgrams: bool,
    /// Whether runtime writes ride the coalesced batch pipeline.
    batch_writes: bool,
    /// Admission window of the pipelined query API
    /// ([`UniConfig::max_in_flight`]).
    max_in_flight: usize,
    /// Events received while some other waiter held the channel,
    /// buffered by qid for re-delivery — never discarded.
    buffered: FxHashMap<u64, UniEvent>,
    /// qids a driver operation still awaits. Events for any other qid
    /// are stale (withdrawn waiter, superseded attempt) and dropped.
    expected: FxHashSet<u64>,
    /// Submitted pipelined queries in admission order (backpressure
    /// waits on the oldest).
    in_flight: std::collections::VecDeque<u64>,
    /// Outstanding pipelined queries: qid → wall-clock deadline.
    deadlines: FxHashMap<u64, Instant>,
}

/// The qid an event answers.
fn event_qid(ev: &UniEvent) -> u64 {
    match ev {
        UniEvent::QueryDone { qid, .. } | UniEvent::Stats { qid, .. } => *qid,
        UniEvent::Storage(d) => d.qid(),
    }
}

impl LiveCluster<PGridPeer<Triple>> {
    /// Builds the P-Grid overlay, loads the tuples, distributes
    /// statistics and starts one thread per node.
    pub fn start(n_peers: usize, cfg: UniConfig, tuples: Vec<Tuple>, seed: u64) -> Self {
        Self::start_overlay(n_peers, cfg, tuples, seed)
    }
}

impl<O: Overlay<Item = Triple>> LiveCluster<O> {
    /// Builds the overlay, loads the tuples, distributes statistics and
    /// starts one thread per node.
    pub fn start_overlay(
        n_peers: usize,
        cfg: UniConfig<O::Config>,
        tuples: Vec<Tuple>,
        seed: u64,
    ) -> Self {
        let triples: Vec<Triple> = tuples.iter().flat_map(Tuple::to_triples).collect();
        let sample: Vec<Key> =
            triples.iter().flat_map(|t| TripleKeys::derive(t, cfg.with_qgrams).primary()).collect();
        let adapt = cfg.balanced && O::ADAPTS_TO_SAMPLE && !sample.is_empty();
        let topology =
            O::plan(n_peers, &cfg.overlay, if adapt { Some(&sample) } else { None }, seed);
        let model = build_cost_model(
            &triples,
            n_peers,
            topology.partitions(),
            topology.replication(),
            SimTime::from_micros(200), // LAN-ish expectation for the model
        );

        let mut params = cfg.node_params();
        params.seed = seed;
        let mut nodes: Vec<UniNode<O>> = (0..n_peers)
            .map(|peer| {
                let overlay = O::spawn(&topology, peer, &cfg.overlay, seed);
                let mut node = UniNode::new(overlay, n_peers, &params);
                node.cost = Some(model.clone());
                node
            })
            .collect();

        // Driver-side preload, as in the simulated cluster.
        for t in &triples {
            for key in TripleKeys::derive(t, cfg.with_qgrams).all() {
                for p in topology.holders(key) {
                    nodes[p].overlay.preload(key, t.clone(), 0);
                }
            }
        }

        let (out_tx, outputs) = bounded::<(NodeId, UniEvent)>(1024);
        type Channel<M> = (Sender<Inbox<M>>, Receiver<Inbox<M>>);
        let channels: Vec<Channel<O::Msg>> =
            (0..n_peers).map(|_| bounded::<Inbox<O::Msg>>(1024)).collect();
        let senders: Vec<Sender<Inbox<O::Msg>>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::with_capacity(n_peers);
        for (node, (_tx, rx)) in nodes.into_iter().zip(channels) {
            let peers = senders.clone();
            let out = out_tx.clone();
            let stop = shutdown.clone();
            handles.push(std::thread::spawn(move || {
                node_loop(node, rx, peers, out, stop);
            }));
        }
        LiveCluster {
            senders,
            outputs,
            handles,
            shutdown,
            next_qid: 1,
            n: n_peers,
            ocfg: cfg.overlay.clone(),
            with_qgrams: cfg.with_qgrams,
            batch_writes: cfg.batch_writes,
            max_in_flight: cfg.max_in_flight,
            buffered: FxHashMap::default(),
            expected: FxHashSet::default(),
            in_flight: std::collections::VecDeque::new(),
            deadlines: FxHashMap::default(),
        }
    }

    /// Waits until the event carrying `qid` surfaces or `deadline`
    /// passes. Events for other *expected* qids are buffered for their
    /// waiters; events nobody expects are stale and dropped. A deadline
    /// that has already expired returns a clean `None` immediately —
    /// no zero-duration receive loop.
    fn recv_event(&mut self, qid: u64, deadline: Instant) -> Option<UniEvent> {
        if let Some(ev) = self.buffered.remove(&qid) {
            self.expected.remove(&qid);
            return Some(ev);
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.expected.remove(&qid);
                return None;
            }
            match self.outputs.recv_timeout(deadline - now) {
                Ok((_, ev)) => {
                    let got = event_qid(&ev);
                    if got == qid {
                        self.expected.remove(&qid);
                        return Some(ev);
                    }
                    if self.expected.contains(&got) {
                        // Keep the first completion; a late duplicate
                        // from a superseded attempt changes nothing.
                        self.buffered.entry(got).or_insert(ev);
                    }
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    self.expected.remove(&qid);
                    return None;
                }
            }
        }
    }

    /// Non-blocking drain of the event channel into the buffer.
    fn drain_ready(&mut self) {
        while let Ok((_, ev)) = self.outputs.try_recv() {
            let got = event_qid(&ev);
            if self.expected.contains(&got) {
                self.buffered.entry(got).or_insert(ev);
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no nodes run (never, for a started cluster).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Parses and submits a VQL query from the given node into the
    /// pipelined execution window; returns the qid to wait on with
    /// [`Self::query_wait`]. `timeout` is the per-query wall-clock
    /// deadline budget, counted from submission. When
    /// [`UniConfig::max_in_flight`] queries are already outstanding,
    /// the call blocks until the oldest one resolves (backpressure).
    pub fn query_submit(
        &mut self,
        origin: NodeId,
        src: &str,
        timeout: Duration,
    ) -> Result<u64, VqlError> {
        let analyzed = analyze(parse(src)?)?;
        let logical = Logical::from_query(&analyzed);
        let qid = self.next_qid;
        self.next_qid += 1;
        let mqp = Mqp::new(
            qid,
            origin.0,
            MqpNode::from_logical(&logical),
            analyzed.query.filters.clone(),
            analyzed.query.limit.map(|n| n as u64),
        );
        // Backpressure: hold the submission until the window has room,
        // servicing the oldest in-flight query meanwhile.
        while self.in_flight.len() >= self.max_in_flight {
            let oldest = self.in_flight[0];
            match self.buffered.contains_key(&oldest) {
                // Completed but unclaimed: its slot is free.
                true => {}
                false => {
                    let dl = self.deadlines[&oldest];
                    if let Some(ev) = self.recv_event(oldest, dl) {
                        // Keep the completion for its waiter.
                        self.expected.insert(oldest);
                        self.buffered.insert(oldest, ev);
                    }
                    // On None the oldest timed out; its waiter will
                    // observe the expired deadline. Either way the
                    // window slot is released.
                }
            }
            self.in_flight.pop_front();
        }
        self.senders[origin.index()]
            .send((NodeId::EXTERNAL, UniMsg::Query(QueryMsg::Execute { mqp })))
            .expect("node thread alive");
        self.expected.insert(qid);
        self.deadlines.insert(qid, Instant::now() + timeout);
        self.in_flight.push_back(qid);
        Ok(qid)
    }

    /// Non-blocking completion check for a submitted query: `None`
    /// while still running; `Some(outcome)` once finished, where the
    /// outcome is `Some(relation)` on success and `None` on failure.
    pub fn query_poll(&mut self, qid: u64) -> Option<Option<Relation>> {
        self.drain_ready();
        let ev = self.buffered.remove(&qid)?;
        self.expected.remove(&qid);
        self.deadlines.remove(&qid);
        self.in_flight.retain(|q| *q != qid);
        match ev {
            UniEvent::QueryDone { relation, ok, .. } => Some(ok.then_some(relation)),
            _ => Some(None),
        }
    }

    /// Waits for a submitted query until its deadline budget expires:
    /// `Some(relation)` on success, `None` on failure or timeout.
    /// Events for other in-flight queries arriving meanwhile are
    /// buffered for their own waiters, never discarded.
    pub fn query_wait(&mut self, qid: u64) -> Option<Relation> {
        let deadline = self.deadlines.remove(&qid)?;
        self.in_flight.retain(|q| *q != qid);
        match self.recv_event(qid, deadline) {
            Some(UniEvent::QueryDone { relation, ok, .. }) => ok.then_some(relation),
            _ => None,
        }
    }

    /// Waits for every outstanding pipelined query and returns the
    /// outcomes in submission (qid) order.
    pub fn query_wait_all(&mut self) -> Vec<(u64, Option<Relation>)> {
        let mut qids: Vec<u64> = self.deadlines.keys().copied().collect();
        qids.sort_unstable();
        qids.into_iter().map(|q| (q, self.query_wait(q))).collect()
    }

    /// Runs a VQL query from the given node, waiting up to `timeout`
    /// wall-clock time for the answer — submit-and-wait over the
    /// pipelined path.
    pub fn query(
        &mut self,
        origin: NodeId,
        src: &str,
        timeout: Duration,
    ) -> Result<Option<Relation>, VqlError> {
        let qid = self.query_submit(origin, src, timeout)?;
        Ok(self.query_wait(qid))
    }

    /// Inserts many tuples through the routed protocol path at runtime
    /// as **one batched write** (coalesced per-hop
    /// [`unistore_overlay::OpBatch`] messages on batching backends),
    /// waiting up to `timeout` wall-clock time
    /// for the aggregated acks. After the acks, a single statistics
    /// delta for the whole batch is handed to the origin node in-band:
    /// the origin folds it into its cost model immediately and
    /// disseminates it to the other nodes on its next stats-refresh tick
    /// — no restart, no rescan.
    pub fn insert_batch(&mut self, origin: NodeId, tuples: &[Tuple], timeout: Duration) -> bool {
        let ocfg = self.ocfg.clone();
        let (batch, triples) = crate::cluster::build_insert_batch(tuples, self.with_qgrams);
        let batched = self.batch_writes && O::BATCHES_OPS;
        let mut next_qid = || {
            let q = self.next_qid;
            self.next_qid += 1;
            q
        };
        let msgs =
            crate::cluster::batch_write_msgs::<O>(&ocfg, batched, &mut next_qid, &batch, origin);
        let mut pending: Vec<u64> = Vec::with_capacity(msgs.len());
        for (qid, msg) in msgs {
            pending.push(qid);
            self.expected.insert(qid);
            self.senders[origin.index()]
                .send((NodeId::EXTERNAL, UniMsg::Overlay(msg)))
                .expect("node thread alive");
        }
        let deadline = Instant::now() + timeout;
        let mut ok = true;
        for (i, &qid) in pending.iter().enumerate() {
            match self.recv_event(qid, deadline) {
                Some(UniEvent::Storage(done)) => ok &= done.ok(),
                _ => {
                    // Timed out: withdraw the remaining waits so their
                    // late acks are dropped, not hoarded.
                    for q in &pending[i..] {
                        self.expected.remove(q);
                    }
                    return false;
                }
            }
        }
        let mut delta = StatsDelta::new();
        for t in triples {
            delta.record_insert(t);
        }
        // The live runtime never rebuilds snapshots, so every delta
        // rides the initial epoch.
        self.senders[origin.index()]
            .send((
                NodeId::EXTERNAL,
                UniMsg::Query(QueryMsg::StatsDelta {
                    epoch: 0,
                    span: 0,
                    delta: Shared::new(delta),
                }),
            ))
            .expect("node thread alive");
        ok
    }

    /// Inserts one tuple through the routed protocol path at runtime — a
    /// thin wrapper over [`Self::insert_batch`].
    pub fn insert_tuple(&mut self, origin: NodeId, tuple: &Tuple, timeout: Duration) -> bool {
        self.insert_batch(origin, std::slice::from_ref(tuple), timeout)
    }

    /// Asks a node for a summary of its current statistics snapshot:
    /// `(total, per-attribute counts)`. Observability for staleness
    /// tests — the only way to see inside a running node.
    pub fn stats_probe(&mut self, node: NodeId, timeout: Duration) -> Option<StatsSummary> {
        let qid = self.next_qid;
        self.next_qid += 1;
        self.expected.insert(qid);
        self.senders[node.index()]
            .send((NodeId::EXTERNAL, UniMsg::Query(QueryMsg::StatsProbe { qid })))
            .expect("node thread alive");
        match self.recv_event(qid, Instant::now() + timeout) {
            Some(UniEvent::Stats { total, attrs, .. }) => Some((total, attrs)),
            _ => None,
        }
    }

    /// Stops all node threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One node's event loop: receive, fire due timers, apply effects.
fn node_loop<O: Overlay<Item = Triple>>(
    mut node: UniNode<O>,
    rx: Receiver<Inbox<O::Msg>>,
    peers: Vec<Sender<Inbox<O::Msg>>>,
    out: Sender<(NodeId, UniEvent)>,
    stop: Arc<AtomicBool>,
) {
    let start = Instant::now();
    let id = node.id();
    let now = |s: Instant| SimTime::from_micros(s.elapsed().as_micros() as u64);
    // (deadline, timer), min-heap by deadline.
    let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u32, u64)>> = BinaryHeap::new();

    let mut fx: Effects<UniMsg<O::Msg>, UniEvent> = Effects::new();
    node.on_start(now(start), &mut fx);
    apply(id, &mut fx, &peers, &out, &mut timers);

    while !stop.load(Ordering::SeqCst) {
        let wait = timers
            .peek()
            .map(|std::cmp::Reverse((at, _, _))| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(25))
            .min(Duration::from_millis(25));
        match rx.recv_timeout(wait) {
            Ok((from, msg)) => {
                node.on_message(now(start), from, msg, &mut fx);
                apply(id, &mut fx, &peers, &out, &mut timers);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Fire due timers.
        while let Some(std::cmp::Reverse((at, kind, payload))) = timers.peek().copied() {
            if at > Instant::now() {
                break;
            }
            timers.pop();
            node.on_timer(now(start), Timer::new(kind, payload), &mut fx);
            apply(id, &mut fx, &peers, &out, &mut timers);
        }
    }
}

fn apply<M>(
    id: NodeId,
    fx: &mut Effects<UniMsg<M>, UniEvent>,
    peers: &[Sender<Inbox<M>>],
    out: &Sender<(NodeId, UniEvent)>,
    timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u32, u64)>>,
) {
    let (sends, tms, emits) = fx.drain();
    for (to, msg) in sends {
        if to.index() < peers.len() {
            // A full channel or a gone peer is packet loss — the
            // protocols tolerate it by design.
            let _ = peers[to.index()].try_send((id, msg));
        }
    }
    for (delay, t) in tms {
        let at = Instant::now() + Duration::from_micros(delay.as_micros());
        timers.push(std::cmp::Reverse((at, t.kind, t.payload)));
    }
    for e in emits {
        let _ = out.try_send((id, e));
    }
}

//! Live threaded runtime.
//!
//! The paper stresses that UniStore "is not intended to run simulations,
//! rather … a platform intended for usage" (§1). The protocol code in
//! this repository is runtime-agnostic (everything is a
//! [`NodeBehavior`]); this module runs the *same* node implementation on
//! real OS threads with real channels and wall-clock timers, proving the
//! simulator is an execution harness, not a semantic crutch. Like the
//! simulated driver it is generic over the [`Overlay`] backend.
//!
//! Each node is one thread; `crossbeam` channels are the links; timers
//! are a local deadline heap served between receives. The driver
//! injects queries exactly like the simulated cluster does.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use unistore_overlay::{Overlay, OverlayTopology};
use unistore_pgrid::PGridPeer;
use unistore_query::{Logical, Mqp, MqpNode, Relation, StatsDelta};
use unistore_simnet::{Effects, NodeBehavior, NodeId, SimTime, Timer};
use unistore_store::index::TripleKeys;
use unistore_store::{Triple, Tuple};
use unistore_util::wire::Shared;
use unistore_util::Key;
use unistore_vql::{analyze, parse, VqlError};

use crate::config::UniConfig;
use crate::msg::{QueryMsg, UniEvent, UniMsg};
use crate::node::UniNode;
use crate::stats::build_cost_model;

type Inbox<M> = (NodeId, UniMsg<M>);

/// A node's statistics summary as reported by
/// [`LiveCluster::stats_probe`]: total triples plus per-attribute
/// counts.
pub type StatsSummary = (f64, Vec<(Arc<str>, f64)>);

/// A running, threaded UniStore deployment over an [`Overlay`] backend
/// (P-Grid unless specified otherwise).
pub struct LiveCluster<O: Overlay<Item = Triple> = PGridPeer<Triple>> {
    senders: Vec<Sender<Inbox<O::Msg>>>,
    outputs: Receiver<(NodeId, UniEvent)>,
    handles: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    next_qid: u64,
    n: usize,
    /// Overlay configuration, kept for routed runtime writes.
    ocfg: O::Config,
    with_qgrams: bool,
    /// Whether runtime writes ride the coalesced batch pipeline.
    batch_writes: bool,
}

impl LiveCluster<PGridPeer<Triple>> {
    /// Builds the P-Grid overlay, loads the tuples, distributes
    /// statistics and starts one thread per node.
    pub fn start(n_peers: usize, cfg: UniConfig, tuples: Vec<Tuple>, seed: u64) -> Self {
        Self::start_overlay(n_peers, cfg, tuples, seed)
    }
}

impl<O: Overlay<Item = Triple>> LiveCluster<O> {
    /// Builds the overlay, loads the tuples, distributes statistics and
    /// starts one thread per node.
    pub fn start_overlay(
        n_peers: usize,
        cfg: UniConfig<O::Config>,
        tuples: Vec<Tuple>,
        seed: u64,
    ) -> Self {
        let triples: Vec<Triple> = tuples.iter().flat_map(Tuple::to_triples).collect();
        let sample: Vec<Key> =
            triples.iter().flat_map(|t| TripleKeys::derive(t, cfg.with_qgrams).primary()).collect();
        let adapt = cfg.balanced && O::ADAPTS_TO_SAMPLE && !sample.is_empty();
        let topology =
            O::plan(n_peers, &cfg.overlay, if adapt { Some(&sample) } else { None }, seed);
        let model = build_cost_model(
            &triples,
            n_peers,
            topology.partitions(),
            topology.replication(),
            SimTime::from_micros(200), // LAN-ish expectation for the model
        );

        let params = cfg.node_params();
        let mut nodes: Vec<UniNode<O>> = (0..n_peers)
            .map(|peer| {
                let overlay = O::spawn(&topology, peer, &cfg.overlay, seed);
                let mut node = UniNode::new(overlay, n_peers, &params);
                node.cost = Some(model.clone());
                node
            })
            .collect();

        // Driver-side preload, as in the simulated cluster.
        for t in &triples {
            for key in TripleKeys::derive(t, cfg.with_qgrams).all() {
                for p in topology.holders(key) {
                    nodes[p].overlay.preload(key, t.clone(), 0);
                }
            }
        }

        let (out_tx, outputs) = bounded::<(NodeId, UniEvent)>(1024);
        type Channel<M> = (Sender<Inbox<M>>, Receiver<Inbox<M>>);
        let channels: Vec<Channel<O::Msg>> =
            (0..n_peers).map(|_| bounded::<Inbox<O::Msg>>(1024)).collect();
        let senders: Vec<Sender<Inbox<O::Msg>>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::with_capacity(n_peers);
        for (node, (_tx, rx)) in nodes.into_iter().zip(channels) {
            let peers = senders.clone();
            let out = out_tx.clone();
            let stop = shutdown.clone();
            handles.push(std::thread::spawn(move || {
                node_loop(node, rx, peers, out, stop);
            }));
        }
        LiveCluster {
            senders,
            outputs,
            handles,
            shutdown,
            next_qid: 1,
            n: n_peers,
            ocfg: cfg.overlay.clone(),
            with_qgrams: cfg.with_qgrams,
            batch_writes: cfg.batch_writes,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no nodes run (never, for a started cluster).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Runs a VQL query from the given node, waiting up to `timeout`
    /// wall-clock time for the answer.
    pub fn query(
        &mut self,
        origin: NodeId,
        src: &str,
        timeout: Duration,
    ) -> Result<Option<Relation>, VqlError> {
        let analyzed = analyze(parse(src)?)?;
        let logical = Logical::from_query(&analyzed);
        let qid = self.next_qid;
        self.next_qid += 1;
        let mqp = Mqp::new(
            qid,
            origin.0,
            MqpNode::from_logical(&logical),
            analyzed.query.filters.clone(),
            analyzed.query.limit.map(|n| n as u64),
        );
        self.senders[origin.index()]
            .send((NodeId::EXTERNAL, UniMsg::Query(QueryMsg::Execute { mqp })))
            .expect("node thread alive");
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            match self.outputs.recv_timeout(remaining) {
                Ok((_, UniEvent::QueryDone { qid: q, relation, ok, .. })) if q == qid => {
                    return Ok(ok.then_some(relation));
                }
                Ok(_) => continue,
                Err(_) => return Ok(None),
            }
        }
    }

    /// Inserts many tuples through the routed protocol path at runtime
    /// as **one batched write** (coalesced per-hop
    /// [`unistore_overlay::OpBatch`] messages on batching backends),
    /// waiting up to `timeout` wall-clock time
    /// for the aggregated acks. After the acks, a single statistics
    /// delta for the whole batch is handed to the origin node in-band:
    /// the origin folds it into its cost model immediately and
    /// disseminates it to the other nodes on its next stats-refresh tick
    /// — no restart, no rescan.
    pub fn insert_batch(&mut self, origin: NodeId, tuples: &[Tuple], timeout: Duration) -> bool {
        let ocfg = self.ocfg.clone();
        let (batch, triples) = crate::cluster::build_insert_batch(tuples, self.with_qgrams);
        let batched = self.batch_writes && O::BATCHES_OPS;
        let mut next_qid = || {
            let q = self.next_qid;
            self.next_qid += 1;
            q
        };
        let msgs =
            crate::cluster::batch_write_msgs::<O>(&ocfg, batched, &mut next_qid, &batch, origin);
        let mut pending: Vec<u64> = Vec::with_capacity(msgs.len());
        for (qid, msg) in msgs {
            pending.push(qid);
            self.senders[origin.index()]
                .send((NodeId::EXTERNAL, UniMsg::Overlay(msg)))
                .expect("node thread alive");
        }
        let deadline = Instant::now() + timeout;
        let mut ok = true;
        while !pending.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            match self.outputs.recv_timeout(remaining) {
                Ok((_, UniEvent::Storage(done))) => {
                    if let Some(pos) = pending.iter().position(|&q| q == done.qid()) {
                        pending.swap_remove(pos);
                        ok &= done.ok();
                    }
                }
                Ok(_) => continue,
                Err(_) => return false,
            }
        }
        let mut delta = StatsDelta::new();
        for t in triples {
            delta.record_insert(t);
        }
        // The live runtime never rebuilds snapshots, so every delta
        // rides the initial epoch.
        self.senders[origin.index()]
            .send((
                NodeId::EXTERNAL,
                UniMsg::Query(QueryMsg::StatsDelta { epoch: 0, delta: Shared::new(delta) }),
            ))
            .expect("node thread alive");
        ok
    }

    /// Inserts one tuple through the routed protocol path at runtime — a
    /// thin wrapper over [`Self::insert_batch`].
    pub fn insert_tuple(&mut self, origin: NodeId, tuple: &Tuple, timeout: Duration) -> bool {
        self.insert_batch(origin, std::slice::from_ref(tuple), timeout)
    }

    /// Asks a node for a summary of its current statistics snapshot:
    /// `(total, per-attribute counts)`. Observability for staleness
    /// tests — the only way to see inside a running node.
    pub fn stats_probe(&mut self, node: NodeId, timeout: Duration) -> Option<StatsSummary> {
        let qid = self.next_qid;
        self.next_qid += 1;
        self.senders[node.index()]
            .send((NodeId::EXTERNAL, UniMsg::Query(QueryMsg::StatsProbe { qid })))
            .expect("node thread alive");
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.outputs.recv_timeout(remaining) {
                Ok((_, UniEvent::Stats { qid: q, total, attrs })) if q == qid => {
                    return Some((total, attrs));
                }
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }

    /// Stops all node threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One node's event loop: receive, fire due timers, apply effects.
fn node_loop<O: Overlay<Item = Triple>>(
    mut node: UniNode<O>,
    rx: Receiver<Inbox<O::Msg>>,
    peers: Vec<Sender<Inbox<O::Msg>>>,
    out: Sender<(NodeId, UniEvent)>,
    stop: Arc<AtomicBool>,
) {
    let start = Instant::now();
    let id = node.id();
    let now = |s: Instant| SimTime::from_micros(s.elapsed().as_micros() as u64);
    // (deadline, timer), min-heap by deadline.
    let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u32, u64)>> = BinaryHeap::new();

    let mut fx: Effects<UniMsg<O::Msg>, UniEvent> = Effects::new();
    node.on_start(now(start), &mut fx);
    apply(id, &mut fx, &peers, &out, &mut timers);

    while !stop.load(Ordering::SeqCst) {
        let wait = timers
            .peek()
            .map(|std::cmp::Reverse((at, _, _))| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(25))
            .min(Duration::from_millis(25));
        match rx.recv_timeout(wait) {
            Ok((from, msg)) => {
                node.on_message(now(start), from, msg, &mut fx);
                apply(id, &mut fx, &peers, &out, &mut timers);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Fire due timers.
        while let Some(std::cmp::Reverse((at, kind, payload))) = timers.peek().copied() {
            if at > Instant::now() {
                break;
            }
            timers.pop();
            node.on_timer(now(start), Timer::new(kind, payload), &mut fx);
            apply(id, &mut fx, &peers, &out, &mut timers);
        }
    }
}

fn apply<M>(
    id: NodeId,
    fx: &mut Effects<UniMsg<M>, UniEvent>,
    peers: &[Sender<Inbox<M>>],
    out: &Sender<(NodeId, UniEvent)>,
    timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u32, u64)>>,
) {
    let (sends, tms, emits) = fx.drain();
    for (to, msg) in sends {
        if to.index() < peers.len() {
            // A full channel or a gone peer is packet loss — the
            // protocols tolerate it by design.
            let _ = peers[to.index()].try_send((id, msg));
        }
    }
    for (delay, t) in tms {
        let at = Instant::now() + Duration::from_micros(delay.as_micros());
        timers.push(std::cmp::Reverse((at, t.kind, t.payload)));
    }
    for e in emits {
        let _ = out.try_send((id, e));
    }
}

//! Concrete backend wirings of the generic stack.
//!
//! [`UniCluster`](crate::UniCluster) and
//! [`LiveCluster`](crate::live::LiveCluster) default to the P-Grid
//! backend; this module names the Chord-backed instantiations and
//! provides a ready-to-use configuration for them, so experiments and
//! oracle tests can run the identical VQL → MQP pipeline over both
//! substrates.

use unistore_chord::{ChordConfig, ChordNode};
use unistore_store::Triple;

use crate::cluster::UniCluster;
use crate::config::UniConfig;
use crate::live::LiveCluster;

/// The Chord node type UniStore runs on.
pub type ChordOverlay = ChordNode<Triple>;

/// A simulated UniStore deployment over Chord.
pub type ChordUniCluster = UniCluster<ChordOverlay>;

/// A live threaded UniStore deployment over Chord.
pub type ChordLiveCluster = LiveCluster<ChordOverlay>;

/// Default cluster configuration for the Chord backend: the shared
/// query-layer defaults of [`UniConfig::for_overlay`] over a default
/// ring. (`balanced` is ignored by this backend — `ADAPTS_TO_SAMPLE`
/// is `false`, so drivers never re-plan the ring against a key
/// sample.)
pub fn chord_config() -> UniConfig<ChordConfig> {
    UniConfig::for_overlay(ChordConfig::default())
}

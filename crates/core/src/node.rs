//! The UniStore node: overlay peer + triple layer + query executor.
//!
//! Paper Fig. 1: the storage service and the query processor share one
//! process. Here [`UniNode`] embeds an [`Overlay`] peer (the storage
//! layer — P-Grid natively, or Chord with its auxiliary bucket index)
//! and an executor for mutant query plans. When the executor needs the
//! network (a scan, a fetch join), it issues *locally originated*
//! overlay operations through the embedded peer and suspends the plan
//! until the completions surface; when a plan's next leaf is anchored at
//! a remote key, the plan itself is forwarded toward the responsible
//! peer (mutant behaviour), which re-optimizes before continuing.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use unistore_overlay::{Overlay, OverlayDone, RangeMode};
use unistore_query::local::dedup_rows;
use unistore_query::mqp::bind_triples;
use unistore_query::relation::value_hash;
use unistore_query::strategy::scan_candidates;
use unistore_query::{CostModel, Coverage, JoinStrategy, Mqp, RangeAlgo, Relation, ScanStrategy};
use unistore_simnet::{Effects, NodeBehavior, NodeId, SimTime, Timer};
use unistore_store::index as idx;
use unistore_store::mapping::MappingSet;
use unistore_store::qgram;
use unistore_store::triple::field;
use unistore_store::{Oid, Triple, Value};
use unistore_util::rng::{derive_rng, stream};
use unistore_util::stats::RttWindow;
use unistore_util::wire::{Shared, Wire};
use unistore_util::{BloomFilter, FxHashMap, FxHashSet, ItemFilter, Key};
use unistore_vql::{Term, TriplePattern};

use unistore_query::cost::StatsDelta;

use crate::config::{BackoffPolicy, NodeParams, PlanMode, ScanPref};
use crate::msg::{QueryMsg, UniEvent, UniMsg};

/// Effects buffer of the UniStore node, parameterized by the storage
/// backend's message type.
pub type UniFx<M> = Effects<UniMsg<M>, UniEvent>;

/// Timer kind for the origin-side query deadline (storage-layer timers
/// use kinds below 100 — see the [`Overlay`] contract).
const RESULT_TIMEOUT: u32 = 100;

/// Timer kind for the periodic statistics-dissemination tick: buffered
/// [`StatsDelta`]s are flushed down a binomial broadcast tree spanning
/// every peer, bounding the staleness a remote plan can observe by one
/// tick plus O(log n) hops.
const STATS_TICK: u32 = 101;

/// Timer kind for hedged dispatch: when the current attempt outlives a
/// p99-derived delay, a second copy of the plan is shipped and the
/// first completion wins (DESIGN.md §"Failure semantics").
const HEDGE_TIMER: u32 = 102;

/// Capacity of the per-node completion-time window behind the adaptive
/// attempt timeout and the hedge delay.
const RTT_WINDOW: usize = 64;

/// Observed completions required before the retry policy trusts the
/// window's quantiles; below this the configured timeout applies, so a
/// cold node behaves exactly like the fixed-timeout policy.
const RTT_MIN_SAMPLES: usize = 8;

/// Mutant plans above this encoded size stop travelling and pull data
/// instead (shipping megabytes of partial results is worse than a few
/// extra lookups).
const FORWARD_BYTE_CAP: usize = 64 * 1024;

/// Fetch joins cap their lookup fan-out; beyond this the executor falls
/// back to collecting (or Bloom-filtering) the right side.
const FETCH_CAP: usize = 512;

/// Target false-positive rate of semi-join Bloom filters: ~9.6 bits per
/// distinct left join key, with the hash join pruning the stragglers.
const SEMI_JOIN_FPR: f64 = 0.01;

/// One optimizer decision, recorded for experiment output.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Query id.
    pub qid: u64,
    /// The pattern being resolved.
    pub pattern: String,
    /// Chosen physical operator.
    pub choice: String,
}

/// Bounded FIFO cache of exact-match lookup results, keyed by the
/// (attr, value) index key. Every received [`StatsDelta`] drops the
/// entries its writes name — regardless of epoch — so a cached row
/// outlives the write that changed it by at most one stats tick plus
/// one dissemination hop (DESIGN.md §"Concurrent query pipeline").
struct ResultCache {
    cap: usize,
    map: FxHashMap<Key, Vec<Triple>>,
    order: std::collections::VecDeque<Key>,
}

impl ResultCache {
    fn new(cap: usize) -> Self {
        ResultCache { cap, map: FxHashMap::default(), order: std::collections::VecDeque::new() }
    }

    fn get(&self, key: Key) -> Option<&Vec<Triple>> {
        self.map.get(&key)
    }

    fn put(&mut self, key: Key, rows: Vec<Triple>) {
        if self.cap == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.order.push_back(key);
        self.map.insert(key, rows);
    }

    fn invalidate(&mut self, key: Key) {
        if self.map.remove(&key).is_some() {
            self.order.retain(|k| *k != key);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// What a suspended plan is waiting for.
enum Wait {
    Scan {
        pattern: TriplePattern,
        outstanding: usize,
        triples: Vec<Triple>,
        /// Count-filter parameters when the scan used the q-gram index.
        qgram: Option<(String, usize)>,
        max_hops: u32,
        /// Key to cache the collected rows under when the scan was a
        /// single remote exact-match lookup. Cleared if any completion
        /// fails or an invalidation for the key races the scan.
        cache_key: Option<Key>,
        /// Storage ops this wait issued over the network (coverage
        /// denominator; cache-resolved lookups never leave the node and
        /// are vacuously complete).
        issued: u32,
        /// Ops that came back failed or partial (`!done.ok()`) — the
        /// coverage shortfall of this scan.
        failed: u32,
    },
    Fetch {
        pattern: TriplePattern,
        outstanding: usize,
        triples: Vec<Triple>,
        max_hops: u32,
        issued: u32,
        failed: u32,
    },
}

struct Active {
    mqp: Mqp,
    wait: Option<Wait>,
}

/// Origin-side state of one user-facing query across its attempts
/// (initial dispatch, deadline-driven retries, hedges).
struct PendingQuery {
    /// The original plan, re-instantiated under a fresh qid per attempt.
    mqp: Mqp,
    /// Re-dispatches so far (observability; the budget is time-based).
    attempts: u32,
    /// Hard deadline: admission time + `query_timeout × (retries + 1)`.
    /// When a timeout fires past this point the query fails with the
    /// best partial result seen.
    deadline: SimTime,
    /// When the newest attempt was shipped (completion-time samples).
    last_dispatch: SimTime,
    /// The newest attempt's timeout — the "previous sleep" input of the
    /// decorrelated-jitter backoff.
    last_timeout: SimTime,
    /// Best under-floor partial result seen so far, by coverage.
    best: Option<(Relation, u32, Coverage)>,
    /// Whether the current attempt already shipped its hedge.
    hedged: bool,
}

/// A full UniStore node, generic over its storage substrate.
pub struct UniNode<O: Overlay<Item = Triple>> {
    /// The embedded storage-layer peer.
    pub overlay: O,
    /// Cost model snapshot (the paper's gossiped statistics; distributed
    /// by the driver here, see DESIGN.md).
    pub cost: Option<Arc<CostModel>>,
    /// Known schema mappings.
    pub mappings: MappingSet,
    /// Planner behaviour.
    pub plan_mode: PlanMode,
    /// Optimizer decisions taken at this node.
    pub trace: Vec<Decision>,
    query_timeout: SimTime,
    /// How many times the origin re-dispatches a timed-out query
    /// ([`crate::UniConfig::query_retries`]).
    query_retries: u32,
    /// Deployment size: the fan-out of the stats-dissemination flush
    /// (the same system-wide parameter the cost model already assumes
    /// every peer knows).
    n_peers: usize,
    /// Statistics-dissemination cadence
    /// ([`crate::UniConfig::stats_refresh`]).
    stats_refresh: SimTime,
    /// Stat deltas learned from write origins, buffered until the next
    /// dissemination tick.
    stats_outbox: StatsDelta,
    /// Snapshot generation of `cost`. Deltas from another epoch are
    /// stale (a full rebuild already contains their writes) and dropped.
    stats_epoch: u64,
    active: FxHashMap<u64, Active>,
    /// storage-layer qid → query qid.
    waiting: FxHashMap<u64, u64>,
    /// Local (attr, value) result cache for remote exact-match lookups
    /// ([`crate::UniConfig::result_cache`]; capacity 0 disables it).
    cache: ResultCache,
    /// Lookups answered from the local result cache (observability for
    /// tests and the concurrency bench).
    pub cache_hits: u64,
    /// Queries this node originated and still awaits results for:
    /// user-facing qid → retry/deadline state.
    pending_results: FxHashMap<u64, PendingQuery>,
    /// Time of the event being handled, captured at handler entry so
    /// the retry policy can reason about deadlines without threading
    /// `now` through every call.
    clock: SimTime,
    /// Private jitter stream for backoff randomization (disjoint from
    /// the embedded overlay peer's stream).
    rng: StdRng,
    /// Completion times of recent origin-side attempts — the basis of
    /// the adaptive per-attempt timeout and the hedge delay.
    rtt: RttWindow,
    /// Acceptance floor on [`Coverage`] for a completion to be
    /// delivered as `ok` ([`crate::UniConfig::min_coverage`]).
    min_coverage: f64,
    /// Origin-side retry / hedging policy.
    backoff: BackoffPolicy,
    /// Hedged dispatches shipped (observability for tests and benches).
    pub hedges: u64,
    /// Deadline-driven re-dispatches actually shipped (observability:
    /// the scale campaign's attempt-amplification accounting).
    pub retries: u64,
    /// Re-dispatches and hedges withheld by the attempt budget
    /// (observability for the retry-storm guard).
    pub suppressed: u64,
    /// Cap on attempt aliases outstanding at this origin before
    /// re-dispatches defer and hedges are skipped
    /// ([`crate::UniConfig::attempt_budget`]).
    attempt_budget: usize,
    /// Attempt qid → user-facing qid. Each re-dispatch runs under a
    /// fresh qid so execution state of a lost attempt — local or on
    /// remote peers — can never complete the new one; stale attempts
    /// resolve to a purged alias and are dropped.
    attempt_of: FxHashMap<u64, u64>,
    exec_counter: u64,
}

impl<O: Overlay<Item = Triple>> UniNode<O> {
    /// Wraps a wired overlay peer (built by the cluster driver through
    /// [`Overlay::spawn`]) into a full UniStore node of an
    /// `n_peers`-wide deployment.
    pub fn new(overlay: O, n_peers: usize, params: &NodeParams) -> Self {
        let id = overlay.id().0 as u64;
        UniNode {
            overlay,
            cost: None,
            mappings: MappingSet::new(),
            plan_mode: params.plan_mode,
            trace: Vec::new(),
            query_timeout: params.query_timeout,
            query_retries: params.query_retries,
            n_peers,
            stats_refresh: params.stats_refresh,
            stats_outbox: StatsDelta::new(),
            stats_epoch: 0,
            cache: ResultCache::new(params.result_cache),
            cache_hits: 0,
            active: FxHashMap::default(),
            waiting: FxHashMap::default(),
            pending_results: FxHashMap::default(),
            clock: SimTime::ZERO,
            rng: derive_rng(params.seed, stream::QUERY_NODE_BASE + id),
            rtt: RttWindow::new(RTT_WINDOW),
            min_coverage: params.min_coverage,
            backoff: params.backoff,
            hedges: 0,
            retries: 0,
            suppressed: 0,
            attempt_budget: params.attempt_budget,
            attempt_of: FxHashMap::default(),
            exec_counter: 0,
        }
    }

    /// Folds a statistics delta into this node's cost-model snapshot —
    /// O(delta). A node that has no model yet (pre-load) skips the fold:
    /// it will receive a full snapshot at load time.
    pub(crate) fn apply_stats_delta(&mut self, delta: &StatsDelta) {
        if let Some(model) = self.cost.as_mut() {
            // Copy-on-write: nodes share the bulk-built Arc snapshot
            // until the first delta diverges them.
            Arc::make_mut(model).apply_delta(delta);
        }
    }

    /// Installs a freshly rebuilt snapshot: adopts its epoch and
    /// discards buffered deltas (the rebuild already counted their
    /// writes). Deltas from earlier epochs still in flight are dropped
    /// on receipt by the epoch gate.
    pub(crate) fn reset_stats(&mut self, model: Arc<CostModel>, epoch: u64) {
        self.cost = Some(model);
        self.stats_epoch = epoch;
        self.stats_outbox = StatsDelta::new();
        // A full rebuild may have replaced any row wholesale.
        self.cache.clear();
    }

    /// Drops cached rows for every (attr, value) pair a write delta
    /// names, and un-pins in-flight scans about to cache such a pair
    /// (their reply may predate the write). Runs on *every* delta
    /// receipt, before the epoch gate — an invalidation is correct in
    /// any epoch.
    fn invalidate_cached(&mut self, delta: &StatsDelta) {
        if self.cache.cap == 0 {
            return;
        }
        for t in delta.inserted.iter().chain(delta.deleted.iter()) {
            for a in self.mappings.expand(&t.attr) {
                let key = idx::attr_value_key(&a, &t.value);
                self.cache.invalidate(key);
                for active in self.active.values_mut() {
                    if let Some(Wait::Scan { cache_key, .. }) = active.wait.as_mut() {
                        if *cache_key == Some(key) {
                            *cache_key = None;
                        }
                    }
                }
            }
        }
    }

    /// Flushes the buffered stat deltas through the binomial broadcast
    /// tree (DESIGN.md §"Scale and churn"). The origin covers the whole
    /// ring (`span = n_peers`), so the flush costs O(log n) sends here
    /// and O(log n) per relay instead of the old n − 1 direct sends; the
    /// payload is encoded once into a [`Shared`] buffer and every send
    /// along the tree clones the bytes, not the encoding work. Matched
    /// insert/delete pairs accumulated within the tick cancel before
    /// encoding.
    fn flush_stats_outbox(&mut self, fx: &mut UniFx<O::Msg>) {
        if self.stats_outbox.is_empty() {
            return;
        }
        let mut delta = std::mem::take(&mut self.stats_outbox);
        delta.compact();
        if delta.is_empty() {
            return;
        }
        let span = self.n_peers as u32;
        self.fanout_stats_delta(self.stats_epoch, span, &Shared::new(delta), fx);
    }

    /// Sends the broadcast-tree children of a node covering `span`
    /// consecutive peers (itself plus the `span − 1` following it,
    /// ring-ordered by node id): one message per power-of-two offset
    /// `2^i < span`, each child covering the half-open id interval up to
    /// the next offset. Every peer in the span receives the delta
    /// exactly once on a loss-free network, after at most ⌈log₂ span⌉
    /// hops.
    fn fanout_stats_delta(
        &self,
        epoch: u64,
        span: u32,
        delta: &Shared<StatsDelta>,
        fx: &mut UniFx<O::Msg>,
    ) {
        let n = self.n_peers as u64;
        let me = self.id().0 as u64;
        let mut off = 1u64;
        while off < span as u64 {
            let child_span = (span as u64).min(off << 1) - off;
            let to = NodeId(((me + off) % n) as u32);
            fx.send(
                to,
                UniMsg::Query(QueryMsg::StatsDelta {
                    epoch,
                    span: child_span as u32,
                    delta: delta.clone(),
                }),
            );
            off <<= 1;
        }
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.overlay.id()
    }

    fn fresh_exec_qid(&mut self) -> u64 {
        self.exec_counter += 1;
        // Executor namespace: disjoint from driver-assigned qids.
        (1 << 62) | ((self.id().0 as u64) << 32) | self.exec_counter
    }

    /// Runs a storage-layer action, wrapping its effects into the node's
    /// envelope; emitted storage events are routed to waiting plans.
    fn with_overlay(
        &mut self,
        fx: &mut UniFx<O::Msg>,
        f: impl FnOnce(&mut O, &mut Effects<O::Msg, O::Out>),
    ) {
        let mut ofx: Effects<O::Msg, O::Out> = Effects::new();
        f(&mut self.overlay, &mut ofx);
        let (sends, timers, emits) = ofx.drain();
        for (to, m) in sends {
            fx.send(to, UniMsg::Overlay(m));
        }
        for (d, t) in timers {
            fx.set_timer(d, t);
        }
        for e in emits {
            self.on_overlay_event(O::done(e), fx);
        }
    }

    fn on_overlay_event(&mut self, done: OverlayDone<Triple>, fx: &mut UniFx<O::Msg>) {
        let qid = done.qid();
        let Some(query_qid) = self.waiting.remove(&qid) else {
            // Driver-issued raw storage op: surface it.
            fx.emit(UniEvent::Storage(done));
            return;
        };
        let Some(active) = self.active.get_mut(&query_qid) else {
            return;
        };
        let finished = match active.wait.as_mut() {
            Some(Wait::Scan { outstanding, triples, max_hops, cache_key, failed, .. }) => {
                if let Some(items) = done.items() {
                    triples.extend(items.iter().cloned());
                }
                if !done.ok() {
                    // A failed or partial completion must not be cached
                    // as the key's full row set — and it is a coverage
                    // shortfall the origin must hear about.
                    *cache_key = None;
                    *failed += 1;
                }
                *max_hops = (*max_hops).max(done.hops());
                *outstanding -= 1;
                *outstanding == 0
            }
            Some(Wait::Fetch { outstanding, triples, max_hops, failed, .. }) => {
                if let Some(items) = done.items() {
                    triples.extend(items.iter().cloned());
                }
                if !done.ok() {
                    *failed += 1;
                }
                *max_hops = (*max_hops).max(done.hops());
                *outstanding -= 1;
                *outstanding == 0
            }
            None => false,
        };
        if finished {
            self.finish_wait(query_qid, fx);
        }
    }

    fn finish_wait(&mut self, qid: u64, fx: &mut UniFx<O::Msg>) {
        let Some(mut active) = self.active.remove(&qid) else { return };
        // Every caller installs wait state before finishing it; if the
        // invariant ever breaks, drop the attempt — the origin's retry
        // timer picks it up — rather than panic mid-dispatch.
        let Some(wait) = active.wait.take() else { return };
        let (pattern, mut triples, qgram, max_hops, cache_key, issued, failed) = match wait {
            Wait::Scan { pattern, triples, qgram, max_hops, cache_key, issued, failed, .. } => {
                (pattern, triples, qgram, max_hops, cache_key, issued, failed)
            }
            Wait::Fetch { pattern, triples, max_hops, issued, failed, .. } => {
                (pattern, triples, None, max_hops, None, issued, failed)
            }
        };
        // Dedup triples that arrived through several index entries or
        // replicas.
        let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
        triples.retain(|t| seen.insert((unistore_util::item::Item::ident(t), t.value.key_bits())));
        // A single remote exact-match lookup that completed cleanly
        // primes the local result cache for subsequent point queries.
        if let Some(key) = cache_key {
            self.cache.put(key, triples.clone());
        }
        // q-gram count filter: drop candidates that cannot be within
        // distance k (never drops true matches — tested property).
        if let Some((target, k)) = &qgram {
            triples.retain(|t| {
                t.value.as_str().is_none_or(|s| qgram::passes_count_filter(s, target, *k))
            });
        }
        let rel = bind_triples(&pattern, &triples, &self.mappings);
        active.mqp.root.resolve_first_scan(rel);
        active.mqp.hops += max_hops;
        // Fold this scan's per-op acks into the plan's completeness
        // accounting (a shortfall marks the result as partial).
        active.mqp.coverage.record_scan(issued.saturating_sub(failed), issued);
        self.continue_plan(active.mqp, fx);
    }

    /// Runs the next step of a plan at this node: reduce, finish, fetch
    /// join, forward, or scan.
    fn continue_plan(&mut self, mut mqp: Mqp, fx: &mut UniFx<O::Msg>) {
        mqp.root.reduce();
        let qid = mqp.qid;
        if mqp.root.scans_remaining() == 0 {
            let mut rel = mqp.root.result().cloned().unwrap_or_else(|| Relation::empty(vec![]));
            dedup_rows(&mut rel);
            let origin = NodeId(mqp.origin);
            if origin == self.id() {
                self.deliver_result(qid, rel, mqp.hops, mqp.coverage, fx);
            } else {
                fx.send(
                    origin,
                    UniMsg::Query(QueryMsg::Result {
                        qid,
                        relation: rel,
                        hops: mqp.hops,
                        coverage: mqp.coverage,
                    }),
                );
            }
            return;
        }

        // Join strategy arbitration: fetch join, Bloom-filtered
        // semi-join pushdown, or plain collect.
        let semi_filter = match self.plan_join(&mqp) {
            Some(JoinDecision::Fetch(fetch)) => {
                self.execute_fetch(mqp, fetch, fx);
                return;
            }
            Some(JoinDecision::Semi(filter)) => Some(filter),
            None => None,
        };

        // `scans_remaining() > 0` was checked above, so a scan exists;
        // dropping the attempt (retry timer recovers) beats panicking.
        let Some(pattern) = mqp.root.first_scan().cloned() else { return };

        // Mutant forwarding: ship the plan to the peer owning the next
        // scan's anchor key, unless disabled, too large, or already
        // home. A chosen semi-join executes from here instead — its
        // pricing already assumed so. With the result cache on,
        // exact-match point scans also stay here: the overlay lookup
        // pulls the rows to this node, priming its cache, instead of
        // shipping the plan to the data.
        if semi_filter.is_none() && !self.plan_mode.no_forward && !self.cache_pins_scan(&pattern) {
            if let Some(key) = anchor_key(&pattern) {
                if !self.overlay.responsible(key) && mqp.wire_size() < FORWARD_BYTE_CAP {
                    if let Some(next) = self.overlay.next_hop(key) {
                        mqp.hops += 1;
                        fx.send(next, UniMsg::Query(QueryMsg::Route { key, mqp }));
                        return;
                    }
                }
            }
        }

        // Scan from here, shipping the semi-join filter when one was
        // chosen. (The limit hint is not passed: the storage layer's
        // sequential range has no early termination, so pricing it in
        // would bias the choice toward an optimization the protocol
        // does not perform.)
        let cands = scan_candidates(&pattern, &mqp.filters);
        let chosen = self.pick_scan(&cands, None);
        self.trace.push(Decision {
            qid,
            pattern: pattern.to_string(),
            choice: match &semi_filter {
                Some(_) => format!("semi-join+{}", chosen.name()),
                None => chosen.name().to_string(),
            },
        });
        self.execute_scan(mqp, pattern, chosen, semi_filter, fx);
    }

    /// Whether the result cache keeps a point scan at the current node
    /// (pull rows here and cache them) instead of mutant-forwarding the
    /// plan to the data.
    fn cache_pins_scan(&self, pattern: &TriplePattern) -> bool {
        self.cache.cap > 0
            && matches!(&pattern.subject, Term::Var(_))
            && matches!((&pattern.attr, &pattern.value), (Term::Lit(Value::Str(_)), Term::Lit(_)))
    }

    /// Applies forced preferences, falling back to the cost model, then
    /// to the first candidate.
    fn pick_scan(&self, cands: &[ScanStrategy], limit_hint: Option<usize>) -> ScanStrategy {
        if let Some(pref) = self.plan_mode.scan_pref {
            let found = cands.iter().find(|s| match (pref, s) {
                (ScanPref::ParallelRange, ScanStrategy::AttrRange { algo, .. }) => {
                    *algo == RangeAlgo::Parallel
                }
                (ScanPref::SequentialRange, ScanStrategy::AttrRange { algo, .. }) => {
                    *algo == RangeAlgo::Sequential
                }
                (ScanPref::QGram, ScanStrategy::QGram { .. }) => true,
                (ScanPref::NaiveSimilarity, ScanStrategy::AttrRange { lo: None, hi: None, .. }) => {
                    true
                }
                _ => false,
            });
            if let Some(s) = found {
                return s.clone();
            }
        }
        match &self.cost {
            Some(model) => {
                let (i, _) = model.choose_scan(cands, limit_hint);
                cands[i].clone()
            }
            None => cands[0].clone(),
        }
    }

    /// Arbitrates the physical join strategy when the next step is a
    /// join whose left side is materialized: per-binding fetch join,
    /// Bloom-filtered semi-join pushdown, or `None` — collect the right
    /// side with a plain scan and hash-join at the plan holder.
    fn plan_join(&self, mqp: &Mqp) -> Option<JoinDecision> {
        let (left, pattern) = mqp.root.fetch_join_site()?;
        let fetch = self.fetch_plan(left, pattern);
        let semi_site = semi_join_site(left, pattern);
        // Forced preference (experiments) wins outright — but a forced
        // strategy the site cannot support still degrades to collect.
        if let Some(pref) = self.plan_mode.join_pref {
            return match pref {
                JoinStrategy::Fetch => fetch.map(JoinDecision::Fetch),
                JoinStrategy::SemiJoin if O::PUSHES_FILTERS => semi_site
                    .map(|(col, fld)| JoinDecision::Semi(build_semi_filter(left, col, fld).0)),
                JoinStrategy::SemiJoin | JoinStrategy::Collect => None,
            };
        }
        let model = self.cost.as_ref()?;
        let cands = scan_candidates(&pattern.clone(), &mqp.filters);
        let (_, right_best) = model.choose_scan(&cands, None);
        let mut best_score = right_best.cost.score(); // collect baseline
        let mut decision = None;
        if let Some(plan) = fetch {
            let (strategy, cost) = model.join(plan.keys().len() as f64, &right_best, true);
            if strategy == JoinStrategy::Fetch && cost.score() < best_score {
                best_score = cost.score();
                decision = Some(JoinDecision::Fetch(plan));
            }
        }
        if O::PUSHES_FILTERS && !self.plan_mode.no_semi_join {
            if let Some((col, fld)) = semi_site {
                let (filter, left_distinct) = build_semi_filter(left, col, fld);
                let right_distinct = right_distinct_estimate(model, pattern, fld);
                let cost = model.semi_join(
                    left_distinct as f64,
                    right_distinct,
                    &right_best,
                    filter.wire_size() as f64,
                    SEMI_JOIN_FPR,
                );
                if cost.score() < best_score {
                    decision = Some(JoinDecision::Semi(filter));
                }
            }
        }
        decision
    }

    /// Builds the per-binding fetch plan for a join site, if the right
    /// pattern is point-addressable from the left relation's bindings
    /// and the fan-out stays under [`FETCH_CAP`].
    fn fetch_plan(&self, left: &Relation, pattern: &TriplePattern) -> Option<FetchPlan> {
        // Value-position fetch: attribute literal, value var bound left.
        let value_fetch = match (&pattern.attr, &pattern.value) {
            (Term::Lit(Value::Str(attr)), Term::Var(v)) => {
                left.col(v).map(|col| FetchPlan::ByValue {
                    keys: distinct_col(left, col)
                        .iter()
                        .flat_map(|val| {
                            self.mappings
                                .expand(attr)
                                .iter()
                                .map(|a| idx::attr_value_key(a, val))
                                .collect::<Vec<_>>()
                        })
                        .collect(),
                    pattern: pattern.clone(),
                })
            }
            _ => None,
        };
        // Subject-position fetch: subject var bound left → OID lookups.
        let subject_fetch = match &pattern.subject {
            Term::Var(s) => left.col(s).map(|col| FetchPlan::ByOid {
                keys: distinct_col(left, col)
                    .iter()
                    .filter_map(|v| v.as_str().map(|s| idx::oid_key(&Oid::new(s))))
                    .collect(),
                pattern: pattern.clone(),
            }),
            Term::Lit(_) => None,
        };
        let plan = value_fetch.or(subject_fetch)?;
        (1..=FETCH_CAP).contains(&plan.keys().len()).then_some(plan)
    }

    fn execute_fetch(&mut self, mut mqp: Mqp, plan: FetchPlan, fx: &mut UniFx<O::Msg>) {
        let qid = mqp.qid;
        self.trace.push(Decision {
            qid,
            pattern: plan.pattern().to_string(),
            choice: "fetch-join".to_string(),
        });
        let keys: Vec<Key> = plan.keys().to_vec();
        let pattern = plan.pattern().clone();
        let qids: Vec<u64> = keys.iter().map(|_| self.fresh_exec_qid()).collect();
        for q in &qids {
            self.waiting.insert(*q, qid);
        }
        mqp.hops += 1;
        self.active.insert(
            qid,
            Active {
                mqp,
                wait: Some(Wait::Fetch {
                    pattern,
                    outstanding: qids.len(),
                    triples: Vec::new(),
                    max_hops: 0,
                    issued: qids.len() as u32,
                    failed: 0,
                }),
            },
        );
        for (q, key) in qids.into_iter().zip(keys) {
            self.with_overlay(fx, |p, ofx| p.local_lookup(q, key, ofx));
        }
    }

    fn execute_scan(
        &mut self,
        mqp: Mqp,
        pattern: TriplePattern,
        s: ScanStrategy,
        filter: Option<ItemFilter>,
        fx: &mut UniFx<O::Msg>,
    ) {
        let qid = mqp.qid;
        // Build the list of storage ops first, register the wait state,
        // then issue — locally resolving ops may complete synchronously.
        enum Op {
            Lookup(Key),
            Range(Key, Key, RangeMode),
        }
        let mut ops: Vec<Op> = Vec::new();
        let mut qgram_filter = None;
        match &s {
            ScanStrategy::OidLookup { oid } => ops.push(Op::Lookup(idx::oid_key(&Oid::new(oid)))),
            ScanStrategy::AttrValueLookup { attr, value } => {
                for a in self.mappings.expand(attr) {
                    ops.push(Op::Lookup(idx::attr_value_key(&a, value)));
                }
            }
            ScanStrategy::AttrRange { attr, lo, hi, algo } => {
                let mode = match algo {
                    RangeAlgo::Parallel => RangeMode::Parallel,
                    RangeAlgo::Sequential => RangeMode::Sequential,
                };
                for a in self.mappings.expand(attr) {
                    let (klo, khi) = idx::attr_value_range(&a, lo.as_ref(), hi.as_ref());
                    ops.push(Op::Range(klo, khi, mode));
                }
            }
            ScanStrategy::AttrPrefix { attr, prefix, .. } => {
                for a in self.mappings.expand(attr) {
                    let (klo, khi) = idx::attr_prefix_range(&a, prefix);
                    ops.push(Op::Range(klo, khi, RangeMode::Parallel));
                }
            }
            ScanStrategy::QGram { attr, target, k } => {
                let mut keys: Vec<Key> = Vec::new();
                for a in self.mappings.expand(attr) {
                    keys.extend(qgram::qgrams(target).into_iter().map(|g| idx::qgram_key(&a, g)));
                }
                keys.sort_unstable();
                keys.dedup();
                ops.extend(keys.into_iter().map(Op::Lookup));
                qgram_filter = Some((target.clone(), *k));
            }
            ScanStrategy::ValueLookup { value } => ops.push(Op::Lookup(idx::value_key(value))),
            ScanStrategy::FullScan { .. } => {
                // The whole A#v index region.
                let lo = 1u64 << 62;
                let hi = lo | ((1u64 << 62) - 1);
                ops.push(Op::Range(lo, hi, RangeMode::Parallel));
            }
        }
        // Result cache: unfiltered exact-match lookups resolve from the
        // local cache when possible; a single remote miss is marked for
        // population once its rows arrive. Filtered scans skip the
        // cache entirely — their row sets are query-specific subsets.
        let mut cached: Vec<Triple> = Vec::new();
        let mut cache_key: Option<Key> = None;
        if self.cache.cap > 0
            && filter.is_none()
            && matches!(&s, ScanStrategy::AttrValueLookup { .. })
        {
            let cache = &self.cache;
            let mut hits = 0u64;
            ops.retain(|op| {
                let Op::Lookup(key) = op else { return true };
                match cache.get(*key) {
                    Some(rows) => {
                        cached.extend(rows.iter().cloned());
                        hits += 1;
                        false
                    }
                    None => true,
                }
            });
            self.cache_hits += hits;
            if cached.is_empty() {
                if let [Op::Lookup(key)] = ops[..] {
                    if !self.overlay.responsible(key) {
                        cache_key = Some(key);
                    }
                }
            }
        }
        let qids: Vec<u64> = ops.iter().map(|_| self.fresh_exec_qid()).collect();
        for q in &qids {
            self.waiting.insert(*q, qid);
        }
        self.active.insert(
            qid,
            Active {
                mqp,
                wait: Some(Wait::Scan {
                    pattern,
                    outstanding: qids.len(),
                    triples: cached,
                    qgram: qgram_filter,
                    max_hops: 0,
                    cache_key,
                    issued: qids.len() as u32,
                    failed: 0,
                }),
            },
        );
        if qids.is_empty() {
            // Every lookup was served from the cache: the scan resolves
            // without touching the network.
            self.finish_wait(qid, fx);
            return;
        }
        for (q, op) in qids.into_iter().zip(ops) {
            let f = filter.clone();
            match op {
                Op::Lookup(key) => {
                    self.with_overlay(fx, |p, ofx| p.local_lookup_filtered(q, key, f, ofx))
                }
                Op::Range(lo, hi, mode) => {
                    self.with_overlay(fx, |p, ofx| p.local_range_filtered(q, lo, hi, mode, f, ofx))
                }
            }
        }
    }

    fn handle_query_msg(&mut self, from: NodeId, msg: QueryMsg, fx: &mut UniFx<O::Msg>) {
        match msg {
            QueryMsg::Execute { mqp } => {
                if from == NodeId::EXTERNAL && NodeId(mqp.origin) == self.id() {
                    let timeout = self.jittered(self.attempt_timeout());
                    self.pending_results.insert(
                        mqp.qid,
                        PendingQuery {
                            mqp: mqp.clone(),
                            attempts: 0,
                            deadline: self.clock + self.query_deadline_budget(),
                            last_dispatch: self.clock,
                            last_timeout: timeout,
                            best: None,
                            hedged: false,
                        },
                    );
                    self.attempt_of.insert(mqp.qid, mqp.qid);
                    fx.set_timer(timeout, Timer::new(RESULT_TIMEOUT, mqp.qid));
                    self.arm_hedge(mqp.qid, fx);
                }
                self.continue_plan(mqp, fx);
            }
            QueryMsg::Route { key, mqp } => {
                if self.overlay.responsible(key) {
                    self.continue_plan(mqp, fx);
                } else {
                    match self.overlay.next_hop(key) {
                        Some(next) => {
                            let mut mqp = mqp;
                            mqp.hops += 1;
                            fx.send(next, UniMsg::Query(QueryMsg::Route { key, mqp }));
                        }
                        // Routing hole: execute from here as fallback,
                        // annotating the subtree the plan could not
                        // reach so the origin sees the degradation.
                        None => {
                            let mut mqp = mqp;
                            mqp.coverage.record_skip();
                            self.continue_plan(mqp, fx);
                        }
                    }
                }
            }
            QueryMsg::Result { qid, relation, hops, coverage } => {
                self.deliver_result(qid, relation, hops, coverage, fx);
            }
            QueryMsg::StatsDelta { epoch, span, delta } => {
                // Cache invalidation runs before the epoch gate: a
                // write notice names (attr, value) pairs whose cached
                // rows may be stale in any epoch.
                self.invalidate_cached(delta.get());
                // Relay duty comes before the epoch gate too: the tree
                // forwards the *message's* epoch regardless of this
                // node's own, so a node mid-rebuild still carries its
                // subtree (the leaves gate for themselves).
                if from != NodeId::EXTERNAL && span > 1 {
                    self.fanout_stats_delta(epoch, span, &delta, fx);
                }
                // Stale generation: a full rebuild already folded these
                // writes into the snapshot this node received.
                if epoch != self.stats_epoch {
                    return;
                }
                self.apply_stats_delta(delta.get());
                // Write origins hand the driver's delta to one node
                // (span 0); that node disseminates it to the rest on
                // its next stats tick. Tree deltas stop at their span.
                if from == NodeId::EXTERNAL {
                    self.stats_outbox.merge(delta.get().clone());
                }
            }
            QueryMsg::StatsProbe { qid } => {
                let (total, attrs) = match &self.cost {
                    Some(model) => {
                        let mut attrs: Vec<_> =
                            model.stats.attrs.iter().map(|(k, a)| (k.clone(), a.count)).collect();
                        // Hash-map iteration order must not reach an
                        // emitted event: sort by attribute name so the
                        // probe output is identical across runs.
                        attrs.sort_by(|a, b| a.0.cmp(&b.0));
                        (model.stats.total, attrs)
                    }
                    None => (0.0, Vec::new()),
                };
                fx.emit(UniEvent::Stats { qid, total, attrs });
            }
        }
    }

    /// Total origin-side deadline budget for one query — identical to
    /// the fixed-retry policy's worst case, so driver-side waits
    /// calibrated against it stay valid.
    fn query_deadline_budget(&self) -> SimTime {
        let budget = self.query_timeout.as_micros().saturating_mul(self.query_retries as u64 + 1);
        SimTime::from_micros(budget)
    }

    /// Applies ±25% multiplicative jitter to a timeout. Queries
    /// admitted together must not arm identical deadlines: when a
    /// correlated failure (partition, blackout) strands a whole window
    /// of attempts, synchronized timers would re-dispatch every one of
    /// them at the same instant — a retry storm. The jitter spreads the
    /// first retry wave, and the decorrelated retry sampler keeps later
    /// waves apart.
    fn jittered(&mut self, t: SimTime) -> SimTime {
        let f = self.rng.gen_range(0.75..1.25);
        SimTime::from_micros((t.as_micros() as f64 * f) as u64)
    }

    /// Adaptive per-attempt timeout: a multiple of the observed p99
    /// completion time once enough samples exist, the configured
    /// timeout until then (a cold node behaves exactly like the fixed
    /// policy).
    fn attempt_timeout(&self) -> SimTime {
        match self.rtt.quantile(0.99) {
            Some(p99) if self.rtt.len() >= RTT_MIN_SAMPLES => {
                SimTime::from_micros((p99 * self.backoff.rtt_multiplier) as u64)
                    .max(self.backoff.min_attempt)
                    .min(self.query_timeout)
            }
            _ => self.query_timeout,
        }
    }

    /// Arms the hedge timer for the newest attempt of `user`: once the
    /// attempt outlives a p99-derived delay it is presumed stuck and a
    /// second copy races it. No-op while the window is cold or hedging
    /// is disabled.
    fn arm_hedge(&mut self, user: u64, fx: &mut UniFx<O::Msg>) {
        if !self.backoff.hedging || self.rtt.len() < RTT_MIN_SAMPLES {
            return;
        }
        let Some(p99) = self.rtt.quantile(0.99) else { return };
        let base = SimTime::from_micros((p99 * self.backoff.hedge_multiplier) as u64)
            .max(SimTime::from_micros(1));
        // Hedges are re-dispatches too: a window of queries admitted at
        // the same instant would otherwise fire a synchronized hedge wave.
        let delay = self.jittered(base).max(SimTime::from_micros(1));
        fx.set_timer(delay, Timer::new(HEDGE_TIMER, user));
    }

    /// Routes a completed attempt's answer through the origin-side
    /// acceptance gate. Stale attempts (superseded by a retry, already
    /// answered, already failed) resolve to a purged alias and are
    /// dropped. A completion whose coverage clears the configured floor
    /// answers the query; one below the floor retires only this attempt
    /// — the best partial is kept for the deadline-driven retry chain
    /// to improve on or surface at final failure.
    fn deliver_result(
        &mut self,
        attempt_qid: u64,
        relation: Relation,
        hops: u32,
        coverage: Coverage,
        fx: &mut UniFx<O::Msg>,
    ) {
        let Some(&user) = self.attempt_of.get(&attempt_qid) else { return };
        // Only full-coverage completions feed the RTT estimator. A
        // partial produced by an overlay op timeout measures the
        // timeout, not the network: folding it in would inflate the
        // p99 until attempt budgets collapse to the query deadline and
        // the retry chain stops retrying — exactly when it is needed.
        if coverage.fraction() >= 1.0 {
            if let Some(p) = self.pending_results.get(&user) {
                let sample = self.clock.saturating_sub(p.last_dispatch);
                self.rtt.observe(sample.as_micros() as f64);
            }
        }
        if coverage.fraction() >= self.min_coverage {
            self.purge_attempts(user);
            if self.pending_results.remove(&user).is_some() {
                fx.emit(UniEvent::QueryDone { qid: user, relation, hops, ok: true, coverage });
            }
            return;
        }
        if let Some(p) = self.pending_results.get_mut(&user) {
            if p.best.as_ref().is_none_or(|(_, _, c)| coverage.fraction() > c.fraction()) {
                p.best = Some((relation, hops, coverage));
            }
        }
        self.attempt_of.remove(&attempt_qid);
        self.active.remove(&attempt_qid);
        self.waiting.retain(|_, v| *v != attempt_qid);
    }

    /// Retires every in-flight attempt of a query: aliases, suspended
    /// plans and storage-op links. After this, late storage replies or
    /// results from those attempts are dropped instead of reviving a
    /// plan whose query was already answered, retried or failed.
    fn purge_attempts(&mut self, user_qid: u64) {
        let stale: Vec<u64> =
            self.attempt_of.iter().filter(|&(_, &u)| u == user_qid).map(|(&a, _)| a).collect();
        for a in &stale {
            self.attempt_of.remove(a);
            self.active.remove(a);
        }
        self.waiting.retain(|_, v| !stale.contains(v));
    }
}

/// Anchor key of a pattern for mutant forwarding: point-addressable
/// scans only.
fn anchor_key(pattern: &TriplePattern) -> Option<Key> {
    if let Some(Value::Str(oid)) = pattern.subject.as_lit() {
        return Some(idx::oid_key(&Oid::new(oid)));
    }
    match (&pattern.attr, &pattern.value) {
        (Term::Lit(Value::Str(attr)), Term::Lit(v)) => Some(idx::attr_value_key(attr, v)),
        (Term::Var(_), Term::Lit(v)) => Some(idx::value_key(v)),
        _ => None,
    }
}

fn distinct_col(rel: &Relation, col: usize) -> Vec<Value> {
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut out = Vec::new();
    for row in &rel.rows {
        if seen.insert(value_hash(&row[col])) {
            out.push(row[col].clone());
        }
    }
    out
}

/// Locates the semi-join site of a join: the first pattern position
/// whose variable is bound by the left relation, as `(left column,
/// triple field)`. Any such shared position admits the pushdown — the
/// hash join re-checks everything else.
fn semi_join_site(left: &Relation, pattern: &TriplePattern) -> Option<(usize, u8)> {
    [
        (field::SUBJECT, &pattern.subject),
        (field::ATTR, &pattern.attr),
        (field::VALUE, &pattern.value),
    ]
    .into_iter()
    .find_map(|(fld, term)| match term {
        Term::Var(v) => left.col(v).map(|col| (col, fld)),
        Term::Lit(_) => None,
    })
}

/// Builds the Bloom filter over the left column's distinct join-key
/// hashes (the same hashes [`Triple::field_hash`] yields at the leaves,
/// so no true match is ever dropped). Returns the filter and the
/// distinct-key count that sized it.
fn build_semi_filter(left: &Relation, col: usize, fld: u8) -> (ItemFilter, usize) {
    let hashes: FxHashSet<u64> = left.rows.iter().map(|r| value_hash(&r[col])).collect();
    let n = hashes.len();
    (ItemFilter { field: fld, bloom: BloomFilter::from_hashes(hashes, SEMI_JOIN_FPR) }, n)
}

/// Distinct join keys expected in the scanned region — the denominator
/// of the semi-join selectivity estimate.
fn right_distinct_estimate(model: &CostModel, pattern: &TriplePattern, fld: u8) -> f64 {
    let st = &model.stats;
    match fld {
        field::SUBJECT => st.oid_distinct,
        field::ATTR => st.attrs.len() as f64,
        _ => match &pattern.attr {
            Term::Lit(Value::Str(a)) => {
                st.attrs.get(a.as_ref()).map_or(st.value_distinct, |s| s.join_distinct)
            }
            _ => st.value_distinct,
        },
    }
}

/// The arbitrated physical join strategy for a join site.
enum JoinDecision {
    /// Per-binding index nested loops over the DHT.
    Fetch(FetchPlan),
    /// Collect the right side through a Bloom-filtered scan.
    Semi(ItemFilter),
}

enum FetchPlan {
    ByValue { keys: Vec<Key>, pattern: TriplePattern },
    ByOid { keys: Vec<Key>, pattern: TriplePattern },
}

impl FetchPlan {
    fn keys(&self) -> &[Key] {
        match self {
            FetchPlan::ByValue { keys, .. } | FetchPlan::ByOid { keys, .. } => keys,
        }
    }

    fn pattern(&self) -> &TriplePattern {
        match self {
            FetchPlan::ByValue { pattern, .. } | FetchPlan::ByOid { pattern, .. } => pattern,
        }
    }
}

impl<O: Overlay<Item = Triple>> NodeBehavior for UniNode<O> {
    type Msg = UniMsg<O::Msg>;
    type Out = UniEvent;

    fn on_start(&mut self, now: SimTime, fx: &mut UniFx<O::Msg>) {
        self.clock = now;
        self.with_overlay(fx, |p, ofx| p.on_start(now, ofx));
        fx.set_timer(self.stats_refresh, Timer::new(STATS_TICK, 0));
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: UniMsg<O::Msg>,
        fx: &mut UniFx<O::Msg>,
    ) {
        self.clock = now;
        match msg {
            UniMsg::Overlay(m) => self.with_overlay(fx, |p, ofx| p.on_message(now, from, m, ofx)),
            UniMsg::Query(q) => self.handle_query_msg(from, q, fx),
        }
    }

    fn on_timer(&mut self, now: SimTime, t: Timer, fx: &mut UniFx<O::Msg>) {
        self.clock = now;
        if t.kind < 100 {
            self.with_overlay(fx, |p, ofx| p.on_timer(now, t, ofx));
        } else if t.kind == STATS_TICK {
            self.flush_stats_outbox(fx);
            fx.set_timer(self.stats_refresh, Timer::new(STATS_TICK, 0));
        } else if t.kind == RESULT_TIMEOUT {
            let user = t.payload;
            let (deadline, last_timeout) = match self.pending_results.get(&user) {
                Some(p) => (p.deadline, p.last_timeout),
                None => return,
            };
            if now >= deadline {
                // Budget exhausted: fail with the best partial seen.
                let Some(p) = self.pending_results.remove(&user) else { return };
                self.purge_attempts(user);
                let (relation, hops, coverage) =
                    p.best.unwrap_or_else(|| (Relation::empty(vec![]), 0, Coverage::failed()));
                fx.emit(UniEvent::QueryDone { qid: user, relation, hops, ok: false, coverage });
                return;
            }
            // Attempt budget: with this many attempt aliases already
            // outstanding at this origin, another re-dispatch feeds a
            // retry storm (a correlated failure strands whole windows
            // of attempts at once, and every one of them is here
            // wanting to double its in-flight load). Defer instead:
            // keep the stranded attempts live — any of them may still
            // complete — and look again after one more backoff
            // interval. The deadline check above still fails the query
            // when the budget never clears.
            if self.attempt_of.len() >= self.attempt_budget {
                self.suppressed += 1;
                let delay = self.jittered(last_timeout).min(deadline.saturating_sub(now));
                fx.set_timer(delay, Timer::new(RESULT_TIMEOUT, user));
                return;
            }
            // Retire the lost attempts so their late replies can
            // neither complete the fresh one nor surface a partial
            // answer as the result, then re-dispatch under a fresh
            // attempt qid with a decorrelated-jittered timeout:
            // uniform over [0.75 × adaptive base, 3 × previous], capped
            // by the configured timeout and the remaining budget. The
            // lower bound sits below the base so that the cap cannot
            // collapse the sample back to one synchronized value when
            // the adaptive base already equals the configured timeout
            // (a cold node under correlated failure).
            self.purge_attempts(user);
            let base = self.attempt_timeout();
            let lo = SimTime::from_micros((base.as_micros() as f64 * 0.75) as u64);
            let hi = SimTime::from_micros(last_timeout.as_micros().saturating_mul(3)).max(base);
            let next_timeout =
                SimTime::from_micros(self.rng.gen_range(lo.as_micros()..=hi.as_micros()))
                    .min(self.query_timeout);
            let delay = next_timeout.min(deadline.saturating_sub(now));
            let attempt_qid = self.fresh_exec_qid();
            let Some(p) = self.pending_results.get_mut(&user) else { return };
            p.attempts += 1;
            p.hedged = false;
            self.retries += 1;
            p.last_dispatch = now;
            p.last_timeout = next_timeout;
            let mut mqp = p.mqp.clone();
            mqp.qid = attempt_qid;
            self.attempt_of.insert(attempt_qid, user);
            fx.set_timer(delay, Timer::new(RESULT_TIMEOUT, user));
            self.arm_hedge(user, fx);
            self.continue_plan(mqp, fx);
        } else if t.kind == HEDGE_TIMER {
            let user = t.payload;
            // Still pending and not yet hedged this attempt: ship the
            // race copy. The original attempt stays live — whichever
            // completion reaches the origin first wins; the loser
            // resolves to a purged alias and is dropped.
            // A hedge is a deliberate duplicate attempt; under the
            // attempt budget it is the first load shed.
            let at_budget = self.attempt_of.len() >= self.attempt_budget;
            let mut deferred = false;
            let mqp = match self.pending_results.get_mut(&user) {
                Some(p) if !p.hedged => {
                    if at_budget {
                        deferred = true;
                        None
                    } else {
                        p.hedged = true;
                        Some(p.mqp.clone())
                    }
                }
                _ => None,
            };
            if deferred {
                self.suppressed += 1;
            }
            if let Some(mut mqp) = mqp {
                let attempt_qid = self.fresh_exec_qid();
                mqp.qid = attempt_qid;
                self.hedges += 1;
                self.attempt_of.insert(attempt_qid, user);
                self.continue_plan(mqp, fx);
            }
        }
    }
}

// Unit tests for the executor live in `cluster.rs` (they need a built
// network); the pure helpers are tested here.
#[cfg(test)]
mod tests {
    use super::*;
    use unistore_vql::parse;

    #[test]
    fn anchor_keys_for_point_scans() {
        let q = parse("SELECT ?v WHERE {('a12','year',?v)}").unwrap();
        assert!(anchor_key(&q.patterns[0]).is_some(), "oid literal anchors");
        let q = parse("SELECT ?a WHERE {(?a,'year',2006)}").unwrap();
        assert!(anchor_key(&q.patterns[0]).is_some(), "attr+value literal anchors");
        let q = parse("SELECT ?v WHERE {(?a,'year',?v)}").unwrap();
        assert!(anchor_key(&q.patterns[0]).is_none(), "range scans do not anchor");
        let q = parse("SELECT ?attr WHERE {(?a,?attr,2006)}").unwrap();
        assert!(anchor_key(&q.patterns[0]).is_some(), "value literal anchors");
    }

    #[test]
    fn distinct_col_dedups_semantically() {
        let rel = Relation {
            schema: vec![std::sync::Arc::from("x")],
            rows: vec![vec![Value::Int(3)], vec![Value::Float(3.0)], vec![Value::Int(4)]],
        };
        assert_eq!(distinct_col(&rel, 0).len(), 2);
    }

    #[test]
    fn semi_join_site_prefers_first_shared_position() {
        let left = Relation {
            schema: vec![std::sync::Arc::from("a"), std::sync::Arc::from("v")],
            rows: vec![],
        };
        let q = parse("SELECT ?a,?v WHERE {(?a,'age',?v)}").unwrap();
        assert_eq!(semi_join_site(&left, &q.patterns[0]), Some((0, field::SUBJECT)));
        let q = parse("SELECT ?v WHERE {(?x,'age',?v)}").unwrap();
        assert_eq!(semi_join_site(&left, &q.patterns[0]), Some((1, field::VALUE)));
        let q = parse("SELECT * WHERE {(?x,'age',?y)}").unwrap();
        assert_eq!(semi_join_site(&left, &q.patterns[0]), None, "no shared variable");
    }

    mod filter_conservative {
        //! The load-bearing semi-join property: a filter built from a
        //! materialized column's `value_hash`es accepts every triple
        //! whose addressed field semantically equals some left value —
        //! across positions and across the Int/Float class collapse.

        use super::*;
        use proptest::prelude::*;
        use unistore_util::item::Item as _;

        /// Mixed-type value strategy: short strings, ints, and floats
        /// that collide with the ints across the numeric-class collapse.
        struct ArbValue;
        impl Strategy for ArbValue {
            type Value = Value;

            fn generate(&self, rng: &mut proptest::TestRng) -> Value {
                let n = (rng.next_u64() % 200) as i64 - 100;
                match rng.next_u64() % 3 {
                    0 => {
                        let len = 1 + (rng.next_u64() % 8) as usize;
                        let s: String = (0..len)
                            .map(|_| (b'a' + (rng.next_u64() % 26) as u8) as char)
                            .collect();
                        Value::str(&s)
                    }
                    1 => Value::Int(n),
                    _ => Value::Float(n as f64),
                }
            }
        }

        /// Unquoted text form (Display wraps strings in quotes).
        fn plain(v: &Value) -> String {
            match v {
                Value::Str(s) => s.to_string(),
                other => other.to_string(),
            }
        }

        proptest! {
            #[test]
            fn filtered_scan_never_drops_a_true_match(
                left_vals in proptest::collection::vec(ArbValue, 1..40),
                triples in proptest::collection::vec(
                    ("[a-z]{1,6}", "[a-z]{1,6}", ArbValue),
                    0..60,
                ),
                fld in 0u8..3,
            ) {
                // Left column: strings for subject/attr positions (those
                // bind as strings), anything for the value position.
                let rows: Vec<Vec<Value>> = left_vals
                    .iter()
                    .map(|v| match fld {
                        field::VALUE => vec![v.clone()],
                        _ => vec![Value::str(&plain(v))],
                    })
                    .collect();
                let left = Relation { schema: vec![std::sync::Arc::from("x")], rows };
                let (filter, _) = build_semi_filter(&left, 0, fld);
                for (oid, attr, val) in &triples {
                    let t = Triple::new(oid, attr, val.clone());
                    let matches_left = left.rows.iter().any(|r| match fld {
                        field::SUBJECT => r[0].as_str() == Some(oid.as_str()),
                        field::ATTR => r[0].as_str() == Some(attr.as_str()),
                        _ => r[0].eq_values(val),
                    });
                    if matches_left {
                        prop_assert!(
                            filter.accepts(&t),
                            "true match dropped: {t} against field {fld}"
                        );
                    }
                }
                // And triples built *from* the left values always pass.
                for v in &left_vals {
                    let t = match fld {
                        field::SUBJECT => Triple::new(&plain(v), "a", Value::Int(0)),
                        field::ATTR => Triple::new("o", &plain(v), Value::Int(0)),
                        _ => Triple::new("o", "a", v.clone()),
                    };
                    prop_assert!(t.field_hash(fld).is_some());
                    prop_assert!(filter.accepts(&t));
                }
            }
        }
    }
}

//! Statistics distribution.
//!
//! The paper bases its cost model on "the characteristics of the used
//! overlay system and the actual data distribution", gossiped between
//! peers as statistics metadata. The reproduction splits this into two
//! paths (DESIGN.md §"Statistics distribution"):
//!
//! * **bulk**: after a driver-side load, [`build_cost_model`] scans the
//!   dataset once and hands every node the same snapshot;
//! * **incremental**: routed writes fold into the snapshots as
//!   [`unistore_query::StatsDelta`]s — O(delta) per write at the
//!   driver, disseminated in-band to the nodes on the stats-refresh
//!   tick ([`crate::UniConfig::stats_refresh`]), so long-running nodes
//!   converge to fresh statistics without restart or rescan.

use std::sync::Arc;

use unistore_query::cost::NetParams;
use unistore_query::{CostModel, GlobalStats};
use unistore_simnet::SimTime;
use unistore_store::Triple;

/// Builds the shared cost model for a cluster.
pub fn build_cost_model(
    triples: &[Triple],
    n_peers: usize,
    n_leaves: usize,
    replication: usize,
    expected_hop: SimTime,
) -> Arc<CostModel> {
    let net = NetParams {
        n_peers: n_peers as f64,
        n_leaves: n_leaves as f64,
        replication: replication as f64,
        hop_ms: expected_hop.as_millis_f64(),
    };
    Arc::new(CostModel::new(GlobalStats::build(triples, net)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_store::Value;

    #[test]
    fn model_reflects_cluster_shape() {
        let triples =
            vec![Triple::new("a", "x", Value::Int(1)), Triple::new("b", "x", Value::Int(2))];
        let m = build_cost_model(&triples, 64, 32, 2, SimTime::from_millis(40));
        assert_eq!(m.stats.net.n_peers, 64.0);
        assert_eq!(m.stats.net.n_leaves, 32.0);
        assert_eq!(m.stats.net.log_n(), 5.0);
        assert_eq!(m.stats.net.hop_ms, 40.0);
        assert_eq!(m.stats.total, 2.0);
    }
}

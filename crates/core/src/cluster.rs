//! The cluster driver: a full UniStore deployment inside the simulator.
//!
//! This is the repo's main entry point: build a network of
//! [`UniNode`]s over any [`Overlay`] backend, load tuples, run VQL —
//! and get answers *plus the network cost* of obtaining them.
//!
//! [`UniCluster`] defaults to the P-Grid backend; the Chord backend is
//! reachable through [`crate::backends::ChordUniCluster`]. All driver
//! operations (bulk load, routed inserts/updates, raw lookups, queries)
//! are backend-agnostic.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use unistore_overlay::{per_op_batch_msgs, OpBatch, Overlay, OverlayDone, OverlayTopology};
use unistore_pgrid::PGridPeer;
use unistore_query::{CostModel, Coverage, Logical, Mqp, MqpNode, Relation, StatsDelta};
use unistore_simnet::metrics::OpCost;
use unistore_simnet::{LanLatency, LatencyModel, NodeId, SimNet, SimTime};
use unistore_store::index::TripleKeys;
use unistore_store::mapping::{Mapping, MappingSet};
use unistore_store::{Triple, Tuple, Value};
use unistore_util::rng::{derive_rng, stream};
use unistore_util::wire::Shared;
use unistore_util::{BitPath, FxHashMap, Key};
use unistore_vql::{analyze, parse, VqlError};

use crate::config::{PlanMode, UniConfig};
use crate::msg::{QueryMsg, UniEvent, UniMsg};
use crate::node::{Decision, UniNode};
use crate::stats::build_cost_model;

/// The answer to a query plus its measured network cost.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The result relation.
    pub relation: Relation,
    /// `false` on timeout (the relation then holds the best partial
    /// result the retry chain saw, possibly empty).
    pub ok: bool,
    /// Measured network cost (messages, bytes, simulated latency, hops).
    pub cost: OpCost,
    /// Completeness accounting: how much of the responsible data the
    /// winning execution reached (1.0 on the healthy path).
    pub coverage: Coverage,
}

/// A simulated UniStore deployment over an [`Overlay`] backend
/// (P-Grid unless specified otherwise).
pub struct UniCluster<O: Overlay<Item = Triple> = PGridPeer<Triple>> {
    /// The network (public: experiments inspect nodes and metrics).
    pub net: SimNet<UniNode<O>>,
    cfg: UniConfig<O::Config>,
    seed: u64,
    /// Recreates the latency model for topology rebuilds.
    latency_factory: Box<dyn Fn() -> Box<dyn LatencyModel>>,
    topology: O::Topology,
    next_qid: u64,
    rng: StdRng,
    triples: Vec<Triple>,
    mappings: MappingSet,
    cost: Option<Arc<CostModel>>,
    /// Snapshot generation: bumped by every full rebuild so stale
    /// in-flight deltas cannot be double-counted (see
    /// [`QueryMsg::StatsDelta`]).
    stats_epoch: u64,
    /// Completion table: finished queries awaiting their waiter. Every
    /// drained event lands here (or in `done_storage`) — never on the
    /// floor — so any number of queries can overlap.
    done_queries: FxHashMap<u64, QueryOutcome>,
    /// Completion table for driver-issued raw storage ops.
    done_storage: FxHashMap<u64, OverlayDone<Triple>>,
    /// Queries admitted into the network: qid → admission time (the
    /// deadline budget runs from here).
    in_flight: FxHashMap<u64, SimTime>,
    /// qid → submission time. Reported latency runs from here, so at
    /// offered loads beyond the admission window it includes the
    /// queueing delay — the tail a client actually observes.
    queued_at: FxHashMap<u64, SimTime>,
    /// Submissions beyond the admission window, waiting for a slot.
    admit_queue: std::collections::VecDeque<(u64, NodeId, Mqp)>,
}

impl UniCluster<PGridPeer<Triple>> {
    /// Builds an empty P-Grid-backed cluster with a LAN latency model.
    pub fn build(n_peers: usize, cfg: UniConfig, seed: u64) -> Self {
        Self::build_overlay_with_latency(n_peers, cfg, LanLatency, seed)
    }

    /// Builds an empty P-Grid-backed cluster with a custom latency
    /// model.
    pub fn build_with_latency(
        n_peers: usize,
        cfg: UniConfig,
        latency: impl LatencyModel + Clone + 'static,
        seed: u64,
    ) -> Self {
        Self::build_overlay_with_latency(n_peers, cfg, latency, seed)
    }

    /// Trie leaves of the P-Grid topology.
    pub fn leaves(&self) -> &[BitPath] {
        self.topology.leaves()
    }
}

impl<O: Overlay<Item = Triple>> UniCluster<O> {
    /// Builds an empty cluster over any overlay backend with a LAN
    /// latency model.
    pub fn build_overlay(n_peers: usize, cfg: UniConfig<O::Config>, seed: u64) -> Self {
        Self::build_overlay_with_latency(n_peers, cfg, LanLatency, seed)
    }

    /// Builds an empty cluster over any overlay backend with a custom
    /// latency model.
    pub fn build_overlay_with_latency(
        n_peers: usize,
        cfg: UniConfig<O::Config>,
        latency: impl LatencyModel + Clone + 'static,
        seed: u64,
    ) -> Self {
        let factory: Box<dyn Fn() -> Box<dyn LatencyModel>> = {
            let latency = latency.clone();
            Box::new(move || Box::new(latency.clone()))
        };
        let topology = O::plan(n_peers, &cfg.overlay, None, seed);
        let mut cluster = UniCluster {
            net: SimNet::new(latency, seed),
            cfg,
            seed,
            latency_factory: factory,
            topology,
            next_qid: 1,
            rng: derive_rng(seed, stream::QUERY),
            triples: Vec::new(),
            mappings: MappingSet::new(),
            cost: None,
            stats_epoch: 0,
            done_queries: FxHashMap::default(),
            done_storage: FxHashMap::default(),
            in_flight: FxHashMap::default(),
            queued_at: FxHashMap::default(),
            admit_queue: std::collections::VecDeque::new(),
        };
        cluster.spawn_nodes(n_peers);
        cluster
    }

    /// Populates `self.net` with nodes spawned from `self.topology`.
    fn spawn_nodes(&mut self, n_peers: usize) {
        let mut params = self.cfg.node_params();
        params.seed = self.seed;
        for peer in 0..n_peers {
            let overlay = O::spawn(&self.topology, peer, &self.cfg.overlay, self.seed);
            self.net.add_node(UniNode::new(overlay, n_peers, &params));
        }
    }

    fn rebuild_topology(&mut self, n_peers: usize, sample: Option<&[Key]>) {
        let latency = (self.latency_factory)();
        self.topology = O::plan(n_peers, &self.cfg.overlay, sample, self.seed);
        self.net = SimNet::new_boxed(latency, self.seed);
        self.spawn_nodes(n_peers);
    }

    /// Loads tuples: decomposes them into triples (paper Fig. 2), places
    /// every index entry, rebuilds the topology data-adaptively if the
    /// cluster was empty and balancing is on, and distributes the cost
    /// model.
    ///
    /// This is the *driver-side bulk path* (no protocol traffic); use
    /// [`Self::insert_tuple`] for the routed path.
    pub fn load(&mut self, tuples: impl IntoIterator<Item = Tuple>) {
        let new_triples: Vec<Triple> = tuples.into_iter().flat_map(|t| t.to_triples()).collect();
        let first_load = self.triples.is_empty();
        self.triples.extend(new_triples);
        if first_load && self.cfg.balanced && O::ADAPTS_TO_SAMPLE {
            // Re-plan the topology against the actual key distribution —
            // P-Grid's converged, load-balanced state. (Backends with an
            // order-destroying hash ignore the sample.)
            let sample: Vec<Key> = self
                .triples
                .iter()
                .flat_map(|t| TripleKeys::derive(t, self.cfg.with_qgrams).primary())
                .collect();
            let n = self.net.len();
            self.rebuild_topology(n, Some(&sample));
        }
        self.place_all();
        self.rebuild_stats();
    }

    /// Registers a schema mapping: stored as a metadata triple *and*
    /// distributed to the nodes' mapping sets.
    pub fn add_mapping(&mut self, m: &Mapping) {
        self.triples.push(m.to_triple());
        self.mappings.add(m);
        self.place_triple_direct(&m.to_triple());
        for i in 0..self.net.len() {
            self.net.node_mut(NodeId(i as u32)).mappings.add(m);
        }
        match self.cost.is_some() {
            // Cheap path: fold the one new metadata triple in.
            true => self.apply_write_delta(None, {
                let mut d = StatsDelta::new();
                d.record_insert(m.to_triple());
                d
            }),
            false => self.rebuild_stats(),
        }
    }

    fn place_all(&mut self) {
        // Placement mutates nodes while reading the dataset; move the
        // triples out for the loop instead of cloning them.
        let triples = std::mem::take(&mut self.triples);
        for t in &triples {
            self.place_triple_direct(t);
        }
        self.triples = triples;
    }

    fn place_triple_direct(&mut self, t: &Triple) {
        for key in TripleKeys::derive(t, self.cfg.with_qgrams).all() {
            for p in self.topology.holders(key) {
                self.net.node_mut(NodeId(p as u32)).overlay.preload(key, t.clone(), 0);
            }
        }
    }

    /// Full statistics rebuild: a scan of every triple plus an Arc
    /// re-distribution to all nodes. Reserved for bulk loads and
    /// topology re-plans; routed writes go through
    /// [`Self::apply_write_delta`] instead (amortized O(delta)).
    fn rebuild_stats(&mut self) {
        self.stats_epoch += 1;
        let model = build_cost_model(
            &self.triples,
            self.net.len(),
            self.topology.partitions(),
            self.topology.replication(),
            self.net.expected_link_delay(),
        );
        self.cost = Some(model.clone());
        for i in 0..self.net.len() {
            self.net.node_mut(NodeId(i as u32)).reset_stats(model.clone(), self.stats_epoch);
        }
    }

    /// Folds a write batch into the statistics — O(delta), no rescan.
    ///
    /// The driver's master model absorbs the delta immediately (it is
    /// the oracle's and `cost_model()`'s view). With an `origin`, the
    /// delta is also injected there as an in-band
    /// [`QueryMsg::StatsDelta`]: the origin node folds it in on receipt
    /// and re-broadcasts it to the other peers on its next
    /// stats-refresh tick, so remote planners converge without any
    /// driver-side fan-out.
    fn apply_write_delta(&mut self, origin: Option<NodeId>, delta: StatsDelta) {
        if delta.is_empty() {
            return;
        }
        if let Some(model) = self.cost.as_mut() {
            Arc::make_mut(model).apply_delta(&delta);
        }
        match origin {
            Some(origin) => self.net.inject(
                origin,
                UniMsg::Query(QueryMsg::StatsDelta {
                    epoch: self.stats_epoch,
                    span: 0,
                    delta: Shared::new(delta),
                }),
            ),
            // No routed path (driver-side metadata write): fold the
            // delta into every node directly, mirroring the preload.
            None => {
                for i in 0..self.net.len() {
                    self.net.node_mut(NodeId(i as u32)).apply_stats_delta(&delta);
                }
            }
        }
    }

    /// The shared cost model (after the first load).
    pub fn cost_model(&self) -> Option<Arc<CostModel>> {
        self.cost.clone()
    }

    /// All triples ever loaded (driver-side view; feeds the oracle).
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// A local reference engine over the same data — the test oracle.
    pub fn oracle(&self) -> unistore_query::LocalEngine {
        let mut store = unistore_store::local::LocalTripleStore::new();
        store.insert_all(self.triples.iter().cloned());
        unistore_query::LocalEngine::with_store(store)
    }

    /// Uniformly random node id.
    pub fn random_node(&mut self) -> NodeId {
        NodeId(self.rng.gen_range(0..self.net.len() as u32))
    }

    /// The driver-side deployment plan.
    pub fn topology(&self) -> &O::Topology {
        &self.topology
    }

    /// Sets the planner mode on every node (experiment E3).
    pub fn set_plan_mode(&mut self, mode: PlanMode) {
        for i in 0..self.net.len() {
            self.net.node_mut(NodeId(i as u32)).plan_mode = mode;
        }
    }

    /// Collects and clears the optimizer decision traces of all nodes.
    pub fn take_traces(&mut self) -> Vec<Decision> {
        let mut out = Vec::new();
        for i in 0..self.net.len() {
            out.append(&mut self.net.node_mut(NodeId(i as u32)).trace);
        }
        out
    }

    fn fresh_qid(&mut self) -> u64 {
        let q = self.next_qid;
        self.next_qid += 1;
        q
    }

    /// Routes every event the network produced since the last pump into
    /// the qid-keyed completion tables. Nothing is discarded: query
    /// completions for any in-flight qid, storage acks, all of it lands
    /// in a table for its waiter. A `QueryDone` for a qid that is not
    /// in flight is a stale completion (a superseded retry attempt, or
    /// a duplicate of one already resolved) and is dropped here — the
    /// driver-side half of the attempt-staleness guard.
    fn pump_outputs(&mut self) {
        let mut freed = false;
        for (t, _, ev) in self.net.take_outputs() {
            match ev {
                UniEvent::QueryDone { qid, relation, hops, ok, coverage } => {
                    if self.in_flight.remove(&qid).is_some() {
                        freed = true;
                        let queued = self.queued_at.remove(&qid).unwrap_or(t);
                        self.done_queries.insert(
                            qid,
                            QueryOutcome {
                                relation,
                                ok,
                                cost: OpCost {
                                    // Per-query message/byte attribution
                                    // is only exact when queries run
                                    // serially; `query()` fills these in.
                                    messages: 0,
                                    bytes: 0,
                                    latency: t.saturating_sub(queued),
                                    hops,
                                },
                                coverage,
                            },
                        );
                    }
                }
                UniEvent::Storage(d) => {
                    self.done_storage.insert(d.qid(), d);
                }
                // The simulated driver reads node statistics directly;
                // probes are a live-runtime affordance.
                UniEvent::Stats { .. } => {}
            }
        }
        if freed {
            self.try_admit();
        }
    }

    /// Admits queued submissions while the in-flight window has room.
    fn try_admit(&mut self) {
        while self.in_flight.len() < self.cfg.max_in_flight {
            let Some((qid, origin, mqp)) = self.admit_queue.pop_front() else { return };
            self.in_flight.insert(qid, self.net.now());
            self.net.inject(origin, UniMsg::Query(QueryMsg::Execute { mqp }));
        }
    }

    /// Per-query deadline budget: the origin's retry timers guarantee a
    /// completion within `query_timeout × (query_retries + 1)`; one
    /// extra timeout of slack covers delivery of the final failure.
    fn query_budget(&self) -> SimTime {
        SimTime::from_micros(
            self.cfg.query_timeout.as_micros().saturating_mul(self.cfg.query_retries as u64 + 2),
        )
    }

    /// Parses and plans a VQL query from `origin` and submits it to the
    /// pipelined execution window; returns the qid to wait on. Beyond
    /// [`UniConfig::max_in_flight`] outstanding queries, submissions
    /// queue at the driver and enter the network as completions free
    /// slots (backpressure, not rejection).
    pub fn query_submit(&mut self, origin: NodeId, src: &str) -> Result<u64, VqlError> {
        let analyzed = analyze(parse(src)?)?;
        let logical = Logical::from_query(&analyzed);
        let qid = self.fresh_qid();
        let mqp = Mqp::new(
            qid,
            origin.0,
            MqpNode::from_logical(&logical),
            analyzed.query.filters.clone(),
            analyzed.query.limit.map(|n| n as u64),
        );
        self.queued_at.insert(qid, self.net.now());
        self.admit_queue.push_back((qid, origin, mqp));
        self.try_admit();
        Ok(qid)
    }

    /// Non-blocking completion check: returns the outcome if `qid` has
    /// finished, without advancing simulated time.
    pub fn query_poll(&mut self, qid: u64) -> Option<QueryOutcome> {
        self.pump_outputs();
        self.done_queries.remove(&qid)
    }

    /// Runs the network until `qid` completes (or its deadline budget
    /// expires), pumping every other completion into the tables on the
    /// way. A query whose budget lapses is withdrawn and reported as a
    /// failed outcome; its slot is released to the admission queue.
    pub fn query_wait(&mut self, qid: u64) -> QueryOutcome {
        loop {
            self.pump_outputs();
            if let Some(out) = self.done_queries.remove(&qid) {
                return out;
            }
            let deadline = match self.in_flight.get(&qid) {
                Some(submitted) => *submitted + self.query_budget(),
                // Still queued (or unknown): budget from now; refreshed
                // each iteration until admission starts the clock.
                None => self.net.now() + self.query_budget(),
            };
            if self.net.now() > deadline || !self.net.step() {
                break;
            }
        }
        self.in_flight.remove(&qid);
        self.queued_at.remove(&qid);
        self.admit_queue.retain(|(q, _, _)| *q != qid);
        self.try_admit();
        QueryOutcome {
            relation: Relation::empty(vec![]),
            ok: false,
            cost: OpCost::default(),
            coverage: Coverage::failed(),
        }
    }

    /// Waits for every submitted query — in flight, queued, or already
    /// completed but unclaimed — and returns the outcomes in submission
    /// (qid) order.
    pub fn query_wait_all(&mut self) -> Vec<(u64, QueryOutcome)> {
        self.pump_outputs();
        let mut qids: Vec<u64> = self
            .in_flight
            .keys()
            .chain(self.done_queries.keys())
            .copied()
            .chain(self.admit_queue.iter().map(|(q, _, _)| *q))
            .collect();
        qids.sort_unstable();
        qids.into_iter().map(|q| (q, self.query_wait(q))).collect()
    }

    /// Number of queries currently admitted into the network (excludes
    /// submissions still queued behind the admission window).
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    fn run_for_storage(&mut self, qid: u64) -> Option<OverlayDone<Triple>> {
        let deadline = self.net.now() + SimTime::from_secs(1_000_000);
        loop {
            self.pump_outputs();
            if let Some(d) = self.done_storage.remove(&qid) {
                return Some(d);
            }
            if self.net.now() > deadline || !self.net.step() {
                return None;
            }
        }
    }

    /// Parses, plans and executes a VQL query from `origin`, waiting
    /// for its completion. When no other queries are in flight the
    /// reported cost's message and byte counts are the exact network
    /// delta of this query; overlapped executions share the network, so
    /// pipelined callers should use [`Self::query_submit`] /
    /// [`Self::query_wait_all`] and read latency and hops instead.
    pub fn query(&mut self, origin: NodeId, src: &str) -> Result<QueryOutcome, VqlError> {
        let before = self.net.metrics();
        let qid = self.query_submit(origin, src)?;
        let mut out = self.query_wait(qid);
        let d = self.net.metrics().delta(&before);
        out.cost.messages = d.sent;
        out.cost.bytes = d.bytes;
        Ok(out)
    }

    /// Injects a batch of routed write messages at `origin` and awaits
    /// every ack; returns overall success and the hops the acked writes
    /// traveled (summed per-op, deepest per batch).
    fn run_writes(&mut self, origin: NodeId, msgs: Vec<(u64, O::Msg)>) -> (bool, u32) {
        let mut ok = true;
        let mut hops = 0u32;
        for (qid, msg) in msgs {
            self.net.inject(origin, UniMsg::Overlay(msg));
            match self.run_for_storage(qid) {
                Some(OverlayDone::Insert { ok: acked, hops: h, .. })
                | Some(OverlayDone::Batch { ok: acked, hops: h, .. }) => {
                    ok &= acked;
                    hops += h;
                }
                _ => ok = false,
            }
        }
        (ok, hops)
    }

    /// Runs one [`OpBatch`] through the routed write path: coalesced
    /// into per-hop batch messages when the backend batches and
    /// [`UniConfig::batch_writes`] is on, expanded per-op otherwise.
    fn run_batch(&mut self, origin: NodeId, batch: &OpBatch<Triple>) -> (bool, u32) {
        if batch.is_empty() {
            return (true, 0);
        }
        let ocfg = self.cfg.overlay.clone();
        let batched = self.cfg.batch_writes && O::BATCHES_OPS;
        let msgs = batch_write_msgs::<O>(&ocfg, batched, &mut || self.fresh_qid(), batch, origin);
        self.run_writes(origin, msgs)
    }

    /// Inserts many tuples through the routed protocol path as **one
    /// batched write**: index keys are expanded once per triple, ops are
    /// coalesced per next hop into shared-payload [`OpBatch`] messages
    /// (the paper's Fig. 2 fan-out without the per-key message tax), the
    /// acks aggregate into one completion per batch, and the statistics
    /// absorb the whole batch as a single O(delta) fold.
    ///
    /// This is the bulk-ingest path; [`Self::insert_tuple`] is the
    /// single-tuple convenience wrapper over it.
    pub fn insert_batch(&mut self, origin: NodeId, tuples: &[Tuple]) -> (bool, OpCost) {
        let before = self.net.metrics();
        let start = self.net.now();
        let (batch, triples) = build_insert_batch(tuples, self.cfg.with_qgrams);
        let (ok, hops) = self.run_batch(origin, &batch);
        let mut delta = StatsDelta::new();
        for t in triples {
            delta.record_insert(t.clone());
            self.triples.push(t);
        }
        let d = self.net.metrics().delta(&before);
        self.apply_write_delta(Some(origin), delta);
        (
            ok,
            OpCost {
                messages: d.sent,
                bytes: d.bytes,
                latency: self.net.now().saturating_sub(start),
                hops,
            },
        )
    }

    /// Inserts one tuple through the routed protocol path. A thin
    /// wrapper over [`Self::insert_batch`] — the loop-of-single-inserts
    /// write path is retired.
    pub fn insert_tuple(&mut self, origin: NodeId, tuple: &Tuple) -> (bool, OpCost) {
        self.insert_batch(origin, std::slice::from_ref(tuple))
    }

    /// Deletes many facts through the routed protocol path as one
    /// batched write: every fact's index entries become delete ops of a
    /// single [`OpBatch`], and the statistics absorb the batch as one
    /// O(delta) fold.
    pub fn delete_batch(&mut self, origin: NodeId, facts: &[Triple], version: u64) -> bool {
        let mut batch: OpBatch<Triple> = OpBatch::new();
        for triple in facts {
            let ident = unistore_util::item::Item::ident(triple);
            for key in TripleKeys::derive(triple, self.cfg.with_qgrams).all() {
                batch.push_delete(key, ident, version);
            }
        }
        let ok = self.run_batch(origin, &batch).0;
        let mut delta = StatsDelta::new();
        for triple in facts {
            if let Some(pos) = self.triples.iter().position(|t| {
                t.oid == triple.oid && t.attr == triple.attr && t.value.eq_values(&triple.value)
            }) {
                delta.record_delete(self.triples.swap_remove(pos));
            }
        }
        self.apply_write_delta(Some(origin), delta);
        ok
    }

    /// Updates the value of `(oid, attr)` through the protocol path:
    /// one batch deletes the old index entries and inserts the new ones
    /// with a newer version (paper ref [4] loose-consistency updates —
    /// the versioned stores make the delete/insert ops order-independent
    /// even when the batch forks). The statistics absorb the write as an
    /// O(delta) fold — no rescan.
    pub fn update(&mut self, origin: NodeId, old: &Triple, new_value: Value, version: u64) -> bool {
        let new_triple = Triple { oid: old.oid.clone(), attr: old.attr.clone(), value: new_value };
        let ident = unistore_util::item::Item::ident(old);
        // Remove the old fact under every key it was indexed at; its
        // identity includes the old value, so the new entry (different
        // identity) is untouched even at shared keys (e.g. OID index).
        //
        // A same-value update keeps the identity, so the deletes are
        // skipped: a delete and an insert of ONE identity at the SAME
        // version would be order-dependent once the batch forks (the
        // tombstone wins iff it lands second), whereas the refresh
        // insert alone is deterministic on every route.
        let refresh = ident == unistore_util::item::Item::ident(&new_triple);
        let mut batch = OpBatch::new();
        if !refresh {
            for key in TripleKeys::derive(old, self.cfg.with_qgrams).all() {
                batch.push_delete(key, ident, version);
            }
        }
        let item = batch.add_item(new_triple.clone());
        for key in TripleKeys::derive(&new_triple, self.cfg.with_qgrams).all() {
            batch.push_insert(key, item, version);
        }
        let ok = self.run_batch(origin, &batch).0;
        let mut delta = StatsDelta::new();
        // Track driver-side view.
        match self.triples.iter_mut().find(|t| t.oid == new_triple.oid && t.attr == new_triple.attr)
        {
            Some(t) => {
                delta.record_delete(t.clone());
                *t = new_triple.clone();
            }
            // Unknown to the driver view: the routed path still
            // inserted the new fact, so track it as a plain insert.
            None => self.triples.push(new_triple.clone()),
        }
        delta.record_insert(new_triple);
        self.apply_write_delta(Some(origin), delta);
        ok
    }

    /// Deletes one fact through the protocol path: removes its entry
    /// from every index it was stored under, as one batched write. The
    /// statistics absorb the write as an O(delta) fold — no rescan.
    pub fn delete(&mut self, origin: NodeId, triple: &Triple, version: u64) -> bool {
        self.delete_batch(origin, std::slice::from_ref(triple), version)
    }

    /// Raw storage-layer lookup (bypasses the query layer).
    pub fn raw_lookup(&mut self, origin: NodeId, key: Key) -> (Vec<Triple>, OpCost) {
        let qid = self.fresh_qid();
        let before = self.net.metrics();
        let start = self.net.now();
        let msg = O::lookup_msg(&self.cfg.overlay, qid, key, origin);
        self.net.inject(origin, UniMsg::Overlay(msg));
        match self.run_for_storage(qid) {
            Some(OverlayDone::Lookup { items, hops, .. }) => {
                let d = self.net.metrics().delta(&before);
                (
                    items,
                    OpCost {
                        messages: d.sent,
                        bytes: d.bytes,
                        latency: self.net.now().saturating_sub(start),
                        hops,
                    },
                )
            }
            _ => (Vec::new(), OpCost::default()),
        }
    }

    /// Runs the network for a stretch of simulated time.
    pub fn settle(&mut self, duration: SimTime) {
        let deadline = self.net.now() + duration;
        self.net.run_until(deadline);
        // File (or drop as stale) whatever completed along the way.
        self.pump_outputs();
    }
}

/// Expands tuples into triples and their full index fan-out as one
/// [`OpBatch`]: every triple's keys are derived once and the payload is
/// referenced by compact tags instead of one copy per key. Shared by
/// the simulated cluster driver and the live threaded runtime so the
/// two ingest paths cannot drift.
pub(crate) fn build_insert_batch(
    tuples: &[Tuple],
    with_qgrams: bool,
) -> (OpBatch<Triple>, Vec<Triple>) {
    let mut batch = OpBatch::new();
    let mut triples = Vec::new();
    for tuple in tuples {
        for t in tuple.to_triples() {
            let item = batch.add_item(t.clone());
            for key in TripleKeys::derive(&t, with_qgrams).all() {
                batch.push_insert(key, item, 0);
            }
            triples.push(t);
        }
    }
    (batch, triples)
}

/// Builds the routed messages for one batch: coalesced per-hop
/// [`OpBatch`] messages when the backend batches and the configuration
/// allows, the per-op expansion otherwise.
pub(crate) fn batch_write_msgs<O: Overlay<Item = Triple>>(
    ocfg: &O::Config,
    batched: bool,
    next_qid: &mut dyn FnMut() -> u64,
    batch: &OpBatch<Triple>,
    origin: NodeId,
) -> Vec<(u64, O::Msg)> {
    match batched {
        true => O::batch_msgs(ocfg, next_qid, batch, origin),
        false => per_op_batch_msgs::<O>(ocfg, next_qid, batch, origin),
    }
}

//! Zipf-skewed point-read workloads.
//!
//! The paper's query load is read-dominated: many peers look up the
//! same popular attribute values ("hot keys") while the long tail is
//! touched rarely. This module turns a generated [`PubWorld`] into a
//! stream of VQL point queries whose value popularity follows a Zipf
//! distribution — rank 0 (the most popular value) is the first value
//! of the attribute in world order, so the skew is deterministic for
//! a given seed.

use rand::rngs::StdRng;

use unistore_store::Value;
use unistore_util::rng::{derive_rng, stream};
use unistore_util::zipf::Zipf;

use crate::pubgen::PubWorld;

/// Distinct values of `attr` across the whole world, in first-appearance
/// order (the Zipf rank order used by [`zipf_read_queries`]).
pub fn distinct_values(world: &PubWorld, attr: &str) -> Vec<Value> {
    let mut seen: Vec<Value> = Vec::new();
    for tuple in world.all_tuples() {
        for (a, v) in &tuple.fields {
            if a.as_ref() == attr && !seen.iter().any(|s| s.eq_values(v)) {
                seen.push(v.clone());
            }
        }
    }
    seen
}

/// `n` VQL point queries over `attr`, value popularity Zipf-skewed with
/// exponent `theta` (`0.0` = uniform). Deterministic in `seed`.
///
/// Each query has the shape `SELECT ?x WHERE {(?x,'attr',value)}` with
/// the value rendered as a VQL literal (quoted string or bare number).
pub fn zipf_read_queries(
    world: &PubWorld,
    attr: &str,
    n: usize,
    theta: f64,
    seed: u64,
) -> Vec<String> {
    let values = distinct_values(world, attr);
    assert!(!values.is_empty(), "attribute {attr:?} has no values in this world");
    let zipf = Zipf::new(values.len(), theta);
    let mut rng: StdRng = derive_rng(seed, stream::WORKLOAD);
    (0..n)
        .map(|_| {
            let v = &values[zipf.sample(&mut rng)];
            format!("SELECT ?x WHERE {{(?x,'{attr}',{v})}}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubgen::PubParams;

    fn world() -> PubWorld {
        PubWorld::generate(&PubParams::default(), 11)
    }

    #[test]
    fn deterministic_and_well_formed() {
        let w = world();
        let a = zipf_read_queries(&w, "published_in", 50, 1.2, 3);
        let b = zipf_read_queries(&w, "published_in", 50, 1.2, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for q in &a {
            assert!(q.starts_with("SELECT ?x WHERE {(?x,'published_in',"), "bad query: {q}");
        }
        // A different seed reorders the draw.
        let c = zipf_read_queries(&w, "published_in", 50, 1.2, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_concentrates_on_hot_values() {
        let w = world();
        let skewed = zipf_read_queries(&w, "published_in", 200, 1.5, 7);
        let uniform = zipf_read_queries(&w, "published_in", 200, 0.0, 7);
        let top = |qs: &[String]| {
            #[allow(clippy::disallowed_types)]
            let mut counts = std::collections::HashMap::new();
            for q in qs {
                *counts.entry(q.clone()).or_insert(0usize) += 1;
            }
            counts.into_values().max().unwrap()
        };
        assert!(top(&skewed) > top(&uniform), "theta=1.5 should concentrate mass");
    }

    #[test]
    fn integer_values_render_bare() {
        let w = world();
        let qs = zipf_read_queries(&w, "year", 20, 1.0, 5);
        for q in &qs {
            // Years are Value::Int — no quotes around the literal.
            assert!(!q.contains("'year','"), "int literal got quoted: {q}");
        }
    }
}

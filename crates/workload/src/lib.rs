//! Workload generators.
//!
//! The paper demonstrates on "data about contacts and publications,
//! similar to the schema introduced in section 2" — Fig. 3: Person
//! (name, age, num_of_pubs, has_published, email, office, phone),
//! Publication (title, published_in, year), Conference (confname,
//! series), plus relationships. [`PubWorld`] generates that world with
//! controllable scale, conference-popularity skew and typo rates, fully
//! deterministically from a seed.

pub mod hetero;
pub mod pubgen;
pub mod reads;
pub mod typos;
pub mod writes;

pub use pubgen::{PubParams, PubWorld};
pub use reads::{distinct_values, zipf_read_queries};
pub use typos::inject_typo;
pub use writes::zipf_write_batches;

//! Heterogeneous (multi-namespace) variants of the world.
//!
//! The paper's data is "described according to heterogeneous schemas"
//! (§1): different participants use different attribute names for the
//! same concept and bridge them with mapping triples (§2). This module
//! splits a generated world between two namespaces and produces the
//! corresponding mappings.

use unistore_store::{Mapping, Tuple};

use crate::pubgen::PubWorld;

/// The attribute translations of the second community.
const RENAMES: &[(&str, &str)] = &[
    ("name", "dblp:author_name"),
    ("confname", "dblp:venue"),
    ("title", "dblp:pub_title"),
    ("has_published", "dblp:wrote"),
    ("published_in", "dblp:appeared_in"),
];

/// A world where roughly `fraction` of tuples use the `dblp:` namespace,
/// plus the mapping triples bridging the two schemas.
#[derive(Clone, Debug)]
pub struct HeteroWorld {
    /// All tuples (mixed namespaces).
    pub tuples: Vec<Tuple>,
    /// Correspondences between the schemas.
    pub mappings: Vec<Mapping>,
}

/// Splits the world: every `1/ratio`-th tuple is renamed into the
/// `dblp:` namespace.
pub fn heterogenize(world: &PubWorld, ratio: usize) -> HeteroWorld {
    let ratio = ratio.max(1);
    let tuples: Vec<Tuple> = world
        .all_tuples()
        .into_iter()
        .enumerate()
        .map(|(i, t)| if i % ratio == 0 { rename(t) } else { t })
        .collect();
    let mappings = RENAMES.iter().map(|(a, b)| Mapping::new(a, b)).collect();
    HeteroWorld { tuples, mappings }
}

fn rename(t: Tuple) -> Tuple {
    let mut out = Tuple::new(t.oid.as_str());
    for (attr, v) in t.fields {
        let renamed = RENAMES
            .iter()
            .find(|(from, _)| *from == attr.as_ref())
            .map(|(_, to)| *to)
            .unwrap_or(attr.as_ref());
        out = out.with(renamed, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubgen::{PubParams, PubWorld};

    #[test]
    fn split_renames_fraction() {
        let w = PubWorld::generate(&PubParams::default(), 1);
        let h = heterogenize(&w, 2);
        let renamed = h
            .tuples
            .iter()
            .filter(|t| t.fields.iter().any(|(a, _)| a.starts_with("dblp:")))
            .count();
        // Tuples without any renameable attribute keep their names, so
        // just require a substantial split.
        assert!(renamed > h.tuples.len() / 4, "renamed {renamed} of {}", h.tuples.len());
        assert!(renamed < h.tuples.len());
        assert_eq!(h.mappings.len(), RENAMES.len());
    }

    #[test]
    fn values_survive_renaming() {
        let w = PubWorld::generate(&PubParams::default(), 2);
        let h = heterogenize(&w, 1); // rename everything
        let originals = w.all_tuples();
        for (orig, renamed) in originals.iter().zip(&h.tuples) {
            assert_eq!(orig.oid, renamed.oid);
            assert_eq!(orig.fields.len(), renamed.fields.len());
            for ((_, v1), (_, v2)) in orig.fields.iter().zip(&renamed.fields) {
                assert_eq!(v1, v2);
            }
        }
    }
}

//! Zipf-skewed write workloads.
//!
//! The scale campaign (DESIGN.md §"Scale and churn") drives the system
//! with *mixed* traffic: the read stream of [`crate::reads`] interleaved
//! with a write stream that keeps touching the same hot attribute
//! values, so stats dissemination, cache invalidation and replica
//! repair all stay exercised while queries drain. The writes insert
//! fresh tuples (fresh OIDs disjoint from the generated world) whose
//! hot attribute is Zipf-drawn from the world's existing value
//! distribution — a write against a popular value lands on the same
//! partitions the popular reads hammer.

use rand::rngs::StdRng;

use unistore_store::Tuple;
use unistore_util::rng::{derive_rng, stream};
use unistore_util::zipf::Zipf;

use crate::pubgen::PubWorld;
use crate::reads::distinct_values;

/// `batches` insert batches of `batch_size` fresh tuples each. Every
/// tuple carries `attr` with a value Zipf-drawn (exponent `theta`) from
/// the world's distinct values of that attribute, plus a marker field
/// identifying it as campaign traffic. OIDs are `w<batch>_<i>` —
/// disjoint from the generated world's OID namespaces, so the writes
/// never collide with preloaded data. Deterministic in `seed`.
pub fn zipf_write_batches(
    world: &PubWorld,
    attr: &str,
    batches: usize,
    batch_size: usize,
    theta: f64,
    seed: u64,
) -> Vec<Vec<Tuple>> {
    let values = distinct_values(world, attr);
    assert!(!values.is_empty(), "attribute {attr:?} has no values in this world");
    let zipf = Zipf::new(values.len(), theta);
    let mut rng: StdRng = derive_rng(seed, stream::WORKLOAD ^ 0x57);
    (0..batches)
        .map(|b| {
            (0..batch_size)
                .map(|i| {
                    let v = values[zipf.sample(&mut rng)].clone();
                    Tuple::new(&format!("w{b}_{i}"))
                        .with(attr, v)
                        .with("source", unistore_store::Value::str("campaign"))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubgen::PubParams;

    #[test]
    fn deterministic_fresh_and_skewed() {
        let w = PubWorld::generate(&PubParams::default(), 11);
        let a = zipf_write_batches(&w, "published_in", 4, 8, 1.2, 3);
        let b = zipf_write_batches(&w, "published_in", 4, 8, 1.2, 3);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|batch| batch.len() == 8));
        // Bit-identical across runs with the same seed.
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert_eq!(x.oid, y.oid);
            assert_eq!(x.fields.len(), y.fields.len());
        }
        // Fresh OIDs: none collide with the generated world.
        let world_oids: Vec<_> = w.all_tuples().iter().map(|t| t.oid.clone()).collect();
        assert!(a.iter().flatten().all(|t| !world_oids.contains(&t.oid)));
        // Values drawn from the world's existing distribution.
        let values = distinct_values(&w, "published_in");
        for t in a.iter().flatten() {
            let v = t.fields.iter().find(|(k, _)| k.as_ref() == "published_in").unwrap();
            assert!(values.iter().any(|x| x.eq_values(&v.1)));
        }
    }
}

//! Typo injection for similarity workloads.

use rand::rngs::StdRng;
use rand::Rng;

/// Applies one random single-character edit (substitution, deletion,
/// insertion or transposition), keeping the result within edit distance
/// 1 of the input — the "typos and similar" the paper's
/// `edist(?sr,'ICDE') < 3` is meant to absorb.
pub fn inject_typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // Substitution.
            let i = rng.gen_range(0..out.len());
            let c = (b'A' + rng.gen_range(0..26u8)) as char;
            out[i] = c;
        }
        1 if out.len() > 1 => {
            // Deletion.
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        2 => {
            // Insertion.
            let i = rng.gen_range(0..=out.len());
            let c = (b'A' + rng.gen_range(0..26u8)) as char;
            out.insert(i, c);
        }
        _ if out.len() > 1 => {
            // Transposition (distance ≤ 2 under plain Levenshtein).
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
        }
        _ => {
            let c = (b'A' + rng.gen_range(0..26u8)) as char;
            out[0] = c;
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unistore_store::qgram::edit_distance;

    #[test]
    fn typo_stays_close() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let t = inject_typo("ICDE", &mut rng);
            assert!(edit_distance("ICDE", &t) <= 2, "typo {t:?} drifted too far from ICDE");
        }
    }

    #[test]
    fn typo_usually_changes_the_string() {
        let mut rng = StdRng::seed_from_u64(4);
        let changed = (0..100).filter(|_| inject_typo("SIGMOD", &mut rng) != "SIGMOD").count();
        assert!(changed > 80);
    }

    #[test]
    fn empty_input_handled() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!inject_typo("", &mut rng).is_empty());
    }
}

//! The Fig. 3 publication world.

use rand::rngs::StdRng;
use rand::Rng;

use unistore_store::{Tuple, Value};
use unistore_util::rng::{derive_rng, stream};
use unistore_util::zipf::Zipf;

/// Scale and shape of the generated world.
#[derive(Clone, Debug)]
pub struct PubParams {
    /// Number of authors.
    pub n_authors: usize,
    /// Number of conference instances.
    pub n_conferences: usize,
    /// Mean publications per author (each links author → publication →
    /// conference).
    pub pubs_per_author: usize,
    /// Zipf exponent of conference popularity (0 = uniform).
    pub conf_skew: f64,
    /// Year range of conferences.
    pub years: (i64, i64),
    /// Fraction of conference `series` values carrying a typo
    /// (similarity workload; the paper's `edist(?sr,'ICDE')<3`).
    pub typo_rate: f64,
    /// Unpublished drafts (title/year tuples referenced by no author's
    /// `has_published`), as a multiple of the published-paper count.
    /// UniStore is a *universal* storage: shared attribute regions like
    /// `title` and `year` accumulate data from many applications, and
    /// bystander entries are what join pushdown filters out at the
    /// leaves. `0.0` (the default) keeps the closed world.
    pub draft_fraction: f64,
}

impl Default for PubParams {
    fn default() -> Self {
        PubParams {
            n_authors: 100,
            n_conferences: 20,
            pubs_per_author: 3,
            conf_skew: 0.8,
            years: (1998, 2006),
            typo_rate: 0.1,
            draft_fraction: 0.0,
        }
    }
}

const SERIES: &[&str] =
    &["ICDE", "VLDB", "SIGMOD", "EDBT", "CIDR", "ICDCS", "P2P", "NETDB", "WWW", "CIKM"];

const FIRST: &[&str] = &[
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy", "karl",
    "liam", "mona", "nina", "oscar", "peggy", "quinn", "rita", "sven", "tina",
];

const TOPICS: &[&str] = &[
    "Similarity Queries",
    "Skyline Processing",
    "Range Indexing",
    "Trie Overlays",
    "Update Propagation",
    "Cost Models",
    "Schema Mappings",
    "Triple Stores",
    "Query Routing",
    "Load Balancing",
    "Gossip Protocols",
    "Adaptive Plans",
];

/// A generated world: authors, publications, conferences.
#[derive(Clone, Debug)]
pub struct PubWorld {
    /// Author tuples (`name`, `age`, `num_of_pubs`, `email`, and one
    /// `has_published` per publication).
    pub authors: Vec<Tuple>,
    /// Publication tuples (`title`, `published_in`, `year`).
    pub publications: Vec<Tuple>,
    /// Conference tuples (`confname`, `series`, `year`).
    pub conferences: Vec<Tuple>,
    /// Unpublished drafts (`title`, `year`) no author references —
    /// bystander data in the shared attribute regions.
    pub drafts: Vec<Tuple>,
}

impl PubWorld {
    /// Generates deterministically from a seed.
    pub fn generate(params: &PubParams, seed: u64) -> PubWorld {
        let mut rng: StdRng = derive_rng(seed, stream::WORKLOAD);
        let conf_pick = Zipf::new(params.n_conferences.max(1), params.conf_skew);

        // Conferences: cycle through series with increasing years.
        let mut conferences = Vec::with_capacity(params.n_conferences);
        for c in 0..params.n_conferences {
            let series = SERIES[c % SERIES.len()];
            let year = rng.gen_range(params.years.0..=params.years.1);
            let series_val = if rng.gen::<f64>() < params.typo_rate {
                crate::typos::inject_typo(series, &mut rng)
            } else {
                series.to_string()
            };
            conferences.push(
                Tuple::new(&format!("conf{c}"))
                    .with("confname", Value::str(&format!("{series} {year}")))
                    .with("series", Value::str(&series_val))
                    .with("year", Value::Int(year)),
            );
        }

        let mut publications = Vec::new();
        let mut authors = Vec::with_capacity(params.n_authors);
        for a in 0..params.n_authors {
            let name = format!("{}-{a}", FIRST[a % FIRST.len()]);
            let n_pubs = 1 + rng.gen_range(0..=(params.pubs_per_author.max(1) * 2 - 1));
            let mut author = Tuple::new(&format!("auth{a}"))
                .with("name", Value::str(&name))
                .with("age", Value::Int(rng.gen_range(24..=65)))
                .with("num_of_pubs", Value::Int(n_pubs as i64))
                .with("email", Value::str(&format!("{name}@example.org")));
            for p in 0..n_pubs {
                let pid = publications.len();
                let conf = conf_pick.sample(&mut rng);
                let conf_name = conferences[conf].get("confname").unwrap().clone();
                let year = conferences[conf].get("year").unwrap().clone();
                let title = format!("{} for P2P Systems #{pid}", TOPICS[(a + p) % TOPICS.len()]);
                publications.push(
                    Tuple::new(&format!("pub{pid}"))
                        .with("title", Value::str(&title))
                        .with("published_in", conf_name)
                        .with("year", year),
                );
                author = author.with("has_published", Value::str(&title));
            }
            authors.push(author);
        }

        // Bystander data: drafts live in the same `title`/`year` index
        // regions as published papers but join with nothing.
        let n_drafts = (publications.len() as f64 * params.draft_fraction).round() as usize;
        let mut drafts = Vec::with_capacity(n_drafts);
        for d in 0..n_drafts {
            let title = format!("{} (draft) #{d}", TOPICS[d % TOPICS.len()]);
            drafts.push(
                Tuple::new(&format!("draft{d}"))
                    .with("title", Value::str(&title))
                    .with("year", Value::Int(rng.gen_range(params.years.0..=params.years.1))),
            );
        }
        PubWorld { authors, publications, conferences, drafts }
    }

    /// Everything as one tuple stream (load order: conferences,
    /// publications, drafts, authors).
    pub fn all_tuples(&self) -> Vec<Tuple> {
        self.conferences
            .iter()
            .chain(&self.publications)
            .chain(&self.drafts)
            .chain(&self.authors)
            .cloned()
            .collect()
    }

    /// Total triple count after decomposition.
    pub fn triple_count(&self) -> usize {
        self.all_tuples().iter().map(|t| t.fields.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = PubParams::default();
        let a = PubWorld::generate(&p, 7);
        let b = PubWorld::generate(&p, 7);
        assert_eq!(a.all_tuples(), b.all_tuples());
        let c = PubWorld::generate(&p, 8);
        assert_ne!(a.all_tuples(), c.all_tuples());
    }

    #[test]
    fn scale_matches_params() {
        let p = PubParams { n_authors: 50, n_conferences: 10, ..Default::default() };
        let w = PubWorld::generate(&p, 1);
        assert_eq!(w.authors.len(), 50);
        assert_eq!(w.conferences.len(), 10);
        assert!(!w.publications.is_empty());
        assert!(w.triple_count() > 50 * 4);
    }

    #[test]
    fn referential_integrity() {
        let w = PubWorld::generate(&PubParams::default(), 3);
        // Every publication's conference exists.
        for p in &w.publications {
            let conf = p.get("published_in").unwrap();
            assert!(
                w.conferences.iter().any(|c| c.get("confname").unwrap() == conf),
                "dangling conference {conf}"
            );
        }
        // Every has_published matches a publication title.
        for a in &w.authors {
            for (attr, v) in &a.fields {
                if attr.as_ref() == "has_published" {
                    assert!(w.publications.iter().any(|p| p.get("title").unwrap() == v));
                }
            }
        }
    }

    #[test]
    fn drafts_are_bystanders() {
        let closed = PubWorld::generate(&PubParams::default(), 9);
        assert!(closed.drafts.is_empty(), "closed world by default");
        let open = PubWorld::generate(&PubParams { draft_fraction: 1.5, ..Default::default() }, 9);
        let expected = (open.publications.len() as f64 * 1.5).round() as usize;
        assert_eq!(open.drafts.len(), expected);
        // No author references a draft title.
        for d in &open.drafts {
            let title = d.get("title").unwrap();
            for a in &open.authors {
                for (attr, v) in &a.fields {
                    assert!(
                        attr.as_ref() != "has_published" || v != title,
                        "draft {title} referenced by an author"
                    );
                }
            }
        }
    }

    #[test]
    fn skew_concentrates_popularity() {
        let p =
            PubParams { n_authors: 200, n_conferences: 10, conf_skew: 1.2, ..Default::default() };
        let w = PubWorld::generate(&p, 5);
        let mut counts = [0usize; 10];
        for publ in &w.publications {
            let conf = publ.get("published_in").unwrap();
            let idx =
                w.conferences.iter().position(|c| c.get("confname").unwrap() == conf).unwrap();
            counts[idx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let avg = w.publications.len() / 10;
        assert!(max > 2 * avg, "skew should concentrate publications (max {max}, avg {avg})");
    }

    #[test]
    fn typos_present_at_requested_rate() {
        let p = PubParams { n_conferences: 100, typo_rate: 0.5, ..Default::default() };
        let w = PubWorld::generate(&p, 11);
        let exact = w
            .conferences
            .iter()
            .filter(|c| {
                let s = c.get("series").unwrap().as_str().unwrap();
                SERIES.contains(&s)
            })
            .count();
        assert!(exact > 20 && exact < 80, "about half should be typo-free, got {exact}");
    }
}

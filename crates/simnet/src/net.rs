//! The simulator core: event queue, node table, delivery loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unistore_util::wire::Wire;

use crate::effects::{Effects, Timer};
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::metrics::NetMetrics;
use crate::time::SimTime;

/// Identifies a node within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Pseudo-sender for messages injected by the simulation driver.
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);

    /// Index into dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Wire for NodeId {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.0.encode(buf);
    }

    fn decode(buf: &mut bytes::Bytes) -> Result<Self, unistore_util::wire::WireError> {
        Ok(NodeId(u32::decode(buf)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "n(ext)")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Protocol logic hosted on a simulated node.
///
/// Implementations queue effects instead of performing I/O; see
/// [`Effects`]. The same implementations run under the live threaded
/// runtime in the `unistore` crate.
pub trait NodeBehavior {
    /// Message type exchanged between nodes; sized on the wire for byte
    /// accounting.
    type Msg: Wire + Clone;
    /// Outputs surfaced to the simulation driver (query results, probe
    /// completions, …).
    type Out;

    /// Called once when the node joins the network, and again each time it
    /// comes back up after a crash. Used to arm maintenance timers.
    fn on_start(&mut self, _now: SimTime, _fx: &mut Effects<Self::Msg, Self::Out>) {}

    /// Handles one delivered message.
    fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: Self::Msg,
        fx: &mut Effects<Self::Msg, Self::Out>,
    );

    /// Handles a fired timer.
    fn on_timer(&mut self, _now: SimTime, _timer: Timer, _fx: &mut Effects<Self::Msg, Self::Out>) {}
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer(Timer),
    Up,
    Down,
    Start,
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

// Ordering for the BinaryHeap (through Reverse): by time, then sequence,
// giving deterministic FIFO tie-breaking.
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Slot<N> {
    node: N,
    up: bool,
}

/// The deterministic discrete-event network.
pub struct SimNet<N: NodeBehavior> {
    slots: Vec<Slot<N>>,
    /// Messages delivered to each node (same index as `slots`): the
    /// per-node load profile behind skew measurements (Gini over the
    /// delivery counts is the scale campaign's balance metric).
    delivered_by: Vec<u64>,
    queue: BinaryHeap<Reverse<Event<N::Msg>>>,
    now: SimTime,
    seq: u64,
    latency: Box<dyn LatencyModel>,
    rng: StdRng,
    loss_rate: f64,
    faults: FaultPlan,
    metrics: NetMetrics,
    outputs: Vec<(SimTime, NodeId, N::Out)>,
    /// Opt-in message-trace digest: when enabled, every send folds
    /// (time, origin, destination, encoded bytes) into an FNV-1a hash.
    /// Two same-seed runs of a deterministic protocol must produce the
    /// same digest; any divergence pinpoints an order or payload leak.
    /// Off by default — the fold encodes each message, which the
    /// alloc-free hot path must not pay for.
    trace_on: bool,
    trace_digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl<N: NodeBehavior> SimNet<N> {
    /// Creates an empty network with a boxed latency model.
    pub fn new_boxed(latency: Box<dyn LatencyModel>, seed: u64) -> Self {
        SimNet {
            slots: Vec::new(),
            delivered_by: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            latency,
            rng: StdRng::seed_from_u64(seed),
            loss_rate: 0.0,
            faults: FaultPlan::default(),
            metrics: NetMetrics::default(),
            outputs: Vec::new(),
            trace_on: false,
            trace_digest: FNV_OFFSET,
        }
    }

    /// Creates an empty network with the given latency model and seed.
    pub fn new(latency: impl LatencyModel + 'static, seed: u64) -> Self {
        SimNet {
            slots: Vec::new(),
            delivered_by: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            latency: Box::new(latency),
            rng: StdRng::seed_from_u64(seed),
            loss_rate: 0.0,
            faults: FaultPlan::default(),
            metrics: NetMetrics::default(),
            outputs: Vec::new(),
            trace_on: false,
            trace_digest: FNV_OFFSET,
        }
    }

    /// Enables (or disables) the message-trace digest, resetting it to
    /// the empty-trace value.
    pub fn set_trace(&mut self, on: bool) {
        self.trace_on = on;
        self.trace_digest = FNV_OFFSET;
    }

    /// The accumulated message-trace digest (the empty-trace constant
    /// when tracing was never enabled).
    pub fn trace_digest(&self) -> u64 {
        self.trace_digest
    }

    /// Fraction of messages silently lost in transit (`0.0..=1.0`).
    pub fn set_loss_rate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "loss rate out of range");
        self.loss_rate = rate;
    }

    /// Installs a [`FaultPlan`] (replacing any previous one). Faults
    /// apply to cross-node traffic only; self-sends never traverse the
    /// network and stay exempt.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Removes all scheduled faults.
    pub fn clear_fault_plan(&mut self) {
        self.faults = FaultPlan::default();
    }

    /// The currently installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Adds a node and schedules its `on_start` at the current time.
    pub fn add_node(&mut self, node: N) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(Slot { node, up: true });
        self.delivered_by.push(0);
        self.push_event(self.now, id, EventKind::Start);
        id
    }

    /// Number of nodes ever added.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no nodes were added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated network counters.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// Messages delivered to each node so far, indexed by
    /// [`NodeId::index`]. The per-node load profile: experiments compute
    /// skew statistics (Gini) over these counts to quantify the paper's
    /// balancing claim at scale.
    pub fn delivered_per_node(&self) -> &[u64] {
        &self.delivered_by
    }

    /// Immutable access to a node's behavior state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.slots[id.index()].node
    }

    /// Mutable access to a node's behavior state (driver-side setup only;
    /// protocol logic must go through messages).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.slots[id.index()].node
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.slots[id.index()].up
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.slots.iter().enumerate().map(|(i, s)| (NodeId(i as u32), &s.node))
    }

    /// Injects a driver message, delivered to `to` at the current time.
    pub fn inject(&mut self, to: NodeId, msg: N::Msg) {
        self.push_event(self.now, to, EventKind::Deliver { from: NodeId::EXTERNAL, msg });
    }

    /// Schedules a fail-stop crash.
    pub fn schedule_down(&mut self, id: NodeId, at: SimTime) {
        self.push_event(at, id, EventKind::Down);
    }

    /// Schedules a revival (calls `on_start` again).
    pub fn schedule_up(&mut self, id: NodeId, at: SimTime) {
        self.push_event(at, id, EventKind::Up);
    }

    /// Outputs emitted so far, drained.
    pub fn take_outputs(&mut self) -> Vec<(SimTime, NodeId, N::Out)> {
        std::mem::take(&mut self.outputs)
    }

    /// Outputs emitted so far, by reference.
    pub fn outputs(&self) -> &[(SimTime, NodeId, N::Out)] {
        &self.outputs
    }

    fn push_event(&mut self, at: SimTime, node: NodeId, kind: EventKind<N::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, node, kind }));
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue moved backwards");
        self.now = ev.at;
        let idx = ev.node.index();
        let mut fx: Effects<N::Msg, N::Out> = Effects::new();
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                let slot = &mut self.slots[idx];
                if slot.up {
                    self.metrics.delivered += 1;
                    self.delivered_by[idx] += 1;
                    slot.node.on_message(self.now, from, msg, &mut fx);
                } else {
                    self.metrics.dropped += 1;
                }
            }
            EventKind::Timer(timer) => {
                let slot = &mut self.slots[idx];
                if slot.up {
                    self.metrics.timers_fired += 1;
                    slot.node.on_timer(self.now, timer, &mut fx);
                }
            }
            EventKind::Start => {
                let slot = &mut self.slots[idx];
                if slot.up {
                    slot.node.on_start(self.now, &mut fx);
                }
            }
            EventKind::Down => {
                let slot = &mut self.slots[idx];
                if slot.up {
                    slot.up = false;
                    self.metrics.downs += 1;
                }
            }
            EventKind::Up => {
                let slot = &mut self.slots[idx];
                if !slot.up {
                    slot.up = true;
                    self.metrics.ups += 1;
                    slot.node.on_start(self.now, &mut fx);
                }
            }
        }
        self.apply_effects(ev.node, fx);
        true
    }

    fn apply_effects(&mut self, origin: NodeId, mut fx: Effects<N::Msg, N::Out>) {
        for (to, msg) in fx.sends.drain(..) {
            self.metrics.sent += 1;
            self.metrics.bytes += msg.wire_size() as u64;
            if self.trace_on {
                // Fold the send before loss/fault filtering: the digest
                // witnesses what the protocol *did*, and the seeded RNG
                // makes the filtering itself reproducible anyway.
                let mut h = fnv_fold(self.trace_digest, &self.now.as_micros().to_le_bytes());
                h = fnv_fold(h, &origin.0.to_le_bytes());
                h = fnv_fold(h, &to.0.to_le_bytes());
                h = fnv_fold(h, &msg.to_bytes());
                self.trace_digest = h;
            }
            if to == NodeId::EXTERNAL || to.index() >= self.slots.len() {
                debug_assert!(to != NodeId::EXTERNAL, "protocol sent to EXTERNAL; use emit()");
                self.metrics.dropped += 1;
                continue;
            }
            if self.loss_rate > 0.0 && self.rng.gen::<f64>() < self.loss_rate {
                self.metrics.dropped += 1;
                continue;
            }
            if to != origin && self.faults.blocks(self.now, origin, to).is_some() {
                self.metrics.dropped += 1;
                continue;
            }
            let delay = if to == origin {
                // Local self-send: no network traversal.
                SimTime::ZERO
            } else {
                self.latency.sample(&mut self.rng, origin, to)
                    + self.faults.extra_delay(self.now, origin, to)
                    + self.faults.reorder_delay(self.now, &mut self.rng)
            };
            if to != origin && self.faults.duplicates(self.now, &mut self.rng) {
                let lag = self.latency.sample(&mut self.rng, origin, to);
                self.metrics.duplicated += 1;
                self.push_event(
                    self.now + delay + lag,
                    to,
                    EventKind::Deliver { from: origin, msg: msg.clone() },
                );
            }
            self.push_event(self.now + delay, to, EventKind::Deliver { from: origin, msg });
        }
        for (delay, timer) in fx.timers.drain(..) {
            self.push_event(self.now + delay, origin, EventKind::Timer(timer));
        }
        for out in fx.emits.drain(..) {
            self.outputs.push((self.now, origin, out));
        }
    }

    /// Runs until the queue is empty or simulated time exceeds `limit`.
    /// Returns `true` if the network went quiescent within the limit.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> bool {
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(ev)) if ev.at > limit => return false,
                _ => {
                    self.step();
                }
            }
        }
    }

    /// Processes all events scheduled up to and including `deadline`,
    /// then advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Expected one-way link delay of the installed latency model.
    pub fn expected_link_delay(&self) -> SimTime {
        self.latency.expected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;
    use bytes::{Bytes, BytesMut};
    use unistore_util::wire::WireError;

    /// Toy protocol: forwards a counter along a ring until it hits zero,
    /// then emits the hop count.
    #[derive(Clone, Debug, PartialEq)]
    struct Hop(u64);

    impl Wire for Hop {
        fn encode(&self, buf: &mut BytesMut) {
            self.0.encode(buf);
        }
        fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
            Ok(Hop(u64::decode(buf)?))
        }
    }

    struct RingNode {
        next: NodeId,
        started: u32,
    }

    impl NodeBehavior for RingNode {
        type Msg = Hop;
        type Out = u64;

        fn on_start(&mut self, _now: SimTime, _fx: &mut Effects<Hop, u64>) {
            self.started += 1;
        }

        fn on_message(
            &mut self,
            _now: SimTime,
            _from: NodeId,
            msg: Hop,
            fx: &mut Effects<Hop, u64>,
        ) {
            if msg.0 == 0 {
                fx.emit(0);
            } else {
                fx.send(self.next, Hop(msg.0 - 1));
            }
        }
    }

    fn ring(n: u32, seed: u64) -> SimNet<RingNode> {
        let mut net = SimNet::new(ConstantLatency(SimTime::from_millis(10)), seed);
        for i in 0..n {
            net.add_node(RingNode { next: NodeId((i + 1) % n), started: 0 });
        }
        net
    }

    #[test]
    fn message_circulates_and_time_advances() {
        let mut net = ring(4, 1);
        net.inject(NodeId(0), Hop(8));
        assert!(net.run_until_quiescent(SimTime::from_secs(10)));
        // 8 forwards at 10ms each (the final delivery with 0 hops emits).
        assert_eq!(net.now(), SimTime::from_millis(80));
        assert_eq!(net.outputs().len(), 1);
        assert_eq!(net.metrics().sent, 8);
        assert_eq!(net.metrics().delivered, 9); // inject + 8 forwards
        assert!(net.metrics().bytes >= 8);
        // The per-node profile sums to the global counter and spreads
        // over the ring (the hop circulates through all four nodes).
        assert_eq!(net.delivered_per_node().iter().sum::<u64>(), 9);
        assert!(net.delivered_per_node().iter().all(|&d| d > 0));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut net = ring(5, seed);
            net.set_loss_rate(0.1);
            for i in 0..5 {
                net.inject(NodeId(i), Hop(20));
            }
            net.run_until_quiescent(SimTime::from_secs(100));
            (net.metrics(), net.now())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds should diverge under loss");
    }

    #[test]
    fn loss_drops_messages() {
        let mut net = ring(2, 3);
        net.set_loss_rate(1.0);
        net.inject(NodeId(0), Hop(5));
        net.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(net.metrics().dropped, 1);
        assert_eq!(net.outputs().len(), 0);
    }

    #[test]
    fn down_node_drops_and_up_restarts() {
        let mut net = ring(2, 3);
        net.schedule_down(NodeId(1), SimTime::ZERO);
        net.run_until(SimTime::from_millis(1));
        net.inject(NodeId(0), Hop(3)); // 0 → 1 drops.
        net.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(net.metrics().dropped, 1);
        assert!(!net.is_up(NodeId(1)));

        let before = net.node(NodeId(1)).started;
        net.schedule_up(NodeId(1), net.now() + SimTime::from_millis(1));
        net.run_until_quiescent(SimTime::from_secs(10));
        assert!(net.is_up(NodeId(1)));
        assert_eq!(net.node(NodeId(1)).started, before + 1, "on_start re-fired");
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        #[derive(Clone, Debug)]
        struct NoMsg;
        impl Wire for NoMsg {
            fn encode(&self, _b: &mut BytesMut) {}
            fn decode(_b: &mut Bytes) -> Result<Self, WireError> {
                Ok(NoMsg)
            }
        }
        impl NodeBehavior for TimerNode {
            type Msg = NoMsg;
            type Out = ();
            fn on_start(&mut self, _now: SimTime, fx: &mut Effects<NoMsg, ()>) {
                fx.set_timer(SimTime::from_millis(30), Timer::new(1, 30));
                fx.set_timer(SimTime::from_millis(10), Timer::new(1, 10));
                fx.set_timer(SimTime::from_millis(20), Timer::new(1, 20));
            }
            fn on_message(
                &mut self,
                _n: SimTime,
                _f: NodeId,
                _m: NoMsg,
                _fx: &mut Effects<NoMsg, ()>,
            ) {
            }
            fn on_timer(&mut self, _now: SimTime, t: Timer, _fx: &mut Effects<NoMsg, ()>) {
                self.fired.push(t.payload);
            }
        }
        let mut net = SimNet::new(ConstantLatency(SimTime::ZERO), 0);
        let id = net.add_node(TimerNode { fired: vec![] });
        net.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(net.node(id).fired, vec![10, 20, 30]);
        assert_eq!(net.metrics().timers_fired, 3);
    }

    #[test]
    fn partition_blocks_then_heals() {
        use crate::fault::{FaultPlan, Window};
        let mut net = ring(2, 3);
        net.set_fault_plan(FaultPlan::new().partition(
            "bisect",
            [NodeId(0)],
            Window::new(SimTime::ZERO, SimTime::from_secs(1)),
        ));
        net.inject(NodeId(0), Hop(1)); // 0 → 1 is cut: dropped.
        net.run_until(SimTime::from_millis(500));
        assert_eq!(net.metrics().dropped, 1);
        assert_eq!(net.outputs().len(), 0);
        // After the heal the same hop goes through.
        net.run_until(SimTime::from_secs(2));
        net.inject(NodeId(0), Hop(1));
        assert!(net.run_until_quiescent(SimTime::from_secs(10)));
        assert_eq!(net.outputs().len(), 1);
    }

    #[test]
    fn duplication_redelivers_messages() {
        use crate::fault::{FaultPlan, Window};
        let mut net = ring(2, 3);
        net.set_fault_plan(FaultPlan::new().duplicate(1.0, Window::always()));
        net.inject(NodeId(0), Hop(1));
        net.run_until_quiescent(SimTime::from_secs(10));
        // Every cross-node send arrives twice; the protocol just emits
        // again on the duplicate.
        assert!(net.metrics().duplicated >= 1, "{:?}", net.metrics());
        // Every cross-node send lands twice; the inject is the +1.
        assert_eq!(net.metrics().delivered, net.metrics().sent + net.metrics().duplicated + 1);
        assert_eq!(net.outputs().len(), 2, "the duplicate re-emits");
    }

    #[test]
    fn delay_spike_slows_matching_link() {
        use crate::fault::{FaultPlan, Window};
        let mut net = ring(2, 3);
        net.set_fault_plan(FaultPlan::new().delay_spike(
            Some(NodeId(0)),
            Some(NodeId(1)),
            SimTime::from_millis(500),
            Window::always(),
        ));
        net.inject(NodeId(0), Hop(1)); // one 0 → 1 hop, then emit at 1.
        net.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(net.now(), SimTime::from_millis(510), "10ms link + 500ms spike");
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut net = ring(2, 0);
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.now(), SimTime::from_secs(5));
    }

    #[test]
    fn take_outputs_drains() {
        let mut net = ring(2, 0);
        net.inject(NodeId(0), Hop(0));
        net.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(net.take_outputs().len(), 1);
        assert!(net.outputs().is_empty());
    }
}

//! Link-latency models.
//!
//! The paper demonstrates on (a) a conference LAN and (b) up to 400
//! PlanetLab nodes (§4). The models here reproduce both regimes:
//! [`LanLatency`] for the former, [`PlanetLabLatency`] for the latter.
//! PlanetLab pairwise RTTs are well approximated by a log-normal
//! distribution with median ≈ 75 ms and a heavy tail (cf. published
//! all-pairs-ping studies); each node pair receives a *stable* base
//! latency (derived deterministically from the pair) plus per-message
//! jitter, matching the temporal structure of a real deployment.

use rand::rngs::StdRng;
use rand::Rng;

use unistore_util::fxhash::mix64;

use crate::net::NodeId;
use crate::time::SimTime;

/// Samples the one-way delay for a message.
pub trait LatencyModel: Send {
    /// One-way delay from `from` to `to` for the next message.
    fn sample(&mut self, rng: &mut StdRng, from: NodeId, to: NodeId) -> SimTime;

    /// Expected (mean) one-way delay, used by the cost model to convert
    /// hop counts into predicted latency.
    fn expected(&self) -> SimTime;
}

/// Fixed delay on every link.
#[derive(Clone, Debug)]
pub struct ConstantLatency(pub SimTime);

impl LatencyModel for ConstantLatency {
    fn sample(&mut self, _rng: &mut StdRng, _from: NodeId, _to: NodeId) -> SimTime {
        self.0
    }

    fn expected(&self) -> SimTime {
        self.0
    }
}

/// Uniform delay in `[lo, hi]`.
#[derive(Clone, Debug)]
pub struct UniformLatency {
    lo: SimTime,
    hi: SimTime,
}

impl UniformLatency {
    /// Creates the model; `lo` must not exceed `hi`.
    pub fn new(lo: SimTime, hi: SimTime) -> Self {
        assert!(lo <= hi, "uniform latency bounds out of order");
        UniformLatency { lo, hi }
    }
}

impl LatencyModel for UniformLatency {
    fn sample(&mut self, rng: &mut StdRng, _from: NodeId, _to: NodeId) -> SimTime {
        SimTime::from_micros(rng.gen_range(self.lo.as_micros()..=self.hi.as_micros()))
    }

    fn expected(&self) -> SimTime {
        SimTime::from_micros((self.lo.as_micros() + self.hi.as_micros()) / 2)
    }
}

/// Conference-LAN regime: sub-millisecond, lightly jittered.
#[derive(Clone, Debug, Default)]
pub struct LanLatency;

impl LatencyModel for LanLatency {
    fn sample(&mut self, rng: &mut StdRng, _from: NodeId, _to: NodeId) -> SimTime {
        // 0.2–0.8 ms: switch + stack traversal.
        SimTime::from_micros(rng.gen_range(200..=800))
    }

    fn expected(&self) -> SimTime {
        SimTime::from_micros(500)
    }
}

/// PlanetLab-like WAN regime.
///
/// Per-pair base one-way delay is log-normal (median [`Self::MEDIAN_MS`],
/// σ = 0.6 in log space → p95 ≈ 3× median), derived deterministically from
/// the unordered node pair so that the "geography" of the network is fixed
/// for a given `topology_seed`; each message adds ±15% jitter.
#[derive(Clone, Debug)]
pub struct PlanetLabLatency {
    topology_seed: u64,
}

impl PlanetLabLatency {
    /// Median one-way delay in milliseconds (≈ half a typical PlanetLab
    /// transcontinental RTT).
    pub const MEDIAN_MS: f64 = 37.5;
    /// Log-space standard deviation.
    pub const SIGMA: f64 = 0.6;

    /// Creates the model with a fixed topology.
    pub fn new(topology_seed: u64) -> Self {
        PlanetLabLatency { topology_seed }
    }

    /// The stable base delay of a pair, in milliseconds.
    pub fn base_ms(&self, a: NodeId, b: NodeId) -> f64 {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let h = mix64(self.topology_seed ^ ((lo as u64) << 32 | hi as u64));
        // Box–Muller from two 32-bit halves of the hash.
        let u1 = ((h >> 32) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        let u2 = ((h & 0xFFFF_FFFF) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Self::MEDIAN_MS * (Self::SIGMA * z).exp()
    }
}

impl LatencyModel for PlanetLabLatency {
    fn sample(&mut self, rng: &mut StdRng, from: NodeId, to: NodeId) -> SimTime {
        let base = self.base_ms(from, to);
        let jitter = rng.gen_range(0.85..=1.15);
        SimTime::from_millis_f64(base * jitter)
    }

    fn expected(&self) -> SimTime {
        // Mean of log-normal: median * exp(sigma^2 / 2).
        SimTime::from_millis_f64(Self::MEDIAN_MS * (Self::SIGMA * Self::SIGMA / 2.0).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantLatency(SimTime::from_millis(5));
        let mut r = rng();
        for _ in 0..5 {
            assert_eq!(m.sample(&mut r, NodeId(0), NodeId(1)), SimTime::from_millis(5));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = SimTime::from_millis(1);
        let hi = SimTime::from_millis(2);
        let mut m = UniformLatency::new(lo, hi);
        let mut r = rng();
        for _ in 0..100 {
            let s = m.sample(&mut r, NodeId(0), NodeId(1));
            assert!(s >= lo && s <= hi);
        }
        assert_eq!(m.expected(), SimTime::from_micros(1_500));
    }

    #[test]
    fn lan_is_submillisecond() {
        let mut m = LanLatency;
        let mut r = rng();
        for _ in 0..100 {
            assert!(m.sample(&mut r, NodeId(0), NodeId(1)) < SimTime::from_millis(1));
        }
    }

    #[test]
    fn planetlab_base_is_symmetric_and_stable() {
        let m = PlanetLabLatency::new(42);
        assert_eq!(m.base_ms(NodeId(3), NodeId(9)), m.base_ms(NodeId(9), NodeId(3)));
        assert_eq!(m.base_ms(NodeId(3), NodeId(9)), m.base_ms(NodeId(3), NodeId(9)));
        // Different topology seed → different geography.
        let m2 = PlanetLabLatency::new(43);
        assert_ne!(m.base_ms(NodeId(3), NodeId(9)), m2.base_ms(NodeId(3), NodeId(9)));
    }

    #[test]
    fn planetlab_median_plausible() {
        let m = PlanetLabLatency::new(7);
        let mut bases: Vec<f64> =
            (0..500u32).map(|i| m.base_ms(NodeId(i), NodeId(i + 1000))).collect();
        bases.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = bases[bases.len() / 2];
        assert!(
            (20.0..60.0).contains(&median),
            "median one-way delay {median} ms outside PlanetLab regime"
        );
        // Heavy tail exists.
        assert!(bases[bases.len() - 1] > 2.0 * median);
    }

    #[test]
    fn planetlab_jitter_varies_per_message() {
        let mut m = PlanetLabLatency::new(7);
        let mut r = rng();
        let a = m.sample(&mut r, NodeId(0), NodeId(1));
        let b = m.sample(&mut r, NodeId(0), NodeId(1));
        assert_ne!(a, b);
    }
}

//! Deterministic discrete-event network simulator.
//!
//! UniStore's published evaluation ran on PlanetLab and conference
//! hardware; this reproduction substitutes a seeded discrete-event
//! simulator (DESIGN.md §2). Protocol code is written against the
//! [`NodeBehavior`] trait and is oblivious to whether it runs under the
//! simulator or the live threaded runtime in `unistore::live`.
//!
//! Key properties:
//!
//! * **Determinism** — a single seeded RNG drives latency sampling and
//!   loss; event ties break on sequence numbers; reruns are bit-identical.
//! * **Honest accounting** — every message crossing the network reports
//!   its encoded size via `Wire::wire_size`, so byte counts in experiment
//!   output correspond to real serialized sizes.
//! * **Failure injection** — uniform message loss, fail-stop crashes,
//!   churn schedules ([`churn`]), and composable [`fault`] plans
//!   (partitions, gray-failure delay spikes, duplication, reordering).

pub mod churn;
pub mod effects;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod net;
pub mod time;

pub use effects::{Effects, Timer};
pub use fault::{FaultPlan, Window};
pub use latency::{ConstantLatency, LanLatency, LatencyModel, PlanetLabLatency, UniformLatency};
pub use metrics::NetMetrics;
pub use net::{NodeBehavior, NodeId, SimNet};
pub use time::SimTime;

//! The effects buffer protocol handlers write into.
//!
//! Handlers never touch the network directly; they queue *effects*
//! (sends, timers, emitted outputs) that the simulator applies after the
//! handler returns. This keeps protocol code free of aliasing issues and
//! unit-testable without a network: tests construct an [`Effects`], call
//! the handler, and assert on its contents.

use crate::net::NodeId;
use crate::time::SimTime;

/// A timer registration: after `delay`, `on_timer` fires with this value.
///
/// `kind` discriminates timer purposes within a protocol; `payload`
/// carries a small amount of context (e.g. a query id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Timer {
    /// Protocol-defined discriminator.
    pub kind: u32,
    /// Protocol-defined context value.
    pub payload: u64,
}

impl Timer {
    /// Convenience constructor.
    pub fn new(kind: u32, payload: u64) -> Self {
        Timer { kind, payload }
    }
}

/// Effect queue passed to every handler invocation.
#[derive(Debug)]
pub struct Effects<M, O> {
    pub(crate) sends: Vec<(NodeId, M)>,
    pub(crate) timers: Vec<(SimTime, Timer)>,
    pub(crate) emits: Vec<O>,
}

impl<M, O> Default for Effects<M, O> {
    fn default() -> Self {
        Effects { sends: Vec::new(), timers: Vec::new(), emits: Vec::new() }
    }
}

impl<M, O> Effects<M, O> {
    /// Creates an empty buffer (mostly for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message to another node.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Arms a timer to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, timer: Timer) {
        self.timers.push((delay, timer));
    }

    /// Emits an output to the simulation driver (e.g. a query result).
    pub fn emit(&mut self, out: O) {
        self.emits.push(out);
    }

    /// Queued sends (for tests on protocol handlers).
    pub fn sends(&self) -> &[(NodeId, M)] {
        &self.sends
    }

    /// Queued timers (for tests on protocol handlers).
    pub fn timers(&self) -> &[(SimTime, Timer)] {
        &self.timers
    }

    /// Queued emits (for tests on protocol handlers).
    pub fn emits(&self) -> &[O] {
        &self.emits
    }

    /// True if no effects were produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.emits.is_empty()
    }

    /// Drains all effects (used by alternative runtimes such as
    /// `unistore::live`).
    #[allow(clippy::type_complexity)]
    pub fn drain(&mut self) -> (Vec<(NodeId, M)>, Vec<(SimTime, Timer)>, Vec<O>) {
        (
            std::mem::take(&mut self.sends),
            std::mem::take(&mut self.timers),
            std::mem::take(&mut self.emits),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_and_drains() {
        let mut fx: Effects<&'static str, u32> = Effects::new();
        assert!(fx.is_empty());
        fx.send(NodeId(1), "hello");
        fx.set_timer(SimTime::from_millis(10), Timer::new(1, 99));
        fx.emit(7);
        assert_eq!(fx.sends().len(), 1);
        assert_eq!(fx.timers().len(), 1);
        assert_eq!(fx.emits(), &[7]);
        assert!(!fx.is_empty());
        let (s, t, e) = fx.drain();
        assert_eq!(s, vec![(NodeId(1), "hello")]);
        assert_eq!(t[0].1, Timer::new(1, 99));
        assert_eq!(e, vec![7]);
        assert!(fx.is_empty());
    }
}

//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
///
/// Microsecond resolution comfortably covers the paper's regime
/// (WAN latencies of tens of milliseconds, experiments of minutes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// From fractional milliseconds (used by latency samplers).
    pub fn from_millis_f64(ms: f64) -> SimTime {
        SimTime((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimTime::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimTime::from_millis_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!((a + b).as_micros(), 13_000);
        assert_eq!((a - b).as_micros(), 7_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}

//! Composable fault plans: partitions, gray failures, duplication and
//! reordering.
//!
//! Uniform loss and fail-stop churn (the seed failure model) miss whole
//! classes of real-world misbehavior: split networks that heal, links
//! that silently degrade without dying, and transports that deliver a
//! message twice or late. A [`FaultPlan`] composes any number of such
//! faults, each active within a schedule [`Window`], and is installed
//! with [`SimNet::set_fault_plan`](crate::SimNet::set_fault_plan). All
//! sampling flows through the simulator's seeded RNG, so a faulty run
//! is exactly as reproducible as a healthy one — and an *empty* plan
//! consumes no randomness at all, leaving healthy-path runs
//! bit-identical to a simulator without the fault plane.

use rand::rngs::StdRng;
use rand::Rng;

use unistore_util::FxHashSet;

use crate::net::NodeId;
use crate::time::SimTime;

/// Half-open activity window `[from, until)` on the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First instant the fault is active.
    pub from: SimTime,
    /// First instant the fault is healed again.
    pub until: SimTime,
}

impl Window {
    /// A window active in `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        Window { from, until }
    }

    /// A window that never heals.
    pub fn always() -> Self {
        Window { from: SimTime::ZERO, until: SimTime::MAX }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// A named partition: while active, messages crossing the island
/// boundary (in either direction) are dropped. Healing is just the end
/// of the window — no state to repair in the simulator itself.
#[derive(Clone, Debug)]
struct Partition {
    name: String,
    island: FxHashSet<NodeId>,
    window: Window,
}

/// A gray failure on a link: matching messages still arrive, but late.
/// `None` endpoints are wildcards, so a spike can describe one directed
/// link, everything leaving a node, everything entering one, or the
/// whole network.
#[derive(Clone, Debug)]
struct DelaySpike {
    from: Option<NodeId>,
    to: Option<NodeId>,
    extra: SimTime,
    window: Window,
}

impl DelaySpike {
    fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Probabilistic message duplication: a matching send is delivered a
/// second time after an independently sampled extra link delay.
#[derive(Clone, Copy, Debug)]
struct Duplicate {
    rate: f64,
    window: Window,
}

/// Probabilistic reordering: a matching send is held back by a uniform
/// extra delay in `[0, spread]`, letting later sends overtake it.
#[derive(Clone, Copy, Debug)]
struct Reorder {
    rate: f64,
    spread: SimTime,
    window: Window,
}

/// A composable collection of scheduled faults. Build with the chained
/// constructors, then install via
/// [`SimNet::set_fault_plan`](crate::SimNet::set_fault_plan).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    partitions: Vec<Partition>,
    spikes: Vec<DelaySpike>,
    duplicates: Vec<Duplicate>,
    reorders: Vec<Reorder>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a named partition separating `island` from the rest of the
    /// network within `window`.
    pub fn partition(
        mut self,
        name: &str,
        island: impl IntoIterator<Item = NodeId>,
        window: Window,
    ) -> Self {
        self.partitions.push(Partition {
            name: name.to_string(),
            island: island.into_iter().collect(),
            window,
        });
        self
    }

    /// Adds `extra` one-way delay to every message matching
    /// `from → to` within `window` (`None` endpoints are wildcards).
    pub fn delay_spike(
        mut self,
        from: Option<NodeId>,
        to: Option<NodeId>,
        extra: SimTime,
        window: Window,
    ) -> Self {
        self.spikes.push(DelaySpike { from, to, extra, window });
        self
    }

    /// Duplicates each cross-node message with probability `rate`
    /// within `window`.
    pub fn duplicate(mut self, rate: f64, window: Window) -> Self {
        assert!((0.0..=1.0).contains(&rate), "duplication rate out of range");
        self.duplicates.push(Duplicate { rate, window });
        self
    }

    /// Holds back each cross-node message with probability `rate` by a
    /// uniform extra delay in `[0, spread]` within `window`, so later
    /// sends can overtake it.
    pub fn reorder(mut self, rate: f64, spread: SimTime, window: Window) -> Self {
        assert!((0.0..=1.0).contains(&rate), "reorder rate out of range");
        self.reorders.push(Reorder { rate, spread, window });
        self
    }

    /// Whether the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
            && self.spikes.is_empty()
            && self.duplicates.is_empty()
            && self.reorders.is_empty()
    }

    /// The name of an active partition separating `from` and `to` at
    /// `now`, if any.
    pub fn blocks(&self, now: SimTime, from: NodeId, to: NodeId) -> Option<&str> {
        self.partitions
            .iter()
            .find(|p| p.window.contains(now) && p.island.contains(&from) != p.island.contains(&to))
            .map(|p| p.name.as_str())
    }

    /// Sum of active delay spikes matching `from → to` at `now`.
    pub fn extra_delay(&self, now: SimTime, from: NodeId, to: NodeId) -> SimTime {
        self.spikes
            .iter()
            .filter(|s| s.window.contains(now) && s.matches(from, to))
            .fold(SimTime::ZERO, |acc, s| acc + s.extra)
    }

    /// Samples whether a message sent at `now` is duplicated. Consumes
    /// randomness only when a duplication fault is active.
    pub fn duplicates(&self, now: SimTime, rng: &mut StdRng) -> bool {
        self.duplicates
            .iter()
            .filter(|d| d.window.contains(now) && d.rate > 0.0)
            .any(|d| rng.gen::<f64>() < d.rate)
    }

    /// Samples the reordering hold-back for a message sent at `now`
    /// (zero when no reorder fault fires). Consumes randomness only
    /// when a reorder fault is active.
    pub fn reorder_delay(&self, now: SimTime, rng: &mut StdRng) -> SimTime {
        let mut extra = SimTime::ZERO;
        for r in self.reorders.iter().filter(|r| r.window.contains(now) && r.rate > 0.0) {
            if rng.gen::<f64>() < r.rate && r.spread > SimTime::ZERO {
                extra += SimTime::from_micros(rng.gen_range(0..=r.spread.as_micros()));
            }
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = Window::new(t(10), t(20));
        assert!(!w.contains(t(9)));
        assert!(w.contains(t(10)));
        assert!(w.contains(t(19)));
        assert!(!w.contains(t(20)));
        assert!(Window::always().contains(SimTime::ZERO));
    }

    #[test]
    fn partition_blocks_cross_island_both_ways_and_heals() {
        let plan =
            FaultPlan::new().partition("split", [NodeId(0), NodeId(1)], Window::new(t(5), t(15)));
        // Inactive before the window.
        assert!(plan.blocks(t(0), NodeId(0), NodeId(2)).is_none());
        // Active: both directions across the boundary are cut.
        assert_eq!(plan.blocks(t(10), NodeId(0), NodeId(2)), Some("split"));
        assert_eq!(plan.blocks(t(10), NodeId(2), NodeId(0)), Some("split"));
        // Intra-island and intra-mainland traffic flows.
        assert!(plan.blocks(t(10), NodeId(0), NodeId(1)).is_none());
        assert!(plan.blocks(t(10), NodeId(2), NodeId(3)).is_none());
        // Healed after the window.
        assert!(plan.blocks(t(15), NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn delay_spike_wildcards_and_windows() {
        let plan = FaultPlan::new()
            .delay_spike(Some(NodeId(1)), None, SimTime::from_millis(100), Window::new(t(0), t(10)))
            .delay_spike(
                Some(NodeId(1)),
                Some(NodeId(2)),
                SimTime::from_millis(50),
                Window::always(),
            );
        // Both spikes match 1 → 2 inside the first window: they add up.
        assert_eq!(plan.extra_delay(t(5), NodeId(1), NodeId(2)), SimTime::from_millis(150));
        // Only the wildcard matches 1 → 3.
        assert_eq!(plan.extra_delay(t(5), NodeId(1), NodeId(3)), SimTime::from_millis(100));
        // After the first window only the always-on link spike remains.
        assert_eq!(plan.extra_delay(t(20), NodeId(1), NodeId(2)), SimTime::from_millis(50));
        // Unrelated links are untouched.
        assert_eq!(plan.extra_delay(t(5), NodeId(4), NodeId(5)), SimTime::ZERO);
    }

    #[test]
    fn duplication_and_reordering_sample_at_rate() {
        let plan = FaultPlan::new().duplicate(0.5, Window::always()).reorder(
            0.5,
            SimTime::from_millis(10),
            Window::always(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let dups = (0..1000).filter(|_| plan.duplicates(t(0), &mut rng)).count();
        assert!((350..650).contains(&dups), "~half should duplicate, got {dups}");
        let mut rng = StdRng::seed_from_u64(2);
        let held = (0..1000).filter(|_| plan.reorder_delay(t(0), &mut rng) > SimTime::ZERO).count();
        assert!((350..650).contains(&held), "~half should be held back, got {held}");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(plan.reorder_delay(t(0), &mut rng) <= SimTime::from_millis(10));
        }
    }

    #[test]
    fn empty_plan_consumes_no_randomness() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert!(!plan.duplicates(t(0), &mut a));
        assert_eq!(plan.reorder_delay(t(0), &mut a), SimTime::ZERO);
        // The untouched twin still agrees with the queried RNG.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn out_of_window_faults_consume_no_randomness() {
        let plan = FaultPlan::new().duplicate(1.0, Window::new(t(100), t(200))).reorder(
            1.0,
            SimTime::from_millis(10),
            Window::new(t(100), t(200)),
        );
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert!(!plan.duplicates(t(0), &mut a));
        assert_eq!(plan.reorder_delay(t(0), &mut a), SimTime::ZERO);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}

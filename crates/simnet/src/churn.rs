//! Churn schedules.
//!
//! The paper claims robustness "even in unreliable and highly dynamic
//! environments" (§3). Experiment E11 subjects the overlay to fail-stop
//! churn: nodes alternate between online sessions and offline periods with
//! exponentially distributed durations, the standard model for P2P session
//! behavior.

use rand::rngs::StdRng;
use rand::Rng;

use crate::fault::Window;
use crate::net::{NodeBehavior, NodeId, SimNet};
use crate::time::SimTime;

/// Parameters of an exponential on/off churn process.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Mean online session length.
    pub mean_session: SimTime,
    /// Mean offline duration.
    pub mean_downtime: SimTime,
    /// Fraction of nodes participating in churn (the rest stay up,
    /// modelling stable infrastructure peers).
    pub churn_fraction: f64,
}

impl ChurnConfig {
    /// A moderate PlanetLab-like churn: 30 min sessions, 5 min downtime.
    pub fn moderate() -> Self {
        ChurnConfig {
            mean_session: SimTime::from_secs(1800),
            mean_downtime: SimTime::from_secs(300),
            churn_fraction: 0.5,
        }
    }

    /// Heavy file-sharing-like churn: 10 min sessions, 2 min downtime,
    /// 80% of the population cycling. The scale campaign's stress
    /// setting — roughly 1 in 6 churning nodes is offline at any
    /// instant, and sessions are short enough that routing state decays
    /// between consecutive queries.
    pub fn heavy() -> Self {
        ChurnConfig {
            mean_session: SimTime::from_secs(600),
            mean_downtime: SimTime::from_secs(120),
            churn_fraction: 0.8,
        }
    }
}

/// Draws an exponential duration with the given mean.
fn exponential(rng: &mut StdRng, mean: SimTime) -> SimTime {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimTime::from_micros((-u.ln() * mean.as_micros() as f64) as u64)
}

/// Installs an on/off schedule for every churning node over `[0, horizon]`.
///
/// Nodes start online; the first crash of each node is delayed by one
/// session draw so the network begins fully converged.
pub fn install_churn<N: NodeBehavior>(
    net: &mut SimNet<N>,
    rng: &mut StdRng,
    cfg: &ChurnConfig,
    horizon: SimTime,
) -> Vec<NodeId> {
    let n = net.len();
    let mut churned = Vec::new();
    for i in 0..n {
        if rng.gen::<f64>() >= cfg.churn_fraction {
            continue;
        }
        let id = NodeId(i as u32);
        churned.push(id);
        let mut t = exponential(rng, cfg.mean_session);
        while t < horizon {
            net.schedule_down(id, t);
            t += exponential(rng, cfg.mean_downtime);
            if t >= horizon {
                break;
            }
            net.schedule_up(id, t);
            t += exponential(rng, cfg.mean_session);
        }
    }
    churned
}

/// Installs a correlated mass failure: `kill_fraction` of `island` —
/// typically one [`crate::fault::FaultPlan`] partition island, so the
/// crashes correlate with a connectivity fault — crash together at the
/// window's open and revive together at its close. Models the failure
/// domain the independent-churn model cannot: a rack power event or a
/// network-segment outage taking out many replicas of the same keys at
/// once. Victim selection draws from the seeded RNG (deterministic like
/// [`install_churn`]); returns the victims.
pub fn install_mass_failure<N: NodeBehavior>(
    net: &mut SimNet<N>,
    rng: &mut StdRng,
    island: &[NodeId],
    window: Window,
    kill_fraction: f64,
) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&kill_fraction), "kill fraction out of range");
    let mut victims = Vec::new();
    for &id in island {
        if rng.gen::<f64>() < kill_fraction {
            victims.push(id);
            net.schedule_down(id, window.from);
            net.schedule_up(id, window.until);
        }
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::Effects;
    use crate::latency::ConstantLatency;
    use bytes::{Bytes, BytesMut};
    use rand::SeedableRng;
    use unistore_util::wire::{Wire, WireError};

    #[derive(Clone, Debug)]
    struct NoMsg;
    impl Wire for NoMsg {
        fn encode(&self, _b: &mut BytesMut) {}
        fn decode(_b: &mut Bytes) -> Result<Self, WireError> {
            Ok(NoMsg)
        }
    }
    struct Idle;
    impl NodeBehavior for Idle {
        type Msg = NoMsg;
        type Out = ();
        fn on_message(&mut self, _n: SimTime, _f: NodeId, _m: NoMsg, _fx: &mut Effects<NoMsg, ()>) {
        }
    }

    #[test]
    fn exponential_mean_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean = SimTime::from_secs(100);
        let mut acc = 0u64;
        let n = 2000;
        for _ in 0..n {
            acc += exponential(&mut rng, mean).as_micros();
        }
        let avg = acc as f64 / n as f64;
        let expect = mean.as_micros() as f64;
        assert!((avg - expect).abs() / expect < 0.1, "avg={avg} expect={expect}");
    }

    #[test]
    fn churn_toggles_nodes() {
        let mut net: SimNet<Idle> = SimNet::new(ConstantLatency(SimTime::ZERO), 0);
        for _ in 0..20 {
            net.add_node(Idle);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = ChurnConfig {
            mean_session: SimTime::from_secs(10),
            mean_downtime: SimTime::from_secs(10),
            churn_fraction: 1.0,
        };
        let churned = install_churn(&mut net, &mut rng, &cfg, SimTime::from_secs(100));
        assert_eq!(churned.len(), 20);
        net.run_until(SimTime::from_secs(50));
        let down = (0..20).filter(|&i| !net.is_up(NodeId(i))).count();
        assert!(down > 0, "some nodes should be offline mid-horizon");
        assert!(down < 20, "not all nodes should be offline");
    }

    #[test]
    fn heavy_is_harsher_than_moderate() {
        let h = ChurnConfig::heavy();
        let m = ChurnConfig::moderate();
        assert!(h.mean_session < m.mean_session);
        assert!(h.mean_downtime < m.mean_downtime);
        assert!(h.churn_fraction > m.churn_fraction);
    }

    #[test]
    fn mass_failure_kills_and_revives_together() {
        let mut net: SimNet<Idle> = SimNet::new(ConstantLatency(SimTime::ZERO), 0);
        for _ in 0..16 {
            net.add_node(Idle);
        }
        let island: Vec<NodeId> = (0..8).map(NodeId).collect();
        let window = Window::new(SimTime::from_secs(10), SimTime::from_secs(20));
        let mut rng = StdRng::seed_from_u64(4);
        let victims = install_mass_failure(&mut net, &mut rng, &island, window, 0.5);
        assert!(!victims.is_empty() && victims.len() < island.len(), "fraction, not all-or-none");
        assert!(victims.iter().all(|v| island.contains(v)), "victims drawn from the island");
        // Deterministic under the seeded RNG.
        let mut rng2 = StdRng::seed_from_u64(4);
        let mut net2: SimNet<Idle> = SimNet::new(ConstantLatency(SimTime::ZERO), 0);
        for _ in 0..16 {
            net2.add_node(Idle);
        }
        assert_eq!(victims, install_mass_failure(&mut net2, &mut rng2, &island, window, 0.5));
        // Inside the window every victim is down; after it, all revive.
        net.run_until(SimTime::from_secs(15));
        assert!(victims.iter().all(|&v| !net.is_up(v)));
        assert!((0..16).map(NodeId).filter(|v| !victims.contains(v)).all(|v| net.is_up(v)));
        net.run_until(SimTime::from_secs(25));
        assert!(victims.iter().all(|&v| net.is_up(v)));
        assert_eq!(net.metrics().downs, victims.len() as u64);
        assert_eq!(net.metrics().ups, victims.len() as u64);
    }

    #[test]
    fn zero_fraction_churns_nobody() {
        let mut net: SimNet<Idle> = SimNet::new(ConstantLatency(SimTime::ZERO), 0);
        for _ in 0..5 {
            net.add_node(Idle);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = ChurnConfig { churn_fraction: 0.0, ..ChurnConfig::moderate() };
        let churned = install_churn(&mut net, &mut rng, &cfg, SimTime::from_secs(1000));
        assert!(churned.is_empty());
    }
}

//! Network-level accounting.

use crate::time::SimTime;

/// Counters maintained by the simulator.
///
/// `Copy` so call sites can snapshot cheaply and compute deltas around a
/// measured operation (how experiments attribute cost to a query).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Messages handed to the network (including later-dropped ones).
    pub sent: u64,
    /// Messages delivered to a live node.
    pub delivered: u64,
    /// Messages dropped (loss or dead destination).
    pub dropped: u64,
    /// Sum of encoded sizes of sent messages, in bytes.
    pub bytes: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Extra deliveries manufactured by a duplication fault.
    pub duplicated: u64,
    /// Fail-stop crashes executed (up → down transitions).
    pub downs: u64,
    /// Revivals executed (down → up transitions).
    pub ups: u64,
}

impl NetMetrics {
    /// Component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &NetMetrics) -> NetMetrics {
        NetMetrics {
            sent: self.sent - earlier.sent,
            delivered: self.delivered - earlier.delivered,
            dropped: self.dropped - earlier.dropped,
            bytes: self.bytes - earlier.bytes,
            timers_fired: self.timers_fired - earlier.timers_fired,
            duplicated: self.duplicated - earlier.duplicated,
            downs: self.downs - earlier.downs,
            ups: self.ups - earlier.ups,
        }
    }
}

/// Outcome of one simulated operation, as reported by experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpCost {
    /// Messages attributable to the operation.
    pub messages: u64,
    /// Bytes attributable to the operation.
    pub bytes: u64,
    /// Wall-clock (simulated) duration.
    pub latency: SimTime,
    /// Longest dependency chain of messages (routing hops), when the
    /// protocol reports it; 0 otherwise.
    pub hops: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts() {
        let a = NetMetrics {
            sent: 10,
            delivered: 8,
            dropped: 2,
            bytes: 100,
            timers_fired: 1,
            duplicated: 1,
            downs: 3,
            ups: 2,
        };
        let b = NetMetrics {
            sent: 4,
            delivered: 4,
            dropped: 0,
            bytes: 30,
            timers_fired: 0,
            duplicated: 0,
            downs: 1,
            ups: 1,
        };
        let d = a.delta(&b);
        assert_eq!(d.sent, 6);
        assert_eq!(d.delivered, 4);
        assert_eq!(d.dropped, 2);
        assert_eq!(d.bytes, 70);
        assert_eq!(d.timers_fired, 1);
        assert_eq!(d.downs, 2);
        assert_eq!(d.ups, 1);
    }
}

//! Hand-written VQL lexer.

use std::sync::Arc;

use crate::error::VqlError;
use crate::token::{keyword, Spanned, Token};

/// Tokenizes a VQL query. The trailing [`Token::Eof`] is included.
pub fn lex(src: &str) -> Result<Vec<Spanned>, VqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Spanned { tok: Token::LParen, offset: i });
                i += 1;
            }
            b')' => {
                out.push(Spanned { tok: Token::RParen, offset: i });
                i += 1;
            }
            b'{' => {
                out.push(Spanned { tok: Token::LBrace, offset: i });
                i += 1;
            }
            b'}' => {
                out.push(Spanned { tok: Token::RBrace, offset: i });
                i += 1;
            }
            b',' => {
                out.push(Spanned { tok: Token::Comma, offset: i });
                i += 1;
            }
            b'*' => {
                out.push(Spanned { tok: Token::Star, offset: i });
                i += 1;
            }
            b'=' => {
                out.push(Spanned { tok: Token::Eq, offset: i });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Ne, offset: i });
                    i += 2;
                } else {
                    return Err(VqlError::new("expected '=' after '!'", i));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Le, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Lt, offset: i });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Token::Ge, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Token::Gt, offset: i });
                    i += 1;
                }
            }
            b'?' => {
                let start = i + 1;
                let end = ident_end(bytes, start);
                if end == start {
                    return Err(VqlError::new("expected variable name after '?'", i));
                }
                out.push(Spanned { tok: Token::Var(Arc::from(&src[start..end])), offset: i });
                i = end;
            }
            b'\'' => {
                let (s, end) = lex_string(src, i)?;
                out.push(Spanned { tok: Token::Str(Arc::from(s)), offset: i });
                i = end;
            }
            b'0'..=b'9' => {
                let (tok, end) = lex_number(src, i, false)?;
                out.push(Spanned { tok, offset: i });
                i = end;
            }
            b'-' => {
                if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let (tok, end) = lex_number(src, i + 1, true)?;
                    out.push(Spanned { tok, offset: i });
                    i = end;
                } else {
                    return Err(VqlError::new("expected digit after '-'", i));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let end = ident_end(bytes, i);
                let word = &src[i..end];
                let tok = keyword(word).unwrap_or_else(|| Token::Ident(Arc::from(word)));
                out.push(Spanned { tok, offset: i });
                i = end;
            }
            other => {
                return Err(VqlError::new(format!("unexpected character '{}'", other as char), i));
            }
        }
    }
    out.push(Spanned { tok: Token::Eof, offset: src.len() });
    Ok(out)
}

/// Identifier characters: alphanumerics, `_`, `:` (namespaces), `.`.
fn ident_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric()
            || bytes[i] == b'_'
            || bytes[i] == b':'
            || bytes[i] == b'.')
    {
        i += 1;
    }
    i
}

/// Lexes a `'...'` string starting at the opening quote; `''` escapes a
/// quote. Returns the unescaped content and the index past the closing
/// quote.
fn lex_string(src: &str, start: usize) -> Result<(String, usize), VqlError> {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    let mut content = String::new();
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                content.push('\'');
                i += 2;
            } else {
                return Ok((content, i + 1));
            }
        } else {
            // Consume one UTF-8 scalar; `i` is always on a char
            // boundary here, so the iterator yields — but fall through
            // to the unterminated-literal error rather than unwrap.
            let Some(ch) = src[i..].chars().next() else { break };
            content.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(VqlError::new("unterminated string literal", start))
}

fn lex_number(src: &str, start: usize, negative: bool) -> Result<(Token, usize), VqlError> {
    let bytes = src.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text = &src[start..i];
    let tok = if is_float {
        let v: f64 = text.parse().map_err(|_| VqlError::new("invalid float literal", start))?;
        Token::Float(if negative { -v } else { v })
    } else {
        let v: i64 =
            text.parse().map_err(|_| VqlError::new("integer literal out of range", start))?;
        Token::Int(if negative { -v } else { v })
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select WHERE Filter"),
            vec![Token::Select, Token::Where, Token::Filter, Token::Eof]
        );
    }

    #[test]
    fn variables_and_idents() {
        assert_eq!(
            toks("?a edist ns:attr"),
            vec![
                Token::Var(Arc::from("a")),
                Token::Ident(Arc::from("edist")),
                Token::Ident(Arc::from("ns:attr")),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'ICDE 2006 - WS'"),
            vec![Token::Str(Arc::from("ICDE 2006 - WS")), Token::Eof]
        );
        assert_eq!(toks("'it''s'"), vec![Token::Str(Arc::from("it's")), Token::Eof]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("2006 -5 3.25 -0.5"),
            vec![
                Token::Int(2006),
                Token::Int(-5),
                Token::Float(3.25),
                Token::Float(-0.5),
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            toks("( ) { } , * = != < <= > >="),
            vec![
                Token::LParen,
                Token::RParen,
                Token::LBrace,
                Token::RBrace,
                Token::Comma,
                Token::Star,
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("SELECT # comment\n?x"),
            vec![Token::Select, Token::Var(Arc::from("x")), Token::Eof]
        );
    }

    #[test]
    fn offsets_recorded() {
        let lexed = lex("SELECT ?x").unwrap();
        assert_eq!(lexed[0].offset, 0);
        assert_eq!(lexed[1].offset, 7);
    }

    #[test]
    fn error_positions() {
        let err = lex("SELECT @").unwrap_err();
        assert_eq!(err.offset, 7);
        let err = lex("a ! b").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn paper_example_lexes() {
        let src = "SELECT ?name,?age,?cnt
            WHERE {(?a,'name',?name) (?a,'age',?age)
            (?a,'num_of_pubs',?cnt)
            FILTER edist(?sr,'ICDE')<3
            }
            ORDER BY SKYLINE OF ?age MIN, ?cnt MAX";
        let tokens = toks(src);
        assert!(tokens.contains(&Token::Skyline));
        assert!(tokens.contains(&Token::Ident(Arc::from("edist"))));
        assert!(tokens.contains(&Token::Min));
        assert!(tokens.contains(&Token::Max));
    }
}

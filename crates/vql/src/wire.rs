//! Wire encodings for AST types.
//!
//! Mutant Query Plans travel between peers with their patterns, filters
//! and ranking clauses embedded, so the AST must serialize with honest
//! sizes.

use bytes::{Bytes, BytesMut};

use unistore_store::Value;
use unistore_util::wire::{Wire, WireError};

use crate::ast::*;

impl Wire for Term {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Term::Var(v) => {
                0u8.encode(buf);
                v.encode(buf);
            }
            Term::Lit(l) => {
                1u8.encode(buf);
                l.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => Term::Var(Wire::decode(buf)?),
            1 => Term::Lit(Value::decode(buf)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for TriplePattern {
    fn encode(&self, buf: &mut BytesMut) {
        self.subject.encode(buf);
        self.attr.encode(buf);
        self.value.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(TriplePattern {
            subject: Term::decode(buf)?,
            attr: Term::decode(buf)?,
            value: Term::decode(buf)?,
        })
    }
}

impl Wire for CmpOp {
    fn encode(&self, buf: &mut BytesMut) {
        let t: u8 = match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        };
        t.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for Scalar {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Scalar::Var(v) => {
                0u8.encode(buf);
                v.encode(buf);
            }
            Scalar::Lit(l) => {
                1u8.encode(buf);
                l.encode(buf);
            }
            Scalar::EDist(a, b) => {
                2u8.encode(buf);
                a.encode(buf);
                b.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => Scalar::Var(Wire::decode(buf)?),
            1 => Scalar::Lit(Value::decode(buf)?),
            2 => Scalar::EDist(Box::new(Scalar::decode(buf)?), Box::new(Scalar::decode(buf)?)),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for Expr {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Expr::Cmp { op, lhs, rhs } => {
                0u8.encode(buf);
                op.encode(buf);
                lhs.encode(buf);
                rhs.encode(buf);
            }
            Expr::And(a, b) => {
                1u8.encode(buf);
                a.encode(buf);
                b.encode(buf);
            }
            Expr::Or(a, b) => {
                2u8.encode(buf);
                a.encode(buf);
                b.encode(buf);
            }
            Expr::Not(a) => {
                3u8.encode(buf);
                a.encode(buf);
            }
            Expr::Prefix { scalar, prefix } => {
                4u8.encode(buf);
                scalar.encode(buf);
                prefix.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => Expr::Cmp {
                op: CmpOp::decode(buf)?,
                lhs: Scalar::decode(buf)?,
                rhs: Scalar::decode(buf)?,
            },
            1 => Expr::And(Box::new(Expr::decode(buf)?), Box::new(Expr::decode(buf)?)),
            2 => Expr::Or(Box::new(Expr::decode(buf)?), Box::new(Expr::decode(buf)?)),
            3 => Expr::Not(Box::new(Expr::decode(buf)?)),
            4 => Expr::Prefix { scalar: Scalar::decode(buf)?, prefix: Scalar::decode(buf)? },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for OrderItem {
    fn encode(&self, buf: &mut BytesMut) {
        self.var.encode(buf);
        (matches!(self.dir, SortDir::Desc)).encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(OrderItem {
            var: Wire::decode(buf)?,
            dir: if bool::decode(buf)? { SortDir::Desc } else { SortDir::Asc },
        })
    }
}

impl Wire for SkyItem {
    fn encode(&self, buf: &mut BytesMut) {
        self.var.encode(buf);
        (matches!(self.dir, SkyDir::Max)).encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(SkyItem {
            var: Wire::decode(buf)?,
            dir: if bool::decode(buf)? { SkyDir::Max } else { SkyDir::Min },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn paper_query_parts_roundtrip() {
        let q = parse(
            "SELECT ?name WHERE {(?a,'name',?name) (?c,'series',?sr)
             FILTER edist(?sr,'ICDE')<3 AND ?name != 'x' OR NOT ?name = 'y'}
             ORDER BY SKYLINE OF ?name MIN",
        )
        .unwrap();
        for p in &q.patterns {
            let b = p.to_bytes();
            assert_eq!(b.len(), p.wire_size());
            assert_eq!(&TriplePattern::from_bytes(&b).unwrap(), p);
        }
        for f in &q.filters {
            let b = f.to_bytes();
            assert_eq!(&Expr::from_bytes(&b).unwrap(), f);
        }
        for s in &q.skyline {
            let b = s.to_bytes();
            assert_eq!(&SkyItem::from_bytes(&b).unwrap(), s);
        }
    }

    #[test]
    fn order_item_roundtrip() {
        for dir in [SortDir::Asc, SortDir::Desc] {
            let o = OrderItem { var: std::sync::Arc::from("x"), dir };
            let b = o.to_bytes();
            assert_eq!(OrderItem::from_bytes(&b).unwrap(), o);
        }
    }

    #[test]
    fn cmp_ops_roundtrip() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let b = op.to_bytes();
            assert_eq!(CmpOp::from_bytes(&b).unwrap(), op);
        }
    }
}

//! The VQL abstract syntax tree.

use std::fmt;
use std::sync::Arc;

use unistore_store::Value;

/// A parsed VQL query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Projected variables; empty = `SELECT *` (all bound variables).
    pub select: Vec<Arc<str>>,
    /// Triple patterns of the WHERE block.
    pub patterns: Vec<TriplePattern>,
    /// FILTER predicates (conjunctive across FILTER clauses).
    pub filters: Vec<Expr>,
    /// ORDER BY items (empty if none).
    pub order_by: Vec<OrderItem>,
    /// SKYLINE OF items (empty if none).
    pub skyline: Vec<SkyItem>,
    /// LIMIT n.
    pub limit: Option<usize>,
    /// TOP n (ranking shortcut; equivalent to ORDER BY … LIMIT n).
    pub top: Option<usize>,
}

/// A term of a triple pattern: variable or literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// `?name`
    Var(Arc<str>),
    /// A literal value.
    Lit(Value),
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&Arc<str>> {
        match self {
            Term::Var(v) => Some(v),
            Term::Lit(_) => None,
        }
    }

    /// The literal, if this is one.
    pub fn as_lit(&self) -> Option<&Value> {
        match self {
            Term::Lit(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

/// One `(subject, attribute, value)` pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct TriplePattern {
    /// Subject (OID) position.
    pub subject: Term,
    /// Attribute position.
    pub attr: Term,
    /// Value position.
    pub value: Term,
}

impl TriplePattern {
    /// Variables bound by this pattern, in position order.
    pub fn vars(&self) -> Vec<Arc<str>> {
        [&self.subject, &self.attr, &self.value]
            .into_iter()
            .filter_map(|t| t.as_var().cloned())
            .collect()
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on an ordering.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }
}

/// Scalar expressions inside filters.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// Variable reference.
    Var(Arc<str>),
    /// Literal.
    Lit(Value),
    /// `edist(a, b)` — edit distance between two strings (the paper's
    /// similarity predicate).
    EDist(Box<Scalar>, Box<Scalar>),
}

/// Boolean filter expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Comparison between two scalars.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Scalar,
        /// Right operand.
        rhs: Scalar,
    },
    /// `prefix(s, p)` — string prefix predicate (paper §2: "efficient
    /// substring search and prefix queries"), answered natively by the
    /// order-preserving A#v index.
    Prefix {
        /// The tested string.
        scalar: Scalar,
        /// The required prefix.
        prefix: Scalar,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Variables referenced anywhere in the expression.
    pub fn vars(&self) -> Vec<Arc<str>> {
        fn scalar_vars(s: &Scalar, out: &mut Vec<Arc<str>>) {
            match s {
                Scalar::Var(v) => out.push(v.clone()),
                Scalar::Lit(_) => {}
                Scalar::EDist(a, b) => {
                    scalar_vars(a, out);
                    scalar_vars(b, out);
                }
            }
        }
        fn walk(e: &Expr, out: &mut Vec<Arc<str>>) {
            match e {
                Expr::Cmp { lhs, rhs, .. } => {
                    scalar_vars(lhs, out);
                    scalar_vars(rhs, out);
                }
                Expr::Prefix { scalar, prefix } => {
                    scalar_vars(scalar, out);
                    scalar_vars(prefix, out);
                }
                Expr::And(a, b) | Expr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Not(a) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.dedup();
        out
    }
}

/// Sort direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY item.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// Variable to sort by.
    pub var: Arc<str>,
    /// Direction.
    pub dir: SortDir,
}

/// Skyline preference direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkyDir {
    /// Smaller is better.
    Min,
    /// Larger is better.
    Max,
}

/// One SKYLINE OF item.
#[derive(Clone, Debug, PartialEq)]
pub struct SkyItem {
    /// Variable the preference applies to.
    pub var: Arc<str>,
    /// Preference direction.
    pub dir: SkyDir,
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{v}"),
            Term::Lit(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.subject, self.attr, self.value)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Var(v) => write!(f, "?{v}"),
            Scalar::Lit(v) => write!(f, "{v}"),
            Scalar::EDist(a, b) => write!(f, "edist({a},{b})"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs}{op}{rhs}"),
            Expr::Prefix { scalar, prefix } => write!(f, "prefix({scalar},{prefix})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT {a}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.select.is_empty() {
            write!(f, "*")?;
        } else {
            let vars: Vec<String> = self.select.iter().map(|v| format!("?{v}")).collect();
            write!(f, "{}", vars.join(","))?;
        }
        write!(f, " WHERE {{")?;
        for p in &self.patterns {
            write!(f, " {p}")?;
        }
        for e in &self.filters {
            write!(f, " FILTER {e}")?;
        }
        write!(f, " }}")?;
        if !self.order_by.is_empty() {
            let items: Vec<String> = self
                .order_by
                .iter()
                .map(|o| format!("?{}{}", o.var, if o.dir == SortDir::Desc { " DESC" } else { "" }))
                .collect();
            write!(f, " ORDER BY {}", items.join(", "))?;
        }
        if !self.skyline.is_empty() {
            let items: Vec<String> = self
                .skyline
                .iter()
                .map(|s| format!("?{} {}", s.var, if s.dir == SkyDir::Min { "MIN" } else { "MAX" }))
                .collect();
            write!(f, " ORDER BY SKYLINE OF {}", items.join(", "))?;
        }
        if let Some(n) = self.top {
            write!(f, " TOP {n}")?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Lt.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal));
        assert!(!CmpOp::Ge.eval(Less));
    }

    #[test]
    fn pattern_vars_in_order() {
        let p = TriplePattern {
            subject: Term::Var(Arc::from("a")),
            attr: Term::Lit(Value::str("name")),
            value: Term::Var(Arc::from("n")),
        };
        let vars = p.vars();
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].as_ref(), "a");
        assert_eq!(vars[1].as_ref(), "n");
    }

    #[test]
    fn expr_vars_collects_nested() {
        let e = Expr::And(
            Box::new(Expr::Cmp {
                op: CmpOp::Lt,
                lhs: Scalar::EDist(
                    Box::new(Scalar::Var(Arc::from("sr"))),
                    Box::new(Scalar::Lit(Value::str("ICDE"))),
                ),
                rhs: Scalar::Lit(Value::Int(3)),
            }),
            Box::new(Expr::Cmp {
                op: CmpOp::Ge,
                lhs: Scalar::Var(Arc::from("age")),
                rhs: Scalar::Lit(Value::Int(30)),
            }),
        );
        let vars = e.vars();
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn display_forms() {
        let p = TriplePattern {
            subject: Term::Var(Arc::from("a")),
            attr: Term::Lit(Value::str("year")),
            value: Term::Lit(Value::Int(2006)),
        };
        assert_eq!(p.to_string(), "(?a,'year',2006)");
    }
}

//! VQL error reporting with source positions.

use std::fmt;

/// A lexing, parsing or analysis error, with the byte offset where it
/// was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VqlError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the query text.
    pub offset: usize,
}

impl VqlError {
    /// Creates an error at a position.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        VqlError { message: message.into(), offset }
    }

    /// Renders the error with a caret under the offending position.
    pub fn render(&self, source: &str) -> String {
        let upto = &source[..self.offset.min(source.len())];
        let line = upto.lines().count().max(1);
        let col = upto.lines().last().map_or(0, str::len) + 1;
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        format!(
            "error: {} at line {line}, column {col}\n  | {line_text}\n  | {}^",
            self.message,
            " ".repeat(col.saturating_sub(1))
        )
    }
}

impl fmt::Display for VqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (offset {})", self.message, self.offset)
    }
}

impl std::error::Error for VqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_position() {
        let src = "SELECT ?x\nWHERE }";
        let e = VqlError::new("expected '{'", src.find('}').unwrap());
        let rendered = e.render(src);
        assert!(rendered.contains("line 2"));
        assert!(rendered.contains("column 7"));
        assert!(rendered.contains("WHERE }"));
    }

    #[test]
    fn render_handles_out_of_bounds() {
        let e = VqlError::new("unexpected end", 999);
        let rendered = e.render("short");
        assert!(rendered.contains("unexpected end"));
    }
}

//! Recursive-descent VQL parser.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT select WHERE '{' (pattern | FILTER expr)+ '}' clause*
//! select     := '*' | var (',' var)*
//! pattern    := '(' term ',' term ',' term ')'
//! term       := var | literal
//! expr       := and_expr (OR and_expr)*
//! and_expr   := unary (AND unary)*
//! unary      := NOT unary | cmp
//! cmp        := scalar cmpop scalar
//! scalar     := var | literal | edist '(' scalar ',' scalar ')' | '(' … ')'
//! clause     := ORDER BY (SKYLINE OF sky_items | order_items)
//!             | SKYLINE OF sky_items | LIMIT int | TOP int
//! ```

use std::sync::Arc;

use unistore_store::Value;

use crate::ast::*;
use crate::error::VqlError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parses a VQL query.
pub fn parse(src: &str) -> Result<Query, VqlError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].tok
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), VqlError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(VqlError::new(format!("expected {t}, found {}", self.peek()), self.offset()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), VqlError> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(VqlError::new(format!("unexpected trailing input: {}", self.peek()), self.offset()))
        }
    }

    fn query(&mut self) -> Result<Query, VqlError> {
        self.expect(Token::Select)?;
        let select = self.select_list()?;
        self.expect(Token::Where)?;
        self.expect(Token::LBrace)?;
        let mut patterns = Vec::new();
        let mut filters = Vec::new();
        loop {
            match self.peek() {
                Token::LParen => patterns.push(self.pattern()?),
                Token::Filter => {
                    self.bump();
                    filters.push(self.expr()?);
                }
                Token::RBrace => {
                    self.bump();
                    break;
                }
                other => {
                    return Err(VqlError::new(
                        format!("expected pattern, FILTER or '}}', found {other}"),
                        self.offset(),
                    ));
                }
            }
        }
        if patterns.is_empty() {
            return Err(VqlError::new(
                "WHERE block needs at least one triple pattern",
                self.offset(),
            ));
        }
        let mut q = Query {
            select,
            patterns,
            filters,
            order_by: Vec::new(),
            skyline: Vec::new(),
            limit: None,
            top: None,
        };
        self.clauses(&mut q)?;
        Ok(q)
    }

    fn select_list(&mut self) -> Result<Vec<Arc<str>>, VqlError> {
        if self.eat(&Token::Star) {
            return Ok(Vec::new());
        }
        let mut vars = vec![self.var()?];
        while self.eat(&Token::Comma) {
            vars.push(self.var()?);
        }
        Ok(vars)
    }

    fn var(&mut self) -> Result<Arc<str>, VqlError> {
        match self.bump() {
            Token::Var(v) => Ok(v),
            other => {
                // bump advanced; report at the *previous* token's offset.
                let off = self.tokens[self.pos.saturating_sub(1)].offset;
                Err(VqlError::new(format!("expected variable, found {other}"), off))
            }
        }
    }

    fn pattern(&mut self) -> Result<TriplePattern, VqlError> {
        self.expect(Token::LParen)?;
        let subject = self.term()?;
        self.expect(Token::Comma)?;
        let attr = self.term()?;
        self.expect(Token::Comma)?;
        let value = self.term()?;
        self.expect(Token::RParen)?;
        Ok(TriplePattern { subject, attr, value })
    }

    fn term(&mut self) -> Result<Term, VqlError> {
        let off = self.offset();
        match self.bump() {
            Token::Var(v) => Ok(Term::Var(v)),
            Token::Str(s) => Ok(Term::Lit(Value::Str(s.into()))),
            Token::Int(i) => Ok(Term::Lit(Value::Int(i))),
            Token::Float(f) => Ok(Term::Lit(Value::Float(f))),
            other => Err(VqlError::new(format!("expected term, found {other}"), off)),
        }
    }

    fn expr(&mut self) -> Result<Expr, VqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, VqlError> {
        let mut lhs = self.unary()?;
        while self.eat(&Token::And) {
            let rhs = self.unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, VqlError> {
        if self.eat(&Token::Not) {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        // Parenthesized boolean expression. (Scalars never start with
        // '(', so this is unambiguous.)
        if self.eat(&Token::LParen) {
            let inner = self.expr()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        // Boolean function: prefix(s, p).
        if let Token::Ident(name) = self.peek() {
            if name.as_ref() == "prefix" {
                self.bump();
                self.expect(Token::LParen)?;
                let scalar = self.scalar()?;
                self.expect(Token::Comma)?;
                let prefix = self.scalar()?;
                self.expect(Token::RParen)?;
                return Ok(Expr::Prefix { scalar, prefix });
            }
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Expr, VqlError> {
        let lhs = self.scalar()?;
        let off = self.offset();
        let op = match self.bump() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            other => {
                return Err(VqlError::new(
                    format!("expected comparison operator, found {other}"),
                    off,
                ));
            }
        };
        let rhs = self.scalar()?;
        Ok(Expr::Cmp { op, lhs, rhs })
    }

    fn scalar(&mut self) -> Result<Scalar, VqlError> {
        let off = self.offset();
        match self.bump() {
            Token::Var(v) => Ok(Scalar::Var(v)),
            Token::Str(s) => Ok(Scalar::Lit(Value::Str(s.into()))),
            Token::Int(i) => Ok(Scalar::Lit(Value::Int(i))),
            Token::Float(f) => Ok(Scalar::Lit(Value::Float(f))),
            Token::Ident(name) if name.as_ref() == "edist" => {
                self.expect(Token::LParen)?;
                let a = self.scalar()?;
                self.expect(Token::Comma)?;
                let b = self.scalar()?;
                self.expect(Token::RParen)?;
                Ok(Scalar::EDist(Box::new(a), Box::new(b)))
            }
            Token::Ident(name) => Err(VqlError::new(format!("unknown function '{name}'"), off)),
            other => Err(VqlError::new(format!("expected scalar, found {other}"), off)),
        }
    }

    fn clauses(&mut self, q: &mut Query) -> Result<(), VqlError> {
        loop {
            match self.peek() {
                Token::Order => {
                    self.bump();
                    self.expect(Token::By)?;
                    if self.eat(&Token::Skyline) {
                        self.expect(Token::Of)?;
                        q.skyline = self.sky_items()?;
                    } else {
                        q.order_by = self.order_items()?;
                    }
                }
                Token::Skyline => {
                    self.bump();
                    self.expect(Token::Of)?;
                    q.skyline = self.sky_items()?;
                }
                Token::Limit => {
                    self.bump();
                    q.limit = Some(self.count()?);
                }
                Token::Top => {
                    self.bump();
                    q.top = Some(self.count()?);
                }
                _ => return Ok(()),
            }
        }
    }

    fn count(&mut self) -> Result<usize, VqlError> {
        let off = self.offset();
        match self.bump() {
            Token::Int(i) if i > 0 => Ok(i as usize),
            other => Err(VqlError::new(format!("expected positive count, found {other}"), off)),
        }
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>, VqlError> {
        let mut items = Vec::new();
        loop {
            let var = self.var()?;
            let dir = if self.eat(&Token::Desc) {
                SortDir::Desc
            } else {
                self.eat(&Token::Asc);
                SortDir::Asc
            };
            items.push(OrderItem { var, dir });
            if !self.eat(&Token::Comma) {
                return Ok(items);
            }
        }
    }

    fn sky_items(&mut self) -> Result<Vec<SkyItem>, VqlError> {
        let mut items = Vec::new();
        loop {
            let var = self.var()?;
            let off = self.offset();
            let dir = match self.bump() {
                Token::Min => SkyDir::Min,
                Token::Max => SkyDir::Max,
                other => {
                    return Err(VqlError::new(format!("expected MIN or MAX, found {other}"), off));
                }
            };
            items.push(SkyItem { var, dir });
            if !self.eat(&Token::Comma) {
                return Ok(items);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_QUERY: &str = "
        SELECT ?name,?age,?cnt
        WHERE {(?a,'name',?name) (?a,'age',?age)
               (?a,'num_of_pubs',?cnt)
               (?a,'has_published',?title) (?p,'title',?title)
               (?p,'published_in',?conf) (?c,'confname',?conf)
               (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
        }
        ORDER BY SKYLINE OF ?age MIN, ?cnt MAX";

    #[test]
    fn paper_example_parses() {
        let q = parse(PAPER_QUERY).expect("paper query must parse");
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.patterns.len(), 8);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.skyline.len(), 2);
        assert_eq!(q.skyline[0].dir, SkyDir::Min);
        assert_eq!(q.skyline[1].dir, SkyDir::Max);
        assert!(q.order_by.is_empty());
        match &q.filters[0] {
            Expr::Cmp { op: CmpOp::Lt, lhs: Scalar::EDist(a, b), rhs } => {
                assert_eq!(**a, Scalar::Var(Arc::from("sr")));
                assert_eq!(**b, Scalar::Lit(Value::str("ICDE")));
                assert_eq!(*rhs, Scalar::Lit(Value::Int(3)));
            }
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn select_star() {
        let q = parse("SELECT * WHERE {(?a,'name',?n)}").unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn order_by_limit_top() {
        let q = parse("SELECT ?n WHERE {(?a,'name',?n)} ORDER BY ?n DESC LIMIT 10").unwrap();
        assert_eq!(q.order_by, vec![OrderItem { var: Arc::from("n"), dir: SortDir::Desc }]);
        assert_eq!(q.limit, Some(10));
        let q = parse("SELECT ?n WHERE {(?a,'age',?n)} ORDER BY ?n TOP 5").unwrap();
        assert_eq!(q.top, Some(5));
    }

    #[test]
    fn literal_subjects_allowed() {
        // Looking up a known OID's attributes.
        let q = parse("SELECT ?v WHERE {('a12',?attr,?v)}").unwrap();
        assert_eq!(q.patterns[0].subject, Term::Lit(Value::str("a12")));
    }

    #[test]
    fn boolean_filters() {
        let q = parse(
            "SELECT ?n WHERE {(?a,'age',?g) (?a,'name',?n)
             FILTER ?g >= 30 AND ?g < 40 OR NOT ?n = 'bob'}",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
        match &q.filters[0] {
            Expr::Or(_, rhs) => assert!(matches!(**rhs, Expr::Not(_))),
            other => panic!("precedence broken: {other:?}"),
        }
    }

    #[test]
    fn multiple_filters_allowed() {
        let q = parse("SELECT ?n WHERE {(?a,'age',?g) FILTER ?g > 1 (?a,'name',?n) FILTER ?g < 9}")
            .unwrap();
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse("WHERE {}").is_err());
        assert!(parse("SELECT ?x").is_err());
        assert!(parse("SELECT ?x WHERE {}").is_err()); // no patterns
        assert!(parse("SELECT ?x WHERE {(?a,'n',?x)} LIMIT 0").is_err());
        assert!(parse("SELECT ?x WHERE {(?a,'n',?x)} trailing").is_err());
        assert!(parse("SELECT ?x WHERE {(?a,'n')}").is_err()); // 2-ary pattern
        assert!(parse("SELECT ?x WHERE {(?a,'n',?x) FILTER foo(?x)>1}").is_err());
        assert!(parse("SELECT ?x WHERE {(?a,'n',?x)} SKYLINE OF ?x}").is_err());
    }

    #[test]
    fn error_offsets_point_into_source() {
        let src = "SELECT ?x WHERE {(?a,'n',?x)} LIMIT abc";
        let err = parse(src).unwrap_err();
        assert!(err.offset >= src.find("abc").unwrap());
    }

    #[test]
    fn display_roundtrip() {
        // Parse → print → parse again must be a fixpoint (same AST).
        for src in [
            "SELECT ?n WHERE {(?a,'name',?n)}",
            "SELECT * WHERE {(?a,'age',?g) FILTER ?g>=30}",
            "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g)} ORDER BY ?g DESC LIMIT 3",
            PAPER_QUERY,
        ] {
            let q1 = parse(src).unwrap();
            let printed = q1.to_string();
            let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of {printed}: {e}"));
            assert_eq!(q1, q2, "display/parse not a fixpoint for {src}");
        }
    }

    #[test]
    fn prefix_predicate_parses() {
        let q = parse("SELECT ?s WHERE {(?c,'series',?s) FILTER prefix(?s,'IC')}").unwrap();
        match &q.filters[0] {
            Expr::Prefix { scalar: Scalar::Var(v), prefix: Scalar::Lit(p) } => {
                assert_eq!(v.as_ref(), "s");
                assert_eq!(*p, Value::str("IC"));
            }
            other => panic!("unexpected filter {other:?}"),
        }
        // Composes with boolean operators and roundtrips via Display.
        let q =
            parse("SELECT ?s WHERE {(?c,'series',?s) FILTER prefix(?s,'IC') AND NOT ?s = 'ICDE'}")
                .unwrap();
        let printed = q.to_string();
        assert_eq!(parse(&printed).unwrap(), q);
    }

    #[test]
    fn namespaced_attrs_in_strings() {
        let q = parse("SELECT ?v WHERE {(?a,'dblp:year',?v)}").unwrap();
        assert_eq!(q.patterns[0].attr, Term::Lit(Value::str("dblp:year")));
    }
}

//! Semantic analysis of parsed queries.
//!
//! Checks variable binding, join-graph connectivity and clause
//! consistency before a query reaches the optimizer; produces the
//! variable inventory the planner works with.

use std::sync::Arc;

use unistore_util::{FxHashMap, FxHashSet};

use crate::ast::{Query, Term};
use crate::error::VqlError;

/// A validated query plus derived information.
#[derive(Clone, Debug)]
pub struct AnalyzedQuery {
    /// The query itself.
    pub query: Query,
    /// All variables bound by patterns, in first-occurrence order.
    pub pattern_vars: Vec<Arc<str>>,
    /// The effective projection (explicit SELECT list, or all pattern
    /// variables for `SELECT *`).
    pub projection: Vec<Arc<str>>,
    /// Whether the pattern join graph is connected (disconnected graphs
    /// imply Cartesian products — legal but flagged).
    pub connected: bool,
}

/// Analyzes a parsed query.
pub fn analyze(query: Query) -> Result<AnalyzedQuery, VqlError> {
    let mut pattern_vars: Vec<Arc<str>> = Vec::new();
    let mut seen: FxHashSet<Arc<str>> = FxHashSet::default();
    for p in &query.patterns {
        for v in p.vars() {
            if seen.insert(v.clone()) {
                pattern_vars.push(v);
            }
        }
    }

    // Every selected variable must be bound by some pattern.
    for v in &query.select {
        if !seen.contains(v) {
            return Err(VqlError::new(format!("selected variable ?{v} is never bound"), 0));
        }
    }
    // Filter variables must be bound.
    for f in &query.filters {
        for v in f.vars() {
            if !seen.contains(&v) {
                return Err(VqlError::new(format!("filter variable ?{v} is never bound"), 0));
            }
        }
    }
    // Order/skyline variables must be bound.
    for v in query.order_by.iter().map(|o| &o.var).chain(query.skyline.iter().map(|s| &s.var)) {
        if !seen.contains(v) {
            return Err(VqlError::new(format!("ranking variable ?{v} is never bound"), 0));
        }
    }
    // TOP requires an ordering to rank by.
    if query.top.is_some() && query.order_by.is_empty() && query.skyline.is_empty() {
        return Err(VqlError::new("TOP requires ORDER BY (or SKYLINE OF)", 0));
    }

    let connected = is_connected(&query);
    let projection =
        if query.select.is_empty() { pattern_vars.clone() } else { query.select.clone() };

    Ok(AnalyzedQuery { query, pattern_vars, projection, connected })
}

/// Union-find connectivity over the pattern join graph: two patterns are
/// joined when they share a variable.
fn is_connected(query: &Query) -> bool {
    let n = query.patterns.len();
    if n <= 1 {
        return true;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut var_first: FxHashMap<Arc<str>, usize> = FxHashMap::default();
    for (i, p) in query.patterns.iter().enumerate() {
        for t in [&p.subject, &p.attr, &p.value] {
            if let Term::Var(v) = t {
                match var_first.get(v) {
                    Some(&j) => {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                        parent[a] = b;
                    }
                    None => {
                        var_first.insert(v.clone(), i);
                    }
                }
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn paper_query_analyzes_connected() {
        let q = parse(
            "SELECT ?name,?age,?cnt
             WHERE {(?a,'name',?name) (?a,'age',?age)
                    (?a,'num_of_pubs',?cnt)
                    (?a,'has_published',?title) (?p,'title',?title)
                    (?p,'published_in',?conf) (?c,'confname',?conf)
                    (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}
             ORDER BY SKYLINE OF ?age MIN, ?cnt MAX",
        )
        .unwrap();
        let a = analyze(q).unwrap();
        assert!(a.connected, "paper query joins through shared variables");
        assert_eq!(a.projection.len(), 3);
        // a, name, age, cnt, title, p, conf, c, sr
        assert_eq!(a.pattern_vars.len(), 9);
    }

    #[test]
    fn select_star_projects_all() {
        let q = parse("SELECT * WHERE {(?a,'name',?n)}").unwrap();
        let a = analyze(q).unwrap();
        assert_eq!(a.projection.len(), 2);
    }

    #[test]
    fn unbound_select_rejected() {
        let q = parse("SELECT ?ghost WHERE {(?a,'name',?n)}").unwrap();
        assert!(analyze(q).is_err());
    }

    #[test]
    fn unbound_filter_rejected() {
        let q = parse("SELECT ?n WHERE {(?a,'name',?n) FILTER ?ghost > 1}").unwrap();
        assert!(analyze(q).is_err());
    }

    #[test]
    fn unbound_ranking_rejected() {
        let q = parse("SELECT ?n WHERE {(?a,'name',?n)} ORDER BY ?ghost").unwrap();
        assert!(analyze(q).is_err());
        let q = parse("SELECT ?n WHERE {(?a,'name',?n)} SKYLINE OF ?ghost MIN").unwrap();
        assert!(analyze(q).is_err());
    }

    #[test]
    fn top_needs_ordering() {
        let q = parse("SELECT ?n WHERE {(?a,'name',?n)} TOP 5").unwrap();
        assert!(analyze(q).is_err());
        let q = parse("SELECT ?n WHERE {(?a,'name',?n)} ORDER BY ?n TOP 5").unwrap();
        assert!(analyze(q).is_ok());
    }

    #[test]
    fn disconnected_flagged_not_rejected() {
        let q = parse("SELECT ?n,?m WHERE {(?a,'name',?n) (?b,'name',?m)}").unwrap();
        let a = analyze(q).unwrap();
        assert!(!a.connected, "cartesian product should be flagged");
    }
}

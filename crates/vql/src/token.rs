//! VQL tokens.

use std::fmt;
use std::sync::Arc;

/// One lexed token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// VQL token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Keywords (case-insensitive in source).
    Select,
    Where,
    Filter,
    Order,
    By,
    Skyline,
    Of,
    Limit,
    Top,
    Asc,
    Desc,
    Min,
    Max,
    And,
    Or,
    Not,
    /// `?name`
    Var(Arc<str>),
    /// Bare identifier (function names such as `edist`).
    Ident(Arc<str>),
    /// `'single-quoted string'` (doubled quote escapes).
    Str(Arc<str>),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input (simplifies the parser).
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Select => write!(f, "SELECT"),
            Token::Where => write!(f, "WHERE"),
            Token::Filter => write!(f, "FILTER"),
            Token::Order => write!(f, "ORDER"),
            Token::By => write!(f, "BY"),
            Token::Skyline => write!(f, "SKYLINE"),
            Token::Of => write!(f, "OF"),
            Token::Limit => write!(f, "LIMIT"),
            Token::Top => write!(f, "TOP"),
            Token::Asc => write!(f, "ASC"),
            Token::Desc => write!(f, "DESC"),
            Token::Min => write!(f, "MIN"),
            Token::Max => write!(f, "MAX"),
            Token::And => write!(f, "AND"),
            Token::Or => write!(f, "OR"),
            Token::Not => write!(f, "NOT"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Maps an identifier to its keyword token, if it is one.
pub fn keyword(word: &str) -> Option<Token> {
    Some(match word.to_ascii_uppercase().as_str() {
        "SELECT" => Token::Select,
        "WHERE" => Token::Where,
        "FILTER" => Token::Filter,
        "ORDER" => Token::Order,
        "BY" => Token::By,
        "SKYLINE" => Token::Skyline,
        "OF" => Token::Of,
        "LIMIT" => Token::Limit,
        "TOP" => Token::Top,
        "ASC" => Token::Asc,
        "DESC" => Token::Desc,
        "MIN" => Token::Min,
        "MAX" => Token::Max,
        "AND" => Token::And,
        "OR" => Token::Or,
        "NOT" => Token::Not,
        _ => return None,
    })
}

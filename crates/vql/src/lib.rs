//! VQL — the Vertical Query Language.
//!
//! Paper §2: *"In order to support the formulation and processing of
//! DB-like queries, we propose a structured query language VQL, which is
//! derived from SPARQL … targeted triples are formulated in braces,
//! where variables are indicated by a question mark. Optional FILTER
//! statements provide filter predicates … the basic construct remembers
//! the structure of SQL queries, including obligatory SELECT and WHERE
//! blocks, optional statements like ORDER BY and LIMIT, as well as
//! advanced ones like SKYLINE OF."*
//!
//! The paper's flagship example parses verbatim:
//!
//! ```
//! use unistore_vql::parse;
//! let q = parse("
//!     SELECT ?name,?age,?cnt
//!     WHERE {(?a,'name',?name) (?a,'age',?age)
//!            (?a,'num_of_pubs',?cnt)
//!            (?a,'has_published',?title) (?p,'title',?title)
//!            (?p,'published_in',?conf) (?c,'confname',?conf)
//!            (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
//!     }
//!     ORDER BY SKYLINE OF ?age MIN, ?cnt MAX
//! ").expect("the paper's example query must parse");
//! assert_eq!(q.patterns.len(), 8);
//! assert_eq!(q.skyline.len(), 2);
//! ```

pub mod analyze;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod wire;

pub use analyze::{analyze, AnalyzedQuery};
pub use ast::{CmpOp, Expr, OrderItem, Query, Scalar, SkyDir, SkyItem, Term, TriplePattern};
pub use error::VqlError;
pub use parser::parse;

//! Arbitrary-input fuzzing of the VQL front end.
//!
//! Queries arrive as user strings; the lexer and parser must reject
//! malformed input with a positioned [`VqlError`](unistore_vql::VqlError)
//! — never panic, never hang. Three input classes: arbitrary bytes
//! rendered as (lossy) UTF-8, mutations of valid queries, and
//! truncations of valid queries.

use proptest::prelude::*;

const VALID: &[&str] = &[
    "SELECT ?n WHERE {(?a,'name',?n)}",
    "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}",
    "SELECT ?a WHERE {(?a,'name',?n)} ORDER BY ?n DESC LIMIT 10",
    "SELECT ?x WHERE {(?x,'rating',?r) FILTER ?r >= 4.5} SKYLINE OF ?r MAX",
    "SELECT ?n WHERE {(?a,'name',?n) FILTER edist(?n,'alice') < 3}",
];

/// Every valid corpus query still parses (guards the corpus itself).
#[test]
fn corpus_parses() {
    for q in VALID {
        unistore_vql::parse(q).unwrap_or_else(|e| panic!("corpus query {q:?} failed: {e:?}"));
    }
}

/// Every strict prefix of a valid query must parse or error — the
/// degenerate inputs a user produces by typing must never panic.
#[test]
fn truncations_never_panic() {
    for q in VALID {
        for cut in 0..q.len() {
            if q.is_char_boundary(cut) {
                let _ = unistore_vql::parse(&q[..cut]);
            }
        }
    }
}

proptest! {
    /// Arbitrary byte soup through the parser: outcome is `Ok` or a
    /// positioned `Err`, never a panic.
    #[test]
    fn arbitrary_input_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let s = String::from_utf8_lossy(&data);
        if let Err(e) = unistore_vql::parse(&s) {
            prop_assert!(e.offset <= s.len(), "error offset {} beyond input {}", e.offset, s.len());
        }
    }

    /// A valid query with one byte overwritten: parse must still be
    /// total (single-keystroke corruption is the common typo shape).
    #[test]
    fn mutated_query_never_panics(which: u64, pos: u64, byte: u8) {
        let q = VALID[(which as usize) % VALID.len()];
        let mut bytes = q.as_bytes().to_vec();
        let at = (pos as usize) % bytes.len();
        bytes[at] = byte;
        let s = String::from_utf8_lossy(&bytes);
        let _ = unistore_vql::parse(&s);
    }
}

//! Backend-agnostic digest-exchange anti-entropy.
//!
//! Both backends repair replicas with the same pull protocol (paper
//! ref [4], Datta et al.: hybrid push/pull with loose consistency): a
//! replica offers a **digest** — `(record key, version)` pairs covering
//! its store, tombstones included — and the partner answers with every
//! record that is strictly newer than (or absent from) the digest. The
//! stores differ only in their record key — `(key, ident)` for P-Grid's
//! trie leaves, `(ring position, key, ident)` for Chord's ring — so the
//! diff that drives the exchange lives here, generic over the key.

use std::hash::Hash;

use unistore_util::FxHashMap;

/// Records strictly newer than what `theirs` reports (or absent from
/// it): the reply half of a digest exchange. `mine` iterates this
/// store's records as `(record key, version, payload-or-tombstone)`;
/// tombstones travel too — deletes must propagate, or revived replicas
/// would resurrect deleted data.
pub fn diff_newer<'a, K, I>(
    mine: impl Iterator<Item = (K, u64, Option<&'a I>)>,
    theirs: &[(K, u64)],
) -> Vec<(K, u64, Option<I>)>
where
    K: Eq + Hash + Copy,
    I: Clone + 'a,
{
    let known: FxHashMap<K, u64> = theirs.iter().copied().collect();
    mine.filter(|(k, v, _)| known.get(k).is_none_or(|have| *v > *have))
        .map(|(k, v, i)| (k, v, i.cloned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<(u64, u64, Option<&'static u32>)> {
        vec![(1, 3, Some(&10)), (2, 1, None), (3, 5, Some(&30))]
    }

    #[test]
    fn absent_and_stale_records_travel() {
        // Partner knows key 1 at the same version, key 3 at an older one,
        // and nothing about the key-2 tombstone.
        let out = diff_newer(records().into_iter(), &[(1, 3), (3, 4)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (2, 1, None), "tombstones propagate");
        assert_eq!(out[1], (3, 5, Some(30)));
    }

    #[test]
    fn up_to_date_partner_gets_nothing() {
        let out = diff_newer(records().into_iter(), &[(1, 3), (2, 1), (3, 5)]);
        assert!(out.is_empty());
    }

    #[test]
    fn equal_versions_do_not_travel() {
        // Strictly-newer rule: an equal version is not worth shipping.
        let out = diff_newer(records().into_iter(), &[(1, 3), (2, 1), (3, 5)]);
        assert!(out.is_empty());
        let out = diff_newer(records().into_iter(), &[]);
        assert_eq!(out.len(), 3, "empty digest pulls everything");
    }
}

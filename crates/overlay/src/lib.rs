//! The overlay abstraction: what UniStore's query layer needs from a DHT.
//!
//! The paper's layer diagram (Fig. 1) presents the structured overlay as
//! an interchangeable substrate below the triple storage and query
//! processing layers. This crate makes that substrate a first-class
//! abstraction: [`Overlay`] captures exactly the surface the layers
//! above consume —
//!
//! * **retrieval**: exact-key lookups plus order-preserving range scans
//!   (prefix scans are ranges over the order-preserving key encoding),
//! * **placement**: routed inserts/deletes and driver-side preloading,
//! * **routing**: responsibility tests and next-hop selection so mutant
//!   query plans can travel toward the data,
//! * **events**: a uniform completion surface ([`OverlayDone`]) for
//!   locally issued operations,
//! * **bootstrap**: converged-topology planning ([`OverlayTopology`])
//!   shared by the simulated cluster driver and the live runtime.
//!
//! `unistore-pgrid` implements it natively (the trie *is* the index);
//! `unistore-chord` implements it with a uniform-hash ring plus an
//! order-preserving bucket index — the "additional structure" the paper
//! says ring DHTs need for range queries (§2). The whole
//! VQL → MQP → adaptive-optimizer pipeline runs unchanged over either.

pub mod repair;

use unistore_simnet::{Effects, NodeBehavior, NodeId};
use unistore_util::item::Item;
use unistore_util::Key;

pub use unistore_util::bloom::ItemFilter;
pub use unistore_util::wire::{BatchOp, BatchVerb, OpBatch};

/// Which range-scan physical algorithm the caller prefers.
///
/// Backends map the hint onto their native machinery: P-Grid runs the
/// shower algorithm for [`RangeMode::Parallel`] and the sequential leaf
/// walk for [`RangeMode::Sequential`]; Chord serves parallel scans from
/// its bucket index and falls back to a finger-tree broadcast for the
/// sequential (index-free) flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RangeMode {
    /// Fan out across the key space in parallel.
    Parallel,
    /// Walk the key space without the parallel fan-out structure.
    Sequential,
}

/// Uniform completion of a locally issued overlay operation.
///
/// Every backend surfaces its native completion events through
/// [`Overlay::done`], so the layers above correlate by `qid` without
/// knowing which DHT answered.
#[derive(Clone, Debug)]
pub enum OverlayDone<I> {
    /// An exact-key lookup finished.
    Lookup {
        /// Correlation id.
        qid: u64,
        /// Items stored under the key (empty = key absent).
        items: Vec<I>,
        /// Hops of the route.
        hops: u32,
        /// `false` on routing failure or timeout.
        ok: bool,
    },
    /// A range scan finished.
    Range {
        /// Correlation id.
        qid: u64,
        /// All matching items (may contain duplicates from replicas or
        /// double-indexed entries; callers dedup by identity).
        items: Vec<I>,
        /// Deepest hop count over all branches.
        hops: u32,
        /// `true` when every expected contribution arrived.
        complete: bool,
    },
    /// A routed insert or delete was acknowledged.
    Insert {
        /// Correlation id.
        qid: u64,
        /// Hops to the responsible peer.
        hops: u32,
        /// `false` on timeout.
        ok: bool,
    },
    /// A routed [`OpBatch`] completed: every op was acknowledged (`ok`)
    /// or the batch timed out. Per-op acks are aggregated by the
    /// backend, so driver-side bookkeeping stays O(batch), not O(op).
    Batch {
        /// Correlation id of the whole batch.
        qid: u64,
        /// Ops the batch carried.
        ops: u32,
        /// Deepest routed hop count over all sub-batches.
        hops: u32,
        /// `false` when not every op was acknowledged in time.
        ok: bool,
    },
}

impl<I> OverlayDone<I> {
    /// Correlation id of the completed operation.
    pub fn qid(&self) -> u64 {
        match self {
            OverlayDone::Lookup { qid, .. }
            | OverlayDone::Range { qid, .. }
            | OverlayDone::Insert { qid, .. }
            | OverlayDone::Batch { qid, .. } => *qid,
        }
    }

    /// Hop count of the completed operation.
    pub fn hops(&self) -> u32 {
        match self {
            OverlayDone::Lookup { hops, .. }
            | OverlayDone::Range { hops, .. }
            | OverlayDone::Insert { hops, .. }
            | OverlayDone::Batch { hops, .. } => *hops,
        }
    }

    /// Retrieved items, when the operation retrieves (`None` for
    /// inserts/deletes).
    pub fn items(&self) -> Option<&[I]> {
        match self {
            OverlayDone::Lookup { items, .. } | OverlayDone::Range { items, .. } => Some(items),
            OverlayDone::Insert { .. } | OverlayDone::Batch { .. } => None,
        }
    }

    /// Whether the operation fully succeeded (`complete` for ranges,
    /// `ok` otherwise).
    pub fn ok(&self) -> bool {
        match self {
            OverlayDone::Lookup { ok, .. }
            | OverlayDone::Insert { ok, .. }
            | OverlayDone::Batch { ok, .. } => *ok,
            OverlayDone::Range { complete, .. } => *complete,
        }
    }
}

/// A planned, converged deployment of an overlay: the driver-side view
/// of where every key lives, produced by [`Overlay::plan`] and consumed
/// peer-by-peer through [`Overlay::spawn`].
pub trait OverlayTopology {
    /// Peer indices that should hold `key` in the converged state
    /// (replica group, or the owners of every index the backend keeps
    /// for a key). Drives bulk preloading.
    fn holders(&self, key: Key) -> Vec<usize>;

    /// Number of data partitions (trie leaves, ring arcs, …); feeds the
    /// cost model's selectivity estimates.
    fn partitions(&self) -> usize;

    /// Replication factor of each partition.
    fn replication(&self) -> usize;
}

/// A DHT node usable as UniStore's storage substrate.
///
/// The trait extends [`NodeBehavior`]: an overlay node is hosted on a
/// simulated (or live) node, exchanges its own message type and emits
/// its own event type; [`Overlay::done`] folds the latter into the
/// uniform [`OverlayDone`]. Backends must keep their timer kinds below
/// 100 — the embedding node reserves kinds ≥ 100 for the query layer.
///
/// `WireMsg`/`Event` restate the hosting [`NodeBehavior`]'s associated
/// types (the supertrait bound pins them equal) so that embedding
/// layers generic over `O: Overlay` get the `Debug + Send` bounds the
/// live threaded runtime needs.
pub trait Overlay:
    NodeBehavior<Msg = <Self as Overlay>::WireMsg, Out = <Self as Overlay>::Event>
    + Sized
    + Send
    + 'static
{
    /// The backend's network message type (`== NodeBehavior::Msg`).
    type WireMsg: unistore_util::wire::Wire + Clone + std::fmt::Debug + Send + 'static;
    /// The backend's native completion event type (`== NodeBehavior::Out`).
    type Event: std::fmt::Debug + Send + 'static;
    /// Payload type stored in the overlay.
    type Item: Item;
    /// Backend configuration.
    type Config: Clone + Send + 'static;
    /// Driver-side deployment plan.
    type Topology: OverlayTopology;

    /// Human-readable backend name (experiment output).
    const NAME: &'static str;

    /// Whether [`Overlay::plan`] adapts the topology to the key sample.
    /// Drivers skip the post-load re-plan for backends that ignore it
    /// (an order-destroying hash cannot use a key distribution).
    const ADAPTS_TO_SAMPLE: bool;

    /// Whether the backend applies a pushed-down [`ItemFilter`] at the
    /// peers responsible for the data. When `false` (the default impls),
    /// filtered retrieval degenerates to a full collect and the query
    /// layer should not pay for building and shipping filters.
    const PUSHES_FILTERS: bool = false;

    /// Whether the backend routes [`OpBatch`]es natively: many write ops
    /// in one wire message, grouped by next hop at the origin, re-split
    /// and re-grouped at each routing step, per-op acks aggregated into
    /// one [`OverlayDone::Batch`]. When `false` (the default),
    /// [`Overlay::batch_msgs`] degenerates to the per-op message fan-out
    /// and drivers should not expect any coalescing win.
    const BATCHES_OPS: bool = false;

    // ---- topology bootstrap -------------------------------------------

    /// Plans a converged `n_peers` deployment. `sample` carries the
    /// expected key distribution for backends that adapt their topology
    /// to the data (P-Grid's balanced trie); others ignore it.
    fn plan(
        n_peers: usize,
        cfg: &Self::Config,
        sample: Option<&[Key]>,
        seed: u64,
    ) -> Self::Topology;

    /// Creates peer `peer` of a planned deployment, routing state wired.
    fn spawn(topology: &Self::Topology, peer: usize, cfg: &Self::Config, seed: u64) -> Self;

    // ---- identity and routing -----------------------------------------

    /// This peer's node id.
    fn id(&self) -> NodeId;

    /// Whether this peer is responsible for `key`'s primary location.
    fn responsible(&self, key: Key) -> bool;

    /// Next hop toward the peer responsible for `key`, or `None` when
    /// the key is local or routing is stuck. May randomize across
    /// redundant references to spread load.
    fn next_hop(&mut self, key: Key) -> Option<NodeId>;

    /// Whether this peer's local store currently holds any entry under
    /// `key` (any index). Observability only: the scale campaign
    /// measures replication *repair lag* as the time from a crashed
    /// replica's revival until every planned holder of a key written
    /// during the outage holds it again. The default (`false`) opts a
    /// backend out of the measurement.
    fn holds(&self, _key: Key) -> bool {
        false
    }

    /// Every peer this node's routing state currently references
    /// (routing-table entries, fingers, successors, replica partners —
    /// deduplicated, self excluded). Observability only: the scale
    /// campaign measures routing-table *staleness* as the fraction of
    /// references pointing at peers that are actually down. The default
    /// (empty) opts a backend out of the measurement.
    fn routing_refs(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// From this node's *live* view: if it is a primary for `key`, the
    /// full set of peers (itself included) that should eventually hold
    /// an entry written under `key`; empty when this node is not a
    /// primary. Unlike [`OverlayTopology::holders`], which reports the
    /// build-time plan, this tracks runtime drift — path migrations,
    /// re-pointed successors — so the scale campaign can pick partition
    /// victims and check repair convergence against where the data
    /// *actually* lives. Observability only; the default (empty) opts a
    /// backend out.
    fn replica_group(&self, _key: Key) -> Vec<NodeId> {
        Vec::new()
    }

    // ---- local placement and retrieval --------------------------------

    /// Places an entry directly into the local store (driver-side bulk
    /// loading; bypasses the network on purpose). The peer stores the
    /// entry under every index it is responsible for.
    fn preload(&mut self, key: Key, item: Self::Item, version: u64);

    /// Issues a locally originated exact-key lookup; completion surfaces
    /// as an emitted event that [`Overlay::done`] maps to
    /// [`OverlayDone::Lookup`].
    fn local_lookup(&mut self, qid: u64, key: Key, fx: &mut Effects<Self::Msg, Self::Out>);

    /// Issues a locally originated range scan over `[lo, hi]`.
    fn local_range(
        &mut self,
        qid: u64,
        lo: Key,
        hi: Key,
        mode: RangeMode,
        fx: &mut Effects<Self::Msg, Self::Out>,
    );

    // ---- filtered retrieval (semi-join pushdown) ----------------------

    /// Like [`Overlay::local_lookup`], but ships `filter` with the
    /// request so the responsible peer drops non-matching items before
    /// replying. The default ignores the filter (still correct — the
    /// filter only ever removes rows the join would discard anyway).
    fn local_lookup_filtered(
        &mut self,
        qid: u64,
        key: Key,
        _filter: Option<ItemFilter>,
        fx: &mut Effects<Self::Msg, Self::Out>,
    ) {
        self.local_lookup(qid, key, fx);
    }

    /// Like [`Overlay::local_range`], but ships `filter` to every leaf
    /// the scan reaches. The default ignores the filter.
    fn local_range_filtered(
        &mut self,
        qid: u64,
        lo: Key,
        hi: Key,
        mode: RangeMode,
        _filter: Option<ItemFilter>,
        fx: &mut Effects<Self::Msg, Self::Out>,
    ) {
        self.local_range(qid, lo, hi, mode, fx);
    }

    // ---- driver-side routed operations --------------------------------

    /// Message that starts a routed exact-key lookup at the injected
    /// peer.
    fn lookup_msg(cfg: &Self::Config, qid: u64, key: Key, origin: NodeId) -> Self::Msg;

    /// Messages that insert `item` under `key` through the routed
    /// protocol path — one per index the backend maintains, each with
    /// its own correlation id drawn from `next_qid`.
    fn insert_msgs(
        cfg: &Self::Config,
        next_qid: &mut dyn FnMut() -> u64,
        key: Key,
        item: Self::Item,
        version: u64,
        origin: NodeId,
    ) -> Vec<(u64, Self::Msg)>;

    /// Messages that remove the entry with logical identity `ident`
    /// under `key` from every index (update maintenance).
    fn delete_msgs(
        cfg: &Self::Config,
        next_qid: &mut dyn FnMut() -> u64,
        key: Key,
        ident: u64,
        version: u64,
        origin: NodeId,
    ) -> Vec<(u64, Self::Msg)>;

    /// Messages that perform a whole [`OpBatch`] of writes through the
    /// routed protocol path. Backends with `BATCHES_OPS` wrap the batch
    /// in one (or few) coalesced wire messages whose completion surfaces
    /// as [`OverlayDone::Batch`]; the default falls back to the per-op
    /// [`Overlay::insert_msgs`] / [`Overlay::delete_msgs`] expansion.
    fn batch_msgs(
        cfg: &Self::Config,
        next_qid: &mut dyn FnMut() -> u64,
        batch: &OpBatch<Self::Item>,
        origin: NodeId,
    ) -> Vec<(u64, Self::Msg)> {
        per_op_batch_msgs::<Self>(cfg, next_qid, batch, origin)
    }

    // ---- event surface ------------------------------------------------

    /// Folds a backend-native completion event into the uniform view.
    fn done(ev: Self::Out) -> OverlayDone<Self::Item>;
}

/// The per-op fallback expansion of [`Overlay::batch_msgs`]: one routed
/// message per (index key, op) through the backend's single-op
/// constructors. Exposed so drivers can force the uncoalesced path for
/// comparison even on backends that batch natively (the `bench-snapshot`
/// ingest section measures exactly this).
pub fn per_op_batch_msgs<O: Overlay>(
    cfg: &O::Config,
    next_qid: &mut dyn FnMut() -> u64,
    batch: &OpBatch<O::Item>,
    origin: NodeId,
) -> Vec<(u64, O::Msg)> {
    let mut out = Vec::with_capacity(batch.ops.len());
    for op in &batch.ops {
        match op.verb {
            BatchVerb::Insert { item } => out.extend(O::insert_msgs(
                cfg,
                next_qid,
                op.key,
                batch.items[item as usize].clone(),
                op.version,
                origin,
            )),
            BatchVerb::Delete { ident } => {
                out.extend(O::delete_msgs(cfg, next_qid, op.key, ident, op.version, origin))
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_accessors() {
        let d: OverlayDone<u32> =
            OverlayDone::Lookup { qid: 7, items: vec![1, 2], hops: 3, ok: true };
        assert_eq!(d.qid(), 7);
        assert_eq!(d.hops(), 3);
        assert_eq!(d.items(), Some(&[1u32, 2][..]));
        assert!(d.ok());

        let d: OverlayDone<u32> = OverlayDone::Insert { qid: 9, hops: 1, ok: false };
        assert_eq!(d.qid(), 9);
        assert!(d.items().is_none());
        assert!(!d.ok());

        let d: OverlayDone<u32> =
            OverlayDone::Range { qid: 4, items: vec![], hops: 0, complete: true };
        assert!(d.ok());
        assert_eq!(d.items(), Some(&[][..]));
    }
}

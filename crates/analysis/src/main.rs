//! CLI for the analysis gate.
//!
//! ```text
//! unistore-analysis [--root <dir>] [--verbose]
//! ```
//!
//! Exit codes: 0 clean, 1 findings or structural errors, 2 usage.

use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory");
                    std::process::exit(2);
                }
            },
            "--verbose" | "-v" => verbose = true,
            other => {
                eprintln!("unknown argument {other:?}; usage: unistore-analysis [--root <dir>] [--verbose]");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_root);
    let report = unistore_analysis::run(&root);
    let stdout = std::io::stdout();
    if unistore_analysis::render(&report, verbose, &mut stdout.lock()).is_err() {
        std::process::exit(1);
    }
    std::process::exit(if report.clean() { 0 } else { 1 });
}

/// Walks up from the current directory to the first dir containing
/// both `Cargo.toml` and `crates/`, so the binary works from any
/// workspace subdirectory.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

//! The three rule families.
//!
//! * **L1 `no-panic` / `decode-index`** — protocol code (the crates
//!   whose non-test code runs inside a node: `core`, `chord`, `pgrid`,
//!   `overlay`, `query`, `vql`, and the `util` wire codec) must not
//!   contain panic paths: `unwrap()`, `expect("…")`, `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`, or slice indexing
//!   inside `decode` functions. A panic on a decoded message is a
//!   remote crash trigger once bytes arrive from a real socket.
//! * **L2 `wall-clock` / `entropy-rng` / `map-order` /
//!   `wire-map-order`** — the simulator is the correctness oracle only
//!   while same-seed runs are bit-identical. Wall clocks outside the
//!   designated clock modules, entropy-seeded RNGs anywhere, and
//!   randomized-order hash maps (std `HashMap`/`HashSet`) in non-test
//!   code all break that; deterministic `FxHashMap` is allowed except
//!   in wire-emitting modules, where any hash map needs a justified
//!   suppression (iteration order must provably never reach the wire).
//! * **L3 `wire-exhaustive` / `decode-alloc`** — every variant of the
//!   four message enums must have a handler arm and decode-roundtrip
//!   test coverage, and every `with_capacity`/`reserve` inside a
//!   decode function must clamp its length argument.

use crate::scan::{find_idents, fn_bodies_with_prefix, match_paren, next_sig, prev_sig, Source};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (stable; allowlist entries reference it).
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Trimmed source line (allowlist needles match against this).
    pub text: String,
    /// What is wrong.
    pub message: String,
}

/// Crates whose non-test code is held to the no-panic rule.
fn in_l1_scope(path: &str) -> bool {
    const SCOPES: &[&str] = &[
        "crates/core/src/",
        "crates/chord/src/",
        "crates/pgrid/src/",
        "crates/overlay/src/",
        "crates/query/src/",
        "crates/vql/src/",
    ];
    SCOPES.iter().any(|s| path.starts_with(s)) || in_wire_codec(path)
}

/// The wire codec itself (`util/wire*`): decoders over untrusted bytes.
fn in_wire_codec(path: &str) -> bool {
    path == "crates/util/src/wire.rs" || path.starts_with("crates/util/src/wire/")
}

/// Modules whose data structures feed the wire, a stats broadcast or a
/// bench snapshot: hash maps here need a justified suppression.
fn in_wire_emitting(path: &str) -> bool {
    path.ends_with("/msg.rs")
        || in_wire_codec(path)
        || matches!(
            path,
            "crates/util/src/bloom.rs"
                | "crates/query/src/relation.rs"
                | "crates/query/src/mqp.rs"
                | "crates/query/src/cost.rs"
                | "crates/core/src/stats.rs"
                | "crates/simnet/src/metrics.rs"
        )
}

/// Modules allowed to read the wall clock: the simulated clock, the
/// live (threaded) runtime, and the bench harness (which measures real
/// wall time by design).
fn wall_clock_allowed(path: &str) -> bool {
    matches!(path, "crates/simnet/src/time.rs" | "crates/core/src/live.rs")
        || path.starts_with("crates/bench/")
}

/// Runs every per-file rule over one source.
pub fn check_file(src: &Source, out: &mut Vec<Finding>) {
    let non_test = src.masked_non_test();
    if in_l1_scope(&src.path) {
        no_panic(src, &non_test, out);
        decode_index(src, &non_test, out);
    }
    decode_alloc(src, &non_test, out);
    if !wall_clock_allowed(&src.path) {
        banned_path(src, &non_test, "Instant::now", "wall-clock", out);
        banned_path(src, &non_test, "SystemTime::now", "wall-clock", out);
    }
    // Entropy-seeded randomness is banned everywhere, tests included: a
    // test that passes only for some seeds is a flake, and protocol
    // code seeded from entropy breaks same-seed reproducibility.
    for needle in ["from_entropy", "thread_rng", "OsRng", "from_os_rng"] {
        for at in find_idents(&src.masked, needle) {
            push(
                src,
                at,
                "entropy-rng",
                format!(
                    "{needle} breaks deterministic replay; derive seeds via unistore_util::rng"
                ),
                out,
            );
        }
    }
    if src.path != "crates/util/src/fxhash.rs" {
        for name in ["HashMap", "HashSet"] {
            for at in find_idents(&non_test, name) {
                push(
                    src,
                    at,
                    "map-order",
                    format!(
                        "std {name} has randomized iteration order; use Fx{name} (deterministic) \
                         or BTree{}",
                        &name[4..]
                    ),
                    out,
                );
            }
        }
    }
    if in_wire_emitting(&src.path) {
        for name in ["FxHashMap", "FxHashSet"] {
            for at in find_idents(&non_test, name) {
                push(
                    src,
                    at,
                    "wire-map-order",
                    format!(
                        "{name} in a wire-emitting module: iteration order must never reach the \
                         wire — use BTreeMap/sorted emission, or suppress with a proof sketch"
                    ),
                    out,
                );
            }
        }
    }
}

fn push(src: &Source, at: usize, rule: &'static str, message: String, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule,
        file: src.path.clone(),
        line: src.line_of(at),
        text: src.line_text(at).to_string(),
        message,
    });
}

fn banned_path(
    src: &Source,
    non_test: &str,
    needle: &str,
    rule: &'static str,
    out: &mut Vec<Finding>,
) {
    let mut from = 0;
    while let Some(pos) = non_test[from..].find(needle) {
        let at = from + pos;
        from = at + needle.len();
        if !crate::scan::is_ident_at(non_test, at, needle.split("::").next().unwrap_or(needle)) {
            continue;
        }
        push(
            src,
            at,
            rule,
            format!("{needle} outside the clock modules makes same-seed runs diverge"),
            out,
        );
    }
}

/// `.unwrap()`, `.expect("…")`, and the panic macro family.
fn no_panic(src: &Source, non_test: &str, out: &mut Vec<Finding>) {
    for at in find_idents(non_test, "unwrap") {
        let preceded_by_dot = matches!(prev_sig(non_test, at), Some((_, b'.')));
        let called_empty = next_sig(non_test, at + "unwrap".len())
            .filter(|&(_, b)| b == b'(')
            .and_then(|(p, _)| next_sig(non_test, p + 1))
            .is_some_and(|(_, b)| b == b')');
        if preceded_by_dot && called_empty {
            push(
                src,
                at,
                "no-panic",
                "unwrap() panics on the error path; return a typed error or handle the None"
                    .to_string(),
                out,
            );
        }
    }
    for at in find_idents(non_test, "expect") {
        let preceded_by_dot = matches!(prev_sig(non_test, at), Some((_, b'.')));
        // Only Option/Result::expect takes a string literal first; a
        // parser's own `self.expect(Token::X)` does not match.
        let string_arg = next_sig(non_test, at + "expect".len())
            .filter(|&(_, b)| b == b'(')
            .and_then(|(p, _)| next_sig(non_test, p + 1))
            .is_some_and(|(_, b)| b == b'"');
        if preceded_by_dot && string_arg {
            push(
                src,
                at,
                "no-panic",
                "expect(\"…\") panics on the error path; return a typed error instead".to_string(),
                out,
            );
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for at in find_idents(non_test, mac) {
            if non_test.as_bytes().get(at + mac.len()) == Some(&b'!') {
                push(
                    src,
                    at,
                    "no-panic",
                    format!(
                        "{mac}! in protocol code is a remote crash trigger once bytes arrive \
                             from a real socket"
                    ),
                    out,
                );
            }
        }
    }
}

/// Slice/array indexing inside `decode*` function bodies: decoded data
/// must be accessed through `get`/bounds-checked paths.
fn decode_index(src: &Source, non_test: &str, out: &mut Vec<Finding>) {
    for (start, end) in fn_bodies_with_prefix(non_test, "decode") {
        let bytes = non_test.as_bytes();
        let body = &bytes[start..end.min(bytes.len())];
        for (off, &b) in body.iter().enumerate() {
            if b != b'[' {
                continue;
            }
            let i = start + off;
            // An index expression follows an identifier, `)`, or `]`;
            // array literals and attributes do not.
            let Some((_, prev)) = prev_sig(non_test, i) else { continue };
            if prev == b')' || prev == b']' || prev.is_ascii_alphanumeric() || prev == b'_' {
                push(
                    src,
                    i,
                    "decode-index",
                    "indexing in a decode path panics out of bounds; use get()/chunk guards"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// `with_capacity`/`reserve` inside `decode*` bodies must clamp: a
/// length prefix is attacker-controlled, and an unclamped reservation
/// turns 5 wire bytes into a gigabyte allocation.
fn decode_alloc(src: &Source, non_test: &str, out: &mut Vec<Finding>) {
    for (start, end) in fn_bodies_with_prefix(non_test, "decode") {
        for name in ["with_capacity", "reserve"] {
            for at in find_idents(&non_test[start..end], name) {
                let at = start + at;
                let Some((open, b'(')) = next_sig(non_test, at + name.len()) else { continue };
                let Some(close) = match_paren(non_test, open) else { continue };
                let arg = &non_test[open + 1..close];
                if !is_clamped(arg) {
                    push(
                        src,
                        at,
                        "decode-alloc",
                        format!(
                            "{name}({}) fed by decoded input without a clamp: cap it with \
                                 .min(…) before reserving",
                            arg.trim()
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// A capacity argument counts as clamped when it passes through
/// `min(…)` / `clamp(…)`, or is a plain numeric literal / SCREAMING
/// constant (compile-time bound, not wire data).
fn is_clamped(arg: &str) -> bool {
    let arg = arg.trim();
    if arg.contains("min(") || arg.contains("clamp(") {
        return true;
    }
    !arg.is_empty()
        && arg.chars().all(|c| {
            c.is_ascii_digit()
                || c.is_ascii_uppercase()
                || c == '_'
                || c == ':'
                || c.is_whitespace()
        })
}

// ---- L3: wire exhaustiveness -----------------------------------------

/// Where one message enum is defined, handled and test-covered.
pub struct EnumSpec {
    /// Enum name as written in source.
    pub name: &'static str,
    /// Defining file (workspace-relative).
    pub file: &'static str,
    /// Directory whose non-test code must contain a handler arm
    /// (`Enum::Variant`) outside the defining file.
    pub handler_dir: &'static str,
    /// Directories whose *test* code must construct the variant
    /// (decode-roundtrip coverage).
    pub coverage_dirs: &'static [&'static str],
}

/// The four protocol enums the gate tracks.
pub const ENUM_SPECS: &[EnumSpec] = &[
    EnumSpec {
        name: "UniMsg",
        file: "crates/core/src/msg.rs",
        handler_dir: "crates/core/src/",
        coverage_dirs: &["crates/core/src/", "tests/"],
    },
    EnumSpec {
        name: "QueryMsg",
        file: "crates/core/src/msg.rs",
        handler_dir: "crates/core/src/",
        coverage_dirs: &["crates/core/src/", "tests/"],
    },
    EnumSpec {
        name: "PGridMsg",
        file: "crates/pgrid/src/msg.rs",
        handler_dir: "crates/pgrid/src/",
        coverage_dirs: &["crates/pgrid/src/", "crates/core/src/", "tests/"],
    },
    EnumSpec {
        name: "ChordMsg",
        file: "crates/chord/src/msg.rs",
        handler_dir: "crates/chord/src/",
        coverage_dirs: &["crates/chord/src/", "crates/core/src/", "tests/"],
    },
];

/// Extracts the variant names of `enum <name>` from a masked source.
pub fn enum_variants(masked: &str, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let Some(body) = enum_body(masked, name) else { return variants };
    let bytes = body.as_bytes();
    let mut depth = 0i32;
    let mut expect_name = true;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'[' | b'<' => depth += 1,
            b'}' | b')' | b']' | b'>' => depth -= 1,
            b',' if depth == 0 => expect_name = true,
            b'#' if depth == 0 && bytes.get(i + 1) == Some(&b'[') => {
                // Skip an attribute.
                let mut d = 0;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            c if expect_name && depth == 0 && (c.is_ascii_alphabetic() || c == b'_') => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                variants.push(body[start..i].to_string());
                expect_name = false;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

fn enum_body<'a>(masked: &'a str, name: &str) -> Option<&'a str> {
    for at in find_idents(masked, "enum") {
        let Some((name_at, _)) = next_sig(masked, at + 4) else { continue };
        if !masked[name_at..].starts_with(name) || !crate::scan::is_ident_at(masked, name_at, name)
        {
            continue;
        }
        let open = masked[name_at..].find('{')? + name_at;
        let bytes = masked.as_bytes();
        let mut depth = 0usize;
        for (i, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&masked[open + 1..i]);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Source;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let s = Source::new(path.into(), src.into());
        let mut out = Vec::new();
        check_file(&s, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_in_scope_only() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(findings("crates/pgrid/src/a.rs", src).len(), 1);
        assert_eq!(findings("crates/workload/src/a.rs", src).len(), 0, "out of L1 scope");
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }";
        assert!(findings("crates/query/src/a.rs", src).is_empty());
    }

    #[test]
    fn expect_string_vs_token() {
        let flagged = findings("crates/core/src/a.rs", "fn f() { x.expect(\"alive\"); }");
        assert_eq!(flagged.len(), 1);
        let parser = findings("crates/vql/src/p.rs", "fn f() { self.expect(Token::Comma)?; }");
        assert!(parser.is_empty(), "parser's own expect(Token) is not Result::expect");
    }

    #[test]
    fn panic_macros_flagged_but_not_in_tests() {
        let src = "fn f() { panic!(\"boom\"); }\n#[cfg(test)]\nmod tests { fn t() { panic!(); unreachable!(); } }";
        let got = findings("crates/chord/src/a.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 1);
    }

    #[test]
    fn wall_clock_scoping() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(findings("crates/query/src/a.rs", src).len(), 1);
        assert!(findings("crates/core/src/live.rs", src).is_empty());
        assert!(findings("crates/bench/src/bin/x.rs", src).is_empty());
    }

    #[test]
    fn entropy_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let r = thread_rng(); } }";
        assert_eq!(findings("crates/util/src/a.rs", src).len(), 1);
    }

    #[test]
    fn std_maps_flagged_fx_allowed_outside_wire() {
        let src = "use std::collections::HashMap; fn f(m: HashMap<u8, u8>) {}";
        assert_eq!(findings("crates/store/src/a.rs", src).len(), 2);
        let fx = "fn f(m: FxHashMap<u8, u8>) {}";
        assert!(findings("crates/store/src/a.rs", fx).is_empty());
        assert_eq!(findings("crates/query/src/cost.rs", fx).len(), 1, "wire-emitting module");
    }

    #[test]
    fn decode_index_and_alloc() {
        let src = "fn decode(buf: &mut Bytes) -> R { let x = buf[0]; let mut v = Vec::with_capacity(len); }";
        let got = findings("crates/util/src/wire.rs", src);
        assert!(got.iter().any(|f| f.rule == "decode-index"), "{got:?}");
        assert!(got.iter().any(|f| f.rule == "decode-alloc"), "{got:?}");
        let clamped =
            "fn decode(b: &mut Bytes) -> R { let mut v = Vec::with_capacity(len.min(1024) as usize); let a = [0u8; 4]; }";
        let got = findings("crates/util/src/wire.rs", clamped);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn encode_side_allocs_exempt() {
        let src = "fn encode(&self, buf: &mut BytesMut) { buf.reserve(self.wire_size()); }";
        assert!(findings("crates/util/src/wire.rs", src).is_empty());
    }

    #[test]
    fn variants_parsed() {
        let src = "pub enum PGridMsg<I> {\n  #[doc(hidden)]\n  Lookup { qid: u64, filter: Option<F> },\n  Reply(Vec<(u64, I)>),\n  Ping,\n}";
        let got = enum_variants(&crate::scan::mask(src), "PGridMsg");
        assert_eq!(got, vec!["Lookup", "Reply", "Ping"]);
    }
}

//! The checked-in suppression list (`analysis-allow.toml`).
//!
//! Every suppression names a rule, a file, a `needle` substring that
//! must appear on the flagged line, and a one-line justification. The
//! gate fails when an entry is missing its justification, when an entry
//! suppresses nothing (stale — the list may only shrink), or when the
//! list grows past [`MAX_ENTRIES`].
//!
//! The parser handles exactly the TOML subset the file uses
//! (`[[allow]]` tables of `key = "value"` pairs) so the gate stays
//! dependency-free.

/// Hard cap on allowlist size: the burndown may only go down.
pub const MAX_ENTRIES: usize = 20;

/// One suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (e.g. `no-panic`).
    pub rule: String,
    /// Workspace-relative file the finding is in.
    pub file: String,
    /// Substring that must occur on the flagged source line.
    pub needle: String,
    /// Why the site is acceptable. Required, non-empty.
    pub justification: String,
    /// Line in `analysis-allow.toml` where the entry starts.
    pub line: usize,
}

/// Parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

impl std::fmt::Display for AllowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analysis-allow.toml:{}: {}", self.line, self.message)
    }
}

/// Parses the allowlist. Returns all structural problems at once so a
/// bad file reports every defect in one run.
pub fn parse(text: &str) -> (Vec<AllowEntry>, Vec<AllowError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                finish(e, &mut entries, &mut errors);
            }
            current = Some(AllowEntry {
                rule: String::new(),
                file: String::new(),
                needle: String::new(),
                justification: String::new(),
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            errors.push(AllowError {
                message: format!("unparseable line: {line:?} (expected key = \"value\")"),
                line: lineno,
            });
            continue;
        };
        let Some(entry) = current.as_mut() else {
            errors.push(AllowError {
                message: format!("{key} outside any [[allow]] table"),
                line: lineno,
            });
            continue;
        };
        match key {
            "rule" => entry.rule = value,
            "file" => entry.file = value,
            "needle" => entry.needle = value,
            "justification" => entry.justification = value,
            other => errors.push(AllowError {
                message: format!("unknown key {other:?} in [[allow]]"),
                line: lineno,
            }),
        }
    }
    if let Some(e) = current.take() {
        finish(e, &mut entries, &mut errors);
    }
    if entries.len() >= MAX_ENTRIES {
        errors.push(AllowError {
            message: format!(
                "{} allow entries; the list must stay below {MAX_ENTRIES} (burn findings down \
                 instead of suppressing them)",
                entries.len()
            ),
            line: 0,
        });
    }
    (entries, errors)
}

fn finish(e: AllowEntry, entries: &mut Vec<AllowEntry>, errors: &mut Vec<AllowError>) {
    for (field, value) in [("rule", &e.rule), ("file", &e.file), ("needle", &e.needle)] {
        if value.is_empty() {
            errors.push(AllowError {
                message: format!("[[allow]] entry is missing {field}"),
                line: e.line,
            });
        }
    }
    if e.justification.trim().is_empty() {
        errors.push(AllowError {
            message: "[[allow]] entry has no justification — every suppression must say why"
                .to_string(),
            line: e.line,
        });
    }
    entries.push(e);
}

/// Parses one `key = "value"` line.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // Unescape the two sequences TOML basic strings need here.
    Some((key.trim(), inner.replace("\\\"", "\"").replace("\\\\", "\\")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# comment
[[allow]]
rule = "no-panic"
file = "crates/x/src/a.rs"
needle = "foo.unwrap()"
justification = "guarded two lines above"

[[allow]]
rule = "wire-map-order"
file = "crates/q/src/cost.rs"
needle = "FxHashMap"
justification = "never iterated onto the wire"
"#;
        let (entries, errors) = parse(text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "no-panic");
        assert_eq!(entries[1].needle, "FxHashMap");
    }

    #[test]
    fn missing_justification_is_an_error() {
        let text = "[[allow]]\nrule = \"r\"\nfile = \"f\"\nneedle = \"n\"\n";
        let (entries, errors) = parse(text);
        assert_eq!(entries.len(), 1);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("justification"));
    }

    #[test]
    fn size_cap_enforced() {
        let mut text = String::new();
        for i in 0..MAX_ENTRIES {
            text.push_str(&format!(
                "[[allow]]\nrule = \"r\"\nfile = \"f{i}\"\nneedle = \"n\"\njustification = \"j\"\n"
            ));
        }
        let (_, errors) = parse(&text);
        assert!(errors.iter().any(|e| e.message.contains("below")));
    }

    #[test]
    fn junk_reports_line() {
        let (_, errors) = parse("[[allow]]\nwhat even\n");
        assert!(errors.iter().any(|e| e.line == 2));
    }
}

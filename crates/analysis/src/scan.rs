//! Light token-level source scanning.
//!
//! The linter deliberately avoids a full Rust parser (no `syn`, no
//! network, no build): rules operate on a *masked* view of each file in
//! which comment bodies and literal contents are blanked out, so a
//! `panic!` inside a doc comment or a `"unwrap()"` inside a string can
//! never produce a finding. Masking preserves byte offsets and newlines
//! exactly, which keeps line numbers honest and lets brace matching work
//! on the masked text.

/// One scanned source file.
pub struct Source {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Original text (for rendering findings).
    pub text: String,
    /// Masked text: same length as `text`, with comment bodies and
    /// string/char literal contents replaced by spaces. Quote and
    /// delimiter characters are kept so `.expect("` stays detectable.
    pub masked: String,
    /// Byte ranges covered by `#[cfg(test)]` items (or the whole file
    /// for `tests/` integration files).
    test_regions: Vec<(usize, usize)>,
}

impl Source {
    /// Scans a file's contents.
    pub fn new(path: String, text: String) -> Source {
        let masked = mask(&text);
        let whole_file_test = path.contains("/tests/") || path.starts_with("tests/");
        let test_regions =
            if whole_file_test { vec![(0, masked.len())] } else { test_regions(&masked) };
        Source { path, text, masked, test_regions }
    }

    /// True when the byte offset falls inside test-only code.
    pub fn is_test(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.text.as_bytes()[..offset.min(self.text.len())].iter().filter(|&&b| b == b'\n').count()
            + 1
    }

    /// The source line containing a byte offset, trimmed.
    pub fn line_text(&self, offset: usize) -> &str {
        let bytes = self.text.as_bytes();
        let off = offset.min(self.text.len());
        let start = bytes[..off].iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let end = bytes[off..].iter().position(|&b| b == b'\n').map_or(bytes.len(), |p| off + p);
        self.text[start..end].trim()
    }

    /// Masked text of the non-test portion only (test bytes blanked).
    /// Handy for rules that search for substrings.
    pub fn masked_non_test(&self) -> String {
        let mut out: Vec<u8> = self.masked.clone().into_bytes();
        for &(s, e) in &self.test_regions {
            let e = e.min(out.len());
            for b in &mut out[s..e] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Masked text of the test portions only (non-test bytes blanked).
    pub fn masked_test_only(&self) -> String {
        let mut out: Vec<u8> = vec![b' '; self.masked.len()];
        let bytes = self.masked.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                out[i] = b'\n';
            }
        }
        for &(s, e) in &self.test_regions {
            out[s..e.min(bytes.len())].copy_from_slice(&bytes[s..e.min(bytes.len())]);
        }
        String::from_utf8_lossy(&out).into_owned()
    }
}

/// Blanks comment bodies and literal contents, preserving length,
/// newlines, and the delimiter characters themselves.
pub fn mask(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for b in &mut out[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr(bytes, i, b'\n').unwrap_or(bytes.len());
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank(&mut out, i + 1..end.saturating_sub(1));
                i = end;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let (content_start, content_end, after) = skip_raw_string(bytes, i);
                blank(&mut out, content_start..content_end);
                i = after;
            }
            b'\'' => {
                // Char literal vs lifetime. A literal is 'x', '\n',
                // '\u{..}'; a lifetime is 'ident with no closing quote.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let end = skip_char_escape(bytes, i + 2);
                    blank(&mut out, i + 1..end);
                    i = end + 1; // past closing quote
                } else {
                    // Find the char boundary after one scalar.
                    let rest = &src[i + 1..];
                    match rest.chars().next() {
                        Some(c) if bytes.get(i + 1 + c.len_utf8()) == Some(&b'\'') => {
                            blank(&mut out, i + 1..i + 1 + c.len_utf8());
                            i += c.len_utf8() + 2;
                        }
                        _ => i += 1, // lifetime
                    }
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn memchr(bytes: &[u8], from: usize, needle: u8) -> Option<usize> {
    bytes[from..].iter().position(|&b| b == needle).map(|p| from + p)
}

fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r"..." or r#"..."# (and not part of an identifier like `for`).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Returns (content_start, content_end, offset_past_closing_delims).
fn skip_raw_string(bytes: &[u8], start: usize) -> (usize, usize, usize) {
    let mut hashes = 0;
    let mut j = start + 1;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    let content_start = j + 1; // past the opening quote
    let mut i = content_start;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return (content_start, i, i + 1 + hashes);
            }
        }
        i += 1;
    }
    (content_start, bytes.len(), bytes.len())
}

fn skip_char_escape(bytes: &[u8], mut i: usize) -> usize {
    // `i` points at the escaped character (may itself be `'`); consume
    // it unconditionally, then scan to the closing quote.
    i += 1;
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    i
}

/// Byte ranges of `#[cfg(test)]`-gated items, found by brace matching
/// from the attribute to the end of the following item.
fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let needle = "#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = masked[from..].find(needle) {
        let start = from + pos;
        let after = start + needle.len();
        match match_item_end(masked.as_bytes(), after) {
            Some(end) => {
                regions.push((start, end));
                from = end;
            }
            None => from = after,
        }
    }
    regions
}

/// From just past an attribute, finds the end of the item it gates:
/// the matching `}` of the first `{`, or the first `;` before any `{`.
fn match_item_end(bytes: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i + 1);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some(bytes.len());
            }
            b';' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// True when the byte at `pos` starts an identifier occurrence of
/// `name` (boundaries checked on both sides).
pub fn is_ident_at(masked: &str, pos: usize, name: &str) -> bool {
    let bytes = masked.as_bytes();
    if pos > 0 {
        let prev = bytes[pos - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let end = pos + name.len();
    if let Some(&next) = bytes.get(end) {
        if next.is_ascii_alphanumeric() || next == b'_' {
            return false;
        }
    }
    true
}

/// All identifier-boundary occurrences of `name` in `masked`.
pub fn find_idents(masked: &str, name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = masked[from..].find(name) {
        let at = from + pos;
        if is_ident_at(masked, at, name) {
            out.push(at);
        }
        from = at + name.len();
    }
    out
}

/// First non-whitespace byte at or after `from`.
pub fn next_sig(masked: &str, from: usize) -> Option<(usize, u8)> {
    masked.as_bytes()[from..]
        .iter()
        .enumerate()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(i, &b)| (from + i, b))
}

/// Last non-whitespace byte strictly before `at`.
pub fn prev_sig(masked: &str, at: usize) -> Option<(usize, u8)> {
    masked.as_bytes()[..at]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(i, &b)| (i, b))
}

/// Matches the `(`..`)` group starting at `open` (which must be `(`),
/// returning the offset of the closing paren. Braces/brackets nest.
pub fn match_paren(masked: &str, open: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'('));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte ranges of the bodies of functions whose name starts with
/// `prefix` (e.g. `decode`), found by `fn` keyword + brace matching.
pub fn fn_bodies_with_prefix(masked: &str, prefix: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for pos in find_idents(masked, "fn") {
        let Some((name_at, _)) = next_sig(masked, pos + 2) else { continue };
        let rest = &masked[name_at..];
        if !rest.starts_with(prefix) {
            continue;
        }
        // Find the body opening brace (skip signature; generic bounds
        // and where clauses carry no braces).
        let bytes = masked.as_bytes();
        let mut i = name_at;
        while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b';' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == b';' {
            continue; // trait method declaration
        }
        if let Some(end) = match_item_end(bytes, i) {
            out.push((i, end));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"unwrap()\"; // panic!\nlet y = 1; /* unreachable! */";
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(!m.contains("unreachable"));
        assert!(m.contains("let y = 1;"));
        assert!(m.contains('"'), "delimiters survive masking");
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"x.unwrap()\"#; let c = 'u'; let l: &'static str = s;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("'static"), "lifetimes survive");
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_escaped_quotes() {
        let src = r#"let s = "a\"unwrap()\"b"; foo();"#;
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("foo()"));
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn after() {}";
        let s = Source::new("crates/x/src/a.rs".into(), src.into());
        let live = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        let after = src.find("after").unwrap();
        assert!(!s.is_test(live));
        assert!(s.is_test(test));
        assert!(!s.is_test(after));
    }

    #[test]
    fn tests_dir_is_whole_file_test() {
        let s = Source::new("tests/foo.rs".into(), "x.unwrap();".into());
        assert!(s.is_test(0));
    }

    #[test]
    fn line_numbers() {
        let s = Source::new("f.rs".into(), "a\nb\ncde\n".into());
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(4), 3);
        assert_eq!(s.line_text(4), "cde");
    }

    #[test]
    fn ident_boundaries() {
        let m = "unwrap unwrapped my_unwrap .unwrap()";
        let hits = find_idents(m, "unwrap");
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn fn_body_by_prefix() {
        let src =
            "fn decode(b: &mut B) -> R { body1 }\nfn encode() { e }\nfn decode_flagged() { body2 }";
        let bodies = fn_bodies_with_prefix(src, "decode");
        assert_eq!(bodies.len(), 2);
        assert!(src[bodies[0].0..bodies[0].1].contains("body1"));
        assert!(src[bodies[1].0..bodies[1].1].contains("body2"));
    }

    #[test]
    fn masked_non_test_blanks_tests() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let s = Source::new("crates/x/src/a.rs".into(), src.into());
        let nt = s.masked_non_test();
        assert!(!nt.contains("unwrap"));
        assert!(nt.contains("fn live"));
        let t = s.masked_test_only();
        assert!(t.contains("unwrap"));
        assert!(!t.contains("fn live"));
    }
}

//! In-repo static analysis gate for the UniStore workspace.
//!
//! Three rule families (see [`rules`]) run over a token-masked view of
//! every source file (see [`scan`]), with a checked-in, size-capped
//! suppression list (see [`allow`]). The gate is dependency-free and
//! offline: it reads the tree, never the network, and never runs a
//! build. `cargo run -p unistore-analysis` from the workspace root
//! prints findings and exits non-zero when any are unsuppressed.

pub mod allow;
pub mod rules;
pub mod scan;

use rules::Finding;
use scan::Source;
use std::path::{Path, PathBuf};

/// Outcome of a full workspace run.
pub struct Report {
    /// Unsuppressed findings — the gate fails when non-empty.
    pub findings: Vec<Finding>,
    /// Findings matched by an allowlist entry.
    pub suppressed: Vec<(Finding, String)>,
    /// Structural problems: allowlist parse errors, stale entries,
    /// unreadable files.
    pub errors: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Allowlist entries in force.
    pub allow_entries: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.errors.is_empty()
    }
}

/// Runs the whole gate over the workspace rooted at `root`.
pub fn run(root: &Path) -> Report {
    let mut errors = Vec::new();
    let sources = load_sources(root, &mut errors);

    let mut findings = Vec::new();
    for src in &sources {
        rules::check_file(src, &mut findings);
    }
    check_exhaustiveness(&sources, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let allow_text = std::fs::read_to_string(root.join("analysis-allow.toml")).unwrap_or_default();
    let (entries, allow_errors) = allow::parse(&allow_text);
    errors.extend(allow_errors.iter().map(|e| e.to_string()));

    let mut used = vec![0usize; entries.len()];
    let mut unsuppressed = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.file == f.file && f.text.contains(&e.needle));
        match hit {
            Some(i) => {
                used[i] += 1;
                suppressed.push((f, entries[i].justification.clone()));
            }
            None => unsuppressed.push(f),
        }
    }
    for (entry, &n) in entries.iter().zip(&used) {
        if n == 0 {
            errors.push(format!(
                "analysis-allow.toml:{}: stale entry (rule {:?}, file {:?}, needle {:?}) \
                 suppresses nothing — delete it; the list may only shrink",
                entry.line, entry.rule, entry.file, entry.needle
            ));
        }
    }

    Report {
        findings: unsuppressed,
        suppressed,
        errors,
        files: sources.len(),
        allow_entries: entries.len(),
    }
}

/// Loads every `.rs` file under `crates/*/src`, `crates/*/tests`, and
/// the root `tests/` directory. Vendored shims and build output are out
/// of scope: the gate polices this repo's protocol code, not the
/// offline stand-ins for external crates.
fn load_sources(root: &Path, errors: &mut Vec<String>) -> Vec<Source> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut krates: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        krates.sort();
        for krate in krates {
            for sub in ["src", "tests"] {
                collect_rs(&krate.join(sub), &mut files);
            }
        }
    } else {
        errors.push(format!("cannot read {}", crates_dir.display()));
    }
    collect_rs(&root.join("tests"), &mut files);
    files.sort();

    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        match std::fs::read_to_string(&path) {
            Ok(text) => sources.push(Source::new(rel, text)),
            Err(e) => errors.push(format!("cannot read {rel}: {e}")),
        }
    }
    sources
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// L3: every variant of each protocol enum needs a handler arm in
/// non-test code and a constructor in test code (roundtrip coverage).
fn check_exhaustiveness(sources: &[Source], out: &mut Vec<Finding>) {
    for spec in rules::ENUM_SPECS {
        let Some(def) = sources.iter().find(|s| s.path == spec.file) else {
            out.push(Finding {
                rule: "wire-exhaustive",
                file: spec.file.to_string(),
                line: 0,
                text: String::new(),
                message: format!("defining file for enum {} not found", spec.name),
            });
            continue;
        };
        let variants = rules::enum_variants(&def.masked, spec.name);
        if variants.is_empty() {
            out.push(Finding {
                rule: "wire-exhaustive",
                file: spec.file.to_string(),
                line: 0,
                text: String::new(),
                message: format!("enum {} not found or has no variants", spec.name),
            });
            continue;
        }
        let enum_line =
            def.masked.find(&format!("enum {}", spec.name)).map_or(1, |at| def.line_of(at));
        for variant in &variants {
            let needle = format!("{}::{}", spec.name, variant);
            let handled = sources.iter().any(|s| {
                s.path != spec.file
                    && s.path.starts_with(spec.handler_dir)
                    && s.masked_non_test().contains(&needle)
            });
            if !handled {
                out.push(Finding {
                    rule: "wire-exhaustive",
                    file: spec.file.to_string(),
                    line: enum_line,
                    text: needle.clone(),
                    message: format!(
                        "{needle} has no handler arm in {} — a decodable message nobody \
                         handles is dead protocol surface",
                        spec.handler_dir
                    ),
                });
            }
            let covered = sources.iter().any(|s| {
                spec.coverage_dirs.iter().any(|d| s.path.starts_with(d))
                    && s.masked_test_only().contains(&needle)
            });
            if !covered {
                out.push(Finding {
                    rule: "wire-exhaustive",
                    file: spec.file.to_string(),
                    line: enum_line,
                    text: needle.clone(),
                    message: format!(
                        "{needle} is never constructed in test code — add a decode-roundtrip \
                         test for it"
                    ),
                });
            }
        }
    }
}

/// Renders a report to a writer (used by both the binary and tests).
pub fn render(report: &Report, verbose: bool, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    for f in &report.findings {
        writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message)?;
        if !f.text.is_empty() {
            writeln!(out, "    {}", f.text)?;
        }
    }
    for e in &report.errors {
        writeln!(out, "error: {e}")?;
    }
    if verbose {
        for (f, why) in &report.suppressed {
            writeln!(out, "allowed {}:{}: [{}] — {}", f.file, f.line, f.rule, why)?;
        }
    }
    writeln!(
        out,
        "{} files scanned, {} finding(s), {} suppressed ({} allow entries), {} error(s)",
        report.files,
        report.findings.len(),
        report.suppressed.len(),
        report.allow_entries,
        report.errors.len()
    )
}

/// Workspace root for in-repo integration tests: two levels above this
/// crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate, run on the real workspace, must be clean: this is the
    /// same check CI runs via the binary, wired into `cargo test` so a
    /// regression cannot land even when CI scripts are skipped.
    #[test]
    fn workspace_is_clean() {
        let report = run(&workspace_root());
        let mut buf = Vec::new();
        render(&report, false, &mut buf).unwrap();
        assert!(report.clean(), "analysis gate found problems:\n{}", String::from_utf8_lossy(&buf));
        assert!(report.files > 50, "walker saw only {} files", report.files);
    }

    /// Canary: the gate must actually be able to see findings. A bug
    /// that silently blanked every rule would otherwise keep the
    /// workspace "clean" forever.
    #[test]
    fn gate_detects_seeded_defects() {
        let src = Source::new(
            "crates/core/src/seeded.rs".into(),
            "fn f(x: Option<u8>) -> u8 { let t = Instant::now(); x.unwrap() }\n".into(),
        );
        let mut findings = Vec::new();
        rules::check_file(&src, &mut findings);
        let rules_hit: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules_hit.contains(&"no-panic"), "{rules_hit:?}");
        assert!(rules_hit.contains(&"wall-clock"), "{rules_hit:?}");
    }
}

//! Routing-table maintenance under churn.
//!
//! P-Grid keeps multiple references per level and refreshes them through
//! gossip (paper §2/§3: robust "even in unreliable and highly dynamic
//! environments"). Each maintenance round a peer:
//!
//! 1. **probes** one random reference (ping; a missing pong within the
//!    timeout evicts the reference), and
//! 2. **exchanges tables** with one random reference, merging any
//!    advertised peer that fits an under-full level.

use rand::seq::SliceRandom;
use rand::Rng;

use unistore_simnet::{NodeId, Timer};

use crate::item::Item;
use crate::msg::{PGridMsg, PeerRef};
use crate::peer::{timer, Fx, PGridPeer};

impl<I: Item> PGridPeer<I> {
    /// One maintenance round (fired by the MAINTAIN timer).
    pub(crate) fn run_maintenance(&mut self, fx: &mut Fx<I>) {
        let refs = self.routing.all_refs();
        if refs.is_empty() {
            return;
        }
        // Probe a random reference.
        if let Some(target) = refs.choose(&mut self.rng).copied() {
            let nonce = self.fresh_nonce();
            self.pending_pings.insert(nonce, target.id);
            fx.send(target.id, PGridMsg::Ping { nonce });
            fx.set_timer(self.cfg.ping_timeout, Timer::new(timer::PING_TIMEOUT, nonce));
        }
        // Gossip routing tables with another random reference.
        if let Some(target) = refs.choose(&mut self.rng) {
            fx.send(target.id, PGridMsg::TableRequest);
        }
        // Probe a random replica as well, so dead replicas get evicted.
        let replicas = self.routing.replicas();
        if !replicas.is_empty() {
            let pick = replicas[self.rng.gen_range(0..replicas.len())];
            let nonce = self.fresh_nonce();
            self.pending_pings.insert(nonce, pick);
            fx.send(pick, PGridMsg::Ping { nonce });
            fx.set_timer(self.cfg.ping_timeout, Timer::new(timer::PING_TIMEOUT, nonce));
        }
    }

    /// A ping deadline fired: if the pong never arrived, evict the peer.
    pub(crate) fn handle_ping_timeout(&mut self, nonce: u64) {
        if let Some(dead) = self.pending_pings.remove(&nonce) {
            self.routing.remove(dead);
        }
    }

    /// Answers a table request with everything we know, including
    /// ourselves (the requester may file us into one of its levels).
    pub(crate) fn handle_table_request(&mut self, from: NodeId, fx: &mut Fx<I>) {
        let mut peers = self.routing.all_refs();
        peers.push(PeerRef { id: self.id, path: self.routing.path() });
        fx.send(from, PGridMsg::TableReply { peers });
    }

    /// Merges advertised peers into under-full levels.
    pub(crate) fn merge_refs(&mut self, peers: &[PeerRef]) {
        for &p in peers {
            if p.id != self.id {
                self.routing.add_ref(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PGridConfig;
    use crate::item::RawItem;
    use unistore_simnet::Effects;
    use unistore_util::BitPath;

    fn peer(id: u32, path: &str) -> PGridPeer<RawItem> {
        PGridPeer::new(NodeId(id), BitPath::parse(path).unwrap(), PGridConfig::default(), 11)
    }

    fn pref(id: u32, path: &str) -> PeerRef {
        PeerRef { id: NodeId(id), path: BitPath::parse(path).unwrap() }
    }

    #[test]
    fn maintenance_probes_and_gossips() {
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(pref(1, "1"));
        let mut fx = Effects::new();
        p.run_maintenance(&mut fx);
        let pings = fx.sends().iter().filter(|(_, m)| matches!(m, PGridMsg::Ping { .. })).count();
        let tables = fx.sends().iter().filter(|(_, m)| matches!(m, PGridMsg::TableRequest)).count();
        assert_eq!(pings, 1);
        assert_eq!(tables, 1);
        assert_eq!(fx.timers().len(), 1, "ping timeout armed");
    }

    #[test]
    fn maintenance_noop_without_refs() {
        let mut p = peer(0, "0");
        let mut fx = Effects::new();
        p.run_maintenance(&mut fx);
        assert!(fx.is_empty());
    }

    #[test]
    fn unanswered_ping_evicts() {
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(pref(1, "1"));
        let mut fx = Effects::new();
        p.run_maintenance(&mut fx);
        let nonce = match fx.sends().iter().find(|(_, m)| matches!(m, PGridMsg::Ping { .. })) {
            Some((_, PGridMsg::Ping { nonce })) => *nonce,
            _ => unreachable!(),
        };
        // Deadline fires with no pong → evicted.
        p.handle_ping_timeout(nonce);
        assert_eq!(p.routing().ref_count(), 0);
    }

    #[test]
    fn answered_ping_keeps_ref() {
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(pref(1, "1"));
        let mut fx = Effects::new();
        p.run_maintenance(&mut fx);
        let nonce = match fx.sends().iter().find(|(_, m)| matches!(m, PGridMsg::Ping { .. })) {
            Some((_, PGridMsg::Ping { nonce })) => *nonce,
            _ => unreachable!(),
        };
        // Pong arrives first …
        p.pending_pings.remove(&nonce);
        // … so the deadline is a no-op.
        p.handle_ping_timeout(nonce);
        assert_eq!(p.routing().ref_count(), 1);
    }

    #[test]
    fn table_reply_includes_self() {
        let mut p = peer(3, "01");
        p.routing_mut().add_ref(pref(1, "1"));
        let mut fx = Effects::new();
        p.handle_table_request(NodeId(9), &mut fx);
        match &fx.sends()[0] {
            (to, PGridMsg::TableReply { peers }) => {
                assert_eq!(*to, NodeId(9));
                assert!(peers.iter().any(|r| r.id == NodeId(3)));
                assert!(peers.iter().any(|r| r.id == NodeId(1)));
            }
            other => panic!("unexpected send {other:?}"),
        }
    }

    #[test]
    fn merge_refs_skips_self_and_files_the_rest() {
        let mut p = peer(0, "00");
        p.merge_refs(&[pref(0, "1"), pref(5, "1"), pref(6, "01")]);
        assert_eq!(p.routing().level_refs(0).len(), 1);
        assert_eq!(p.routing().level_refs(1).len(), 1);
    }
}

//! Range queries over the order-preserving key space.
//!
//! Because P-Grid's hash is order preserving, a key interval `[lo, hi]`
//! maps to a contiguous band of trie leaves, and range queries need no
//! auxiliary structure (paper §2 — contrast with Chord, see
//! `unistore-chord`). Two physical algorithms:
//!
//! * **Parallel (shower)**: every peer partitions the requested interval
//!   among the complementary subtrees of its routing levels and fans the
//!   query out; all matching leaves are reached in O(log N) parallel
//!   hops. Completion at the origin is detected by *interval coverage*:
//!   each leaf reply names the sub-interval it covers, and the query
//!   finishes when the union equals `[lo, hi]` — which doubles as a
//!   completeness guarantee under loss.
//! * **Sequential**: route to the leaf owning `lo`, then walk leaves in
//!   key order, each handing over to the owner of the next key. Fewer
//!   messages for selective ranges, higher latency for wide ones —
//!   exactly the trade-off the paper's cost-based optimizer arbitrates.

use unistore_simnet::NodeId;
use unistore_util::{ItemFilter, Key};

use crate::item::Item;
use crate::msg::{PGridEvent, PGridMsg, QueryId};
use crate::peer::{Fx, PGridPeer, Pending};
use crate::routing::RouteDecision;

pub use unistore_util::interval::IntervalSet;

impl<I: Item> PGridPeer<I> {
    /// Handles a parallel (shower) range query branch. Every reached
    /// leaf applies `filter` (semi-join pushdown) before replying.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_range(
        &mut self,
        from: NodeId,
        qid: QueryId,
        lo: Key,
        hi: Key,
        lmin: u8,
        origin: NodeId,
        hops: u32,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register_pending(
                fx,
                qid,
                Pending::Range {
                    lo,
                    hi,
                    covered: IntervalSet::new(),
                    items: Vec::new(),
                    hops: 0,
                    leaves: 0,
                    aborted: false,
                },
            );
        }
        let path = self.routing.path();
        // Fan out to every complementary subtree that intersects the
        // interval. Levels below `lmin` were already handled upstream.
        for l in lmin.min(path.len())..path.len() {
            let sub = path.prefix(l).child(!path.bit(l));
            let sub_lo = sub.min_key().max(lo);
            let sub_hi = sub.max_key().min(hi);
            if sub_lo > sub_hi {
                continue;
            }
            match self.routing.pick(l, &mut self.rng) {
                Some(r) => fx.send(
                    r.id,
                    PGridMsg::Range {
                        qid,
                        lo: sub_lo,
                        hi: sub_hi,
                        lmin: l + 1,
                        origin,
                        hops: hops + 1,
                        filter: filter.clone(),
                    },
                ),
                // Routing hole: report the gap so the origin terminates
                // promptly instead of waiting for its timeout.
                None => {
                    self.send_range_reply(qid, origin, sub_lo, sub_hi, Vec::new(), hops, true, fx)
                }
            }
        }
        // Local leaf contribution.
        let leaf_lo = path.min_key().max(lo);
        let leaf_hi = path.max_key().min(hi);
        if leaf_lo <= leaf_hi {
            let items =
                ItemFilter::collect_filtered(&filter, self.store.iter_range(leaf_lo, leaf_hi));
            self.send_range_reply(qid, origin, leaf_lo, leaf_hi, items, hops, false, fx);
        }
    }

    /// Handles a sequential range query hop. Every visited leaf applies
    /// `filter` before contributing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_range_seq(
        &mut self,
        from: NodeId,
        qid: QueryId,
        lo: Key,
        hi: Key,
        origin: NodeId,
        hops: u32,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register_pending(
                fx,
                qid,
                Pending::Range {
                    lo,
                    hi,
                    covered: IntervalSet::new(),
                    items: Vec::new(),
                    hops: 0,
                    leaves: 0,
                    aborted: false,
                },
            );
        }
        match self.routing.route(lo, &mut self.rng) {
            RouteDecision::Local => {
                let path = self.routing.path();
                let leaf_hi = path.max_key().min(hi);
                let items =
                    ItemFilter::collect_filtered(&filter, self.store.iter_range(lo, leaf_hi));
                self.send_range_reply(qid, origin, lo, leaf_hi, items, hops, false, fx);
                if leaf_hi < hi {
                    // Hand over to the owner of the next key.
                    let next_lo = leaf_hi + 1;
                    match self.routing.route(next_lo, &mut self.rng) {
                        RouteDecision::Forward(next, _) => fx.send(
                            next,
                            PGridMsg::RangeSeq {
                                qid,
                                lo: next_lo,
                                hi,
                                origin,
                                hops: hops + 1,
                                filter,
                            },
                        ),
                        // `next_lo` is outside our leaf, so `Local` is
                        // impossible; a stuck route aborts the remainder.
                        RouteDecision::Local | RouteDecision::Stuck(_) => self.send_range_reply(
                            qid,
                            origin,
                            next_lo,
                            hi,
                            Vec::new(),
                            hops,
                            true,
                            fx,
                        ),
                    }
                }
            }
            RouteDecision::Forward(next, _) => {
                fx.send(next, PGridMsg::RangeSeq { qid, lo, hi, origin, hops: hops + 1, filter });
            }
            RouteDecision::Stuck(_) => {
                self.send_range_reply(qid, origin, lo, hi, Vec::new(), hops, true, fx);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_range_reply(
        &mut self,
        qid: QueryId,
        origin: NodeId,
        cov_lo: Key,
        cov_hi: Key,
        items: Vec<I>,
        hops: u32,
        aborted: bool,
        fx: &mut Fx<I>,
    ) {
        if origin == self.id {
            // Local contribution: no network message.
            self.handle_range_reply(qid, cov_lo, cov_hi, items, hops, aborted, fx);
        } else {
            fx.send(origin, PGridMsg::RangeReply { qid, cov_lo, cov_hi, items, hops, aborted });
        }
    }

    /// Accumulates a leaf reply at the origin; completes on full coverage.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_range_reply(
        &mut self,
        qid: QueryId,
        cov_lo: Key,
        cov_hi: Key,
        mut new_items: Vec<I>,
        new_hops: u32,
        new_aborted: bool,
        fx: &mut Fx<I>,
    ) {
        let Some(Pending::Range { lo, hi, covered, items, hops, leaves, aborted }) =
            self.pending.get_mut(&qid)
        else {
            return; // late or duplicate reply
        };
        covered.add(cov_lo, cov_hi);
        items.append(&mut new_items);
        *hops = (*hops).max(new_hops);
        *leaves += 1;
        *aborted |= new_aborted;
        if covered.covers(*lo, *hi) {
            let complete = !*aborted;
            let (items, hops, leaves) = (std::mem::take(items), *hops, *leaves);
            self.pending.remove(&qid);
            fx.emit(PGridEvent::RangeDone { qid, items, complete, hops, leaves });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PGridConfig;
    use crate::item::RawItem;
    use crate::msg::PeerRef;
    use unistore_simnet::Effects;
    use unistore_util::BitPath;

    fn peer(id: u32, path: &str) -> PGridPeer<RawItem> {
        PGridPeer::new(NodeId(id), BitPath::parse(path).unwrap(), PGridConfig::default(), 1)
    }

    #[test]
    fn shower_fans_out_and_contributes_local_leaf() {
        // Peer "00" with refs at both levels; query the whole key space.
        let mut p = peer(0, "00");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        p.routing_mut().add_ref(PeerRef { id: NodeId(2), path: BitPath::parse("01").unwrap() });
        p.preload(1, RawItem(1), 0);
        let mut fx = Effects::new();
        p.handle_range(NodeId::EXTERNAL, 5, 0, u64::MAX, 0, NodeId(0), 0, None, &mut fx);
        // Forwards: level 0 → NodeId(1) with the "1…" half, level 1 →
        // NodeId(2) with the "01…" quarter.
        let forwards: Vec<_> = fx
            .sends()
            .iter()
            .filter_map(|(to, m)| match m {
                PGridMsg::Range { lo, hi, lmin, .. } => Some((*to, *lo, *hi, *lmin)),
                _ => None,
            })
            .collect();
        assert_eq!(forwards.len(), 2);
        assert_eq!(forwards[0], (NodeId(1), 1u64 << 63, u64::MAX, 1));
        assert_eq!(forwards[1], (NodeId(2), 1u64 << 62, (1u64 << 63) - 1, 2));
        // Local leaf "00" covers [0, 2^62-1] and was merged into pending.
        match p.pending.get(&5) {
            Some(Pending::Range { covered, items, leaves, .. }) => {
                assert_eq!(covered.intervals(), &[(0, (1u64 << 62) - 1)]);
                assert_eq!(items.len(), 1);
                assert_eq!(*leaves, 1);
            }
            other => panic!("unexpected pending {other:?}"),
        }
    }

    #[test]
    fn shower_reports_holes_as_aborted_coverage() {
        let mut p = peer(0, "00");
        // No refs at all: both subtrees unreachable.
        let mut fx = Effects::new();
        p.handle_range(NodeId::EXTERNAL, 6, 0, u64::MAX, 0, NodeId(0), 0, None, &mut fx);
        // Everything resolved locally (local leaf + 2 aborted gaps) →
        // the query completes immediately as incomplete.
        assert_eq!(fx.sends().len(), 0);
        assert_eq!(fx.emits().len(), 1);
        match &fx.emits()[0] {
            PGridEvent::RangeDone { complete: false, leaves: 3, .. } => {}
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn shower_completes_on_full_coverage() {
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        p.preload(5, RawItem(5), 0);
        let mut fx = Effects::new();
        p.handle_range(NodeId::EXTERNAL, 7, 0, u64::MAX, 0, NodeId(0), 0, None, &mut fx);
        assert!(fx.emits().is_empty(), "half the range is still remote");
        // The remote leaf replies.
        let mut fx2 = Effects::new();
        p.handle_range_reply(7, 1u64 << 63, u64::MAX, vec![RawItem(9)], 2, false, &mut fx2);
        assert_eq!(fx2.emits().len(), 1);
        match &fx2.emits()[0] {
            PGridEvent::RangeDone { items, complete: true, hops: 2, leaves: 2, .. } => {
                assert_eq!(items.len(), 2);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn clipped_range_skips_disjoint_subtrees() {
        // Query entirely inside the local leaf → no forwards at all.
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        p.preload(10, RawItem(10), 0);
        p.preload(20, RawItem(20), 0);
        p.preload(100, RawItem(100), 0);
        let mut fx = Effects::new();
        p.handle_range(NodeId::EXTERNAL, 8, 5, 50, 0, NodeId(0), 0, None, &mut fx);
        assert_eq!(fx.sends().len(), 0);
        assert_eq!(fx.emits().len(), 1);
        match &fx.emits()[0] {
            PGridEvent::RangeDone { items, complete: true, .. } => {
                let mut got: Vec<u64> = items.iter().map(|r| r.0).collect();
                got.sort_unstable();
                assert_eq!(got, vec![10, 20]);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn sequential_walk_hands_over_remainder() {
        // Peer owns "0"; query spans into "1".
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        p.preload(7, RawItem(7), 0);
        let mut fx = Effects::new();
        let hi = (1u64 << 63) + 5;
        p.handle_range_seq(NodeId::EXTERNAL, 9, 0, hi, NodeId(0), 0, None, &mut fx);
        // Local part answered (merged into pending), remainder forwarded.
        let fwd: Vec<_> = fx
            .sends()
            .iter()
            .filter_map(|(to, m)| match m {
                PGridMsg::RangeSeq { lo, hi, .. } => Some((*to, *lo, *hi)),
                _ => None,
            })
            .collect();
        assert_eq!(fwd, vec![(NodeId(1), 1u64 << 63, hi)]);
        match p.pending.get(&9) {
            Some(Pending::Range { covered, items, .. }) => {
                assert_eq!(covered.intervals(), &[(0, (1u64 << 63) - 1)]);
                assert_eq!(items.len(), 1);
            }
            other => panic!("unexpected pending {other:?}"),
        }
    }

    #[test]
    fn late_replies_ignored() {
        let mut p = peer(0, "0");
        let mut fx = Effects::new();
        p.handle_range_reply(404, 0, 10, vec![RawItem(1)], 1, false, &mut fx);
        assert!(fx.is_empty());
    }
}

//! Tunables of the overlay.

use unistore_simnet::SimTime;

/// Static configuration shared by every peer of an overlay instance.
#[derive(Clone, Debug)]
pub struct PGridConfig {
    /// References kept per routing level (fault tolerance; P-Grid keeps
    /// several and routes through a random one to spread load).
    pub refs_per_level: usize,
    /// Replica group size per trie leaf.
    pub replication: usize,
    /// Period of the routing-table maintenance timer (ping + exchange).
    pub maintenance_interval: SimTime,
    /// Period of the anti-entropy (pull) timer for replica convergence.
    pub anti_entropy_interval: SimTime,
    /// How long a requester waits before declaring a query failed.
    pub query_timeout: SimTime,
    /// How many times the origin re-issues a timed-out lookup / insert /
    /// delete before reporting failure. Each retry re-routes through a
    /// fresh random reference, avoiding the previous first hop when an
    /// alternative exists — this is what makes the multiple
    /// references-per-level actually mask crashed peers (paper §2).
    pub op_retries: u32,
    /// How long an unanswered ping marks a reference dead.
    pub ping_timeout: SimTime,
    /// Bootstrap protocol: number of locally stored items above which a
    /// peer is willing to split its path during a pairwise exchange.
    pub split_threshold: usize,
    /// Bootstrap protocol: mean delay between initiated exchanges.
    pub exchange_interval: SimTime,
    /// Maximum trie depth (bounded by the 64-bit key space).
    pub max_depth: u8,
}

impl Default for PGridConfig {
    fn default() -> Self {
        PGridConfig {
            refs_per_level: 3,
            replication: 1,
            maintenance_interval: SimTime::from_secs(30),
            anti_entropy_interval: SimTime::from_secs(60),
            query_timeout: SimTime::from_secs(10),
            op_retries: 2,
            ping_timeout: SimTime::from_secs(2),
            split_threshold: 8,
            exchange_interval: SimTime::from_secs(1),
            max_depth: 40,
        }
    }
}

impl PGridConfig {
    /// Configuration with `r`-fold replication.
    pub fn with_replication(mut self, r: usize) -> Self {
        assert!(r >= 1, "replication factor must be at least 1");
        self.replication = r;
        self
    }

    /// Configuration with `k` references per routing level.
    pub fn with_refs_per_level(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one reference per level");
        self.refs_per_level = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = PGridConfig::default().with_replication(3).with_refs_per_level(5);
        assert_eq!(c.replication, 3);
        assert_eq!(c.refs_per_level, 5);
    }

    #[test]
    #[should_panic]
    fn zero_replication_rejected() {
        let _ = PGridConfig::default().with_replication(0);
    }
}

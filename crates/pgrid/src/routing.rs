//! Per-level routing tables.
//!
//! A peer with trie path `p` of length `L` keeps, for every level
//! `l < L`, references to peers whose paths agree with `p` on the first
//! `l` bits and differ at bit `l` — i.e. peers responsible for the
//! *complementary subtree* at that level. Greedy prefix routing then
//! resolves any key in at most `L` hops. P-Grid keeps several references
//! per level and routes through a random one, spreading load and
//! tolerating failures (paper §2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use unistore_simnet::NodeId;
use unistore_util::{BitPath, FxHashMap, Key};

use crate::msg::PeerRef;

/// Where a key routes relative to the local peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// The local peer's path is a prefix of the key: handle locally.
    Local,
    /// Forward to this peer (found at the given level).
    Forward(NodeId, u8),
    /// No live reference at the level the key needs: routing hole.
    Stuck(u8),
}

/// Routing state of one peer.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    path: BitPath,
    /// `levels[l]` holds refs into the complementary subtree at level `l`.
    levels: Vec<Vec<PeerRef>>,
    /// Peers sharing the exact same path (replica group), self excluded.
    replicas: Vec<NodeId>,
    /// Max refs kept per level.
    cap: usize,
    /// Read dispatches per referenced peer — the load signal of
    /// [`RoutingTable::route_read`].
    read_load: FxHashMap<NodeId, u64>,
}

impl RoutingTable {
    /// Empty table for a peer at `path`.
    pub fn new(path: BitPath, cap: usize) -> Self {
        assert!(cap >= 1, "routing table needs capacity for at least one ref");
        RoutingTable {
            path,
            levels: vec![Vec::new(); path.len() as usize],
            replicas: Vec::new(),
            cap,
            read_load: FxHashMap::default(),
        }
    }

    /// The local peer's trie path.
    pub fn path(&self) -> BitPath {
        self.path
    }

    /// Re-homes the table after a path change (bootstrap splits).
    /// Existing refs are re-filed; those that no longer fit are dropped.
    pub fn set_path(&mut self, path: BitPath) {
        let old_refs = self.all_refs();
        let old_replicas = std::mem::take(&mut self.replicas);
        self.path = path;
        self.levels = vec![Vec::new(); path.len() as usize];
        for r in old_refs {
            self.add_ref(r);
        }
        // Old replicas may or may not still share the path; without their
        // paths we can't tell, so they are dropped and rediscovered by
        // maintenance. (Bootstrap re-adds the known ones explicitly.)
        let _ = old_replicas;
    }

    /// True if this peer is responsible for `key`.
    #[inline]
    pub fn responsible(&self, key: Key) -> bool {
        self.path.is_prefix_of_key(key)
    }

    /// Routing decision for `key`.
    pub fn route(&self, key: Key, rng: &mut StdRng) -> RouteDecision {
        self.route_excluding(key, None, rng)
    }

    /// Routing decision for `key`, preferring references other than
    /// `avoid` (the first hop of a failed earlier attempt). Falls back to
    /// `avoid` when it is the only reference at the needed level.
    pub fn route_excluding(
        &self,
        key: Key,
        avoid: Option<NodeId>,
        rng: &mut StdRng,
    ) -> RouteDecision {
        let l = self.path.common_prefix_len_key(key);
        if l == self.path.len() {
            return RouteDecision::Local;
        }
        let level = &self.levels[l as usize];
        let pick = match avoid {
            // Exclusion only kicks in when an alternative actually exists;
            // the plain random choice stays allocation-free on the hot path.
            Some(a) if level.len() > 1 && level.iter().any(|r| r.id == a) => {
                let n = level.len() - 1;
                let idx = rng.gen_range(0..n);
                level.iter().filter(|r| r.id != a).nth(idx)
            }
            _ => level.choose(rng),
        };
        match pick {
            Some(r) => RouteDecision::Forward(r.id, l),
            None => RouteDecision::Stuck(l),
        }
    }

    /// Routing decision for a *read*, forwarding through the
    /// least-dispatched reference at the needed level instead of a
    /// random one. Deep levels of a converged trie reference the
    /// responsible leaf's replica group, so hot-key lookups fan out
    /// across the replicas holding the data rather than hammering one
    /// of them; shallow levels get balanced relay load as a side
    /// effect. Deterministic — ties break toward the first stored ref
    /// — and still avoiding `avoid` when an alternative exists.
    pub fn route_read(&mut self, key: Key, avoid: Option<NodeId>) -> RouteDecision {
        let l = self.path.common_prefix_len_key(key);
        if l == self.path.len() {
            return RouteDecision::Local;
        }
        let level = &self.levels[l as usize];
        let shun = match avoid {
            Some(a) if level.len() > 1 && level.iter().any(|r| r.id == a) => Some(a),
            _ => None,
        };
        let pick = level
            .iter()
            .filter(|r| Some(r.id) != shun)
            .min_by_key(|r| self.read_load.get(&r.id).copied().unwrap_or(0))
            .map(|r| r.id);
        match pick {
            Some(id) => {
                *self.read_load.entry(id).or_insert(0) += 1;
                RouteDecision::Forward(id, l)
            }
            None => RouteDecision::Stuck(l),
        }
    }

    /// Read dispatches recorded against a peer (observability).
    pub fn read_load_of(&self, id: NodeId) -> u64 {
        self.read_load.get(&id).copied().unwrap_or(0)
    }

    /// Routing decision for `key` that may jump several levels at once:
    /// among the references at the needed level, picks one whose
    /// (deeper) trie path agrees with the key the longest, ties broken
    /// randomly, still avoiding `avoid` when an alternative exists.
    ///
    /// Correctness is the same argument as [`RoutingTable::route`] —
    /// every hop strictly extends the matched prefix, so routing
    /// terminates within the trie depth — but hops get *shorter* in
    /// expectation. Batch forwarding uses this: each saved hop is one
    /// fewer edge the whole sub-batch (op tags + shared payloads) must
    /// cross, which is exactly the KiB the coalesced write pipeline is
    /// supposed to save. Single-op routing keeps the plain random pick
    /// (uniform load spreading matters more than one hop there).
    pub fn route_jump(&self, key: Key, avoid: Option<NodeId>, rng: &mut StdRng) -> RouteDecision {
        let l = self.path.common_prefix_len_key(key);
        if l == self.path.len() {
            return RouteDecision::Local;
        }
        let level = &self.levels[l as usize];
        let shun = match avoid {
            Some(a) if level.len() > 1 && level.iter().any(|x| x.id == a) => Some(a),
            _ => None,
        };
        // Single pass, allocation-free (this runs once per op per hop):
        // track the best match and reservoir-sample uniformly among ties.
        let mut best: Option<(u8, NodeId)> = None;
        let mut ties = 0u32;
        for r in level {
            if Some(r.id) == shun {
                continue;
            }
            let m = r.path.common_prefix_len_key(key);
            match &mut best {
                Some((bm, bid)) if m == *bm => {
                    ties += 1;
                    if rng.gen_range(0..=ties) == 0 {
                        *bid = r.id;
                    }
                }
                Some((bm, _)) if m > *bm => {
                    best = Some((m, r.id));
                    ties = 0;
                }
                Some(_) => {}
                None => best = Some((m, r.id)),
            }
        }
        match best {
            Some((_, id)) => RouteDecision::Forward(id, l),
            None => RouteDecision::Stuck(l),
        }
    }

    /// Offers a reference; returns `true` if it was stored.
    ///
    /// A peer qualifies for level `l` when its path shares exactly `l`
    /// bits with ours and is longer than `l` (it actually covers the
    /// complementary subtree). A peer with our exact path is a replica.
    pub fn add_ref(&mut self, r: PeerRef) -> bool {
        if r.path == self.path {
            return false; // replicas are registered via add_replica
        }
        let l = self.path.common_prefix_len(&r.path);
        if l >= self.path.len() || r.path.len() <= l {
            return false;
        }
        let level = &mut self.levels[l as usize];
        if level.iter().any(|existing| existing.id == r.id) {
            // Refresh the stored path (it may have deepened).
            for existing in level.iter_mut() {
                if existing.id == r.id {
                    existing.path = r.path;
                }
            }
            return false;
        }
        if level.len() >= self.cap {
            return false;
        }
        level.push(r);
        true
    }

    /// Registers a replica (same path, different peer).
    pub fn add_replica(&mut self, id: NodeId) {
        if !self.replicas.contains(&id) {
            self.replicas.push(id);
        }
    }

    /// Removes a peer everywhere (failure detected).
    pub fn remove(&mut self, id: NodeId) {
        for level in &mut self.levels {
            level.retain(|r| r.id != id);
        }
        self.replicas.retain(|&r| r != id);
        self.read_load.remove(&id);
    }

    /// Refs at one level.
    pub fn level_refs(&self, l: u8) -> &[PeerRef] {
        &self.levels[l as usize]
    }

    /// Picks a random ref at a level.
    pub fn pick(&self, l: u8, rng: &mut StdRng) -> Option<PeerRef> {
        self.levels[l as usize].choose(rng).copied()
    }

    /// Every stored ref (all levels), for table gossip.
    pub fn all_refs(&self) -> Vec<PeerRef> {
        self.levels.iter().flatten().copied().collect()
    }

    /// The replica group (self excluded).
    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }

    /// Number of levels (= path length).
    pub fn depth(&self) -> u8 {
        self.path.len()
    }

    /// Total refs stored.
    pub fn ref_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Levels that currently have no reference (routing holes).
    pub fn empty_levels(&self) -> Vec<u8> {
        self.levels.iter().enumerate().filter(|(_, v)| v.is_empty()).map(|(l, _)| l as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn pr(id: u32, path: &str) -> PeerRef {
        PeerRef { id: NodeId(id), path: BitPath::parse(path).unwrap() }
    }

    #[test]
    fn add_ref_files_by_common_prefix() {
        let mut t = RoutingTable::new(BitPath::parse("010").unwrap(), 3);
        assert!(t.add_ref(pr(1, "1"))); // differs at bit 0 → level 0
        assert!(t.add_ref(pr(2, "00"))); // agrees 1 bit, differs at bit 1 → level 1
        assert!(t.add_ref(pr(3, "011"))); // agrees 2 bits → level 2
        assert_eq!(t.level_refs(0).len(), 1);
        assert_eq!(t.level_refs(1).len(), 1);
        assert_eq!(t.level_refs(2).len(), 1);
        assert_eq!(t.ref_count(), 3);
    }

    #[test]
    fn rejects_same_path_and_less_specialized() {
        let mut t = RoutingTable::new(BitPath::parse("010").unwrap(), 3);
        assert!(!t.add_ref(pr(1, "010"))); // same path → replica, not ref
        assert!(!t.add_ref(pr(2, "01"))); // our prefix → not in complement
        assert!(!t.add_ref(pr(3, "0"))); // our prefix
        assert_eq!(t.ref_count(), 0);
    }

    #[test]
    fn cap_enforced_and_duplicates_ignored() {
        let mut t = RoutingTable::new(BitPath::parse("0").unwrap(), 2);
        assert!(t.add_ref(pr(1, "1")));
        assert!(!t.add_ref(pr(1, "1"))); // duplicate id
        assert!(t.add_ref(pr(2, "10")));
        assert!(!t.add_ref(pr(3, "11"))); // over cap
        assert_eq!(t.ref_count(), 2);
    }

    #[test]
    fn duplicate_add_refreshes_path() {
        let mut t = RoutingTable::new(BitPath::parse("0").unwrap(), 2);
        t.add_ref(pr(1, "1"));
        t.add_ref(pr(1, "10")); // same peer deepened its path
        assert_eq!(t.level_refs(0)[0].path, BitPath::parse("10").unwrap());
    }

    #[test]
    fn route_local_forward_stuck() {
        let mut t = RoutingTable::new(BitPath::parse("01").unwrap(), 3);
        t.add_ref(pr(1, "1"));
        let mut r = rng();
        // Key starting 01… → local.
        let local_key = 0b01u64 << 62;
        assert_eq!(t.route(local_key, &mut r), RouteDecision::Local);
        // Key starting 1… → level 0 forward.
        let k1 = 1u64 << 63;
        assert_eq!(t.route(k1, &mut r), RouteDecision::Forward(NodeId(1), 0));
        // Key starting 00… → level 1, which is empty.
        let k00 = 0u64;
        assert_eq!(t.route(k00, &mut r), RouteDecision::Stuck(1));
    }

    #[test]
    fn remove_clears_everywhere() {
        let mut t = RoutingTable::new(BitPath::parse("01").unwrap(), 3);
        t.add_ref(pr(1, "1"));
        t.add_ref(pr(2, "00"));
        t.add_replica(NodeId(1));
        t.remove(NodeId(1));
        assert_eq!(t.ref_count(), 1);
        assert!(t.replicas().is_empty());
        t.remove(NodeId(2));
        assert_eq!(t.ref_count(), 0);
    }

    #[test]
    fn set_path_refiles_refs() {
        let mut t = RoutingTable::new(BitPath::parse("0").unwrap(), 3);
        t.add_ref(pr(1, "1"));
        t.add_ref(pr(2, "10"));
        t.set_path(BitPath::parse("01").unwrap());
        // Both refs still differ at bit 0 → level 0.
        assert_eq!(t.level_refs(0).len(), 2);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.empty_levels(), vec![1]);
    }

    #[test]
    fn route_read_rotates_least_loaded() {
        let mut t = RoutingTable::new(BitPath::parse("0").unwrap(), 3);
        t.add_ref(pr(1, "10"));
        t.add_ref(pr(2, "11"));
        let key = 1u64 << 63; // level 0
                              // Repeated reads of the same hot key alternate between the two
                              // refs covering the complementary subtree.
        let mut hits = [0u64; 3];
        for _ in 0..10 {
            match t.route_read(key, None) {
                RouteDecision::Forward(NodeId(id), 0) => hits[id as usize] += 1,
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert_eq!(hits[1], 5, "load spreads evenly across the level");
        assert_eq!(hits[2], 5);
        assert_eq!(t.read_load_of(NodeId(1)), 5);
    }

    #[test]
    fn route_read_local_stuck_and_avoid() {
        let mut t = RoutingTable::new(BitPath::parse("01").unwrap(), 3);
        t.add_ref(pr(1, "1"));
        assert_eq!(t.route_read(0b01u64 << 62, None), RouteDecision::Local);
        assert_eq!(t.route_read(0u64, None), RouteDecision::Stuck(1));
        // Sole ref: avoid falls back to it rather than sticking.
        assert_eq!(t.route_read(1u64 << 63, Some(NodeId(1))), RouteDecision::Forward(NodeId(1), 0));
        // With an alternative, avoid is honored.
        t.add_ref(pr(2, "10"));
        assert_eq!(t.route_read(1u64 << 63, Some(NodeId(1))), RouteDecision::Forward(NodeId(2), 0));
    }

    #[test]
    fn remove_clears_read_load() {
        let mut t = RoutingTable::new(BitPath::parse("0").unwrap(), 3);
        t.add_ref(pr(1, "1"));
        let _ = t.route_read(1u64 << 63, None);
        assert_eq!(t.read_load_of(NodeId(1)), 1);
        t.remove(NodeId(1));
        assert_eq!(t.read_load_of(NodeId(1)), 0);
    }

    #[test]
    fn replicas_tracked_without_duplicates() {
        let mut t = RoutingTable::new(BitPath::parse("0").unwrap(), 3);
        t.add_replica(NodeId(5));
        t.add_replica(NodeId(5));
        assert_eq!(t.replicas(), &[NodeId(5)]);
    }
}

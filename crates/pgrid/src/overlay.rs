//! [`Overlay`] implementation: P-Grid is UniStore's native substrate.
//!
//! The trie *is* the index — the order-preserving hash places keys so
//! that both exact lookups and range scans ride the same routing
//! structure, with no auxiliary index. Topology planning reuses the
//! converged-state construction ([`crate::construct`]), including the
//! data-adaptive balanced trie when a key sample is supplied.

use unistore_overlay::{ItemFilter, OpBatch, Overlay, OverlayDone, OverlayTopology, RangeMode};
use unistore_simnet::{Effects, NodeId};
use unistore_util::rng::{derive_rng, stream};
use unistore_util::{BitPath, Key};

use crate::construct::{leaf_of, plan_topology, TopologyPlan};
use crate::item::Item;
use crate::msg::{PGridEvent, PGridMsg, PeerRef};
use crate::peer::PGridPeer;
use crate::PGridConfig;

/// Driver-side view of a converged P-Grid deployment.
#[derive(Clone, Debug)]
pub struct PGridTopology {
    /// The planned trie, peer assignment and reference/replica wiring.
    pub plan: TopologyPlan,
    replication: usize,
}

impl PGridTopology {
    /// Sorted trie leaf paths.
    pub fn leaves(&self) -> &[BitPath] {
        &self.plan.leaves
    }
}

impl OverlayTopology for PGridTopology {
    fn holders(&self, key: Key) -> Vec<usize> {
        self.plan.leaf_peers[leaf_of(&self.plan.leaves, key)].clone()
    }

    fn partitions(&self) -> usize {
        self.plan.leaves.len()
    }

    fn replication(&self) -> usize {
        self.replication
    }
}

impl<I: Item + Send + 'static> Overlay for PGridPeer<I> {
    type WireMsg = PGridMsg<I>;
    type Event = PGridEvent<I>;
    type Item = I;
    type Config = PGridConfig;
    type Topology = PGridTopology;

    const NAME: &'static str = "P-Grid";
    const ADAPTS_TO_SAMPLE: bool = true;
    const PUSHES_FILTERS: bool = true;
    const BATCHES_OPS: bool = true;

    fn plan(n_peers: usize, cfg: &PGridConfig, sample: Option<&[Key]>, seed: u64) -> PGridTopology {
        let mut rng = derive_rng(seed, stream::OVERLAY);
        let plan = plan_topology(
            n_peers,
            cfg.replication,
            cfg.refs_per_level,
            cfg.max_depth,
            sample,
            &mut rng,
        );
        PGridTopology { plan, replication: cfg.replication }
    }

    fn spawn(topology: &PGridTopology, peer: usize, cfg: &PGridConfig, seed: u64) -> Self {
        let plan = &topology.plan;
        let mut node = PGridPeer::new(
            NodeId(peer as u32),
            plan.leaves[plan.peer_leaf[peer]],
            cfg.clone(),
            seed,
        );
        for &(p, path) in &plan.peer_refs[peer] {
            node.routing_mut().add_ref(PeerRef { id: NodeId(p as u32), path });
        }
        for &r in &plan.peer_replicas[peer] {
            node.routing_mut().add_replica(NodeId(r as u32));
        }
        node
    }

    fn id(&self) -> NodeId {
        PGridPeer::id(self)
    }

    fn responsible(&self, key: Key) -> bool {
        self.routing().responsible(key)
    }

    fn next_hop(&mut self, key: Key) -> Option<NodeId> {
        PGridPeer::next_hop(self, key)
    }

    fn holds(&self, key: Key) -> bool {
        !self.store().get(key).is_empty()
    }

    fn replica_group(&self, key: Key) -> Vec<NodeId> {
        // Every member of the leaf's replica group is a primary; the
        // live routing state (path + replica list) tracks bootstrap
        // path migrations that the build-time plan cannot see.
        if !self.routing().responsible(key) {
            return Vec::new();
        }
        let mut group = vec![PGridPeer::id(self)];
        group.extend_from_slice(self.routing().replicas());
        group.sort_unstable();
        group.dedup();
        group
    }

    fn routing_refs(&self) -> Vec<NodeId> {
        let table = self.routing();
        let mut peers: Vec<NodeId> = table.all_refs().iter().map(|r| r.id).collect();
        peers.extend_from_slice(table.replicas());
        peers.sort_unstable();
        peers.dedup();
        let me = PGridPeer::id(self);
        peers.retain(|&p| p != me);
        peers
    }

    fn preload(&mut self, key: Key, item: I, version: u64) {
        PGridPeer::preload(self, key, item, version)
    }

    fn local_lookup(&mut self, qid: u64, key: Key, fx: &mut Effects<PGridMsg<I>, PGridEvent<I>>) {
        PGridPeer::local_lookup(self, qid, key, fx)
    }

    fn local_range(
        &mut self,
        qid: u64,
        lo: Key,
        hi: Key,
        mode: RangeMode,
        fx: &mut Effects<PGridMsg<I>, PGridEvent<I>>,
    ) {
        let native = match mode {
            RangeMode::Parallel => crate::msg::RangeMode::Parallel,
            RangeMode::Sequential => crate::msg::RangeMode::Sequential,
        };
        PGridPeer::local_range(self, qid, lo, hi, native, fx)
    }

    fn local_lookup_filtered(
        &mut self,
        qid: u64,
        key: Key,
        filter: Option<ItemFilter>,
        fx: &mut Effects<PGridMsg<I>, PGridEvent<I>>,
    ) {
        PGridPeer::local_lookup_filtered(self, qid, key, filter, fx)
    }

    fn local_range_filtered(
        &mut self,
        qid: u64,
        lo: Key,
        hi: Key,
        mode: RangeMode,
        filter: Option<ItemFilter>,
        fx: &mut Effects<PGridMsg<I>, PGridEvent<I>>,
    ) {
        let native = match mode {
            RangeMode::Parallel => crate::msg::RangeMode::Parallel,
            RangeMode::Sequential => crate::msg::RangeMode::Sequential,
        };
        PGridPeer::local_range_filtered(self, qid, lo, hi, native, filter, fx)
    }

    fn lookup_msg(_cfg: &PGridConfig, qid: u64, key: Key, origin: NodeId) -> PGridMsg<I> {
        PGridMsg::Lookup { qid, key, origin, hops: 0, filter: None }
    }

    fn insert_msgs(
        _cfg: &PGridConfig,
        next_qid: &mut dyn FnMut() -> u64,
        key: Key,
        item: I,
        version: u64,
        origin: NodeId,
    ) -> Vec<(u64, PGridMsg<I>)> {
        let qid = next_qid();
        vec![(qid, PGridMsg::Insert { qid, key, item, version, origin, hops: 0 })]
    }

    fn delete_msgs(
        _cfg: &PGridConfig,
        next_qid: &mut dyn FnMut() -> u64,
        key: Key,
        ident: u64,
        version: u64,
        origin: NodeId,
    ) -> Vec<(u64, PGridMsg<I>)> {
        let qid = next_qid();
        vec![(qid, PGridMsg::Delete { qid, key, ident, version, origin, hops: 0 })]
    }

    fn batch_msgs(
        _cfg: &PGridConfig,
        next_qid: &mut dyn FnMut() -> u64,
        batch: &OpBatch<I>,
        origin: NodeId,
    ) -> Vec<(u64, PGridMsg<I>)> {
        if batch.is_empty() {
            return Vec::new();
        }
        // The whole batch is one wire message; the origin peer splits it
        // per next hop and re-splits at every routing step.
        let qid = next_qid();
        vec![(qid, PGridMsg::OpBatch { qid, attempt: 0, origin, hops: 0, batch: batch.clone() })]
    }

    fn done(ev: PGridEvent<I>) -> OverlayDone<I> {
        match ev {
            PGridEvent::LookupDone { qid, items, hops, ok } => {
                OverlayDone::Lookup { qid, items, hops, ok }
            }
            PGridEvent::RangeDone { qid, items, complete, hops, .. } => {
                OverlayDone::Range { qid, items, hops, complete }
            }
            PGridEvent::InsertDone { qid, hops, ok } => OverlayDone::Insert { qid, hops, ok },
            PGridEvent::BatchDone { qid, ops, hops, ok } => {
                OverlayDone::Batch { qid, ops, hops, ok }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_util::item::RawItem;

    #[test]
    fn plan_and_spawn_agree_on_responsibility() {
        let cfg = PGridConfig::default();
        let topo = <PGridPeer<RawItem> as Overlay>::plan(16, &cfg, None, 7);
        for key in (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            let holders = topo.holders(key);
            assert!(!holders.is_empty(), "every key has a holder");
            for peer in 0..16 {
                let node = <PGridPeer<RawItem> as Overlay>::spawn(&topo, peer, &cfg, 7);
                let holds = holders.contains(&peer);
                assert_eq!(
                    Overlay::responsible(&node, key),
                    holds,
                    "peer {peer} vs holders {holders:?} for key {key:#x}"
                );
            }
        }
    }
}

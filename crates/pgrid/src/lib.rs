//! P-Grid: the trie-structured overlay UniStore is built on.
//!
//! From the paper (§2): *"In P-Grid, nodes are at the leaf level of a
//! virtual binary trie … While nodes incrementally partition the key space
//! during runtime, they keep references to each other to enable
//! prefix-based query routing. A prefix-preserving hash-function assigns
//! data to key partitions respectively nodes."*
//!
//! This crate implements:
//!
//! * trie paths and per-level routing tables with multiple references per
//!   level ([`routing`]),
//! * greedy prefix routing with O(log N) expected hops ([`lookup`]),
//! * **order-preserving key placement**, hence native **range queries** —
//!   both the sequential leaf-walk and the parallel *shower* algorithm
//!   ([`range`]),
//! * replica groups with push replication and pull anti-entropy, giving
//!   the paper's *loose update consistency* [ref 4] ([`replicate`]),
//! * converged-state construction with **data-adaptive load balancing**
//!   (deep trie where data is dense; [`construct`]) as well as the
//!   dynamic pairwise bootstrap protocol of Aberer's original P-Grid
//!   ([`bootstrap`]),
//! * routing-table maintenance under churn ([`maintain`]),
//! * a driver-facing simulation harness ([`cluster`]).

pub mod batch;
pub mod bootstrap;
pub mod cluster;
pub mod config;
pub mod construct;
pub mod item;
pub mod lookup;
pub mod maintain;
pub mod msg;
pub mod overlay;
pub mod peer;
pub mod range;
pub mod replicate;
pub mod routing;

pub use cluster::PGridCluster;
pub use config::PGridConfig;
pub use item::{Item, LocalStore};
pub use msg::{PGridEvent, PGridMsg, QueryId, RangeMode};
pub use overlay::PGridTopology;
pub use peer::PGridPeer;

//! Stored items and the per-peer local store.
//!
//! P-Grid is agnostic to what it stores; UniStore stores triples. The
//! overlay needs two things from an item: a wire encoding (for honest
//! message sizing) and a *logical identity* so that updates (paper
//! [ref 4]) can supersede earlier versions of the same logical entry
//! rather than accumulating duplicates.

use std::collections::BTreeMap;
use std::ops::Bound;

use unistore_util::Key;

pub use unistore_util::item::{Item, RawItem};

/// Version counter for loosely consistent updates.
pub type Version = u64;

/// One versioned entry. `item == None` is a tombstone: the entry was
/// deleted at `version`, and the tombstone participates in anti-entropy
/// so that deletes propagate instead of deleted data being resurrected.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry<I> {
    /// The stored item (`None` = tombstone).
    pub item: Option<I>,
    /// Its version (`0` for plain inserts; updates carry larger values).
    pub version: Version,
}

/// The local fraction of the distributed store held by one peer.
///
/// Keyed by `(routing key, item identity)` so that
/// * exact lookups fetch all items of one key,
/// * range scans walk contiguous key intervals (order-preserving layout),
/// * updates replace entries by identity.
#[derive(Clone, Debug, Default)]
pub struct LocalStore<I> {
    entries: BTreeMap<(Key, u64), Entry<I>>,
    /// Live (non-tombstone) entry count, maintained incrementally so
    /// [`LocalStore::len`] is O(1) — it is consulted on every bootstrap
    /// `Exchange` message.
    live: usize,
}

impl<I: Item> LocalStore<I> {
    /// Empty store.
    pub fn new() -> Self {
        LocalStore { entries: BTreeMap::new(), live: 0 }
    }

    /// Applies an entry; returns `true` if the store changed (new entry
    /// or newer version of an existing one, including un-deleting).
    pub fn apply(&mut self, key: Key, item: I, version: Version) -> bool {
        let id = item.ident();
        self.apply_record(key, id, Some(item), version)
    }

    /// Applies an insert, tombstone or update by identity; the shared
    /// path of local writes, replication pushes and anti-entropy pulls.
    pub fn apply_record(
        &mut self,
        key: Key,
        ident: u64,
        item: Option<I>,
        version: Version,
    ) -> bool {
        match self.entries.get_mut(&(key, ident)) {
            Some(existing) if existing.version >= version => false,
            Some(existing) => {
                self.live -= existing.item.is_some() as usize;
                self.live += item.is_some() as usize;
                *existing = Entry { item, version };
                true
            }
            None => {
                self.live += item.is_some() as usize;
                self.entries.insert((key, ident), Entry { item, version });
                true
            }
        }
    }

    /// All live items stored under `key`.
    pub fn get(&self, key: Key) -> Vec<I> {
        self.iter_key(key).cloned().collect()
    }

    /// All live items whose key lies in `[lo, hi]`.
    pub fn get_range(&self, lo: Key, hi: Key) -> Vec<I> {
        self.iter_range(lo, hi).cloned().collect()
    }

    /// Borrowed view of the live items under `key`. Leaf filtering
    /// (semi-join pushdown) tests candidates through this iterator
    /// *before* cloning, so dropped candidates are never materialized.
    pub fn iter_key(&self, key: Key) -> impl Iterator<Item = &I> {
        self.entries
            .range((Bound::Included((key, 0)), Bound::Included((key, u64::MAX))))
            .filter_map(|(_, e)| e.item.as_ref())
    }

    /// Borrowed view of the live items with keys in `[lo, hi]`.
    pub fn iter_range(&self, lo: Key, hi: Key) -> impl Iterator<Item = &I> {
        // An inverted interval yields an explicitly empty (but
        // well-formed) bound pair: BTreeMap panics on start > end.
        let bounds = match lo <= hi {
            true => (Bound::Included((lo, 0)), Bound::Included((hi, u64::MAX))),
            false => (Bound::Included((lo, 0)), Bound::Excluded((lo, 0))),
        };
        self.entries.range(bounds).filter_map(|(_, e)| e.item.as_ref())
    }

    /// Iterates `(key, entry)` pairs in key order (tombstones included).
    pub fn iter(&self) -> impl Iterator<Item = (Key, &Entry<I>)> {
        self.entries.iter().map(|(&(k, _), e)| (k, e))
    }

    /// Version digest for anti-entropy: `(key, ident, version)` triples,
    /// tombstones included (deletes must propagate).
    pub fn digest(&self) -> Vec<(Key, u64, Version)> {
        self.entries.iter().map(|(&(k, id), e)| (k, id, e.version)).collect()
    }

    /// Records strictly newer than what `digest` reports (or absent from
    /// it) — the pull half of anti-entropy, shared with Chord through
    /// [`unistore_overlay::repair::diff_newer`]. Tombstones travel too.
    pub fn newer_than(
        &self,
        digest: &[(Key, u64, Version)],
    ) -> Vec<(Key, u64, Version, Option<I>)> {
        let known: Vec<((Key, u64), Version)> =
            digest.iter().map(|&(k, id, v)| ((k, id), v)).collect();
        let mine = self.entries.iter().map(|(&(k, id), e)| ((k, id), e.version, e.item.as_ref()));
        unistore_overlay::repair::diff_newer(mine, &known)
            .into_iter()
            .map(|((k, id), v, item)| (k, id, v, item))
            .collect()
    }

    /// Number of entries, live only. O(1): the count is maintained by
    /// every mutation.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards live entries outside `[lo, hi]` (path split hand-off),
    /// and returns them. Tombstones outside the range are dropped.
    pub fn split_off_outside(&mut self, lo: Key, hi: Key) -> Vec<(Key, Version, I)> {
        let mut moved = Vec::new();
        let mut kept = BTreeMap::new();
        let mut live = 0;
        for ((k, id), e) in std::mem::take(&mut self.entries) {
            if k < lo || k > hi {
                if let Some(item) = e.item {
                    moved.push((k, e.version, item));
                }
            } else {
                live += e.item.is_some() as usize;
                kept.insert((k, id), e);
            }
        }
        self.entries = kept;
        self.live = live;
        moved
    }

    /// Deletes the entry `(key, ident)` by writing a tombstone at
    /// `version`. Returns `true` if a live entry was shadowed (a
    /// tombstone over nothing is still recorded so late-arriving old
    /// writes stay dead).
    pub fn remove(&mut self, key: Key, ident: u64, version: Version) -> bool {
        let was_live = self
            .entries
            .get(&(key, ident))
            .is_some_and(|e| e.item.is_some() && e.version <= version);
        self.apply_record(key, ident, None, version);
        was_live
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_util::wire::Wire;

    #[test]
    fn apply_and_get() {
        let mut s: LocalStore<RawItem> = LocalStore::new();
        assert!(s.apply(10, RawItem(1), 0));
        assert!(s.apply(10, RawItem(2), 0));
        assert!(s.apply(20, RawItem(3), 0));
        assert_eq!(s.get(10).len(), 2);
        assert_eq!(s.get(20), vec![RawItem(3)]);
        assert_eq!(s.get(30), Vec::<RawItem>::new());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn versions_supersede() {
        /// Item whose identity is decoupled from its payload.
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct KV(u64, u64);
        impl Wire for KV {
            fn encode(&self, buf: &mut bytes::BytesMut) {
                self.0.encode(buf);
                self.1.encode(buf);
            }
            fn decode(buf: &mut bytes::Bytes) -> Result<Self, unistore_util::wire::WireError> {
                Ok(KV(u64::decode(buf)?, u64::decode(buf)?))
            }
        }
        impl Item for KV {
            fn ident(&self) -> u64 {
                self.0
            }
        }
        let mut s: LocalStore<KV> = LocalStore::new();
        assert!(s.apply(5, KV(1, 100), 1));
        // Same identity, older version → rejected.
        assert!(!s.apply(5, KV(1, 50), 0));
        assert_eq!(s.get(5), vec![KV(1, 100)]);
        // Same identity, newer version → replaces.
        assert!(s.apply(5, KV(1, 200), 2));
        assert_eq!(s.get(5), vec![KV(1, 200)]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn range_scan_in_order() {
        let mut s: LocalStore<RawItem> = LocalStore::new();
        for k in [5u64, 1, 9, 3, 7] {
            s.apply(k, RawItem(k), 0);
        }
        let got: Vec<u64> = s.get_range(3, 7).into_iter().map(|r| r.0).collect();
        assert_eq!(got, vec![3, 5, 7]);
        assert!(s.get_range(10, 5).is_empty());
    }

    #[test]
    fn digest_and_newer_than() {
        let mut a: LocalStore<RawItem> = LocalStore::new();
        let mut b: LocalStore<RawItem> = LocalStore::new();
        a.apply(1, RawItem(1), 1);
        a.apply(2, RawItem(2), 1);
        b.apply(1, RawItem(1), 1);
        // b lacks key 2 → pull must return it.
        let missing = a.newer_than(&b.digest());
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].0, 2);
        // a has everything b has → nothing to pull the other way.
        assert!(b.newer_than(&a.digest()).is_empty());
    }

    #[test]
    fn len_tracks_every_transition() {
        let mut s: LocalStore<RawItem> = LocalStore::new();
        assert_eq!(s.len(), 0);
        s.apply(1, RawItem(1), 0);
        s.apply(2, RawItem(2), 0);
        assert_eq!(s.len(), 2);
        // Stale write: no change.
        assert!(!s.apply(1, RawItem(1), 0));
        assert_eq!(s.len(), 2);
        // Tombstone: live shrinks.
        s.remove(1, 1, 1);
        assert_eq!(s.len(), 1);
        // Tombstone over a tombstone: no change.
        s.remove(1, 1, 2);
        assert_eq!(s.len(), 1);
        // Un-delete with a newer version: live grows back.
        assert!(s.apply_record(1, 1, Some(RawItem(1)), 3));
        assert_eq!(s.len(), 2);
        // In-place replace of a live entry: no change.
        assert!(s.apply_record(2, 2, Some(RawItem(9)), 5));
        assert_eq!(s.len(), 2);
        // Tombstone over nothing: stays dead, count unchanged.
        s.remove(7, 7, 1);
        assert_eq!(s.len(), 2);
        s.clear();
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn split_off_outside_recounts_live_entries() {
        let mut s: LocalStore<RawItem> = LocalStore::new();
        for k in 0..8u64 {
            s.apply(k, RawItem(k), 0);
        }
        s.remove(4, 4, 1); // in-range tombstone survives the split
        let moved = s.split_off_outside(2, 5);
        assert_eq!(moved.len(), 4, "0,1,6,7 move out");
        assert_eq!(s.len(), 3, "2,3,5 live; 4 is a tombstone");
    }

    #[test]
    fn split_off_outside_partitions() {
        let mut s: LocalStore<RawItem> = LocalStore::new();
        for k in 0..10u64 {
            s.apply(k, RawItem(k), 0);
        }
        let moved = s.split_off_outside(3, 6);
        assert_eq!(moved.len(), 6);
        assert_eq!(s.len(), 4);
        assert!(s.get_range(0, 10).iter().all(|r| (3..=6).contains(&r.0)));
    }
}

//! Replication and loosely consistent updates.
//!
//! The paper relies on P-Grid's update mechanism "with lose [sic]
//! consistency guarantees" [ref 4, Datta et al., ICDCS 2003]: a hybrid
//! push/pull scheme. Writes are **pushed** to the replica group of the
//! responsible leaf; replicas that were offline catch up through periodic
//! **pull anti-entropy** (version-digest exchange with a random replica).
//! Readers contact a single replica, so reads may be stale until
//! anti-entropy converges — experiment E10 measures exactly this.

use unistore_simnet::NodeId;
use unistore_util::Key;

use crate::item::{Item, Version};
use crate::msg::PGridMsg;
use crate::peer::{Fx, PGridPeer};

impl<I: Item> PGridPeer<I> {
    /// Pushes a freshly applied entry to every known replica.
    pub(crate) fn push_to_replicas(&mut self, key: Key, version: Version, item: I, fx: &mut Fx<I>) {
        let entries = vec![(key, version, item)];
        for &r in self.routing.replicas() {
            fx.send(r, PGridMsg::Replicate { entries: clone_entries(&entries) });
        }
    }

    /// Applies pushed or pulled entries. No re-push: the push fan-out is
    /// one level deep (the leaf that accepted the write pushes; replicas
    /// only apply), loops are impossible.
    pub(crate) fn handle_replicate(&mut self, entries: Vec<(Key, Version, I)>) {
        for (key, version, item) in entries {
            self.store.apply(key, item, version);
        }
    }

    /// Periodic anti-entropy: offer our digest to one random replica.
    pub(crate) fn run_anti_entropy(&mut self, fx: &mut Fx<I>) {
        let replicas = self.routing.replicas();
        if replicas.is_empty() {
            return;
        }
        let pick = replicas[rand::Rng::gen_range(&mut self.rng, 0..replicas.len())];
        fx.send(pick, PGridMsg::Digest { entries: self.store.digest() });
    }

    /// Answers a digest with everything the requester is missing,
    /// tombstones included.
    pub(crate) fn handle_digest(
        &mut self,
        from: NodeId,
        digest: Vec<(Key, u64, Version)>,
        fx: &mut Fx<I>,
    ) {
        let newer = self.store.newer_than(&digest);
        if !newer.is_empty() {
            fx.send(from, PGridMsg::DigestReply { entries: newer });
        }
    }

    /// Applies pulled records (live entries and tombstones alike).
    pub(crate) fn handle_digest_reply(&mut self, entries: Vec<(Key, u64, Version, Option<I>)>) {
        for (key, ident, version, item) in entries {
            self.store.apply_record(key, ident, item, version);
        }
    }
}

fn clone_entries<I: Clone>(entries: &[(Key, Version, I)]) -> Vec<(Key, Version, I)> {
    entries.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PGridConfig;
    use crate::item::RawItem;
    use unistore_simnet::Effects;
    use unistore_util::BitPath;

    fn peer(id: u32) -> PGridPeer<RawItem> {
        PGridPeer::new(NodeId(id), BitPath::parse("0").unwrap(), PGridConfig::default(), 3)
    }

    #[test]
    fn replicate_applies_entries() {
        let mut p = peer(0);
        p.handle_replicate(vec![(1, 0, RawItem(1)), (2, 5, RawItem(2))]);
        assert_eq!(p.store().get(1), vec![RawItem(1)]);
        assert_eq!(p.store().get(2), vec![RawItem(2)]);
    }

    #[test]
    fn anti_entropy_skipped_without_replicas() {
        let mut p = peer(0);
        let mut fx = Effects::new();
        p.run_anti_entropy(&mut fx);
        assert!(fx.is_empty());
    }

    #[test]
    fn anti_entropy_sends_digest_to_a_replica() {
        let mut p = peer(0);
        p.routing_mut().add_replica(NodeId(7));
        p.preload(3, RawItem(3), 1);
        let mut fx = Effects::new();
        p.run_anti_entropy(&mut fx);
        assert_eq!(fx.sends().len(), 1);
        let (to, msg) = &fx.sends()[0];
        assert_eq!(*to, NodeId(7));
        match msg {
            PGridMsg::Digest { entries } => assert_eq!(entries, &[(3, 3, 1)]),
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn digest_answered_with_missing_entries_only() {
        let mut p = peer(0);
        p.preload(1, RawItem(1), 1);
        p.preload(2, RawItem(2), 1);
        let mut fx = Effects::new();
        // Requester already has key 1 at the same version.
        p.handle_digest(NodeId(9), vec![(1, 1, 1)], &mut fx);
        assert_eq!(fx.sends().len(), 1);
        match &fx.sends()[0].1 {
            PGridMsg::DigestReply { entries } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].0, 2);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn digest_with_nothing_missing_stays_silent() {
        let mut p = peer(0);
        p.preload(1, RawItem(1), 1);
        let mut fx = Effects::new();
        p.handle_digest(NodeId(9), vec![(1, 1, 1)], &mut fx);
        assert!(fx.is_empty());
    }
}

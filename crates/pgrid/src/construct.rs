//! Converged-state overlay construction.
//!
//! The bootstrap protocol ([`crate::bootstrap`]) *converges to* a trie
//! whose leaves hold roughly equal data volumes — that is P-Grid's
//! load-balancing invariant under its order-preserving hash (paper §2,
//! ref [2]: "a mature load-balancing technique able to deal with nearly
//! arbitrary data skews"). Experiments that are not about construction
//! itself start from that converged state directly:
//!
//! * [`build_balanced`] splits the leaf carrying the most sample keys
//!   until the target leaf count is reached — a deep trie where data is
//!   dense, shallow where it is sparse (balanced storage, skewed depth);
//! * [`build_uniform`] splits breadth-first regardless of data — the
//!   strawman a *non*-balancing order-preserving DHT would produce
//!   (uniform depth, skewed storage). E5 contrasts the two.

use rand::rngs::StdRng;
use rand::Rng;

use unistore_util::{BitPath, Key};

/// Builds data-adaptive leaf paths (P-Grid's balanced, converged state).
///
/// Returns the trie's leaf paths in key order. Splitting stops early if
/// every heavy leaf reached `max_depth` (duplicate-dominated samples).
pub fn build_balanced(sample: &[Key], n_leaves: usize, max_depth: u8) -> Vec<BitPath> {
    assert!(n_leaves >= 1, "need at least one leaf");
    let mut leaves: Vec<(BitPath, Vec<Key>)> = vec![(BitPath::ROOT, sample.to_vec())];
    while leaves.len() < n_leaves {
        // Split the splittable leaf with the most keys.
        let Some(idx) = leaves
            .iter()
            .enumerate()
            .filter(|(_, (p, _))| p.len() < max_depth)
            .max_by_key(|(_, (_, keys))| keys.len())
            .map(|(i, _)| i)
        else {
            break;
        };
        let (path, keys) = leaves.swap_remove(idx);
        let bit_pos = path.len();
        let zero = path.child(false);
        let one = path.child(true);
        let (lo_keys, hi_keys): (Vec<Key>, Vec<Key>) =
            keys.into_iter().partition(|k| !one.is_prefix_of_key(*k));
        let _ = bit_pos;
        leaves.push((zero, lo_keys));
        leaves.push((one, hi_keys));
    }
    let mut paths: Vec<BitPath> = leaves.into_iter().map(|(p, _)| p).collect();
    paths.sort_by_key(|p| p.min_key());
    paths
}

/// Builds a complete (data-oblivious) trie with `n_leaves` leaves by
/// splitting breadth-first. For `n_leaves` not a power of two the last
/// level is partially split.
pub fn build_uniform(n_leaves: usize, max_depth: u8) -> Vec<BitPath> {
    assert!(n_leaves >= 1, "need at least one leaf");
    let mut leaves = vec![BitPath::ROOT];
    while leaves.len() < n_leaves {
        // Split the shortest leaf; ties broken by key order for
        // determinism.
        let idx = leaves
            .iter()
            .enumerate()
            .filter(|(_, p)| p.len() < max_depth)
            .min_by_key(|(_, p)| (p.len(), p.min_key()))
            .map(|(i, _)| i);
        let Some(idx) = idx else { break };
        let path = leaves.swap_remove(idx);
        leaves.push(path.child(false));
        leaves.push(path.child(true));
    }
    leaves.sort_by_key(|p| p.min_key());
    leaves
}

/// Distributes `n_peers` over `leaves.len()` leaves as evenly as
/// possible; returns per-leaf peer-index lists. Peers are dealt round
/// robin so replica-group sizes differ by at most one.
pub fn assign_peers(n_leaves: usize, n_peers: usize) -> Vec<Vec<usize>> {
    assert!(n_leaves >= 1 && n_peers >= n_leaves, "need at least one peer per leaf");
    let mut out = vec![Vec::new(); n_leaves];
    for peer in 0..n_peers {
        out[peer % n_leaves].push(peer);
    }
    out
}

/// A fully planned converged topology, consumable by any cluster builder
/// (the raw P-Grid harness and the UniStore node cluster share this).
#[derive(Clone, Debug)]
pub struct TopologyPlan {
    /// Sorted leaf paths.
    pub leaves: Vec<BitPath>,
    /// Per-peer leaf index.
    pub peer_leaf: Vec<usize>,
    /// Per-peer routing references `(peer index, its path)`.
    pub peer_refs: Vec<Vec<(usize, BitPath)>>,
    /// Per-peer replica lists (peer indices).
    pub peer_replicas: Vec<Vec<usize>>,
    /// Per-leaf peer lists (peer indices).
    pub leaf_peers: Vec<Vec<usize>>,
}

/// Plans a converged overlay: leaves (balanced on `sample` or uniform),
/// peer assignment, routing references and replica groups.
pub fn plan_topology(
    n_peers: usize,
    replication: usize,
    refs_per_level: usize,
    max_depth: u8,
    sample: Option<&[Key]>,
    rng: &mut StdRng,
) -> TopologyPlan {
    assert!(n_peers >= 1);
    let n_leaves = (n_peers / replication.max(1)).max(1);
    let leaves = match sample {
        Some(keys) => build_balanced(keys, n_leaves, max_depth),
        None => build_uniform(n_leaves, max_depth),
    };
    let leaf_peers = assign_peers(leaves.len(), n_peers);
    let mut peer_leaf = vec![0usize; n_peers];
    for (leaf, peers) in leaf_peers.iter().enumerate() {
        for &p in peers {
            peer_leaf[p] = leaf;
        }
    }
    let mut peer_refs = vec![Vec::new(); n_peers];
    let mut peer_replicas = vec![Vec::new(); n_peers];
    for peer in 0..n_peers {
        let path = leaves[peer_leaf[peer]];
        for l in 0..path.len() {
            let prefix = path.prefix(l).child(!path.bit(l));
            for p in sample_subtree_peers(&leaves, &leaf_peers, prefix, refs_per_level, rng) {
                peer_refs[peer].push((p, leaves[peer_leaf[p]]));
            }
        }
        peer_replicas[peer] =
            leaf_peers[peer_leaf[peer]].iter().copied().filter(|&p| p != peer).collect();
    }
    TopologyPlan { leaves, peer_leaf, peer_refs, peer_replicas, leaf_peers }
}

/// Finds the leaf responsible for `key` in a sorted leaf list.
///
/// Leaves produced by the builders partition the key space, so exactly
/// one leaf matches.
pub fn leaf_of(leaves: &[BitPath], key: Key) -> usize {
    debug_assert!(!leaves.is_empty());
    let idx = leaves.partition_point(|p| p.min_key() <= key);
    idx.saturating_sub(1)
}

/// Samples up to `want` distinct peers inside the subtree with prefix
/// `prefix`, drawing from the sorted leaf list / per-leaf peer lists.
pub fn sample_subtree_peers(
    leaves: &[BitPath],
    leaf_peers: &[Vec<usize>],
    prefix: BitPath,
    want: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    // The subtree's leaves form a contiguous run in key order.
    let start = leaves.partition_point(|p| p.max_key() < prefix.min_key());
    let end = leaves.partition_point(|p| p.min_key() <= prefix.max_key());
    if start >= end {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(want);
    let mut tries = 0;
    while out.len() < want && tries < want * 8 {
        tries += 1;
        let leaf = rng.gen_range(start..end);
        if leaf_peers[leaf].is_empty() {
            continue;
        }
        let peer = leaf_peers[leaf][rng.gen_range(0..leaf_peers[leaf].len())];
        if !out.contains(&peer) {
            out.push(peer);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unistore_util::zipf::Zipf;

    fn paths_partition_key_space(leaves: &[BitPath]) {
        // Sorted, disjoint, gap-free coverage of [0, u64::MAX].
        assert_eq!(leaves[0].min_key(), 0);
        for w in leaves.windows(2) {
            assert_eq!(
                w[0].max_key().wrapping_add(1),
                w[1].min_key(),
                "gap or overlap between {} and {}",
                w[0],
                w[1]
            );
        }
        assert_eq!(leaves.last().unwrap().max_key(), u64::MAX);
    }

    #[test]
    fn uniform_power_of_two_is_complete() {
        let leaves = build_uniform(8, 40);
        assert_eq!(leaves.len(), 8);
        assert!(leaves.iter().all(|p| p.len() == 3));
        paths_partition_key_space(&leaves);
    }

    #[test]
    fn uniform_non_power_of_two_partitions() {
        for n in [1usize, 3, 5, 6, 7, 12, 100] {
            let leaves = build_uniform(n, 40);
            assert_eq!(leaves.len(), n.max(1));
            paths_partition_key_space(&leaves);
        }
    }

    #[test]
    fn balanced_uniform_data_gives_complete_trie() {
        let keys: Vec<Key> = (0..1024u64).map(|i| i << 54).collect();
        let leaves = build_balanced(&keys, 16, 40);
        assert_eq!(leaves.len(), 16);
        paths_partition_key_space(&leaves);
        // Uniform data → all leaves at depth 4.
        assert!(leaves.iter().all(|p| p.len() == 4));
    }

    #[test]
    fn balanced_skewed_data_deepens_dense_region() {
        // Distinct keys whose density is Zipf-skewed towards the low key
        // space (rank selects a 2^45-wide region, the suffix spreads
        // within it) — the skew shape the paper's balancing targets.
        let zipf = Zipf::new(512, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let keys: Vec<Key> = (0..20_000)
            .map(|_| ((zipf.sample(&mut rng) as u64) << 45) | rng.gen_range(0..(1u64 << 45)))
            .collect();
        let leaves = build_balanced(&keys, 16, 40);
        paths_partition_key_space(&leaves);
        let max_depth = leaves.iter().map(|p| p.len()).max().unwrap();
        let min_depth = leaves.iter().map(|p| p.len()).min().unwrap();
        assert!(
            max_depth >= min_depth + 2,
            "skewed data should produce an unbalanced trie (min {min_depth}, max {max_depth})"
        );
        // Depth follows density: the leaf owning the densest point (rank
        // 0 region, key 0) is at max depth; the sparse top of the key
        // space is at min depth.
        let dense_leaf = &leaves[leaf_of(&leaves, 0)];
        let sparse_leaf = &leaves[leaf_of(&leaves, u64::MAX)];
        assert_eq!(dense_leaf.len(), max_depth);
        assert_eq!(sparse_leaf.len(), min_depth);
    }

    #[test]
    fn assign_peers_even() {
        let a = assign_peers(4, 10);
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        // Every peer appears exactly once.
        let mut all: Vec<usize> = a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_of_finds_responsible() {
        let leaves = build_uniform(8, 40);
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(leaf_of(&leaves, leaf.min_key()), i);
            assert_eq!(leaf_of(&leaves, leaf.max_key()), i);
        }
        assert_eq!(leaf_of(&leaves, 0), 0);
        assert_eq!(leaf_of(&leaves, u64::MAX), 7);
    }

    #[test]
    fn sample_subtree_peers_stays_inside() {
        let leaves = build_uniform(8, 40);
        let peers = assign_peers(8, 16);
        let mut rng = StdRng::seed_from_u64(2);
        let prefix = BitPath::parse("01").unwrap();
        let picked = sample_subtree_peers(&leaves, &peers, prefix, 4, &mut rng);
        assert!(!picked.is_empty());
        // Leaves 2 and 3 (paths 010, 011) are inside "01".
        for p in picked {
            assert!(peers[2].contains(&p) || peers[3].contains(&p), "peer {p} outside subtree");
        }
    }

    #[test]
    fn sample_subtree_handles_empty_intersection() {
        let leaves = vec![BitPath::parse("0").unwrap(), BitPath::parse("1").unwrap()];
        let peers = vec![vec![0], vec![1]];
        let mut rng = StdRng::seed_from_u64(2);
        // Prefix "1" subtree exists; ask for it and for a sub-prefix of
        // leaf 0 — both must behave.
        let hi = sample_subtree_peers(&leaves, &peers, BitPath::parse("1").unwrap(), 2, &mut rng);
        assert_eq!(hi, vec![1]);
    }
}

//! Driver-facing harness: a P-Grid overlay inside a [`SimNet`].
//!
//! Experiments, benches and the upper UniStore layers talk to the overlay
//! through this type: build a network, preload data, issue operations,
//! and get back items *plus the operation's network cost* (messages,
//! bytes, hops, simulated latency).

use rand::rngs::StdRng;
use rand::Rng;

use unistore_simnet::metrics::OpCost;
use unistore_simnet::{LatencyModel, NodeId, SimNet, SimTime};
use unistore_util::rng::{derive_rng, stream};
use unistore_util::{BitPath, Key};

use crate::config::PGridConfig;
use crate::construct::{leaf_of, plan_topology};
use crate::item::{Item, Version};
use crate::msg::{PGridEvent, PGridMsg, PeerRef, QueryId, RangeMode};
use crate::peer::PGridPeer;

/// How the overlay's trie is shaped at build time.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Data-adaptive (P-Grid's converged, load-balanced state); the
    /// sample drives where the trie deepens.
    Balanced {
        /// Sample of the keys the overlay will store.
        sample: Vec<Key>,
    },
    /// Complete trie regardless of data (the no-balancing strawman).
    Uniform,
}

/// Result of a lookup issued through the cluster.
#[derive(Clone, Debug)]
pub struct LookupOutcome<I> {
    /// Items found under the key.
    pub items: Vec<I>,
    /// `false` on routing failure or timeout.
    pub ok: bool,
    /// Network cost attributed to this operation.
    pub cost: OpCost,
}

/// Result of a range query issued through the cluster.
#[derive(Clone, Debug)]
pub struct RangeOutcome<I> {
    /// All matching items.
    pub items: Vec<I>,
    /// Whether coverage of the interval completed.
    pub complete: bool,
    /// Leaf replies received.
    pub leaves: u32,
    /// Network cost attributed to this operation.
    pub cost: OpCost,
}

/// Result of an insert issued through the cluster.
#[derive(Clone, Debug)]
pub struct InsertOutcome {
    /// `false` on timeout.
    pub ok: bool,
    /// Network cost attributed to this operation.
    pub cost: OpCost,
}

/// A simulated P-Grid overlay.
pub struct PGridCluster<I: Item> {
    /// The underlying simulated network (public: experiments inspect
    /// per-node state and metrics directly).
    pub net: SimNet<PGridPeer<I>>,
    leaves: Vec<BitPath>,
    leaf_peers: Vec<Vec<NodeId>>,
    next_qid: QueryId,
    rng: StdRng,
}

impl<I: Item> PGridCluster<I> {
    /// Builds a converged overlay of `n_peers` peers.
    ///
    /// Leaf count is `n_peers / cfg.replication`; peers are spread over
    /// the leaves so every leaf has at least `replication` peers. Routing
    /// tables are filled with `cfg.refs_per_level` random references per
    /// level, replica groups are mutually registered.
    pub fn build(
        n_peers: usize,
        cfg: PGridConfig,
        topology: Topology,
        latency: impl LatencyModel + 'static,
        seed: u64,
    ) -> Self {
        assert!(n_peers >= 1);
        let mut rng = derive_rng(seed, stream::OVERLAY);
        let sample = match &topology {
            Topology::Balanced { sample } => Some(sample.as_slice()),
            Topology::Uniform => None,
        };
        let plan = plan_topology(
            n_peers,
            cfg.replication,
            cfg.refs_per_level,
            cfg.max_depth,
            sample,
            &mut rng,
        );

        let mut net = SimNet::new(latency, seed);
        for peer in 0..n_peers {
            let path = plan.leaves[plan.peer_leaf[peer]];
            let id = net.add_node(PGridPeer::new(NodeId(peer as u32), path, cfg.clone(), seed));
            debug_assert_eq!(id.index(), peer);
        }
        for peer in 0..n_peers {
            let node = net.node_mut(NodeId(peer as u32));
            for &(p, path) in &plan.peer_refs[peer] {
                node.routing_mut().add_ref(PeerRef { id: NodeId(p as u32), path });
            }
            for &r in &plan.peer_replicas[peer] {
                node.routing_mut().add_replica(NodeId(r as u32));
            }
        }

        let leaf_peers = plan
            .leaf_peers
            .iter()
            .map(|ps| ps.iter().map(|&p| NodeId(p as u32)).collect())
            .collect();
        PGridCluster { net, leaves: plan.leaves, leaf_peers, next_qid: 1, rng }
    }

    /// Builds an overlay of unspecialized peers running the pairwise
    /// bootstrap protocol (all paths ε; structure emerges at runtime).
    pub fn build_bootstrap(
        n_peers: usize,
        cfg: PGridConfig,
        latency: impl LatencyModel + 'static,
        seed: u64,
    ) -> Self {
        let rng = derive_rng(seed, stream::OVERLAY);
        let universe: Vec<NodeId> = (0..n_peers).map(|p| NodeId(p as u32)).collect();
        let mut net = SimNet::new(latency, seed);
        for peer in 0..n_peers {
            net.add_node(PGridPeer::new_bootstrap(
                NodeId(peer as u32),
                cfg.clone(),
                seed,
                universe.clone(),
            ));
        }
        PGridCluster {
            net,
            leaves: vec![BitPath::ROOT],
            leaf_peers: vec![universe],
            next_qid: 1,
            rng,
        }
    }

    /// The trie's leaf paths (key order). Meaningless for bootstrap
    /// clusters until converged.
    pub fn leaves(&self) -> &[BitPath] {
        &self.leaves
    }

    /// Peers responsible for `key` (the replica group of its leaf).
    pub fn responsible_peers(&self, key: Key) -> &[NodeId] {
        &self.leaf_peers[leaf_of(&self.leaves, key)]
    }

    /// A uniformly random peer id (e.g. as query origin).
    pub fn random_peer(&mut self) -> NodeId {
        NodeId(self.rng.gen_range(0..self.net.len() as u32))
    }

    /// Places an entry directly into all replicas of the responsible
    /// leaf — the driver-side bulk-load path (no network traffic).
    pub fn preload(&mut self, key: Key, item: I, version: Version) {
        let peers = self.leaf_peers[leaf_of(&self.leaves, key)].clone();
        for p in peers {
            self.net.node_mut(p).preload(key, item.clone(), version);
        }
    }

    /// Bulk [`Self::preload`].
    pub fn preload_all(&mut self, entries: impl IntoIterator<Item = (Key, I)>) {
        for (k, i) in entries {
            self.preload(k, i, 0);
        }
    }

    fn fresh_qid(&mut self) -> QueryId {
        let q = self.next_qid;
        self.next_qid += 1;
        q
    }

    /// Drives the simulation until the event for `qid` is emitted.
    /// The per-query timeout guarantees termination.
    fn run_for_event(&mut self, qid: QueryId) -> Option<(SimTime, PGridEvent<I>)> {
        let deadline = self.net.now() + SimTime::from_micros(60_000_000_000); // hard cap: 60k simulated seconds
        loop {
            if let Some(pos) = self.net.outputs().iter().position(|(_, _, ev)| {
                matches!(ev,
                    PGridEvent::LookupDone { qid: q, .. }
                    | PGridEvent::RangeDone { qid: q, .. }
                    | PGridEvent::InsertDone { qid: q, .. } if *q == qid)
            }) {
                let mut outs = self.net.take_outputs();
                let (t, _, ev) = outs.swap_remove(pos);
                return Some((t, ev));
            }
            if self.net.now() > deadline || !self.net.step() {
                return None;
            }
        }
    }

    /// Issues an exact-key lookup from `origin`.
    pub fn lookup(&mut self, origin: NodeId, key: Key) -> LookupOutcome<I> {
        let qid = self.fresh_qid();
        let before = self.net.metrics();
        let start = self.net.now();
        self.net.inject(origin, PGridMsg::Lookup { qid, key, origin, hops: 0, filter: None });
        match self.run_for_event(qid) {
            Some((t, PGridEvent::LookupDone { items, hops, ok, .. })) => {
                let d = self.net.metrics().delta(&before);
                LookupOutcome {
                    items,
                    ok,
                    cost: OpCost {
                        messages: d.sent,
                        bytes: d.bytes,
                        latency: t.saturating_sub(start),
                        hops,
                    },
                }
            }
            _ => LookupOutcome { items: Vec::new(), ok: false, cost: OpCost::default() },
        }
    }

    /// Issues an insert from `origin`, routed through the overlay.
    pub fn insert(&mut self, origin: NodeId, key: Key, item: I, version: Version) -> InsertOutcome {
        let qid = self.fresh_qid();
        let before = self.net.metrics();
        let start = self.net.now();
        self.net.inject(origin, PGridMsg::Insert { qid, key, item, version, origin, hops: 0 });
        match self.run_for_event(qid) {
            Some((t, PGridEvent::InsertDone { hops, ok, .. })) => {
                let d = self.net.metrics().delta(&before);
                InsertOutcome {
                    ok,
                    cost: OpCost {
                        messages: d.sent,
                        bytes: d.bytes,
                        latency: t.saturating_sub(start),
                        hops,
                    },
                }
            }
            _ => InsertOutcome { ok: false, cost: OpCost::default() },
        }
    }

    /// Issues a range query from `origin` with the chosen algorithm.
    pub fn range(&mut self, origin: NodeId, lo: Key, hi: Key, mode: RangeMode) -> RangeOutcome<I> {
        let qid = self.fresh_qid();
        let before = self.net.metrics();
        let start = self.net.now();
        let msg = match mode {
            RangeMode::Parallel => {
                PGridMsg::Range { qid, lo, hi, lmin: 0, origin, hops: 0, filter: None }
            }
            RangeMode::Sequential => {
                PGridMsg::RangeSeq { qid, lo, hi, origin, hops: 0, filter: None }
            }
        };
        self.net.inject(origin, msg);
        match self.run_for_event(qid) {
            Some((t, PGridEvent::RangeDone { items, complete, hops, leaves, .. })) => {
                let d = self.net.metrics().delta(&before);
                RangeOutcome {
                    items,
                    complete,
                    leaves,
                    cost: OpCost {
                        messages: d.sent,
                        bytes: d.bytes,
                        latency: t.saturating_sub(start),
                        hops,
                    },
                }
            }
            _ => RangeOutcome {
                items: Vec::new(),
                complete: false,
                leaves: 0,
                cost: OpCost::default(),
            },
        }
    }

    /// Runs the network for a stretch of simulated time (maintenance,
    /// anti-entropy, bootstrap exchanges …).
    pub fn settle(&mut self, duration: SimTime) {
        let deadline = self.net.now() + duration;
        self.net.run_until(deadline);
    }

    /// Per-peer stored-entry counts (storage-balance metric, E5).
    pub fn storage_loads(&self) -> Vec<f64> {
        self.net.iter_nodes().map(|(_, p)| p.store().len() as f64).collect()
    }

    /// Per-peer handled-message counts (processing-load metric).
    pub fn message_loads(&self) -> Vec<f64> {
        self.net.iter_nodes().map(|(_, p)| p.msg_load as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::RawItem;
    use unistore_simnet::ConstantLatency;

    fn quiet_cfg() -> PGridConfig {
        // Effectively disable periodic traffic for cost-exact tests.
        PGridConfig {
            maintenance_interval: SimTime::from_secs(1_000_000_000),
            anti_entropy_interval: SimTime::from_secs(1_000_000_000),
            ..PGridConfig::default()
        }
    }

    fn uniform_cluster(n: usize) -> PGridCluster<RawItem> {
        PGridCluster::build(
            n,
            quiet_cfg(),
            Topology::Uniform,
            ConstantLatency(SimTime::from_millis(10)),
            7,
        )
    }

    fn spread_keys(n: u64) -> Vec<Key> {
        // Deterministic keys spread over the space.
        (0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()
    }

    #[test]
    fn lookup_finds_preloaded_items_from_any_origin() {
        let mut c = uniform_cluster(16);
        let keys = spread_keys(64);
        for &k in &keys {
            c.preload(k, RawItem(k), 0);
        }
        for (i, &k) in keys.iter().enumerate() {
            let origin = NodeId((i % 16) as u32);
            let out = c.lookup(origin, k);
            assert!(out.ok, "lookup {i} failed");
            assert_eq!(out.items, vec![RawItem(k)]);
        }
    }

    #[test]
    fn lookup_hops_logarithmic() {
        let mut c = uniform_cluster(64); // depth 6
        let keys = spread_keys(32);
        for &k in &keys {
            c.preload(k, RawItem(k), 0);
        }
        let mut max_hops = 0;
        for &k in &keys {
            let origin = c.random_peer();
            let out = c.lookup(origin, k);
            assert!(out.ok);
            max_hops = max_hops.max(out.cost.hops);
        }
        assert!(max_hops <= 6, "hops {max_hops} exceed trie depth 6");
        assert!(max_hops >= 1, "some lookups must leave the origin");
    }

    #[test]
    fn lookup_missing_key_ok_empty() {
        let mut c = uniform_cluster(8);
        let out = c.lookup(NodeId(0), 12345);
        assert!(out.ok, "an empty leaf is a successful answer");
        assert!(out.items.is_empty());
    }

    #[test]
    fn insert_routes_to_responsible_leaf_and_replicates() {
        let mut c = PGridCluster::build(
            16,
            quiet_cfg().with_replication(2),
            Topology::Uniform,
            ConstantLatency(SimTime::from_millis(5)),
            3,
        );
        let key = 0xDEAD_BEEF_0000_0001;
        let out = c.insert(NodeId(0), key, RawItem(1), 0);
        assert!(out.ok);
        // Let the replicate push land.
        c.settle(SimTime::from_millis(100));
        let responsible = c.responsible_peers(key).to_vec();
        assert_eq!(responsible.len(), 2);
        for p in responsible {
            assert_eq!(c.net.node(p).store().get(key), vec![RawItem(1)], "replica {p} missing");
        }
        // A lookup from anywhere now finds it.
        let found = c.lookup(NodeId(7), key);
        assert_eq!(found.items, vec![RawItem(1)]);
    }

    #[test]
    fn parallel_range_returns_exactly_the_interval() {
        let mut c = uniform_cluster(16);
        for k in 0..200u64 {
            c.preload(k << 56, RawItem(k), 0);
        }
        let lo = 10u64 << 56;
        let hi = 50u64 << 56;
        let out = c.range(NodeId(3), lo, hi, RangeMode::Parallel);
        assert!(out.complete);
        let mut got: Vec<u64> = out.items.iter().map(|r| r.0).collect();
        got.sort_unstable();
        assert_eq!(got, (10..=50).collect::<Vec<_>>());
        assert!(out.leaves >= 2, "range must span leaves");
    }

    #[test]
    fn sequential_range_matches_parallel() {
        let mut c = uniform_cluster(16);
        for k in 0..200u64 {
            c.preload(k << 56, RawItem(k), 0);
        }
        let lo = 33u64 << 56;
        let hi = 177u64 << 56;
        let par = c.range(NodeId(0), lo, hi, RangeMode::Parallel);
        let seq = c.range(NodeId(0), lo, hi, RangeMode::Sequential);
        assert!(par.complete && seq.complete);
        let norm = |o: &RangeOutcome<RawItem>| {
            let mut v: Vec<u64> = o.items.iter().map(|r| r.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&par), norm(&seq));
        // Sequential walks one leaf at a time → strictly more latency
        // across many leaves; parallel fans out.
        assert!(seq.cost.latency >= par.cost.latency);
    }

    #[test]
    fn range_cost_scales_with_selectivity() {
        let mut c = uniform_cluster(64);
        for k in 0..256u64 {
            c.preload(k << 56, RawItem(k), 0);
        }
        let narrow = c.range(NodeId(0), 0, 3 << 56, RangeMode::Parallel);
        let wide = c.range(NodeId(0), 0, 200 << 56, RangeMode::Parallel);
        assert!(narrow.complete && wide.complete);
        assert!(
            wide.cost.messages > narrow.cost.messages,
            "wide range should cost more messages ({} vs {})",
            wide.cost.messages,
            narrow.cost.messages
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut c = uniform_cluster(32);
            for k in 0..100u64 {
                c.preload(k << 56, RawItem(k), 0);
            }
            let a = c.lookup(NodeId(1), 42 << 56);
            let b = c.range(NodeId(2), 0, 20 << 56, RangeMode::Parallel);
            (a.cost.messages, a.cost.latency, b.cost.messages, b.cost.latency)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn balanced_topology_evens_storage_under_skew() {
        use unistore_util::stats::gini;
        use unistore_util::zipf::Zipf;
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(11);
        let zipf = Zipf::new(512, 1.0);
        // Distinct keys, Zipf-skewed density (rank picks a region, the
        // suffix spreads within it) — identical keys cannot be separated
        // by any partitioner and are not what balancing addresses.
        let keys: Vec<Key> = (0..20_000)
            .map(|_| ((zipf.sample(&mut rng) as u64) << 45) | rng.gen_range(0..(1u64 << 45)))
            .collect();

        let mut balanced = PGridCluster::build(
            32,
            quiet_cfg(),
            Topology::Balanced { sample: keys.clone() },
            ConstantLatency(SimTime::from_millis(1)),
            1,
        );
        let mut uniform = PGridCluster::build(
            32,
            quiet_cfg(),
            Topology::Uniform,
            ConstantLatency(SimTime::from_millis(1)),
            1,
        );
        for (i, &k) in keys.iter().enumerate() {
            balanced.preload(k, RawItem(i as u64), 0);
            uniform.preload(k, RawItem(i as u64), 0);
        }
        let g_bal = gini(&balanced.storage_loads());
        let g_uni = gini(&uniform.storage_loads());
        // Bit-boundary splits can't equalize perfectly (children of a
        // split inherit whatever falls on each side), so assert the
        // *relative* claim: balancing removes most of the inequality.
        assert!(
            g_bal < g_uni / 2.0,
            "balancing must at least halve storage inequality ({g_bal:.3} vs {g_uni:.3})"
        );
        assert!(g_bal < 0.45, "balanced overlay still skewed: gini={g_bal:.3}");
    }
}

//! Dynamic overlay construction by pairwise exchanges.
//!
//! Aberer's original P-Grid construction (paper ref [1]): peers start
//! unspecialized (path ε) and meet pairwise at random. Depending on how
//! their current paths relate, a meeting either *splits* the key space
//! between them, makes them *replicas*, aligns an unspecialized peer with
//! existing structure, or just exchanges references. No central
//! coordination, no global knowledge — the trie emerges.
//!
//! The exchange partner is drawn from a peer list supplied at node
//! creation; the original system uses random walks for the same purpose
//! (documented substitution, DESIGN.md §2).
//!
//! Case analysis for a meeting of `u` (initiator) and `v` (receiver),
//! with `l` the length of their paths' common prefix:
//!
//! | relation | action |
//! |---|---|
//! | paths identical, both hold enough data | split: `v` keeps side `1`, `u` takes side `0`, data is handed over |
//! | paths identical, little data | become replicas of each other |
//! | `u`'s path is a prefix of `v`'s | `u` adopts the complement of `v`'s next bit |
//! | `v`'s path is a prefix of `u`'s | symmetric |
//! | paths diverge | mutual references at the divergence level |

use rand::Rng;

use unistore_simnet::NodeId;
use unistore_util::{BitPath, Key};

use crate::item::{Item, Version};
use crate::msg::{PGridMsg, PeerRef};
use crate::peer::{Fx, PGridPeer};
use crate::routing::RouteDecision;

/// Reserved query id for internal re-route inserts (never registered as
/// pending, so stray acks are ignored).
const REROUTE_QID: u64 = 0;

impl<I: Item> PGridPeer<I> {
    /// Starts one exchange with a random peer (fired by the EXCHANGE
    /// timer while bootstrapping).
    pub(crate) fn initiate_exchange(&mut self, fx: &mut Fx<I>) {
        // Retry entries that could not be routed while the routing
        // table was still sparse.
        if !self.reroute_stash.is_empty() {
            let stashed = std::mem::take(&mut self.reroute_stash);
            self.handle_exchange_data(stashed, fx);
        }
        if self.universe.len() < 2 {
            return;
        }
        let target = loop {
            let pick = self.universe[self.rng.gen_range(0..self.universe.len())];
            if pick != self.id {
                break pick;
            }
        };
        fx.send(
            target,
            PGridMsg::Exchange { path: self.routing.path(), store_len: self.store.len() as u64 },
        );
    }

    /// Receiver side of a pairwise exchange.
    pub(crate) fn handle_exchange(
        &mut self,
        _now: unistore_simnet::SimTime,
        from: NodeId,
        their_path: BitPath,
        their_len: u64,
        fx: &mut Fx<I>,
    ) {
        let my_path = self.routing.path();
        let l = my_path.common_prefix_len(&their_path);
        if l == my_path.len() && l == their_path.len() {
            // Identical paths.
            let enough_data = self.store.len() > self.cfg.split_threshold
                && their_len as usize > self.cfg.split_threshold;
            if enough_data && my_path.len() < self.cfg.max_depth {
                // Split: we keep the `1` side, initiator takes `0`.
                let new_mine = my_path.child(true);
                let theirs = my_path.child(false);
                let entries = self.store.split_off_outside(new_mine.min_key(), new_mine.max_key());
                self.routing.set_path(new_mine);
                self.routing.add_ref(PeerRef { id: from, path: theirs });
                fx.send(from, PGridMsg::ExchangeSplit { new_sender_path: new_mine, entries });
            } else {
                // Become replicas; send our data, the initiator answers
                // with theirs (ExchangeData) so both sides converge.
                self.routing.add_replica(from);
                fx.send(
                    from,
                    PGridMsg::ExchangeReplica {
                        entries: self
                            .store
                            .iter()
                            .filter_map(|(k, e)| e.item.clone().map(|i| (k, e.version, i)))
                            .collect(),
                    },
                );
            }
        } else if l == my_path.len() {
            // We are less specialized: adopt the complement of their next
            // bit, reference them, and introduce ourselves.
            let bit = !their_path.bit(l);
            self.extend_path(bit, fx);
            self.routing.add_ref(PeerRef { id: from, path: their_path });
            fx.send(
                from,
                PGridMsg::ExchangeRefs {
                    peers: vec![PeerRef { id: self.id, path: self.routing.path() }],
                },
            );
        } else if l == their_path.len() {
            // They are less specialized: tell them to adopt the
            // complement of our next bit, and share what we know.
            fx.send(from, PGridMsg::ExchangeAdopt { bit: !my_path.bit(l) });
            let mut peers = self.routing.all_refs();
            peers.push(PeerRef { id: self.id, path: my_path });
            fx.send(from, PGridMsg::ExchangeRefs { peers });
        } else {
            // Diverged: mutual referencing plus gossip.
            self.routing.add_ref(PeerRef { id: from, path: their_path });
            let mut peers = self.routing.all_refs();
            peers.push(PeerRef { id: self.id, path: my_path });
            fx.send(from, PGridMsg::ExchangeRefs { peers });
        }
    }

    /// Initiator side of a completed split: adopt the sibling path, take
    /// the handed-over entries, send back whatever we hold that now
    /// belongs to the sender's side.
    pub(crate) fn handle_exchange_split(
        &mut self,
        from: NodeId,
        new_sender_path: BitPath,
        entries: Vec<(Key, Version, I)>,
        fx: &mut Fx<I>,
    ) {
        let Some(sibling) = new_sender_path.sibling() else {
            return; // malformed: a split cannot produce the root
        };
        if new_sender_path.parent() == self.routing.path() {
            self.routing.set_path(sibling);
            self.routing.add_ref(PeerRef { id: from, path: new_sender_path });
            // Hand over our entries that belong to the sender now.
            let moved = self.store.split_off_outside(sibling.min_key(), sibling.max_key());
            if !moved.is_empty() {
                fx.send(from, PGridMsg::ExchangeData { entries: moved });
            }
        }
        // Apply (or re-route) what the sender gave us.
        self.handle_exchange_data(entries, fx);
    }

    /// Entries handed over without structural context: apply what we are
    /// responsible for, re-route the rest through normal insert routing;
    /// what cannot be routed yet is stashed and retried every exchange
    /// round.
    pub(crate) fn handle_exchange_data(&mut self, entries: Vec<(Key, Version, I)>, fx: &mut Fx<I>) {
        for (key, version, item) in entries {
            if self.routing.responsible(key) {
                self.store.apply(key, item, version);
            } else if let RouteDecision::Forward(next, _) = self.routing.route(key, &mut self.rng) {
                fx.send(
                    next,
                    PGridMsg::Insert {
                        qid: REROUTE_QID,
                        key,
                        item,
                        version,
                        origin: self.id,
                        hops: 0,
                    },
                );
            } else {
                self.reroute_stash.push((key, version, item));
            }
        }
    }

    /// Both peers hold the same path with little data: converge stores.
    pub(crate) fn handle_exchange_replica(
        &mut self,
        from: NodeId,
        entries: Vec<(Key, Version, I)>,
    ) {
        self.routing.add_replica(from);
        for (key, version, item) in entries {
            self.store.apply(key, item, version);
        }
    }

    /// Instructed to specialize by appending `bit`.
    pub(crate) fn handle_exchange_adopt(&mut self, _from: NodeId, bit: bool, fx: &mut Fx<I>) {
        if self.routing.path().len() < self.cfg.max_depth {
            self.extend_path(bit, fx);
        }
    }

    /// Appends one bit to the local path and re-routes entries that fall
    /// outside the narrowed responsibility.
    pub(crate) fn extend_path(&mut self, bit: bool, fx: &mut Fx<I>) {
        let new_path = self.routing.path().child(bit);
        self.routing.set_path(new_path);
        let moved = self.store.split_off_outside(new_path.min_key(), new_path.max_key());
        self.handle_exchange_data(moved, fx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PGridConfig;
    use crate::item::RawItem;
    use unistore_simnet::Effects;

    fn bpeer(id: u32, universe: Vec<NodeId>) -> PGridPeer<RawItem> {
        let cfg = PGridConfig { split_threshold: 2, ..PGridConfig::default() };
        PGridPeer::new_bootstrap(NodeId(id), cfg, 5, universe)
    }

    fn fill(p: &mut PGridPeer<RawItem>, keys: &[u64]) {
        for &k in keys {
            p.preload(k, RawItem(k), 0);
        }
    }

    #[test]
    fn identical_paths_with_data_split() {
        let ids = vec![NodeId(0), NodeId(1)];
        let mut v = bpeer(1, ids.clone());
        // Data on both sides of the first bit.
        fill(&mut v, &[1, 2, 3, (1 << 63) + 1, (1 << 63) + 2, (1 << 63) + 3]);
        let mut fx = Effects::new();
        v.handle_exchange(unistore_simnet::SimTime::ZERO, NodeId(0), BitPath::ROOT, 6, &mut fx);
        // v keeps the `1` side.
        assert_eq!(v.path(), BitPath::parse("1").unwrap());
        assert_eq!(v.store().len(), 3);
        match &fx.sends()[0] {
            (to, PGridMsg::ExchangeSplit { new_sender_path, entries }) => {
                assert_eq!(*to, NodeId(0));
                assert_eq!(*new_sender_path, BitPath::parse("1").unwrap());
                assert_eq!(entries.len(), 3, "low-side entries handed over");
            }
            other => panic!("unexpected send {other:?}"),
        }
    }

    #[test]
    fn identical_paths_without_data_become_replicas() {
        let ids = vec![NodeId(0), NodeId(1)];
        let mut v = bpeer(1, ids);
        fill(&mut v, &[1]);
        let mut fx = Effects::new();
        v.handle_exchange(unistore_simnet::SimTime::ZERO, NodeId(0), BitPath::ROOT, 1, &mut fx);
        assert_eq!(v.path(), BitPath::ROOT);
        assert_eq!(v.routing().replicas(), &[NodeId(0)]);
        assert!(matches!(fx.sends()[0].1, PGridMsg::ExchangeReplica { .. }));
    }

    #[test]
    fn split_initiator_adopts_sibling_and_returns_data() {
        let ids = vec![NodeId(0), NodeId(1)];
        let mut u = bpeer(0, ids);
        fill(&mut u, &[7, (1 << 63) + 9]);
        let mut fx = Effects::new();
        u.handle_exchange_split(
            NodeId(1),
            BitPath::parse("1").unwrap(),
            vec![(3, 0, RawItem(3))],
            &mut fx,
        );
        assert_eq!(u.path(), BitPath::parse("0").unwrap());
        // Kept its low-side entry + the handed-over one.
        assert_eq!(u.store().get(7), vec![RawItem(7)]);
        assert_eq!(u.store().get(3), vec![RawItem(3)]);
        // High-side entry returned to the sender.
        match &fx.sends()[0] {
            (to, PGridMsg::ExchangeData { entries }) => {
                assert_eq!(*to, NodeId(1));
                assert_eq!(entries[0].0, (1 << 63) + 9);
            }
            other => panic!("unexpected send {other:?}"),
        }
    }

    #[test]
    fn prefix_relation_extends_path() {
        let ids = vec![NodeId(0), NodeId(1)];
        let mut v = bpeer(1, ids);
        // v at root, initiator at "01": v adopts the complement of the
        // initiator's first bit → "1", and references it at level 0.
        let mut fx = Effects::new();
        v.handle_exchange(
            unistore_simnet::SimTime::ZERO,
            NodeId(0),
            BitPath::parse("01").unwrap(),
            5,
            &mut fx,
        );
        assert_eq!(v.path(), BitPath::parse("1").unwrap());
        assert_eq!(v.routing().level_refs(0).len(), 1);
    }

    #[test]
    fn reverse_prefix_sends_adopt() {
        let ids = vec![NodeId(0), NodeId(1)];
        let mut v = bpeer(1, ids);
        let mut fx0 = Effects::new();
        v.extend_path(false, &mut fx0); // v at "0"
        v.extend_path(true, &mut fx0); // v at "01"
        let mut fx = Effects::new();
        v.handle_exchange(unistore_simnet::SimTime::ZERO, NodeId(0), BitPath::ROOT, 5, &mut fx);
        let adopt = fx
            .sends()
            .iter()
            .find_map(|(_, m)| match m {
                PGridMsg::ExchangeAdopt { bit } => Some(*bit),
                _ => None,
            })
            .expect("adopt sent");
        // v's next bit after ε is 0 → initiator adopts 1.
        assert!(adopt);
    }

    #[test]
    fn diverged_paths_exchange_refs() {
        let ids = vec![NodeId(0), NodeId(1)];
        let mut v = bpeer(1, ids);
        let mut fx0 = Effects::new();
        v.extend_path(true, &mut fx0); // v at "1"
        let mut fx = Effects::new();
        v.handle_exchange(
            unistore_simnet::SimTime::ZERO,
            NodeId(0),
            BitPath::parse("0").unwrap(),
            5,
            &mut fx,
        );
        assert_eq!(v.routing().level_refs(0).len(), 1);
        assert!(matches!(fx.sends()[0].1, PGridMsg::ExchangeRefs { .. }));
    }

    #[test]
    fn exchange_data_reroutes_foreign_entries() {
        let ids = vec![NodeId(0), NodeId(1)];
        let mut v = bpeer(1, ids);
        let mut fx0 = Effects::new();
        v.extend_path(false, &mut fx0); // v at "0"
        v.routing_mut().add_ref(PeerRef { id: NodeId(0), path: BitPath::parse("1").unwrap() });
        let mut fx = Effects::new();
        v.handle_exchange_data(vec![(5, 0, RawItem(5)), ((1 << 63) + 1, 0, RawItem(1))], &mut fx);
        // Own-side entry applied, foreign entry re-routed as insert.
        assert_eq!(v.store().get(5), vec![RawItem(5)]);
        assert!(matches!(fx.sends()[0].1, PGridMsg::Insert { qid: 0, .. }));
    }
}

//! The P-Grid peer: protocol state machine hosted on a simulated node.
//!
//! One struct implements the whole protocol; the per-concern handler
//! methods live in the sibling modules ([`crate::lookup`],
//! [`crate::range`], [`crate::replicate`], [`crate::maintain`],
//! [`crate::bootstrap`]) as additional `impl` blocks.

use rand::rngs::StdRng;
use rand::Rng;

use unistore_simnet::{Effects, NodeBehavior, NodeId, SimTime, Timer};
use unistore_util::rng::{derive_rng, stream};
use unistore_util::wire::OpBatch;
use unistore_util::{BitPath, FxHashMap, ItemFilter, Key};

use crate::config::PGridConfig;
use crate::item::{Item, LocalStore};
use crate::msg::{PGridEvent, PGridMsg, QueryId};
use crate::range::IntervalSet;
use crate::routing::{RouteDecision, RoutingTable};

/// Effects buffer specialized to the P-Grid protocol.
pub type Fx<I> = Effects<PGridMsg<I>, PGridEvent<I>>;

/// Timer kinds used by the peer.
pub(crate) mod timer {
    /// Query timeout; payload = query id.
    pub const QUERY_TIMEOUT: u32 = 1;
    /// Periodic routing maintenance.
    pub const MAINTAIN: u32 = 2;
    /// Periodic anti-entropy pull.
    pub const ANTI_ENTROPY: u32 = 3;
    /// Bootstrap: initiate a pairwise exchange; payload unused.
    pub const EXCHANGE: u32 = 4;
    /// Ping timeout; payload = nonce.
    pub const PING_TIMEOUT: u32 = 5;
}

/// State of a driver-issued operation awaiting completion at the origin.
///
/// Lookup / insert / delete keep their request parameters so a timed-out
/// attempt can be re-issued (`PGridConfig::op_retries`) through a
/// different reference; `last_hop` remembers the first hop of the latest
/// attempt so the retry can avoid it.
#[derive(Debug)]
pub(crate) enum Pending<I> {
    /// Exact-key lookup (with the semi-join filter to re-ship on retry).
    Lookup { key: Key, attempts: u32, last_hop: Option<NodeId>, filter: Option<ItemFilter> },
    /// Insert waiting for its ack.
    Insert { key: Key, item: I, version: u64, attempts: u32, last_hop: Option<NodeId> },
    /// Delete (index maintenance) waiting for its ack.
    Delete { key: Key, ident: u64, version: u64, attempts: u32, last_hop: Option<NodeId> },
    /// Batched writes accumulating aggregated acks until every op is
    /// accounted for. The full op set is kept so a timed-out attempt can
    /// be re-issued (idempotent under the versioned store), avoiding
    /// per-op the first hop of the previous attempt.
    Batch {
        /// The ops and shared payloads, for retry.
        batch: OpBatch<I>,
        /// Per-op first hop of the latest attempt (`None` = resolved
        /// locally or routing was stuck).
        last_hops: Vec<Option<NodeId>>,
        /// Total ops the batch carries.
        expected: u32,
        /// Ops acknowledged so far (across leaves).
        done: u32,
        /// Max hops over the received acks.
        hops: u32,
        /// Attempts so far.
        attempts: u32,
    },
    /// Range query accumulating leaf replies until the covered intervals
    /// add up to `[lo, hi]`.
    Range {
        /// Query bounds.
        lo: Key,
        hi: Key,
        /// Intervals covered by received replies.
        covered: IntervalSet,
        /// Accumulated items.
        items: Vec<I>,
        /// Max hops over branches.
        hops: u32,
        /// Leaf replies received.
        leaves: u32,
        /// Whether any branch reported a routing hole.
        aborted: bool,
    },
}

/// A P-Grid peer.
pub struct PGridPeer<I: Item> {
    pub(crate) id: NodeId,
    pub(crate) cfg: PGridConfig,
    pub(crate) routing: RoutingTable,
    pub(crate) store: LocalStore<I>,
    pub(crate) rng: StdRng,
    pub(crate) pending: FxHashMap<QueryId, Pending<I>>,
    pub(crate) pending_pings: FxHashMap<u64, NodeId>,
    next_nonce: u64,
    /// All node ids in the overlay — stands in for P-Grid's random walks
    /// when the bootstrap protocol picks exchange partners (documented
    /// simplification, see DESIGN.md).
    pub(crate) universe: Vec<NodeId>,
    /// Whether this peer actively runs the pairwise bootstrap protocol.
    pub(crate) bootstrapping: bool,
    /// Entries that could not be re-routed yet (sparse routing during
    /// bootstrap); retried every exchange round.
    pub(crate) reroute_stash: Vec<(Key, u64, I)>,
    /// Messages handled (all kinds) — the query/processing load metric
    /// used by the balance experiments.
    pub msg_load: u64,
}

impl<I: Item> PGridPeer<I> {
    /// Creates a peer at a fixed trie position (converged-state setup).
    pub fn new(id: NodeId, path: BitPath, cfg: PGridConfig, seed: u64) -> Self {
        let rng = derive_rng(seed, stream::NODE_BASE + id.0 as u64);
        let routing = RoutingTable::new(path, cfg.refs_per_level);
        PGridPeer {
            id,
            cfg,
            routing,
            store: LocalStore::new(),
            rng,
            pending: FxHashMap::default(),
            pending_pings: FxHashMap::default(),
            next_nonce: 1,
            universe: Vec::new(),
            bootstrapping: false,
            reroute_stash: Vec::new(),
            msg_load: 0,
        }
    }

    /// Creates an unspecialized peer (path ε) that will find its place
    /// through the pairwise bootstrap protocol.
    pub fn new_bootstrap(id: NodeId, cfg: PGridConfig, seed: u64, universe: Vec<NodeId>) -> Self {
        let mut p = Self::new(id, BitPath::ROOT, cfg, seed);
        p.universe = universe;
        p.bootstrapping = true;
        p
    }

    /// This peer's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current trie path.
    pub fn path(&self) -> BitPath {
        self.routing.path()
    }

    /// Immutable view of the local store.
    pub fn store(&self) -> &LocalStore<I> {
        &self.store
    }

    /// Mutable routing access for converged-state construction.
    pub fn routing_mut(&mut self) -> &mut RoutingTable {
        &mut self.routing
    }

    /// Immutable routing access.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Places an entry directly into the local store (driver-side
    /// preloading; bypasses the network on purpose).
    pub fn preload(&mut self, key: Key, item: I, version: u64) {
        self.store.apply(key, item, version);
    }

    /// Picks a next hop toward `key`, or `None` when the key is local or
    /// the needed level has no reference. Load-aware: the least-read
    /// reference at the needed level, so embedding layers that forward
    /// whole query plans spread hot-key traffic across the responsible
    /// replica group, exactly like the lookups themselves.
    pub fn next_hop(&mut self, key: Key) -> Option<NodeId> {
        match self.routing.route_read(key, None) {
            RouteDecision::Forward(id, _) => Some(id),
            RouteDecision::Local | RouteDecision::Stuck(_) => None,
        }
    }

    /// Issues a locally originated exact-key lookup: the embedding layer
    /// (UniStore's query executor) calls this as if it were the driver;
    /// completion arrives as a [`PGridEvent::LookupDone`] emit.
    pub fn local_lookup(&mut self, qid: QueryId, key: Key, fx: &mut Fx<I>) {
        self.local_lookup_filtered(qid, key, None, fx);
    }

    /// Locally originated lookup carrying a semi-join filter the leaf
    /// applies before replying.
    pub fn local_lookup_filtered(
        &mut self,
        qid: QueryId,
        key: Key,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        self.handle_lookup(NodeId::EXTERNAL, qid, key, self.id, 0, filter, fx);
    }

    /// Issues a locally originated range query.
    pub fn local_range(
        &mut self,
        qid: QueryId,
        lo: Key,
        hi: Key,
        mode: crate::msg::RangeMode,
        fx: &mut Fx<I>,
    ) {
        self.local_range_filtered(qid, lo, hi, mode, None, fx);
    }

    /// Locally originated range query carrying a semi-join filter every
    /// reached leaf applies before replying.
    pub fn local_range_filtered(
        &mut self,
        qid: QueryId,
        lo: Key,
        hi: Key,
        mode: crate::msg::RangeMode,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        match mode {
            crate::msg::RangeMode::Parallel => {
                self.handle_range(NodeId::EXTERNAL, qid, lo, hi, 0, self.id, 0, filter, fx)
            }
            crate::msg::RangeMode::Sequential => {
                self.handle_range_seq(NodeId::EXTERNAL, qid, lo, hi, self.id, 0, filter, fx)
            }
        }
    }

    /// Issues a locally originated insert.
    pub fn local_insert(&mut self, qid: QueryId, key: Key, item: I, version: u64, fx: &mut Fx<I>) {
        self.handle_insert(NodeId::EXTERNAL, qid, key, item, version, self.id, 0, fx);
    }

    /// Issues a locally originated delete.
    pub fn local_delete(
        &mut self,
        qid: QueryId,
        key: Key,
        ident: u64,
        version: u64,
        fx: &mut Fx<I>,
    ) {
        self.handle_delete(NodeId::EXTERNAL, qid, key, ident, version, self.id, 0, fx);
    }

    pub(crate) fn fresh_nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        // Nonce space is per-peer; tag with id to keep them globally unique.
        (self.id.0 as u64) << 40 | n
    }

    /// Arms a periodic timer with ±50% jitter to avoid lockstep.
    pub(crate) fn arm_periodic(&mut self, fx: &mut Fx<I>, base: SimTime, kind: u32) {
        let jitter = self.rng.gen_range(0.5..1.5);
        let delay = SimTime::from_micros((base.as_micros() as f64 * jitter) as u64);
        fx.set_timer(delay, Timer::new(kind, 0));
    }

    /// Registers a pending driver operation and arms its timeout,
    /// jittered ±25% so a batch of ops stranded by one correlated
    /// failure re-issues spread out instead of as a synchronized
    /// retry storm.
    pub(crate) fn register_pending(&mut self, fx: &mut Fx<I>, qid: QueryId, p: Pending<I>) {
        self.pending.insert(qid, p);
        let jitter = self.rng.gen_range(0.75..1.25);
        let delay =
            SimTime::from_micros((self.cfg.query_timeout.as_micros() as f64 * jitter) as u64);
        fx.set_timer(delay, Timer::new(timer::QUERY_TIMEOUT, qid));
    }

    fn handle_query_timeout(&mut self, qid: QueryId, fx: &mut Fx<I>) {
        let Some(pending) = self.pending.remove(&qid) else {
            return; // completed in time
        };
        match pending {
            Pending::Lookup { key, attempts, last_hop, filter } => {
                if attempts < self.cfg.op_retries {
                    self.register_pending(
                        fx,
                        qid,
                        Pending::Lookup {
                            key,
                            attempts: attempts + 1,
                            last_hop,
                            filter: filter.clone(),
                        },
                    );
                    self.issue_lookup(qid, key, last_hop, filter, fx);
                } else {
                    fx.emit(PGridEvent::LookupDone { qid, items: Vec::new(), hops: 0, ok: false })
                }
            }
            Pending::Insert { key, item, version, attempts, last_hop } => {
                if attempts < self.cfg.op_retries {
                    self.register_pending(
                        fx,
                        qid,
                        Pending::Insert {
                            key,
                            item: item.clone(),
                            version,
                            attempts: attempts + 1,
                            last_hop,
                        },
                    );
                    self.issue_insert(qid, key, item, version, last_hop, fx);
                } else {
                    fx.emit(PGridEvent::InsertDone { qid, hops: 0, ok: false })
                }
            }
            Pending::Delete { key, ident, version, attempts, last_hop } => {
                if attempts < self.cfg.op_retries {
                    self.register_pending(
                        fx,
                        qid,
                        Pending::Delete { key, ident, version, attempts: attempts + 1, last_hop },
                    );
                    self.issue_delete(qid, key, ident, version, last_hop, fx);
                } else {
                    fx.emit(PGridEvent::InsertDone { qid, hops: 0, ok: false })
                }
            }
            Pending::Batch { batch, last_hops, expected, hops, attempts, .. } => {
                if attempts < self.cfg.op_retries {
                    self.register_pending(
                        fx,
                        qid,
                        Pending::Batch {
                            batch: batch.clone(),
                            last_hops: last_hops.clone(),
                            expected,
                            done: 0,
                            hops,
                            attempts: attempts + 1,
                        },
                    );
                    // Re-issue the whole batch (idempotent at the
                    // versioned stores), routing each op around the
                    // first hop of the failed attempt. The new attempt
                    // number gates the acks: leftovers from the failed
                    // attempt cannot count toward this one.
                    self.issue_batch(qid, attempts + 1, &batch, &last_hops, fx);
                } else {
                    fx.emit(PGridEvent::BatchDone { qid, ops: 0, hops: 0, ok: false })
                }
            }
            Pending::Range { items, hops, leaves, .. } => {
                fx.emit(PGridEvent::RangeDone { qid, items, complete: false, hops, leaves })
            }
        }
    }
}

impl<I: Item> NodeBehavior for PGridPeer<I> {
    type Msg = PGridMsg<I>;
    type Out = PGridEvent<I>;

    fn on_start(&mut self, _now: SimTime, fx: &mut Fx<I>) {
        self.arm_periodic(fx, self.cfg.maintenance_interval, timer::MAINTAIN);
        self.arm_periodic(fx, self.cfg.anti_entropy_interval, timer::ANTI_ENTROPY);
        if self.bootstrapping {
            self.arm_periodic(fx, self.cfg.exchange_interval, timer::EXCHANGE);
        }
    }

    fn on_message(&mut self, now: SimTime, from: NodeId, msg: PGridMsg<I>, fx: &mut Fx<I>) {
        self.msg_load += 1;
        match msg {
            PGridMsg::Lookup { qid, key, origin, hops, filter } => {
                self.handle_lookup(from, qid, key, origin, hops, filter, fx)
            }
            PGridMsg::LookupReply { qid, items, hops, ok } => {
                self.handle_lookup_reply(qid, items, hops, ok, fx)
            }
            PGridMsg::Insert { qid, key, item, version, origin, hops } => {
                self.handle_insert(from, qid, key, item, version, origin, hops, fx)
            }
            PGridMsg::InsertAck { qid, hops } => self.handle_insert_ack(qid, hops, fx),
            PGridMsg::OpBatch { qid, attempt, origin, hops, batch } => {
                self.handle_op_batch(from, qid, attempt, origin, hops, batch, fx)
            }
            PGridMsg::BatchAck { qid, attempt, ops, hops } => {
                self.handle_batch_ack(qid, attempt, ops, hops, fx)
            }
            PGridMsg::Delete { qid, key, ident, version, origin, hops } => {
                self.handle_delete(from, qid, key, ident, version, origin, hops, fx)
            }
            PGridMsg::Range { qid, lo, hi, lmin, origin, hops, filter } => {
                self.handle_range(from, qid, lo, hi, lmin, origin, hops, filter, fx)
            }
            PGridMsg::RangeSeq { qid, lo, hi, origin, hops, filter } => {
                self.handle_range_seq(from, qid, lo, hi, origin, hops, filter, fx)
            }
            PGridMsg::RangeReply { qid, cov_lo, cov_hi, items, hops, aborted } => {
                self.handle_range_reply(qid, cov_lo, cov_hi, items, hops, aborted, fx)
            }
            PGridMsg::Replicate { entries } => self.handle_replicate(entries),
            PGridMsg::Digest { entries } => self.handle_digest(from, entries, fx),
            PGridMsg::DigestReply { entries } => self.handle_digest_reply(entries),
            PGridMsg::Ping { nonce } => fx.send(from, PGridMsg::Pong { nonce }),
            PGridMsg::Pong { nonce } => {
                self.pending_pings.remove(&nonce);
            }
            PGridMsg::TableRequest => self.handle_table_request(from, fx),
            PGridMsg::TableReply { peers } | PGridMsg::ExchangeRefs { peers } => {
                self.merge_refs(&peers)
            }
            PGridMsg::Exchange { path, store_len } => {
                self.handle_exchange(now, from, path, store_len, fx)
            }
            PGridMsg::ExchangeSplit { new_sender_path, entries } => {
                self.handle_exchange_split(from, new_sender_path, entries, fx)
            }
            PGridMsg::ExchangeData { entries } => self.handle_exchange_data(entries, fx),
            PGridMsg::ExchangeReplica { entries } => self.handle_exchange_replica(from, entries),
            PGridMsg::ExchangeAdopt { bit } => self.handle_exchange_adopt(from, bit, fx),
        }
    }

    fn on_timer(&mut self, _now: SimTime, t: Timer, fx: &mut Fx<I>) {
        match t.kind {
            timer::QUERY_TIMEOUT => self.handle_query_timeout(t.payload, fx),
            timer::MAINTAIN => {
                self.run_maintenance(fx);
                self.arm_periodic(fx, self.cfg.maintenance_interval, timer::MAINTAIN);
            }
            timer::ANTI_ENTROPY => {
                self.run_anti_entropy(fx);
                self.arm_periodic(fx, self.cfg.anti_entropy_interval, timer::ANTI_ENTROPY);
            }
            timer::EXCHANGE if self.bootstrapping => {
                self.initiate_exchange(fx);
                self.arm_periodic(fx, self.cfg.exchange_interval, timer::EXCHANGE);
            }
            timer::PING_TIMEOUT => self.handle_ping_timeout(t.payload),
            _ => {}
        }
    }
}

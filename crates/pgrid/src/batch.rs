//! Batched write routing: per-hop op coalescing.
//!
//! A routed [`PGridMsg::OpBatch`] carries many insert/delete ops in one
//! wire message, with each distinct payload shipped once and referenced
//! by compact key tags ([`OpBatch`]). Routing works per *op* but ships
//! per *group*: at every peer the batch partitions into a locally
//! applied remainder plus one sub-batch per distinct next hop
//! ([`OpBatch::subset`] re-indexes the payload table), so the batch only
//! forks where responsibility actually diverges. Each peer that applies
//! ops sends the origin one aggregated [`PGridMsg::BatchAck`]; the
//! origin completes when every op is accounted for and emits a single
//! [`PGridEvent::BatchDone`] — driver-side bookkeeping stays O(batch).

use unistore_simnet::NodeId;
use unistore_util::wire::{BatchVerb, OpBatch};

use crate::item::Item;
use crate::msg::{PGridEvent, PGridMsg, QueryId};
use crate::peer::{Fx, PGridPeer, Pending};
use crate::routing::RouteDecision;

/// Routing outcome of one batch step: op indices resolved locally, and
/// one group of op indices per distinct next hop (first-seen order, so
/// the fan-out is deterministic under the seeded RNG).
struct BatchSplit {
    local: Vec<usize>,
    groups: Vec<(NodeId, Vec<usize>)>,
    /// Per-op first hop (`None` = local or stuck), recorded at the
    /// origin so a retry can route around it.
    first_hops: Vec<Option<NodeId>>,
}

impl BatchSplit {
    fn push_forward(&mut self, next: NodeId, op: usize) {
        self.first_hops[op] = Some(next);
        match self.groups.iter_mut().find(|(n, _)| *n == next) {
            Some((_, idxs)) => idxs.push(op),
            None => self.groups.push((next, vec![op])),
        }
    }
}

impl<I: Item> PGridPeer<I> {
    /// Handles a routed batch. `from == EXTERNAL` marks driver injection
    /// at the origin, which registers completion tracking (with retry
    /// state); relayed batches re-split and forward.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_op_batch(
        &mut self,
        from: NodeId,
        qid: QueryId,
        attempt: u32,
        origin: NodeId,
        hops: u32,
        batch: OpBatch<I>,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            let expected = batch.len() as u32;
            self.register_pending(
                fx,
                qid,
                Pending::Batch {
                    batch: batch.clone(),
                    last_hops: vec![None; batch.len()],
                    expected,
                    done: 0,
                    hops: 0,
                    attempts: 0,
                },
            );
            self.issue_batch(qid, 0, &batch, &[], fx);
            return;
        }
        let split = self.split_batch(&batch, &[]);
        let applied = self.apply_batch_ops(&batch, &split.local, fx);
        self.forward_groups(qid, attempt, origin, hops, &batch, split.groups, fx);
        if applied > 0 {
            if origin == self.id {
                self.handle_batch_ack(qid, attempt, applied, hops, fx);
            } else {
                fx.send(origin, PGridMsg::BatchAck { qid, attempt, ops: applied, hops });
            }
        }
    }

    /// Starts (or retries) an origin-side batch attempt, routing each op
    /// around `avoid[op]` — its first hop in the previous, failed
    /// attempt. Re-issuing already-applied ops is idempotent at the
    /// versioned stores, so the retry ships the whole batch, stamped
    /// with the new attempt number.
    pub(crate) fn issue_batch(
        &mut self,
        qid: QueryId,
        attempt: u32,
        batch: &OpBatch<I>,
        avoid: &[Option<NodeId>],
        fx: &mut Fx<I>,
    ) {
        let split = self.split_batch(batch, avoid);
        if let Some(Pending::Batch { last_hops, .. }) = self.pending.get_mut(&qid) {
            *last_hops = split.first_hops;
        }
        let applied = self.apply_batch_ops(batch, &split.local, fx);
        self.forward_groups(qid, attempt, self.id, 0, batch, split.groups, fx);
        if applied > 0 {
            self.handle_batch_ack(qid, attempt, applied, 0, fx);
        }
    }

    /// Routes every op of the batch: local / forward (grouped by next
    /// hop) / stuck. Stuck ops are left to the origin's timeout and
    /// retry, exactly like stuck single-op writes.
    fn split_batch(&mut self, batch: &OpBatch<I>, avoid: &[Option<NodeId>]) -> BatchSplit {
        let mut split = BatchSplit {
            local: Vec::new(),
            groups: Vec::new(),
            first_hops: vec![None; batch.len()],
        };
        for (i, op) in batch.ops.iter().enumerate() {
            let shun = avoid.get(i).copied().flatten();
            // Longest-prefix jumps: fewer hops per op means fewer edges
            // the sub-batch's tags and payloads cross.
            match self.routing.route_jump(op.key, shun, &mut self.rng) {
                RouteDecision::Local => split.local.push(i),
                RouteDecision::Forward(next, _) => split.push_forward(next, i),
                RouteDecision::Stuck(_) => {}
            }
        }
        split
    }

    /// Ships one re-grouped sub-batch per next hop.
    #[allow(clippy::too_many_arguments)]
    fn forward_groups(
        &mut self,
        qid: QueryId,
        attempt: u32,
        origin: NodeId,
        hops: u32,
        batch: &OpBatch<I>,
        groups: Vec<(NodeId, Vec<usize>)>,
        fx: &mut Fx<I>,
    ) {
        for (next, idxs) in groups {
            fx.send(
                next,
                PGridMsg::OpBatch {
                    qid,
                    attempt,
                    origin,
                    hops: hops + 1,
                    batch: batch.subset(&idxs),
                },
            );
        }
    }

    /// Applies the locally resolved ops through the same leaf paths as
    /// single-op writes (store apply + replica push / tombstone
    /// cascade). Returns the number of ops processed.
    fn apply_batch_ops(&mut self, batch: &OpBatch<I>, idxs: &[usize], fx: &mut Fx<I>) -> u32 {
        for &i in idxs {
            let op = batch.ops[i];
            match op.verb {
                BatchVerb::Insert { item } => {
                    let item = batch.items[item as usize].clone();
                    self.insert_at_leaf(op.key, item, op.version, fx);
                }
                BatchVerb::Delete { ident } => {
                    self.delete_at_leaf(op.key, ident, op.version, 0, fx)
                }
            }
        }
        idxs.len() as u32
    }

    /// Folds an aggregated ack into the pending batch; completes it when
    /// every op of the **current attempt** is accounted for. Acks from a
    /// superseded attempt are dropped: the aggregated count cannot name
    /// which ops it covers, so mixing attempts could declare a batch
    /// complete while an op lost in both attempts was never applied.
    pub(crate) fn handle_batch_ack(
        &mut self,
        qid: QueryId,
        attempt: u32,
        ops: u32,
        ack_hops: u32,
        fx: &mut Fx<I>,
    ) {
        let Some(Pending::Batch { expected, done, hops, attempts, .. }) =
            self.pending.get_mut(&qid)
        else {
            return;
        };
        if attempt != *attempts {
            return;
        }
        *done += ops;
        *hops = (*hops).max(ack_hops);
        if *done >= *expected {
            let (ops_total, max_hops) = (*expected, *hops);
            self.pending.remove(&qid);
            fx.emit(PGridEvent::BatchDone { qid, ops: ops_total, hops: max_hops, ok: true });
        }
    }
}

#[cfg(test)]
mod tests {
    //! Handler-level tests on hand-built topologies; full-network batch
    //! behaviour (ordering, retries, oracle equality) is covered in the
    //! workspace integration suites.

    use super::*;
    use crate::config::PGridConfig;
    use crate::item::RawItem;
    use crate::msg::PeerRef;
    use unistore_simnet::Effects;
    use unistore_util::BitPath;

    fn peer(id: u32, path: &str) -> PGridPeer<RawItem> {
        PGridPeer::new(NodeId(id), BitPath::parse(path).unwrap(), PGridConfig::default(), 42)
    }

    /// Keys routed by their top bits: peer "00" owns keys starting 00.
    fn key(prefix: &str) -> u64 {
        let mut k = 0u64;
        for (i, c) in prefix.chars().enumerate() {
            if c == '1' {
                k |= 1 << (63 - i);
            }
        }
        k
    }

    #[test]
    fn batch_forks_only_where_responsibility_diverges() {
        // Peer 0 at "00" with one ref into "01" and one into "1": a batch
        // spanning all three regions must split into exactly one local
        // apply + two sub-batches, payloads re-indexed per group.
        let mut p = peer(0, "00");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("01").unwrap() });
        p.routing_mut().add_ref(PeerRef { id: NodeId(2), path: BitPath::parse("1").unwrap() });
        let mut batch = OpBatch::new();
        let a = batch.add_item(RawItem(10));
        let b = batch.add_item(RawItem(20));
        batch.push_insert(key("00"), a, 0); // local
        batch.push_insert(key("010"), a, 0); // peer 1
        batch.push_insert(key("011"), b, 0); // peer 1 (same group)
        batch.push_insert(key("10"), b, 0); // peer 2
        let mut fx = Effects::new();
        p.handle_op_batch(NodeId::EXTERNAL, 7, 0, NodeId(0), 0, batch, &mut fx);
        // Local op applied immediately.
        assert_eq!(p.store().get(key("00")), vec![RawItem(10)]);
        // Exactly two forwards, one per divergent subtree.
        let sends: Vec<_> = fx
            .sends()
            .iter()
            .filter_map(|(to, m)| match m {
                PGridMsg::OpBatch { batch, hops, .. } => Some((*to, batch.clone(), *hops)),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 2, "one sub-batch per next hop");
        let to1 = sends.iter().find(|(to, _, _)| *to == NodeId(1)).expect("group for peer 1");
        assert_eq!(to1.1.ops.len(), 2, "both 01-keys ride one message");
        assert_eq!(to1.1.items.len(), 2, "referenced payloads only, shipped once");
        assert_eq!(to1.2, 1, "hop count incremented");
        let to2 = sends.iter().find(|(to, _, _)| *to == NodeId(2)).expect("group for peer 2");
        assert_eq!(to2.1.ops.len(), 1);
        assert_eq!(to2.1.items, vec![RawItem(20)], "unreferenced payloads dropped");
        // No completion yet: 1 of 4 ops acked.
        assert!(fx.emits().is_empty());
    }

    #[test]
    fn relayed_batch_acks_origin_and_forwards_remainder() {
        let mut p = peer(5, "1");
        p.routing_mut().add_ref(PeerRef { id: NodeId(6), path: BitPath::parse("0").unwrap() });
        let mut batch = OpBatch::new();
        let a = batch.add_item(RawItem(1));
        batch.push_insert(key("11"), a, 0); // local to peer 5
        batch.push_insert(key("0"), a, 0); // forwarded to peer 6
        let mut fx = Effects::new();
        p.handle_op_batch(NodeId(3), 9, 0, NodeId(3), 2, batch, &mut fx);
        assert_eq!(p.store().get(key("11")), vec![RawItem(1)]);
        let mut acked = 0;
        let mut forwarded = 0;
        for (to, m) in fx.sends() {
            match m {
                PGridMsg::BatchAck { qid: 9, attempt: 0, ops: 1, hops: 2 } => {
                    assert_eq!(*to, NodeId(3));
                    acked += 1;
                }
                PGridMsg::OpBatch { qid: 9, hops: 3, batch, .. } => {
                    assert_eq!(*to, NodeId(6));
                    assert_eq!(batch.ops.len(), 1);
                    forwarded += 1;
                }
                _ => {}
            }
        }
        assert_eq!((acked, forwarded), (1, 1));
    }

    #[test]
    fn batch_completes_when_every_op_is_acked() {
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        let mut batch = OpBatch::new();
        let a = batch.add_item(RawItem(4));
        batch.push_insert(key("0"), a, 0); // local
        batch.push_insert(key("10"), a, 0); // remote
        batch.push_insert(key("11"), a, 0); // remote
        let mut fx = Effects::new();
        p.handle_op_batch(NodeId::EXTERNAL, 3, 0, NodeId(0), 0, batch, &mut fx);
        assert!(fx.emits().is_empty(), "2 remote ops outstanding");
        let mut fx2 = Effects::new();
        p.handle_batch_ack(3, 0, 2, 4, &mut fx2);
        match fx2.emits() {
            [PGridEvent::BatchDone { qid: 3, ops: 3, hops: 4, ok: true }] => {}
            other => panic!("unexpected emits {other:?}"),
        }
    }

    #[test]
    fn batch_delete_tombstones_at_the_leaf() {
        let mut p = peer(0, "0");
        let k = key("0");
        p.preload(k, RawItem(9), 0);
        let mut batch: OpBatch<RawItem> = OpBatch::new();
        batch.push_delete(k, 9, 1); // RawItem ident == payload
        let mut fx = Effects::new();
        p.handle_op_batch(NodeId::EXTERNAL, 4, 0, NodeId(0), 0, batch, &mut fx);
        assert!(p.store().get(k).is_empty(), "batched delete removes the entry");
        match fx.emits() {
            [PGridEvent::BatchDone { qid: 4, ops: 1, ok: true, .. }] => {}
            other => panic!("unexpected emits {other:?}"),
        }
    }

    #[test]
    fn timed_out_batch_retries_around_the_previous_first_hop() {
        use unistore_simnet::{NodeBehavior, SimTime, Timer};
        // Two references cover the "1" subtree; the retry of a timed-out
        // sub-batch must route around the first attempt's hop.
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        p.routing_mut().add_ref(PeerRef { id: NodeId(2), path: BitPath::parse("1").unwrap() });
        let mut batch = OpBatch::new();
        let a = batch.add_item(RawItem(1));
        batch.push_insert(key("1"), a, 0);
        let mut fx = Effects::new();
        p.handle_op_batch(NodeId::EXTERNAL, 5, 0, NodeId(0), 0, batch, &mut fx);
        let first_to = |fx: &Effects<PGridMsg<RawItem>, PGridEvent<RawItem>>| {
            fx.sends()
                .iter()
                .find_map(|(to, m)| matches!(m, PGridMsg::OpBatch { .. }).then_some(*to))
                .expect("sub-batch forwarded")
        };
        let first = first_to(&fx);
        // No ack arrives; the origin-side timeout fires and re-issues.
        let mut fx2 = Effects::new();
        p.on_timer(SimTime::ZERO, Timer::new(crate::peer::timer::QUERY_TIMEOUT, 5), &mut fx2);
        let second = first_to(&fx2);
        assert_ne!(first, second, "retry must exclude the failed first hop");
        // A straggler ack from the superseded attempt is dropped: the
        // aggregated count cannot name its ops, so it must not combine
        // with the retry's acks into a false completion.
        let mut fx_stale = Effects::new();
        p.handle_batch_ack(5, 0, 1, 2, &mut fx_stale);
        assert!(fx_stale.emits().is_empty(), "stale-attempt ack must not complete the batch");
        // The retried attempt completes normally.
        let mut fx3 = Effects::new();
        p.handle_batch_ack(5, 1, 1, 2, &mut fx3);
        match fx3.emits() {
            [PGridEvent::BatchDone { qid: 5, ops: 1, ok: true, .. }] => {}
            other => panic!("unexpected emits {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_fail_the_batch() {
        use unistore_simnet::{NodeBehavior, SimTime, Timer};
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        let mut batch = OpBatch::new();
        let a = batch.add_item(RawItem(1));
        batch.push_insert(key("1"), a, 0);
        let mut fx = Effects::new();
        p.handle_op_batch(NodeId::EXTERNAL, 6, 0, NodeId(0), 0, batch, &mut fx);
        let retries = PGridConfig::default().op_retries;
        for i in 0..=retries {
            let mut fxt = Effects::new();
            p.on_timer(SimTime::ZERO, Timer::new(crate::peer::timer::QUERY_TIMEOUT, 6), &mut fxt);
            if i == retries {
                match fxt.emits() {
                    [PGridEvent::BatchDone { qid: 6, ok: false, .. }] => {}
                    other => panic!("unexpected emits {other:?}"),
                }
            } else {
                assert!(fxt.emits().is_empty(), "attempt {i} should re-issue, not fail");
            }
        }
    }

    #[test]
    fn batch_order_independent_under_versioned_records() {
        // The version laws make op order across a fork irrelevant: a
        // delete at v2 and an insert at v1 of the same identity converge
        // to the tombstone no matter the application order.
        let mk = |order: [usize; 2]| {
            let mut p = peer(0, "0");
            let mut batch = OpBatch::new();
            let a = batch.add_item(RawItem(9));
            let ops = [(0usize, a), (1, a)];
            let mut b2 = OpBatch::new();
            let a2 = b2.add_item(RawItem(9));
            for &i in &order {
                match ops[i].0 {
                    0 => b2.push_insert(key("0"), a2, 1),
                    _ => b2.push_delete(key("0"), 9, 2),
                }
            }
            let _ = batch;
            let mut fx = Effects::new();
            p.handle_op_batch(NodeId::EXTERNAL, 1, 0, NodeId(0), 0, b2, &mut fx);
            p.store().get(key("0"))
        };
        assert_eq!(mk([0, 1]), mk([1, 0]));
        assert!(mk([0, 1]).is_empty(), "the newer tombstone wins either way");
    }
}

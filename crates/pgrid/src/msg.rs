//! Messages exchanged between P-Grid peers, and events emitted to the
//! simulation driver.

use bytes::{Bytes, BytesMut};

use unistore_simnet::NodeId;
use unistore_util::wire::{put_list, OpBatch, Wire, WireError};
use unistore_util::{BitPath, ItemFilter, Key};

use crate::item::{Item, Version};

/// Correlates requests with replies and driver-visible completions.
pub type QueryId = u64;

/// Which range algorithm to run (paper §2: "several physical
/// implementations … differ in applied routing strategy, parallelism").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RangeMode {
    /// Shower algorithm: the query fans out down the trie in parallel.
    Parallel,
    /// Leaf walk: visit leaves in key order, one at a time.
    Sequential,
}

/// A compact peer descriptor carried in maintenance/bootstrap messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerRef {
    /// The peer's node id.
    pub id: NodeId,
    /// The peer's trie path at the time of advertisement.
    pub path: BitPath,
}

impl Wire for PeerRef {
    fn encode(&self, buf: &mut BytesMut) {
        self.id.encode(buf);
        self.path.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(PeerRef { id: NodeId::decode(buf)?, path: BitPath::decode(buf)? })
    }

    fn wire_size(&self) -> usize {
        self.id.wire_size() + self.path.wire_size()
    }
}

/// The P-Grid protocol messages.
#[derive(Clone, Debug)]
pub enum PGridMsg<I> {
    /// Exact-key search, routed greedily along the trie.
    Lookup {
        /// Correlation id.
        qid: QueryId,
        /// Key to resolve.
        key: Key,
        /// Peer that issued the query and receives the reply.
        origin: NodeId,
        /// Routing hops taken so far.
        hops: u32,
        /// Semi-join filter the leaf applies before replying.
        filter: Option<ItemFilter>,
    },
    /// Answer (or failure) for a [`PGridMsg::Lookup`].
    LookupReply {
        /// Correlation id.
        qid: QueryId,
        /// Items stored under the key (empty is a valid answer).
        items: Vec<I>,
        /// Hops the request took.
        hops: u32,
        /// `false` when routing got stuck before reaching the leaf.
        ok: bool,
    },
    /// Insert/update, routed like a lookup; applied at the leaf and
    /// replicated.
    Insert {
        /// Correlation id for the ack.
        qid: QueryId,
        /// Placement key.
        key: Key,
        /// Payload.
        item: I,
        /// Version for loose-consistency updates (0 = initial insert).
        version: Version,
        /// Issuer, receives the ack.
        origin: NodeId,
        /// Routing hops so far.
        hops: u32,
    },
    /// Confirms an insert reached a responsible leaf.
    InsertAck {
        /// Correlation id.
        qid: QueryId,
        /// Hops the insert took.
        hops: u32,
    },
    /// Removes the entry with the given logical identity under a key
    /// (index maintenance on updates). Routed like an insert; acked with
    /// [`PGridMsg::InsertAck`].
    Delete {
        /// Correlation id.
        qid: QueryId,
        /// Placement key.
        key: Key,
        /// Logical identity of the entry to remove.
        ident: u64,
        /// Version of the delete (removes entries with `version <= this`).
        version: Version,
        /// Issuer, receives the ack.
        origin: NodeId,
        /// Routing hops so far.
        hops: u32,
    },
    /// Many routed writes coalesced into one message (shared-payload
    /// [`OpBatch`] encoding). Routed like inserts, but per *op*: at each
    /// peer the batch re-splits into one sub-batch per next hop plus a
    /// locally applied remainder, so it only forks where responsibility
    /// diverges. Every peer that applies ops acks the origin with one
    /// aggregated [`PGridMsg::BatchAck`].
    OpBatch {
        /// Correlation id of the whole batch.
        qid: QueryId,
        /// Origin-side attempt number, echoed by acks. A retried batch
        /// counts only its current attempt's acks toward completion —
        /// count-based acks cannot name which ops they cover, so a late
        /// ack from a previous attempt must not combine with the
        /// retry's acks into a false completion.
        attempt: u32,
        /// Issuer, receives the aggregated acks.
        origin: NodeId,
        /// Routing hops of this sub-batch so far.
        hops: u32,
        /// The ops and their shared payloads.
        batch: OpBatch<I>,
    },
    /// Aggregated ack: `ops` write ops of batch `qid` were applied at
    /// the sending leaf.
    BatchAck {
        /// Correlation id of the batch.
        qid: QueryId,
        /// Attempt the acked sub-batch belonged to.
        attempt: u32,
        /// Ops applied at the acking leaf.
        ops: u32,
        /// Hops the sub-batch travelled to that leaf.
        hops: u32,
    },
    /// Parallel (shower) range query over `[lo, hi]`.
    Range {
        /// Correlation id.
        qid: QueryId,
        /// Inclusive lower bound.
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// First routing level this peer may still fan out on.
        lmin: u8,
        /// Issuer, receives all leaf replies.
        origin: NodeId,
        /// Hops along this branch so far.
        hops: u32,
        /// Semi-join filter every reached leaf applies before replying.
        filter: Option<ItemFilter>,
    },
    /// Sequential range query: resolves `lo`'s leaf, then walks right.
    RangeSeq {
        /// Correlation id.
        qid: QueryId,
        /// Next key to resolve (start of the unvisited remainder).
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// Issuer.
        origin: NodeId,
        /// Hops so far.
        hops: u32,
        /// Semi-join filter every visited leaf applies before replying.
        filter: Option<ItemFilter>,
    },
    /// A leaf's contribution to a range query.
    RangeReply {
        /// Correlation id.
        qid: QueryId,
        /// Start of the key interval this reply covers.
        cov_lo: Key,
        /// End of the key interval this reply covers.
        cov_hi: Key,
        /// Matching items.
        items: Vec<I>,
        /// Hops the longest branch to this leaf took.
        hops: u32,
        /// `true` when a branch had to give up (routing hole).
        aborted: bool,
    },
    /// Push replication / handoff of entries to a replica.
    Replicate {
        /// `(key, version, item)` entries.
        entries: Vec<(Key, Version, I)>,
    },
    /// Anti-entropy request: "here is what I have".
    Digest {
        /// `(key, ident, version)` summary of the sender's store.
        entries: Vec<(Key, u64, Version)>,
    },
    /// Anti-entropy response: records the requester was missing —
    /// including tombstones (`item == None`), so deletes propagate.
    DigestReply {
        /// `(key, ident, version, item-or-tombstone)` records.
        entries: Vec<(Key, u64, Version, Option<I>)>,
    },
    /// Liveness probe.
    Ping {
        /// Echo token.
        nonce: u64,
    },
    /// Liveness answer.
    Pong {
        /// Echoed token.
        nonce: u64,
    },
    /// Asks a peer for its routing table (maintenance refresh).
    TableRequest,
    /// Routing-table contents: every referenced peer with its path.
    TableReply {
        /// Advertised peers.
        peers: Vec<PeerRef>,
    },
    /// Bootstrap: initiator announces itself for a pairwise exchange.
    Exchange {
        /// Initiator's current path.
        path: BitPath,
        /// Number of locally stored entries (split decision input).
        store_len: u64,
    },
    /// Bootstrap: both peers had the same path and split; sender keeps
    /// the `1` side, receiver takes the `0` side and these entries.
    ExchangeSplit {
        /// Sender's path after the split.
        new_sender_path: BitPath,
        /// Entries belonging to the receiver's new leaf.
        entries: Vec<(Key, Version, I)>,
    },
    /// Bootstrap: entries handed over without a structural change.
    ExchangeData {
        /// Entries for the receiver to apply or re-route.
        entries: Vec<(Key, Version, I)>,
    },
    /// Bootstrap: peers with the same path and little data become
    /// replicas of each other; carries the sender's entries.
    ExchangeReplica {
        /// Sender's entries for replica convergence.
        entries: Vec<(Key, Version, I)>,
    },
    /// Bootstrap: tells a less-specialized peer to extend its path by
    /// `bit` (the complement of the sender's next bit).
    ExchangeAdopt {
        /// Bit to append to the receiver's path.
        bit: bool,
    },
    /// Bootstrap/maintenance: reference gossip.
    ExchangeRefs {
        /// Advertised peers.
        peers: Vec<PeerRef>,
    },
}

mod tag {
    pub const LOOKUP: u8 = 1;
    pub const LOOKUP_REPLY: u8 = 2;
    pub const INSERT: u8 = 3;
    pub const INSERT_ACK: u8 = 4;
    pub const DELETE: u8 = 21;
    pub const RANGE: u8 = 5;
    pub const RANGE_SEQ: u8 = 6;
    pub const RANGE_REPLY: u8 = 7;
    pub const REPLICATE: u8 = 8;
    pub const DIGEST: u8 = 9;
    pub const DIGEST_REPLY: u8 = 10;
    pub const PING: u8 = 11;
    pub const PONG: u8 = 12;
    pub const TABLE_REQUEST: u8 = 13;
    pub const TABLE_REPLY: u8 = 14;
    pub const EXCHANGE: u8 = 15;
    pub const EXCHANGE_SPLIT: u8 = 16;
    pub const EXCHANGE_DATA: u8 = 17;
    pub const EXCHANGE_REPLICA: u8 = 18;
    pub const EXCHANGE_ADOPT: u8 = 19;
    pub const EXCHANGE_REFS: u8 = 20;
    pub const OP_BATCH: u8 = 22;
    pub const BATCH_ACK: u8 = 23;
}

impl<I: Item> Wire for PGridMsg<I> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PGridMsg::Lookup { qid, key, origin, hops, filter } => {
                tag::LOOKUP.encode(buf);
                qid.encode(buf);
                key.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
                filter.encode(buf);
            }
            PGridMsg::LookupReply { qid, items, hops, ok } => {
                tag::LOOKUP_REPLY.encode(buf);
                qid.encode(buf);
                put_list(buf, items);
                hops.encode(buf);
                ok.encode(buf);
            }
            PGridMsg::OpBatch { qid, attempt, origin, hops, batch } => {
                tag::OP_BATCH.encode(buf);
                qid.encode(buf);
                attempt.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
                batch.encode(buf);
            }
            PGridMsg::BatchAck { qid, attempt, ops, hops } => {
                tag::BATCH_ACK.encode(buf);
                qid.encode(buf);
                attempt.encode(buf);
                ops.encode(buf);
                hops.encode(buf);
            }
            PGridMsg::Insert { qid, key, item, version, origin, hops } => {
                tag::INSERT.encode(buf);
                qid.encode(buf);
                key.encode(buf);
                item.encode(buf);
                version.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
            }
            PGridMsg::InsertAck { qid, hops } => {
                tag::INSERT_ACK.encode(buf);
                qid.encode(buf);
                hops.encode(buf);
            }
            PGridMsg::Delete { qid, key, ident, version, origin, hops } => {
                tag::DELETE.encode(buf);
                qid.encode(buf);
                key.encode(buf);
                ident.encode(buf);
                version.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
            }
            PGridMsg::Range { qid, lo, hi, lmin, origin, hops, filter } => {
                tag::RANGE.encode(buf);
                qid.encode(buf);
                lo.encode(buf);
                hi.encode(buf);
                lmin.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
                filter.encode(buf);
            }
            PGridMsg::RangeSeq { qid, lo, hi, origin, hops, filter } => {
                tag::RANGE_SEQ.encode(buf);
                qid.encode(buf);
                lo.encode(buf);
                hi.encode(buf);
                origin.encode(buf);
                hops.encode(buf);
                filter.encode(buf);
            }
            PGridMsg::RangeReply { qid, cov_lo, cov_hi, items, hops, aborted } => {
                tag::RANGE_REPLY.encode(buf);
                qid.encode(buf);
                cov_lo.encode(buf);
                cov_hi.encode(buf);
                put_list(buf, items);
                hops.encode(buf);
                aborted.encode(buf);
            }
            PGridMsg::Replicate { entries } => {
                tag::REPLICATE.encode(buf);
                entries.encode(buf);
            }
            PGridMsg::Digest { entries } => {
                tag::DIGEST.encode(buf);
                entries.encode(buf);
            }
            PGridMsg::DigestReply { entries } => {
                tag::DIGEST_REPLY.encode(buf);
                entries.encode(buf);
            }
            PGridMsg::Ping { nonce } => {
                tag::PING.encode(buf);
                nonce.encode(buf);
            }
            PGridMsg::Pong { nonce } => {
                tag::PONG.encode(buf);
                nonce.encode(buf);
            }
            PGridMsg::TableRequest => tag::TABLE_REQUEST.encode(buf),
            PGridMsg::TableReply { peers } => {
                tag::TABLE_REPLY.encode(buf);
                peers.encode(buf);
            }
            PGridMsg::Exchange { path, store_len } => {
                tag::EXCHANGE.encode(buf);
                path.encode(buf);
                store_len.encode(buf);
            }
            PGridMsg::ExchangeSplit { new_sender_path, entries } => {
                tag::EXCHANGE_SPLIT.encode(buf);
                new_sender_path.encode(buf);
                entries.encode(buf);
            }
            PGridMsg::ExchangeData { entries } => {
                tag::EXCHANGE_DATA.encode(buf);
                entries.encode(buf);
            }
            PGridMsg::ExchangeReplica { entries } => {
                tag::EXCHANGE_REPLICA.encode(buf);
                entries.encode(buf);
            }
            PGridMsg::ExchangeAdopt { bit } => {
                tag::EXCHANGE_ADOPT.encode(buf);
                bit.encode(buf);
            }
            PGridMsg::ExchangeRefs { peers } => {
                tag::EXCHANGE_REFS.encode(buf);
                peers.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let t = u8::decode(buf)?;
        Ok(match t {
            tag::LOOKUP => PGridMsg::Lookup {
                qid: Wire::decode(buf)?,
                key: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                filter: Wire::decode(buf)?,
            },
            tag::LOOKUP_REPLY => PGridMsg::LookupReply {
                qid: Wire::decode(buf)?,
                items: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                ok: Wire::decode(buf)?,
            },
            tag::OP_BATCH => PGridMsg::OpBatch {
                qid: Wire::decode(buf)?,
                attempt: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                batch: Wire::decode(buf)?,
            },
            tag::BATCH_ACK => PGridMsg::BatchAck {
                qid: Wire::decode(buf)?,
                attempt: Wire::decode(buf)?,
                ops: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
            },
            tag::INSERT => PGridMsg::Insert {
                qid: Wire::decode(buf)?,
                key: Wire::decode(buf)?,
                item: Wire::decode(buf)?,
                version: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
            },
            tag::INSERT_ACK => {
                PGridMsg::InsertAck { qid: Wire::decode(buf)?, hops: Wire::decode(buf)? }
            }
            tag::DELETE => PGridMsg::Delete {
                qid: Wire::decode(buf)?,
                key: Wire::decode(buf)?,
                ident: Wire::decode(buf)?,
                version: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
            },
            tag::RANGE => PGridMsg::Range {
                qid: Wire::decode(buf)?,
                lo: Wire::decode(buf)?,
                hi: Wire::decode(buf)?,
                lmin: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                filter: Wire::decode(buf)?,
            },
            tag::RANGE_SEQ => PGridMsg::RangeSeq {
                qid: Wire::decode(buf)?,
                lo: Wire::decode(buf)?,
                hi: Wire::decode(buf)?,
                origin: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                filter: Wire::decode(buf)?,
            },
            tag::RANGE_REPLY => PGridMsg::RangeReply {
                qid: Wire::decode(buf)?,
                cov_lo: Wire::decode(buf)?,
                cov_hi: Wire::decode(buf)?,
                items: Wire::decode(buf)?,
                hops: Wire::decode(buf)?,
                aborted: Wire::decode(buf)?,
            },
            tag::REPLICATE => PGridMsg::Replicate { entries: Wire::decode(buf)? },
            tag::DIGEST => PGridMsg::Digest { entries: Wire::decode(buf)? },
            tag::DIGEST_REPLY => PGridMsg::DigestReply { entries: Wire::decode(buf)? },
            tag::PING => PGridMsg::Ping { nonce: Wire::decode(buf)? },
            tag::PONG => PGridMsg::Pong { nonce: Wire::decode(buf)? },
            tag::TABLE_REQUEST => PGridMsg::TableRequest,
            tag::TABLE_REPLY => PGridMsg::TableReply { peers: Wire::decode(buf)? },
            tag::EXCHANGE => {
                PGridMsg::Exchange { path: Wire::decode(buf)?, store_len: Wire::decode(buf)? }
            }
            tag::EXCHANGE_SPLIT => PGridMsg::ExchangeSplit {
                new_sender_path: Wire::decode(buf)?,
                entries: Wire::decode(buf)?,
            },
            tag::EXCHANGE_DATA => PGridMsg::ExchangeData { entries: Wire::decode(buf)? },
            tag::EXCHANGE_REPLICA => PGridMsg::ExchangeReplica { entries: Wire::decode(buf)? },
            tag::EXCHANGE_ADOPT => PGridMsg::ExchangeAdopt { bit: Wire::decode(buf)? },
            tag::EXCHANGE_REFS => PGridMsg::ExchangeRefs { peers: Wire::decode(buf)? },
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Events a P-Grid peer surfaces to the simulation driver.
#[derive(Clone, Debug)]
pub enum PGridEvent<I> {
    /// A lookup the local peer issued finished.
    LookupDone {
        /// Correlation id.
        qid: QueryId,
        /// Items found (empty = key absent).
        items: Vec<I>,
        /// Hops of the successful route (0 when resolved locally).
        hops: u32,
        /// `false` on routing failure or timeout.
        ok: bool,
    },
    /// A range query the local peer issued finished.
    RangeDone {
        /// Correlation id.
        qid: QueryId,
        /// All matching items across leaves.
        items: Vec<I>,
        /// `true` when the covered intervals add up to the full query
        /// range (no loss, no routing holes).
        complete: bool,
        /// Maximum hop count over all branches.
        hops: u32,
        /// Number of leaf replies received.
        leaves: u32,
    },
    /// An insert the local peer issued was acknowledged (or timed out).
    InsertDone {
        /// Correlation id.
        qid: QueryId,
        /// Hops to the responsible leaf.
        hops: u32,
        /// `false` on timeout.
        ok: bool,
    },
    /// A batched write the local peer issued completed: every op acked,
    /// or the batch timed out with ops still outstanding.
    BatchDone {
        /// Correlation id of the batch.
        qid: QueryId,
        /// Ops the batch carried.
        ops: u32,
        /// Deepest hop count over all acked sub-batches.
        hops: u32,
        /// `false` on timeout.
        ok: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::RawItem;

    fn roundtrip(msg: PGridMsg<RawItem>) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        let back = PGridMsg::<RawItem>::from_bytes(&bytes).expect("decode");
        // Compare via Debug: PGridMsg avoids PartialEq to keep I flexible.
        assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }

    #[test]
    fn all_variants_roundtrip() {
        let path = BitPath::parse("0110").unwrap();
        let peers =
            vec![PeerRef { id: NodeId(1), path }, PeerRef { id: NodeId(2), path: BitPath::ROOT }];
        let entries = vec![(42u64, 1u64, RawItem(7)), (43, 0, RawItem(8))];
        let filter = Some(ItemFilter {
            field: 2,
            bloom: unistore_util::BloomFilter::from_hashes([7u64, 8, 9], 0.01),
        });
        let msgs: Vec<PGridMsg<RawItem>> = vec![
            PGridMsg::Lookup { qid: 9, key: 0xABCD, origin: NodeId(3), hops: 2, filter: None },
            PGridMsg::Lookup {
                qid: 9,
                key: 0xABCD,
                origin: NodeId(3),
                hops: 2,
                filter: filter.clone(),
            },
            PGridMsg::LookupReply { qid: 9, items: vec![RawItem(1)], hops: 3, ok: true },
            PGridMsg::Insert {
                qid: 1,
                key: 5,
                item: RawItem(5),
                version: 2,
                origin: NodeId(0),
                hops: 0,
            },
            PGridMsg::InsertAck { qid: 1, hops: 4 },
            PGridMsg::Delete { qid: 4, key: 9, ident: 11, version: 2, origin: NodeId(1), hops: 3 },
            PGridMsg::OpBatch {
                qid: 12,
                attempt: 1,
                origin: NodeId(2),
                hops: 1,
                batch: {
                    let mut b = OpBatch::new();
                    let i = b.add_item(RawItem(77));
                    b.push_insert(5, i, 0);
                    b.push_insert(9, i, 0);
                    b.push_delete(13, 0xFEED, 2);
                    b
                },
            },
            PGridMsg::BatchAck { qid: 12, attempt: 1, ops: 3, hops: 4 },
            PGridMsg::Range {
                qid: 2,
                lo: 10,
                hi: 20,
                lmin: 1,
                origin: NodeId(4),
                hops: 1,
                filter: filter.clone(),
            },
            PGridMsg::RangeSeq { qid: 3, lo: 10, hi: 20, origin: NodeId(4), hops: 1, filter },
            PGridMsg::RangeReply {
                qid: 2,
                cov_lo: 10,
                cov_hi: 15,
                items: vec![RawItem(11)],
                hops: 5,
                aborted: false,
            },
            PGridMsg::Replicate { entries: entries.clone() },
            PGridMsg::Digest { entries: vec![(1, 2, 3)] },
            PGridMsg::DigestReply {
                entries: vec![(42u64, 7u64, 1u64, Some(RawItem(7))), (43, 8, 2, None)],
            },
            PGridMsg::Ping { nonce: 77 },
            PGridMsg::Pong { nonce: 77 },
            PGridMsg::TableRequest,
            PGridMsg::TableReply { peers: peers.clone() },
            PGridMsg::Exchange { path, store_len: 12 },
            PGridMsg::ExchangeSplit { new_sender_path: path, entries: entries.clone() },
            PGridMsg::ExchangeData { entries: entries.clone() },
            PGridMsg::ExchangeReplica { entries },
            PGridMsg::ExchangeAdopt { bit: true },
            PGridMsg::ExchangeRefs { peers },
        ];
        for m in msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let b = Bytes::from_static(&[200]);
        assert!(matches!(PGridMsg::<RawItem>::from_bytes(&b), Err(WireError::BadTag(200))));
    }
}
